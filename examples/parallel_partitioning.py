"""Parallel streaming placement and the RCT dependency detector.

Paper Sec. V-B: scoring M records concurrently loses the serial
heuristic's guidance whenever in-flight records are adjacent; the
Reversed-Counting-Table detects those conflicts and delays the
heavily-depended-on vertex.  This example sweeps the parallelism M on
the deterministic executor with the RCT on and off, then runs the real
threaded executor once.

Run:  python examples/parallel_partitioning.py
"""

from repro.bench.report import format_table
from repro.graph import GraphStream, community_web_graph
from repro.parallel import (
    SimulatedParallelPartitioner,
    ThreadedParallelPartitioner,
)
from repro.partitioning import SPNLPartitioner, evaluate

K = 16


def main() -> None:
    graph = community_web_graph(15_000, avg_community_size=60, seed=33,
                                name="par-demo")
    serial = SPNLPartitioner(K, num_shards="auto").partition(
        GraphStream(graph))
    serial_ecr = evaluate(graph, serial.assignment).ecr
    print(f"serial SPNL: ECR={serial_ecr:.4f} "
          f"PT={serial.elapsed_seconds:.2f}s\n")

    rows = []
    for m in (2, 4, 8, 16, 32):
        for use_rct in (True, False):
            partitioner = SimulatedParallelPartitioner(
                SPNLPartitioner(K, num_shards="auto"),
                parallelism=m, use_rct=use_rct)
            result = partitioner.partition(GraphStream(graph))
            ecr = evaluate(graph, result.assignment).ecr
            rows.append({
                "M": m,
                "RCT": "on" if use_rct else "off",
                "ECR": round(ecr, 4),
                "degradation": f"{ecr / serial_ecr - 1:+.1%}",
                "delayed": result.stats["delayed"],
                "conflicts": result.stats["conflicts"],
            })
    print(format_table(
        rows, title="concurrent placement quality (deterministic model)"))

    print("\nreal threads (M=4, shared memory, commit under lock):")
    threaded = ThreadedParallelPartitioner(
        SPNLPartitioner(K, num_shards="auto"), parallelism=4)
    result = threaded.partition(GraphStream(graph))
    ecr = evaluate(graph, result.assignment).ecr
    print(f"  ECR={ecr:.4f} ({ecr / serial_ecr - 1:+.1%} vs serial) "
          f"PT={result.elapsed_seconds:.2f}s "
          f"delayed={result.stats['delayed']}")


if __name__ == "__main__":
    main()
