"""Multi-tenant analysis: why partitioning time is on the critical path.

Paper Sec. II: vertex-centric systems re-partition the graph inside
*every* job, so the same graph is partitioned many times when tenants
run different analyses (the paper names PageRank and Shortest Path).
This example simulates three tenants sharing one graph and accounts for
total cost = partitioning work + job communication, comparing an
offline partitioner against single-pass SPNL.

Run:  python examples/multi_tenant_jobs.py
"""

from repro.bench.report import format_table
from repro.graph import GraphStream, community_web_graph
from repro.offline import MultilevelPartitioner
from repro.partitioning import SPNLPartitioner, evaluate
from repro.runtime import run_pagerank, run_sssp, run_wcc

K = 16


def main() -> None:
    graph = community_web_graph(12_000, avg_community_size=60, seed=55,
                                name="shared")
    jobs = {
        "tenant A: PageRank": lambda a: run_pagerank(graph, a,
                                                     iterations=10),
        "tenant B: SSSP": lambda a: run_sssp(graph, a, source=0),
        "tenant C: WCC": lambda a: run_wcc(graph, a),
    }

    rows = []
    for label, partitioner, is_offline in [
        ("METIS-like", MultilevelPartitioner(K), True),
        ("SPNL", SPNLPartitioner(K, num_shards="auto"), False),
    ]:
        total_partition_time = 0.0
        total_remote = 0
        # The partitioner runs once *per job* (the built-in-component
        # deployment the paper describes).
        for job_name, job in jobs.items():
            result = partitioner.partition(
                graph if is_offline else GraphStream(graph))
            total_partition_time += result.elapsed_seconds
            run = job(result.assignment)
            total_remote += run.comm.remote_messages
        quality = evaluate(graph, result.assignment)
        rows.append({
            "partitioner": label,
            "ECR": round(quality.ecr, 4),
            "3x partition PT(s)": round(total_partition_time, 2),
            "total remote msgs": total_remote,
        })
    print(f"graph: |V|={graph.num_vertices:,} |E|={graph.num_edges:,}, "
          f"{len(jobs)} tenants, K={K}\n")
    print(format_table(rows, title="three jobs, partitioner inside each"))
    print("\nSPNL's one-pass heuristics keep re-partitioning cheap while "
          "holding METIS-class cut quality —\nthe scalability argument "
          "of the paper's introduction.")


if __name__ == "__main__":
    main()
