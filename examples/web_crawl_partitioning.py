"""Partition a web crawl straight from disk, the paper's deployment mode.

Scenario (paper Sec. I): a crawler has written a BFS-ordered adjacency
file too large to hold in memory next to heavyweight partitioner state.
We stream it once from disk, compare every streaming heuristic, and show
the sliding window keeping SPNL's memory at LDG levels.

Run:  python examples/web_crawl_partitioning.py
"""

import tempfile
from pathlib import Path

from repro.bench.report import format_table
from repro.graph import FileStream, community_web_graph, write_adjacency
from repro.memory import measure_peak, spnl_bytes, streaming_baseline_bytes
from repro.partitioning import (
    FennelPartitioner,
    HashPartitioner,
    LDGPartitioner,
    SPNLPartitioner,
    SPNPartitioner,
    evaluate,
)

K = 32


def main() -> None:
    # --- the "crawler" writes its output to disk ----------------------
    graph = community_web_graph(30_000, avg_community_size=60, seed=13,
                                name="crawl")
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "crawl.adj.gz"
        write_adjacency(graph, path)
        size_mb = path.stat().st_size / 1e6
        print(f"crawl on disk: {path.name}, {size_mb:.1f} MB compressed, "
              f"|V|={graph.num_vertices:,} |E|={graph.num_edges:,}\n")

        # --- one streaming pass per partitioner, straight off disk ----
        rows = []
        for partitioner in [
            HashPartitioner(K),
            LDGPartitioner(K),
            FennelPartitioner(K),
            SPNPartitioner(K, num_shards="auto"),
            SPNLPartitioner(K, num_shards="auto"),
        ]:
            stream = FileStream(path)
            result, peak = measure_peak(
                lambda p=partitioner, s=stream: p.partition(s))
            quality = evaluate(graph, result.assignment)
            rows.append({
                "method": result.partitioner,
                "ECR": round(quality.ecr, 4),
                "delta_v": round(quality.delta_v, 2),
                "delta_e": round(quality.delta_e, 2),
                "peak MB": round(peak / 1e6, 2),
            })
        print(format_table(rows, title=f"streaming from disk (K={K})"))

    # --- what the sliding window buys at real crawl scale -------------
    print("\nanalytic memory at web2001 scale (|V|=118M, K=32):")
    for label, estimate in [
        ("LDG          ", streaming_baseline_bytes(118_142_155, K, 10_000)),
        ("SPNL, X=1    ", spnl_bytes(118_142_155, K, 10_000, 1)),
        ("SPNL, X=128  ", spnl_bytes(118_142_155, K, 10_000, 128)),
    ]:
        print(f"  {label} {estimate.total_bytes / 1e9:6.2f} GB")


if __name__ == "__main__":
    main()
