"""The paper's future-work direction, running: SPNL knowledge on
streaming *edge* partitioning.

GAS systems (PowerGraph family) assign edges and replicate vertices;
quality is the replication factor (RF).  The paper's conclusion claims
its knowledge-utilization techniques transfer to this setting — SPNL-E
implements the transfer (multiplicity Γ counters + Range locality +
sliding window on top of HDRF), and this example measures it against
the canonical streaming edge partitioners.

Run:  python examples/edge_partitioning.py
"""

from repro.bench.report import format_table
from repro.edgepart import (
    DBHPartitioner,
    GreedyEdgePartitioner,
    HDRFPartitioner,
    RandomEdgePartitioner,
    SPNLEdgePartitioner,
    evaluate_edges,
    simulate_gas_job,
)
from repro.graph import community_web_graph

K = 16


def main() -> None:
    graph = community_web_graph(10_000, avg_community_size=60, seed=77,
                                name="crawl")
    print(f"graph: |V|={graph.num_vertices:,} |E|={graph.num_edges:,}, "
          f"K={K}\n")

    rows = []
    for partitioner in [
        RandomEdgePartitioner(K),
        DBHPartitioner(K),
        GreedyEdgePartitioner(K),
        HDRFPartitioner(K),
        SPNLEdgePartitioner(K),           # the transfer
        SPNLEdgePartitioner(K, mu=0.0, nu=0.0),  # ablated back to HDRF-ish
    ]:
        result = partitioner.partition(graph)
        report = evaluate_edges(graph, result.assignment)
        label = result.partitioner
        if result.stats.get("mu") == 0.0:
            label += " (knowledge off)"
        # what the replication factor costs a 10-superstep GAS job
        gas = simulate_gas_job(graph, result.assignment, supersteps=10)
        rows.append({
            "method": label,
            "replication factor": round(report.replication_factor, 3),
            "balance": round(report.load_balance, 3),
            "GAS sync (ms)": round(gas.makespan_seconds * 1000, 1),
            "PT(s)": round(result.elapsed_seconds, 2),
        })
    print(format_table(rows, title="streaming edge partitioning"))
    rf = {r["method"]: r["replication factor"] for r in rows}
    print(f"\nSPNL's techniques cut HDRF's replication by "
          f"{1 - rf['SPNL-E'] / rf['HDRF']:.0%} on this graph — the "
          f"paper's Sec. VII claim, measured.")


if __name__ == "__main__":
    main()
