"""Why ECR matters: the same PageRank job over three partitionings.

The paper's motivation (Sec. I): in Pregel-style systems every cut edge
turns a memory write into a network message.  This example partitions
one graph three ways, runs the identical PageRank job on the BSP
runtime, and compares the resulting communication profiles — the answer
is byte-identical, the network bill is not.

Run:  python examples/distributed_pagerank.py
"""

import numpy as np

from repro.bench.report import format_table
from repro.graph import GraphStream, community_web_graph
from repro.offline import MultilevelPartitioner
from repro.partitioning import HashPartitioner, SPNLPartitioner, evaluate
from repro.runtime import run_pagerank

K = 16
ITERATIONS = 10


def main() -> None:
    graph = community_web_graph(15_000, avg_community_size=60, seed=21,
                                name="pages")
    print(f"graph: |V|={graph.num_vertices:,} |E|={graph.num_edges:,}, "
          f"K={K}, {ITERATIONS} PageRank supersteps\n")

    assignments = {
        "Hash (system default)": HashPartitioner(K).partition(
            GraphStream(graph)).assignment,
        "SPNL (one pass)": SPNLPartitioner(K, num_shards="auto").partition(
            GraphStream(graph)).assignment,
        "METIS-like (offline)": MultilevelPartitioner(K).partition(
            graph).assignment,
    }

    rows = []
    ranks = {}
    for name, assignment in assignments.items():
        run = run_pagerank(graph, assignment, iterations=ITERATIONS)
        ranks[name] = run.values
        quality = evaluate(graph, assignment)
        rows.append({
            "partitioning": name,
            "ECR": round(quality.ecr, 4),
            "remote msgs": run.comm.remote_messages,
            "local msgs": run.comm.local_messages,
            "remote %": f"{run.comm.remote_fraction:.1%}",
            "est. makespan": round(run.comm.estimated_makespan()),
        })
    print(format_table(rows, title="one PageRank job, three partitionings"))

    # Same answer regardless of partitioning — Pregel semantics.
    values = list(ranks.values())
    assert all(np.allclose(values[0], v) for v in values[1:])
    print("\n(all three runs produced identical PageRank vectors)")

    hash_makespan = rows[0]["est. makespan"]
    spnl_makespan = rows[1]["est. makespan"]
    print(f"SPNL's partitioning makes this job ~"
          f"{hash_makespan / spnl_makespan:.1f}x cheaper than hash "
          f"placement.")


if __name__ == "__main__":
    main()
