"""Maintaining a partitioning while the graph grows.

The paper's introduction motivates lightweight partitioning with graphs
that are "frequently updated": this example feeds a crawl in waves into
a :class:`~repro.partitioning.dynamic.DynamicPartitioner`, watches the
cut quality drift as edges accumulate, and shows a one-pass re-stream
snapping it back — the amortized maintenance loop a production service
would run.

Run:  python examples/evolving_graph.py
"""

from repro.bench.report import format_table
from repro.graph import community_web_graph
from repro.partitioning import DynamicPartitioner

K = 8
WAVES = 4


def main() -> None:
    final = community_web_graph(8_000, avg_community_size=50, seed=99,
                                name="evolving")
    dp = DynamicPartitioner(K, capacity_vertices=final.num_vertices)

    wave_size = final.num_vertices // WAVES
    rows = []
    for wave in range(WAVES):
        lo, hi = wave * wave_size, (wave + 1) * wave_size
        if wave == WAVES - 1:
            hi = final.num_vertices
        # vertices arrive with the edges known *at crawl time*
        for v in range(lo, hi):
            dp.add_vertex(v, [int(u) for u in final.out_neighbors(v)
                              if u < hi])
        # plus the backlog of edges into the new wave from earlier pages
        backlog = [(v, int(u))
                   for v in range(lo)
                   for u in final.out_neighbors(v)
                   if lo <= u < hi]
        moved = dp.add_edges(backlog)
        quality = dp.current_quality()
        rows.append({
            "wave": wave + 1,
            "|V|": dp.num_known_vertices,
            "backlog edges": len(backlog),
            "moved": moved,
            "ECR": round(quality.ecr, 4),
            "delta_v": round(quality.delta_v, 2),
        })
    print(format_table(rows, title=f"incremental growth (K={K})"))

    drifted = dp.current_quality()
    dp.restream()
    fresh = dp.current_quality()
    print(f"\nafter full re-stream: ECR {drifted.ecr:.4f} -> "
          f"{fresh.ecr:.4f}, δv {drifted.delta_v:.2f} -> "
          f"{fresh.delta_v:.2f}")
    print("one streaming pass restores near-fresh quality — the cheap "
          "maintenance the paper's efficiency argument enables.")


if __name__ == "__main__":
    main()
