"""Tuning SPNL for *your* graph with the sweep utility.

The paper picks λ=0.5 and the X rule from sweeps on its own datasets
(Figs. 3 and 7); a downstream user should re-run that exercise on their
workload.  This example grids λ × η-schedule × window size on a
synthetic crawl and reports the winner — including the reproduction's
finding that a slower η decay beats the paper's default.

Run:  python examples/parameter_tuning.py
"""

from repro.bench import format_table, sweep
from repro.graph import community_web_graph
from repro.partitioning import SPNLPartitioner

K = 16


def main() -> None:
    graph = community_web_graph(10_000, avg_community_size=60, seed=5,
                                name="my-workload")
    print(f"graph: |V|={graph.num_vertices:,} |E|={graph.num_edges:,}, "
          f"K={K}\n")

    result = sweep(
        lambda **kw: SPNLPartitioner(K, **kw),
        graph,
        {
            "lam": [0.25, 0.5, 0.75],
            "eta_schedule": ["paper", "linear"],
            "num_shards": [1, "auto"],
        },
    )
    print(format_table(result.as_rows(),
                       title="SPNL parameter grid (12 combinations)"))

    best = result.best("ecr")
    print(f"\nbest ECR configuration: {best}")
    fastest = result.best("pt_seconds")
    print(f"fastest configuration:  {fastest}")
    print("\n(the paper's defaults are lam=0.5, eta_schedule='paper', "
          "num_shards='auto'; on locality-rich graphs the 'linear' "
          "schedule usually wins — this library's documented finding.)")


if __name__ == "__main__":
    main()
