"""Quickstart: partition a graph with SPNL and measure the quality.

Run:  python examples/quickstart.py
"""

from repro.graph import GraphStream, community_web_graph
from repro.partitioning import LDGPartitioner, SPNLPartitioner, evaluate


def main() -> None:
    # 1. A synthetic BFS-ordered web graph (stand-in for a real crawl).
    graph = community_web_graph(20_000, avg_community_size=60, seed=7)
    print(f"graph: |V|={graph.num_vertices:,} |E|={graph.num_edges:,}")

    # 2. Partition it into K=32 parts with one pass over the data.
    #    num_shards="auto" enables the paper's sliding-window memory
    #    optimization with the recommended X.
    partitioner = SPNLPartitioner(num_partitions=32, num_shards="auto")
    result = partitioner.partition(GraphStream(graph))

    # 3. Evaluate the paper's quality metrics.
    quality = evaluate(graph, result.assignment)
    print(f"SPNL : ECR={quality.ecr:.4f}  δv={quality.delta_v:.2f}  "
          f"δe={quality.delta_e:.2f}  PT={result.elapsed_seconds:.2f}s")

    # 4. Compare with the classical LDG baseline.
    baseline = LDGPartitioner(num_partitions=32).partition(
        GraphStream(graph))
    base_quality = evaluate(graph, baseline.assignment)
    print(f"LDG  : ECR={base_quality.ecr:.4f}  "
          f"δv={base_quality.delta_v:.2f}  "
          f"δe={base_quality.delta_e:.2f}  "
          f"PT={baseline.elapsed_seconds:.2f}s")

    saved = 1 - quality.ecr / base_quality.ecr
    print(f"\nSPNL cuts {saved:.0%} of LDG's cross-partition edges.")

    # 5. The route table is a plain vertex -> partition array.
    print("first 10 placements:", result.assignment.route[:10].tolist())


if __name__ == "__main__":
    main()
