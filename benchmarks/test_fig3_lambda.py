"""Paper Fig. 3: SPN's ECR as a function of λ on eu2015 and indo2004.

Shape expectation: both extremes are suboptimal — λ=1 (ignore
in-neighbors, i.e. plain LDG) is clearly the worst; λ=0 (ignore
out-neighbor intersections) is worse than the interior; the curve is
flat-bottomed around the paper's default λ=0.5.
"""

import pytest

from repro.bench import fig3_lambda_sweep, format_table

LAMBDAS = (0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0)


@pytest.fixture(scope="module")
def fig():
    return fig3_lambda_sweep(datasets=("eu2015", "indo2004"),
                             lambdas=LAMBDAS, k=32)


def test_fig3(benchmark, fig, emit):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    emit("fig3_lambda", format_table(
        fig.as_rows(), title="Fig. 3 — ECR vs λ (SPN, K=32)"))

    for series_name, values in fig.series.items():
        curve = dict(zip(fig.x_values, values))
        interior_best = min(curve[x] for x in (0.25, 0.5, 0.75))
        # λ=1 (LDG) is far above the interior optimum.
        assert curve[1.0] > 1.3 * interior_best, series_name
        # λ=0 is no better than the interior optimum either.
        assert curve[0.0] >= interior_best, series_name
        # the default 0.5 sits within 25% of the sweep's best.
        assert curve[0.5] <= 1.25 * min(values), series_name
