"""Extension bench: the δ_e report the paper omitted.

Table III's discussion: "all of them can support δ_e if necessary, by
measuring capacity with the number of edges. Here we omit the report due
to the length limitation of the manuscript."  We supply it: the same
streaming comparison on the two δ_e-skewed graphs with the capacity
measured in **edges** (BalanceMode.EDGE).

Expected shape: δ_e collapses to ≈ the slack for every method (that is
what the mode is for), δ_v opens up instead (dense regions hold fewer
vertices per edge), and the ECR ordering SPNL < SPN < LDG survives the
constraint change.
"""

import pytest

from repro.bench import format_table, load
from repro.bench.harness import run_partitioner
from repro.partitioning import (
    FennelPartitioner,
    LDGPartitioner,
    SPNLPartitioner,
    SPNPartitioner,
)

DATASETS = ("eu2015", "indo2004")
K = 32


@pytest.fixture(scope="module")
def rows():
    out = []
    for name in DATASETS:
        graph = load(name)
        for partitioner, label in [
            (LDGPartitioner(K, balance="edge"), None),
            (FennelPartitioner(K, balance="edge"), None),
            (SPNPartitioner(K, balance="edge", num_shards="auto"), None),
            (SPNLPartitioner(K, balance="edge", num_shards="auto"), None),
            (SPNLPartitioner(K, balance="both", edge_slack=1.5,
                             num_shards="auto"), "SPNL(both)"),
        ]:
            record = run_partitioner(partitioner, graph)
            out.append({
                "graph": name,
                "method": label or record.partitioner,
                "ECR": round(record.ecr, 4),
                "delta_v": round(record.delta_v, 2),
                "delta_e": round(record.delta_e, 2),
            })
    return out


def test_edge_balance_mode(benchmark, rows, emit):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    emit("ext_edge_balance", format_table(
        rows, title=f"Extension — edge-balanced capacity "
                    f"(the paper's omitted δ_e report, K={K})"))
    by_key = {(r["graph"], r["method"]): r for r in rows}
    for graph in DATASETS:
        for method in ("LDG", "FENNEL", "SPN", "SPNL"):
            row = by_key[(graph, method)]
            # the constraint now binds δ_e instead of δ_v
            assert row["delta_e"] <= 1.15, (graph, method)
        # quality ordering survives the constraint change
        assert by_key[(graph, "SPNL")]["ECR"] < \
            by_key[(graph, "LDG")]["ECR"], graph
        assert by_key[(graph, "SPN")]["ECR"] < \
            by_key[(graph, "LDG")]["ECR"], graph


def test_vertex_balance_opens_up(benchmark, rows):
    """Under edge capacity, δ_v on the skewed graphs exceeds 1.1 — the
    mirror image of Table III's skewed δ_e."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    by_key = {(r["graph"], r["method"]): r for r in rows}
    assert any(by_key[(g, "SPNL")]["delta_v"] > 1.1 for g in DATASETS)


def test_multiconstraint_bounds_both(benchmark, rows):
    """BalanceMode.BOTH holds δ_v and δ_e simultaneously — the
    multi-constraint regime the paper cites XtraPuLP for, available on
    every streaming heuristic here."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    by_key = {(r["graph"], r["method"]): r for r in rows}
    for g in DATASETS:
        row = by_key[(g, "SPNL(both)")]
        assert row["delta_v"] <= 1.11, g
        # the edge cap can overshoot by one adjacency list (a single
        # high-degree arrival cannot be split) plus the all-full
        # fallback; eu2015's max out-degree is ~12% of a partition's
        # ideal edge load, hence the headroom over edge_slack=1.5
        assert row["delta_e"] <= 1.8, g
