"""Paper Fig. 7: sliding-window shard count X vs MC/ECR/δ_v/PT
(SPNL on web2001).

Shape expectations:

* MC falls steeply as X grows, then flattens once the Γ window stops
  dominating the footprint (Fig. 7a);
* ECR stays flat for a wide X range and only degrades at extreme X
  (Fig. 7b);
* δ_v and PT are insensitive to X (Figs. 7c/7d);
* none of this depends strongly on K.
"""

import pytest

from repro.bench import fig7_window_sweep, format_table

SHARDS = (1, 4, 16, 64, 256)
KS = (8, 32)


@pytest.fixture(scope="module")
def figures():
    return fig7_window_sweep(dataset="web2001", shards=SHARDS, ks=KS)


def test_fig7(benchmark, figures, emit):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for k, fig in figures.items():
        emit(f"fig7_window_k{k}", format_table(
            fig.as_rows(),
            title=f"Fig. 7 — SPNL vs shard count X (web2001, K={k})"))

    for k, fig in figures.items():
        mc = dict(zip(fig.x_values, fig.series["MC(MB)"]))
        ecr = dict(zip(fig.x_values, fig.series["ECR"]))
        dv = fig.series["delta_v"]
        pt = fig.series["PT(s)"]

        # 7a: memory falls sharply with X ...
        assert mc[64] < 0.65 * mc[1], k
        # ... then flattens (diminishing returns).
        saved_early = mc[1] - mc[64]
        saved_late = mc[64] - mc[256]
        assert saved_late < saved_early, k

        # 7b: a wide X range leaves ECR essentially unchanged.
        for x in (4, 16, 64):
            assert ecr[x] <= ecr[1] * 1.3 + 0.02, (k, x)

        # 7c: δ_v unaffected by X (small wobble from tie-break shifts).
        assert max(dv) - min(dv) < 0.1, k

        # 7d: PT unaffected by X — asymptotically O(1) in X; the bound
        # is loose because single-core wall clocks under a loaded CI
        # machine carry real noise.
        assert max(pt) < 5.0 * min(pt), k
