"""Paper Table IV: memory consumption vs quality on web2001, K=32.

Shape expectations:

* SPNL with the full Γ table (X=1) needs far more memory than LDG;
* with the recommended window the overhead collapses to ~LDG levels
  (paper: 14.53 GB → 0.55 GB vs LDG's 0.44 GB) with negligible ECR loss;
* the offline methods' working set dwarfs every streaming method (they
  hold the whole graph), matching their ≥O(|E|) complexity row.
"""

import pytest

from repro.bench import format_table, table4_memory


@pytest.fixture(scope="module")
def rows():
    return table4_memory(dataset="web2001", k=32)


def test_table4(benchmark, rows, emit):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    emit("table4_memory",
         format_table(rows, title="Table IV — memory vs quality "
                                  "(web2001, K=32)"))
    by_method = {r["method"]: r for r in rows}
    ldg = by_method["LDG"]
    spnl_full = next(r for r in rows if r["method"] == "SPNL(X=1)")
    spnl_win = next(r for r in rows if "SPNL(X=" in r["method"]
                    and r["method"] != "SPNL(X=1)")

    # Model: the full table costs several times the windowed table (the
    # auto rule picks X=10 at this stand-in scale → ~7-8x); the windowed
    # variant sits within ~3x of LDG's local view.
    assert spnl_full["model MC(MB)"] > 5 * spnl_win["model MC(MB)"]
    assert spnl_win["model MC(MB)"] < 3 * ldg["model MC(MB)"] + 1.0

    # Paper-scale projection reproduces Table IV's 14.53 GB vs 0.55 GB
    # vs 0.44 GB regime (orders of magnitude, not exact numbers).
    assert spnl_full["paper-scale MC(GB)"] > 10.0
    assert spnl_win["paper-scale MC(GB)"] < 1.0

    # Quality is preserved by the window (paper: 0.0620 vs 0.0623).
    assert spnl_win["ECR"] <= spnl_full["ECR"] * 1.3 + 0.02


def test_table4_offline_dominates_memory(rows, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    by_method = {r["method"]: r for r in rows}
    metis = by_method["METIS-like"]
    ldg = by_method["LDG"]
    assert metis["model MC(MB)"] > 5 * ldg["model MC(MB)"]
    assert metis["paper-scale MC(GB)"] > 10.0


def test_table4_measured_tracks_model(rows, benchmark):
    """Measured tracemalloc peaks must reproduce the model's *ordering*
    for the rows where the gap is an order of magnitude."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    spnl_full = next(r for r in rows if r["method"] == "SPNL(X=1)")
    ldg = next(r for r in rows if r["method"] == "LDG")
    assert spnl_full["measured MC(MB)"] > 2 * ldg["measured MC(MB)"]
