"""Extension bench: where each offline family wins.

Spectral bisection is the third classical offline family (not in the
paper's comparison).  The textbook expectation — and what this bench
pins — is that spectral leads on mesh-like graphs while multilevel
leads on scale-free web graphs, and that *both* cost far more wall time
per edge than one streaming pass, reinforcing the paper's scalability
argument against offline methods generally.
"""

import pytest

from repro.bench import format_table, load
from repro.bench.harness import run_partitioner
from repro.graph import grid_graph
from repro.offline import MultilevelPartitioner, SpectralPartitioner
from repro.partitioning import SPNLPartitioner

K = 8


@pytest.fixture(scope="module")
def rows():
    mesh = grid_graph(40, 40)
    web = load("uk2005")
    out = []
    for graph, label in [(mesh, "grid40x40"), (web, "uk2005")]:
        for partitioner in [SpectralPartitioner(K),
                            MultilevelPartitioner(K),
                            SPNLPartitioner(K, num_shards="auto")]:
            record = run_partitioner(partitioner, graph)
            out.append({
                "graph": label,
                "method": record.partitioner,
                "ECR": round(record.ecr, 4),
                "delta_v": round(record.delta_v, 2),
                "PT(s)": round(record.pt_seconds, 3),
            })
    return out


def test_spectral_extension(benchmark, rows, emit):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    emit("ext_spectral", format_table(
        rows, title=f"Extension — offline families by graph class "
                    f"(K={K})"))
    by_key = {(r["graph"], r["method"]): r["ECR"] for r in rows}
    # mesh: spectral at least matches multilevel
    assert by_key[("grid40x40", "Spectral")] <= \
        1.15 * by_key[("grid40x40", "METIS-like")]
    # web: multilevel beats spectral (scale-free graphs are not meshes)
    assert by_key[("uk2005", "METIS-like")] < \
        by_key[("uk2005", "Spectral")]
    # and streaming SPNL stays within its usual band of the offline
    # quality bar on its home turf
    assert by_key[("uk2005", "SPNL")] <= \
        2.5 * by_key[("uk2005", "METIS-like")]
