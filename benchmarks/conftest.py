"""Benchmark-suite plumbing.

Every benchmark regenerates one of the paper's tables or figures,
*prints* it in the paper's row/series layout, writes it under
``benchmarks/results/`` for EXPERIMENTS.md, and asserts the paper's
qualitative *shape* (who wins, roughly by how much, where curves bend) —
never absolute numbers, which depend on the stand-in scale.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def emit():
    """Write a rendered table/figure to results/ and echo it."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _emit(name: str, text: str) -> None:
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}\n")

    return _emit


@pytest.fixture(scope="session", autouse=True)
def _warm_datasets():
    """Build all stand-ins once up front so per-bench timings are clean."""
    from repro.bench import load_all
    load_all()
