"""Extension bench: SPNL as the streaming component of a buffered hybrid
framework (paper Sec. I claim).

The paper argues (a) pure streaming still had huge headroom — SPNL
proves it — and (b) SPNL can replace the streaming component inside
hybrid (buffered) frameworks.  Expected shape:

* Buffered(LDG) ≪ LDG — the hybrid framework genuinely helps a weak
  component;
* SPNL alone ≈ or better than Buffered(LDG) — the "no compromise
  needed" claim;
* Buffered(SPNL) ≈ SPNL — plugging SPNL in does not break the
  framework, and the framework has little left to fix.
"""

import pytest

from repro.bench import format_table, load
from repro.bench.harness import run_partitioner
from repro.partitioning import (
    BufferedHybridPartitioner,
    LDGPartitioner,
    SPNLPartitioner,
)

DATASET = "uk2002"
K = 32


@pytest.fixture(scope="module")
def rows():
    graph = load(DATASET)
    out = []
    for partitioner in [
        LDGPartitioner(K),
        BufferedHybridPartitioner(lambda: LDGPartitioner(K),
                                  buffer_size=2048),
        SPNLPartitioner(K, num_shards="auto"),
        BufferedHybridPartitioner(
            lambda: SPNLPartitioner(K, num_shards="auto"),
            buffer_size=2048),
    ]:
        record = run_partitioner(partitioner, graph)
        out.append({
            "method": record.partitioner,
            "ECR": round(record.ecr, 4),
            "delta_v": round(record.delta_v, 2),
            "PT(s)": round(record.pt_seconds, 2),
            "moves": record.stats.get("refinement_moves", 0),
        })
    return out


def test_hybrid_buffered(benchmark, rows, emit):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    emit("ext_hybrid_buffered", format_table(
        rows, title=f"Extension — buffered hybrid framework "
                    f"({DATASET}, K={K})"))
    ecr = {r["method"]: r["ECR"] for r in rows}
    ldg = ecr["LDG"]
    buffered_ldg = next(v for m, v in ecr.items()
                        if m.startswith("Buffered(LDG"))
    spnl = ecr["SPNL"]
    buffered_spnl = next(v for m, v in ecr.items()
                         if m.startswith("Buffered(SPNL"))

    assert buffered_ldg < 0.8 * ldg          # hybrid lifts weak component
    assert spnl < buffered_ldg               # pure streaming headroom
    assert buffered_spnl <= spnl * 1.3 + 0.02  # SPNL plugs in cleanly
