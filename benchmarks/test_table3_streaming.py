"""Paper Table III: SPN/SPNL vs LDG/FENNEL on all eight stand-ins, K=32.

Shape expectations from the paper:

* SPN cuts ECR vs LDG on every graph (paper: 19-47 %);
* SPNL cuts further, up to ~92 % on the highest-locality graphs;
* all methods hold δ_v near the slack; PT(SPN/SPNL) is a modest constant
  factor over LDG (complex heuristics), not asymptotically worse.
"""

import pytest

from repro.bench import format_table, table3_streaming

HIGH_LOCALITY = ("uk2002", "web2001", "sk2005", "uk2007")


@pytest.fixture(scope="module")
def records():
    return table3_streaming(k=32)


def test_table3(benchmark, records, emit):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    emit("table3_streaming",
         format_table([r.as_row() for r in records],
                      title="Table III — streaming partitioners (K=32)"))
    by_key = {(r.graph, r.partitioner): r for r in records}
    graphs = sorted({r.graph for r in records})

    # SPN improves on LDG everywhere; SPNL improves on SPN on average.
    spn_improvements = []
    spnl_improvements = []
    for g in graphs:
        ldg, spn = by_key[(g, "LDG")], by_key[(g, "SPN")]
        spnl = by_key[(g, "SPNL")]
        assert spn.ecr < ldg.ecr, f"SPN fails to beat LDG on {g}"
        assert spnl.ecr < ldg.ecr, f"SPNL fails to beat LDG on {g}"
        spn_improvements.append(1 - spn.ecr / ldg.ecr)
        spnl_improvements.append(1 - spnl.ecr / ldg.ecr)

    # Paper: SPN up to 47% better, SPNL up to 92%; we require the same
    # regime — strong average improvement, SPNL's max ≥ 75%.
    assert sum(spn_improvements) / len(spn_improvements) > 0.25
    assert max(spnl_improvements) > 0.75
    assert sum(spnl_improvements) / len(spnl_improvements) >= \
        sum(spn_improvements) / len(spn_improvements)


def test_table3_high_locality_regime(records, benchmark):
    """SPNL lands in the paper's ≤0.12 band on the BFS-crawled giants."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    by_key = {(r.graph, r.partitioner): r for r in records}
    for g in HIGH_LOCALITY:
        assert by_key[(g, "SPNL")].ecr <= 0.15, g


def test_table3_balance_held(records, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for r in records:
        assert r.delta_v <= 1.11, (r.graph, r.partitioner)


def test_table3_skew_shows_in_delta_e(records, benchmark):
    """eu2015 carries the set's largest δ_e (paper: 18.4 at web scale)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    by_key = {(r.graph, r.partitioner): r for r in records}
    eu = by_key[("eu2015", "SPNL")].delta_e
    uk = by_key[("uk2002", "SPNL")].delta_e
    assert eu > 2.0 * uk


def test_table3_runtime_same_order(records, benchmark):
    """SPNL pays a bounded constant factor over LDG (paper: ~1.1-1.3x in
    Java; our per-record Python overhead is larger but still O(1))."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    by_key = {(r.graph, r.partitioner): r for r in records}
    for g in {r.graph for r in records}:
        ratio = by_key[(g, "SPNL")].pt_seconds / \
            by_key[(g, "LDG")].pt_seconds
        assert ratio < 12.0, g
