"""End-to-end smoke of the one-command reproduction (quick mode).

``repro-partition bench all`` must produce a complete REPORT.md with one
section per table/figure/ablation — this is the artifact a downstream
user regenerates the paper from.
"""

import pytest

from repro.bench.suite import run_full_suite


def test_full_suite_quick(benchmark, tmp_path_factory, emit):
    out = tmp_path_factory.mktemp("suite")
    report = benchmark.pedantic(
        lambda: run_full_suite(out, k=8, quick=True, echo=lambda s: None),
        rounds=1, iterations=1)
    text = report.read_text()
    for marker in ("Table II", "Table III", "Table IV", "Table V",
                   "Fig. 3", "Fig. 7", "Fig. 8", "Fig. 9", "Fig. 10",
                   "Fig. 11", "Fig. 12", "Ablation", "Extension"):
        assert marker in text, marker
    emit("suite_report_head", "\n".join(text.splitlines()[:40]))
