"""Ablations of the design choices DESIGN.md calls out.

Not in the paper's tables, but each pins one mechanism the paper argues
for: the RCT, topology locality, the η decay, restreaming-vs-SPNL, and
our in-neighbor estimator variants.
"""

import pytest

from repro.bench import (
    ablation_decay,
    ablation_locality,
    ablation_rct,
    ablation_restreaming,
    format_table,
)
from repro.bench.datasets import load
from repro.bench.harness import run_partitioner
from repro.partitioning import SPNLPartitioner


class TestRctAblation:
    @pytest.fixture(scope="class")
    def fig(self):
        return ablation_rct(dataset="uk2002",
                            parallelisms=(1, 4, 16), k=32)

    def test_rct(self, benchmark, fig, emit):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        emit("ablation_rct", format_table(
            fig.as_rows(), title="Ablation — parallel ECR with/without "
                                 "RCT (uk2002, K=32)"))
        with_rct = fig.series["ECR(with RCT)"]
        without_rct = fig.series["ECR(no RCT)"]
        serial = fig.series["ECR(serial)"][0]
        # At the widest parallelism, the RCT recovers a real share of the
        # concurrency-induced quality loss (the paper's ≤6% vs 47% story).
        loss_with = with_rct[-1] - serial
        loss_without = without_rct[-1] - serial
        assert loss_without > 0, "no degradation to mitigate"
        assert loss_with <= loss_without


class TestLocalityAblation:
    def test_locality(self, benchmark, emit):
        rows = benchmark.pedantic(
            lambda: ablation_locality(dataset="uk2002", k=32),
            rounds=1, iterations=1)
        emit("ablation_locality", format_table(
            rows, title="Ablation — BFS-ordered vs shuffled ids "
                        "(uk2002, K=32)"))
        table = {(r["ids"], r["method"]): r["ECR"] for r in rows}
        # Every method suffers when ids are shuffled, but SPNL suffers
        # the most in absolute terms — its Range table turns to noise.
        spnl_gap = table[("shuffled", "SPNL")] - table[("bfs-ordered",
                                                        "SPNL")]
        ldg_gap = table[("shuffled", "LDG")] - table[("bfs-ordered",
                                                      "LDG")]
        assert spnl_gap > 0
        assert spnl_gap > ldg_gap
        # And with locality intact, SPNL < SPN < LDG.
        assert table[("bfs-ordered", "SPNL")] <= \
            table[("bfs-ordered", "SPN")]
        assert table[("bfs-ordered", "SPN")] < \
            table[("bfs-ordered", "LDG")]


class TestDecayAblation:
    """η-decay schedule ablation — and a finding the paper anticipated.

    The paper's η_i^t = max(0, (|V_i^lt|-|V_i^pt|)/|V_i^lt|) hits zero
    once a range is half consumed, i.e. it abandons the logical table
    very early; the authors explicitly defer "more interesting yet
    effective settings" to future work.  Our measurement: with the
    combined in-estimator carrying most of the physical knowledge, the
    *frozen* η=1 variant actually beats the decaying schedule on
    high-locality graphs (e.g. indo2004 0.083 vs 0.130) — the decay
    forfeits locality knowledge faster than physical knowledge replaces
    it.  The bench records both and pins only soundness plus the fact
    that the two variants stay in the same quality regime.
    """

    def test_decay(self, benchmark, emit):
        rows = benchmark.pedantic(
            lambda: ablation_decay(dataset="indo2004", k=32),
            rounds=1, iterations=1)
        emit("ablation_decay", format_table(
            rows, title="Ablation — η schedules (indo2004, K=32) "
                        "[linear/frozen beat the paper's formula]"))
        by_name = {r["schedule"]: r["ECR"] for r in rows}
        # Same regime: no schedule degenerates.
        worst, best = max(by_name.values()), min(by_name.values())
        assert worst <= 2.5 * best + 0.01
        # The slower schedules dominate the paper's fast decay here.
        assert by_name["linear"] <= by_name["paper"] + 0.01
        assert by_name["frozen"] <= by_name["paper"] + 0.01
        for r in rows:
            assert r["delta_v"] <= 1.11


class TestRestreamingAblation:
    def test_restreaming(self, benchmark, emit):
        fig = benchmark.pedantic(
            lambda: ablation_restreaming(dataset="uk2005", k=32,
                                         passes=(1, 2, 3)),
            rounds=1, iterations=1)
        emit("ablation_restreaming", format_table(
            fig.as_rows(), title="Ablation — ReLDG passes vs single-pass "
                                 "SPNL (uk2005, K=32)"))
        ldg = fig.series["ECR(ReLDG)"]
        # Restreaming monotonically (weakly) improves LDG...
        assert ldg[-1] <= ldg[0] + 0.01
        # ...but even 3 passes do not open a large gap over 1-pass SPNL.
        spnl = fig.series["ECR(SPNL, 1 pass)"][0]
        assert spnl <= ldg[-1] * 1.2 + 0.02


class TestEstimatorAblation:
    def test_in_estimators(self, benchmark, emit):
        graph = load("uk2002")

        def run():
            rows = []
            for estimator in ("self", "neighborhood", "combined"):
                record = run_partitioner(
                    SPNLPartitioner(32, in_estimator=estimator), graph)
                rows.append({"estimator": estimator,
                             "ECR": round(record.ecr, 4)})
            return rows

        rows = benchmark.pedantic(run, rounds=1, iterations=1)
        emit("ablation_estimator", format_table(
            rows, title="Ablation — in-neighbor estimator (uk2002, "
                        "K=32): Eq. 5 vs worked-example vs combined"))
        by_name = {r["estimator"]: r["ECR"] for r in rows}
        # The default must dominate (this justified choosing it).
        assert by_name["combined"] <= by_name["neighborhood"] + 0.01
        assert by_name["combined"] <= by_name["self"] + 0.01
