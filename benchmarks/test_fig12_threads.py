"""Paper Fig. 12: SPNL wall-clock PT vs worker-thread count.

The paper's curve is U-shaped: PT falls with threads until a sweet spot
(4 for uk2002, 8 for sk2005), then rises from scheduling/synchronization
overheads.

**Expected deviation, documented in EXPERIMENTS.md:** under CPython's GIL
on a single-core container, the descending (speedup) side of the U cannot
appear — score computation never truly overlaps.  What this bench can and
does pin down is (a) the threaded executor's correctness at every M,
(b) bounded overhead growth (the ascending side of the paper's U), and
(c) quality stability across M — the paper's RCT claim.  The quality-vs-M
curve itself is asserted in test_ablations.py on the deterministic
executor.
"""

import pytest

from repro.bench import fig12_thread_sweep, format_table
from repro.bench.datasets import load
from repro.bench.harness import run_partitioner
from repro.parallel import ThreadedParallelPartitioner
from repro.partitioning import SPNLPartitioner

THREADS = (1, 2, 4, 8)


@pytest.fixture(scope="module")
def fig():
    return fig12_thread_sweep(datasets=("uk2002", "sk2005"),
                              threads=THREADS, k=32)


def test_fig12(benchmark, fig, emit):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    emit("fig12_threads", format_table(
        fig.as_rows(), title="Fig. 12 — PT vs threads (SPNL, K=32) "
                             "[GIL: no speedup side expected]"))
    for name, values in fig.series.items():
        # Overhead growth stays bounded: 8 threads must not blow up the
        # single-worker time by more than ~4x even GIL-bound.
        assert max(values) < 4.0 * values[0], name


def test_fig12_quality_stable_across_threads(benchmark):
    """ECR may not degrade materially as M grows (the RCT at work)."""
    graph = load("uk2002")

    def run():
        ecrs = []
        for m in THREADS:
            record = run_partitioner(
                ThreadedParallelPartitioner(
                    SPNLPartitioner(32, num_shards="auto"),
                    parallelism=m),
                graph)
            ecrs.append(record.ecr)
        return ecrs

    ecrs = benchmark.pedantic(run, rounds=1, iterations=1)
    assert max(ecrs) <= min(ecrs) * 1.4 + 0.02
