"""Paper Figs. 10 & 11: all metrics vs K against offline partitioners
(indo2004 for Fig. 10, eu2015 for Fig. 11).

Shape expectations:

* SPNL tracks METIS-like ECR closely at every K while XtraPuLP-like
  trails both;
* δ_e climbs with K on these two graphs (the paper calls out their
  degree skew: dense regions cannot be split under vertex balance);
* METIS-like pays by far the most work per edge.
"""

import pytest

from repro.bench import fig10_11_k_sweep_offline, format_table

KS = (2, 4, 8, 16, 32)


@pytest.fixture(scope="module", params=["indo2004", "eu2015"])
def sweep(request):
    return request.param, fig10_11_k_sweep_offline(request.param, ks=KS)


def test_fig10_fig11(benchmark, sweep, emit):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    dataset, metrics = sweep
    fignum = "fig10" if dataset == "indo2004" else "fig11"
    for metric, fig in metrics.items():
        emit(f"{fignum}_{metric}_{dataset}", format_table(
            fig.as_rows(),
            title=f"Fig. 10/11 — {metric} vs K ({dataset})"))

    ecr = metrics["ECR"]
    by_k = {k: {m: ecr.series[m][i] for m in ecr.series}
            for i, k in enumerate(KS)}
    for k in KS[2:]:  # at tiny K every method is near the floor
        assert by_k[k]["SPNL"] < by_k[k]["XtraPuLP-like"], (dataset, k)
        assert by_k[k]["SPNL"] <= 2.5 * by_k[k]["METIS-like"], (dataset, k)

    # δ_e roughly increases with K on the skewed graphs (paper Sec. VI-D).
    for method, values in metrics["delta_e"].series.items():
        assert values[-1] > values[0], (dataset, method)

    # ECR grows with K for every method.
    for method, values in ecr.series.items():
        assert values[-1] > values[0], (dataset, method)
