"""Paper Table V: SPNL vs METIS-like and XtraPuLP-like, K=32,
centralized and parallel.

Shape expectations:

* METIS-like holds the best-or-near-best ECR wherever it runs, but
  simulated-OOMs (at the originals' scale) on sk2005 and uk2007;
* XtraPuLP-like runs leaner but with clearly worse ECR, and OOMs only on
  uk2007;
* SPNL streams through everything, with ECR comparable to METIS-like and
  far below XtraPuLP-like;
* parallel SPNL's quality degradation stays small (paper ≤6 %, 2 % avg)
  thanks to the RCT.
"""

import pytest

from repro.bench import format_table, table5_offline


@pytest.fixture(scope="module")
def records():
    return table5_offline(k=32)


def _index(records):
    table = {}
    for r in records:
        table.setdefault(r.graph, {})[r.partitioner] = r
    return table


def test_table5(benchmark, records, emit):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    emit("table5_offline",
         format_table([r.as_row() for r in records],
                      title="Table V — offline vs SPNL (K=32)"))
    table = _index(records)

    # The paper's exact F pattern.
    assert table["sk2005"]["METIS-like"].failed
    assert table["uk2007"]["METIS-like"].failed
    assert not table["web2001"]["METIS-like"].failed
    assert table["uk2007"]["XtraPuLP-like"].failed
    assert not table["sk2005"]["XtraPuLP-like"].failed
    for graph, methods in table.items():
        for name, record in methods.items():
            if name.startswith("SPNL"):
                assert not record.failed, (graph, name)


def test_table5_quality_ordering(records, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    table = _index(records)
    for graph, methods in table.items():
        metis = methods["METIS-like"]
        xtrapulp = methods["XtraPuLP-like"]
        spnl = methods["SPNL"]
        if not xtrapulp.failed:
            # XtraPuLP trades quality for scalability (paper: SPNL
            # reduces ECR vs XtraPuLP by up to 91%).
            assert spnl.ecr < xtrapulp.ecr, graph
        if not metis.failed:
            # SPNL comparable to METIS: paper shows SPNL within
            # [0.5x, ~1.2x] of METIS across graphs.
            assert spnl.ecr <= 2.5 * metis.ecr, graph


def test_table5_parallel_degradation_bounded(records, benchmark):
    """RCT keeps parallel SPNL within a small factor of centralized."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    table = _index(records)
    degradations = []
    for graph, methods in table.items():
        serial = methods["SPNL"]
        parallel = next(r for name, r in methods.items()
                        if name.startswith("SPNL-par"))
        assert not parallel.failed
        degradations.append(parallel.ecr / max(serial.ecr, 1e-9) - 1.0)
        assert parallel.ecr <= serial.ecr * 1.45 + 0.01, graph
    # average degradation stays small (paper: 2% avg, ours looser in
    # Python but same regime)
    assert sum(degradations) / len(degradations) < 0.25


def test_table5_spnl_fastest_wall_clock_vs_metis(records, benchmark):
    """Where METIS-like runs, single-pass SPNL must not be slower by
    more than a small factor despite Python's per-record overhead; at
    paper scale the gap is 20x in SPNL's favor — here we only pin that
    METIS never *beats* SPNL by an order of magnitude."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    table = _index(records)
    for graph, methods in table.items():
        metis = methods["METIS-like"]
        spnl = methods["SPNL"]
        if not metis.failed:
            assert spnl.pt_seconds < 10 * metis.pt_seconds, graph


def test_table5_work_units_reproduce_paper_pt_ordering(records, benchmark):
    """Machine-independent efficiency: SPNL's 2 edge-scans vs the
    offline methods' dozens — this is the ordering behind the paper's
    15-20x PT gaps."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    table = _index(records)
    for graph, methods in table.items():
        spnl = methods["SPNL"]
        metis = methods["METIS-like"]
        xtrapulp = methods["XtraPuLP-like"]
        if not metis.failed:
            assert spnl.work_units < metis.work_units
        if not xtrapulp.failed:
            assert spnl.work_units < xtrapulp.work_units
