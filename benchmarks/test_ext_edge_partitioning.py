"""Extension bench: the paper's future-work claim on edge partitioning.

Sec. VII: "the quality optimization techniques actually can also work in
edge partitioning. We will explore the effectiveness as future works."
We implemented the transfer (SPNL-E: multiplicity Γ knowledge + Range
locality + sliding window on top of HDRF) and measure it against the
canonical streaming edge partitioners.  Expected shape, mirroring the
vertex-side results: knowledge-rich methods dominate hashing, and the
SPNL techniques dominate the knowledge-rich baselines on BFS-ordered
graphs.
"""

import pytest

from repro.bench import format_table, load
from repro.edgepart import (
    DBHPartitioner,
    GreedyEdgePartitioner,
    HDRFPartitioner,
    RandomEdgePartitioner,
    SPNLEdgePartitioner,
    evaluate_edges,
)

DATASETS = ("uk2005", "stanford", "indo2004")
K = 32


@pytest.fixture(scope="module")
def rows():
    out = []
    for name in DATASETS:
        graph = load(name)
        for partitioner in [
            RandomEdgePartitioner(K),
            DBHPartitioner(K),
            GreedyEdgePartitioner(K),
            HDRFPartitioner(K),
            SPNLEdgePartitioner(K),
        ]:
            result = partitioner.partition(graph)
            report = evaluate_edges(graph, result.assignment)
            out.append({
                "graph": name,
                "method": result.partitioner,
                "RF": round(report.replication_factor, 3),
                "balance": round(report.load_balance, 3),
                "PT(s)": round(result.elapsed_seconds, 2),
            })
    return out


def test_edge_partitioning_extension(benchmark, rows, emit):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    emit("ext_edge_partitioning", format_table(
        rows, title=f"Extension — streaming edge partitioning, "
                    f"replication factor (K={K})"))
    by_key = {(r["graph"], r["method"]): r for r in rows}
    for graph in DATASETS:
        rf = {m: by_key[(graph, m)]["RF"]
              for m in ("Random-E", "DBH", "Greedy-E", "HDRF", "SPNL-E")}
        # knowledge beats hashing
        assert rf["Greedy-E"] < rf["DBH"] < rf["Random-E"], graph
        assert rf["HDRF"] < rf["DBH"], graph
        # the SPNL transfer wins (the future-work claim)
        assert rf["SPNL-E"] < rf["HDRF"], graph
        assert rf["SPNL-E"] < rf["Greedy-E"], graph


def test_edge_balance_held(benchmark, rows):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for r in rows:
        # slack 1.1 plus capacity-ceiling rounding on small |E|/K
        assert r["balance"] <= 1.12, (r["graph"], r["method"])
