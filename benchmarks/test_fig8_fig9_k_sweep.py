"""Paper Figs. 8 & 9: all metrics vs K against streaming partitioners
(uk2002 for Fig. 8, indo2004 for Fig. 9).

Shape expectations:

* ECR grows with K for every method (more partitions → more boundaries);
* SPN/SPNL dominate LDG/FENNEL at every K;
* δ_v stays pinned near the slack for all K;
* PT grows with K (longer score vectors), staying the same order.
"""

import pytest

from repro.bench import fig8_9_k_sweep_streaming, format_table

KS = (2, 4, 8, 16, 32)


@pytest.fixture(scope="module", params=["uk2002", "indo2004"])
def sweep(request):
    return request.param, fig8_9_k_sweep_streaming(request.param, ks=KS)


def test_fig8_fig9(benchmark, sweep, emit):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    dataset, metrics = sweep
    fignum = "fig8" if dataset == "uk2002" else "fig9"
    for metric, fig in metrics.items():
        emit(f"{fignum}_{metric}_{dataset}", format_table(
            fig.as_rows(),
            title=f"Fig. 8/9 — {metric} vs K ({dataset})"))

    ecr = metrics["ECR"]
    for method, values in ecr.series.items():
        # ECR at K=32 strictly above K=2 for every method.
        assert values[-1] > values[0], (dataset, method)

    by_k = {k: {m: ecr.series[m][i] for m in ecr.series}
            for i, k in enumerate(KS)}
    for k in KS[1:]:  # K=2 is too coarse to separate methods reliably
        assert by_k[k]["SPNL"] < by_k[k]["LDG"], (dataset, k)
        assert by_k[k]["SPN"] < by_k[k]["FENNEL"], (dataset, k)

    for method, values in metrics["delta_v"].series.items():
        assert max(values) <= 1.11, (dataset, method)

    # PT: same order of magnitude across the K range for each method.
    for method, values in metrics["PT"].series.items():
        assert max(values) < 12 * min(values), (dataset, method)
