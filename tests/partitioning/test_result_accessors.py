"""StreamingResult typed accessors: the stats dict, without the strings."""

import pytest

from repro import PartitionConfig, partition_stream
from repro.graph import GraphStream, community_web_graph


class _AccountingStream:
    """A stream that reports ingest accounting, like PrefetchStream."""

    def __init__(self, stream):
        self._stream = stream
        self.num_vertices = stream.num_vertices
        self.num_edges = stream.num_edges

    def __iter__(self):
        return iter(self._stream)

    def ingest_stats(self):
        return {"producer_busy_s": 0.5, "consumer_wait_s": 0.1}


@pytest.fixture(scope="module")
def graph():
    return community_web_graph(500, avg_degree=8, seed=6)


@pytest.fixture(scope="module")
def result(graph):
    return partition_stream(graph, config=PartitionConfig(
        method="spnl", num_partitions=8))


class TestTypedAccessors:
    def test_placements_mirrors_the_dict(self, result):
        assert result.placements == result.stats["placements"] == 500
        assert isinstance(result.placements, int)

    def test_capacity_overflows(self, result):
        assert result.capacity_overflows \
            == result.stats.get("capacity_overflows", 0)
        assert result.capacity_overflows >= 0

    def test_fast_path_flag(self, result):
        assert result.fast_path is bool(
            result.stats.get("fast_path", False))

    def test_expectation_table_accessors(self, result):
        assert result.expectation_table_entries \
            == result.stats.get("expectation_table_entries", 0)
        assert result.expectation_table_bytes >= 0

    def test_ingest_defaults_to_none_without_prefetch(self, result):
        assert result.ingest is None

    def test_ingest_surfaces_stream_accounting(self, graph):
        stream = _AccountingStream(GraphStream(graph))
        result = partition_stream(stream, config=PartitionConfig(
            method="spnl", num_partitions=8))
        assert result.ingest == {"producer_busy_s": 0.5,
                                 "consumer_wait_s": 0.1}
        assert result.ingest == result.stats["ingest"]

    def test_dict_access_still_works(self, result):
        # The accessors are sugar, not a migration: the dict stays.
        assert result.stats["placements"] == result.placements

    def test_accessors_default_cleanly_on_sparse_stats(self, result):
        from repro.partitioning.base import StreamingResult
        bare = StreamingResult(
            assignment=result.assignment, partitioner="test",
            elapsed_seconds=0.0, num_partitions=8, stats={})
        assert bare.placements == 0
        assert bare.capacity_overflows == 0
        assert bare.fast_path is False
        assert bare.ingest is None
