"""Unit tests for the dense expectation store (Γ tables)."""

import numpy as np
import pytest

from repro.partitioning import FullExpectationStore


class TestFullStore:
    def test_initially_zero(self):
        store = FullExpectationStore(3, 10)
        assert list(store.expectation_of(5)) == [0, 0, 0]

    def test_record_counts_out_edges(self):
        store = FullExpectationStore(3, 10)
        store.record(1, np.array([2, 5, 7]))
        assert list(store.expectation_of(2)) == [0, 1, 0]
        assert list(store.expectation_of(5)) == [0, 1, 0]
        assert list(store.expectation_of(3)) == [0, 0, 0]

    def test_repeated_records_accumulate(self):
        store = FullExpectationStore(2, 10)
        store.record(0, np.array([4]))
        store.record(0, np.array([4]))
        store.record(1, np.array([4]))
        assert list(store.expectation_of(4)) == [2, 1]

    def test_duplicate_neighbors_in_one_record(self):
        store = FullExpectationStore(2, 10)
        store.record(0, np.array([4, 4, 4]))
        # np.add.at must count each occurrence (not buffered +1)
        assert store.expectation_of(4)[0] == 3

    def test_gather_sums_over_neighbors(self):
        store = FullExpectationStore(2, 10)
        store.record(0, np.array([1, 2]))
        store.record(1, np.array([2, 3]))
        gathered = store.gather(np.array([1, 2, 3]))
        assert list(gathered) == [2, 2]

    def test_gather_empty(self):
        store = FullExpectationStore(2, 10)
        assert list(store.gather(np.array([], dtype=np.int64))) == [0, 0]

    def test_record_empty_noop(self):
        store = FullExpectationStore(2, 10)
        store.record(0, np.array([], dtype=np.int64))
        assert store.nbytes() > 0

    def test_advance_is_noop(self):
        store = FullExpectationStore(2, 10)
        store.record(0, np.array([1]))
        store.advance_to(9)
        assert store.expectation_of(1)[0] == 1

    def test_nbytes_scales_with_size(self):
        small = FullExpectationStore(2, 10)
        large = FullExpectationStore(4, 1000)
        assert large.nbytes() > small.nbytes()

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            FullExpectationStore(0, 10)

    def test_window_size_is_full_range(self):
        assert FullExpectationStore(2, 42).window_size == 42
