"""Unit tests for SPNL, including the paper's Figure 4 worked example."""

import numpy as np
import pytest

from repro.graph import AdjacencyRecord, GraphStream, community_web_graph
from repro.partitioning import (
    PartitionState,
    SPNLPartitioner,
    SPNPartitioner,
    evaluate,
)
from tests.partitioning.test_spn import _FixedStream


def _figure4_setup(*, lam=0.5, use_decay=True):
    """Figure 4's local view, 0-indexed (paper ids are 1-indexed).

    15 vertices; logical ranges P0={0..4}, P1={5..9}, P2={10..14}.
    Physically placed: V0={2,4}, V1={0,1}, V2={3,5}.
    """
    adjacency = {
        2: [3, 4, 10],
        4: [1, 2, 13],
        0: [5, 7, 8],
        1: [3, 6, 7],
        3: [10, 11, 14],
        5: [3, 6, 12],
        6: [5, 8, 9],
    }
    placement = {2: 0, 4: 0, 0: 1, 1: 1, 3: 2, 5: 2}
    partitioner = SPNLPartitioner(3, lam=lam, use_decay=use_decay,
                                  in_estimator="self")
    state = PartitionState(3, 15, 21, slack=1.2)
    partitioner._setup(_FixedStream(15), state)
    for v, pid in placement.items():
        record = AdjacencyRecord(v, np.asarray(adjacency[v],
                                               dtype=np.int64))
        state.commit(record, pid)
        partitioner._after_commit(record, pid, state)
    return partitioner, state, adjacency


class TestPaperFigure4:
    """Vertex 7 (paper numbering) must land in P2 thanks to the logical
    assignment of its unplaced out-neighbors 9 and 10."""

    def test_logical_intersections(self):
        partitioner, state, adjacency = _figure4_setup()
        record = AdjacencyRecord(6, np.asarray(adjacency[6],
                                               dtype=np.int64))
        logical = partitioner._logical_intersections(state,
                                                     record.neighbors)
        # unplaced neighbors 8, 9 (paper 9, 10) are logically in P1.
        assert list(logical) == [0, 2, 0]

    def test_in_term(self):
        partitioner, state, adjacency = _figure4_setup()
        record = AdjacencyRecord(6, np.asarray(adjacency[6],
                                               dtype=np.int64))
        # placed in-neighbors of 6: vertex 1 (P1) and vertex 5 (P2).
        assert list(partitioner._in_term(record)) == [0, 1, 1]

    def test_vertex_placed_in_p2(self):
        partitioner, state, adjacency = _figure4_setup()
        record = AdjacencyRecord(6, np.asarray(adjacency[6],
                                               dtype=np.int64))
        assert partitioner.place(record, state) == 1  # paper's P2

    def test_placed_vertex_leaves_logical_set(self):
        partitioner, state, adjacency = _figure4_setup()
        record = AdjacencyRecord(6, np.asarray(adjacency[6],
                                               dtype=np.int64))
        before = partitioner._lt_counts.copy()
        partitioner.place(record, state)
        # vertex 6 is logically in range P1 → its lt count drops by one.
        assert partitioner._lt_counts[1] == before[1] - 1


class TestEta:
    def test_eta_starts_at_one(self):
        partitioner = SPNLPartitioner(4, use_decay=True)
        state = PartitionState(4, 100, 0)
        partitioner._setup(_FixedStream(100), state)
        assert np.allclose(partitioner._eta(state), 1.0)

    def test_eta_decays_with_placements(self):
        partitioner = SPNLPartitioner(2, use_decay=True)
        state = PartitionState(2, 10, 0)
        partitioner._setup(_FixedStream(10), state)
        for v in range(4):
            record = AdjacencyRecord(v, np.array([], dtype=np.int64))
            state.commit(record, 0)
            partitioner._after_commit(record, 0, state)
        eta = partitioner._eta(state)
        # partition 0: lt = 5-4 = 1, pt = 4 → η = max(0, (1-4)/1) = 0
        assert eta[0] == 0.0
        assert eta[1] == 1.0

    def test_eta_frozen_without_decay(self):
        partitioner = SPNLPartitioner(2, use_decay=False)
        state = PartitionState(2, 10, 0)
        partitioner._setup(_FixedStream(10), state)
        record = AdjacencyRecord(0, np.array([], dtype=np.int64))
        state.commit(record, 0)
        partitioner._after_commit(record, 0, state)
        assert np.allclose(partitioner._eta(state), 1.0)

    def test_eta_zero_when_range_exhausted(self):
        partitioner = SPNLPartitioner(2, use_decay=True)
        state = PartitionState(2, 4, 0, slack=1.5)
        partitioner._setup(_FixedStream(4), state)
        for v in range(2):  # whole range of partition 0 placed
            record = AdjacencyRecord(v, np.array([], dtype=np.int64))
            state.commit(record, 0)
            partitioner._after_commit(record, 0, state)
        assert partitioner._eta(state)[0] == 0.0


class TestEndToEnd:
    def test_complete_assignment(self, web_graph):
        result = SPNLPartitioner(8).partition(GraphStream(web_graph))
        result.assignment.validate(web_graph.num_vertices)

    def test_beats_spn_on_local_graph(self, web_graph):
        spn = SPNPartitioner(16).partition(GraphStream(web_graph))
        spnl = SPNLPartitioner(16).partition(GraphStream(web_graph))
        assert evaluate(web_graph, spnl.assignment).ecr <= evaluate(
            web_graph, spn.assignment).ecr * 1.05

    def test_locality_advantage_vanishes_when_shuffled(self):
        """On randomly labeled ids the Range table is noise: SPNL must
        fall back to ≈ SPN quality instead of gaining."""
        from repro.graph import random_relabel
        base = community_web_graph(3000, avg_community_size=40, seed=11)
        scrambled = random_relabel(base, seed=5)
        gain_local = _spnl_gain(base)
        gain_scrambled = _spnl_gain(scrambled)
        assert gain_local > gain_scrambled - 0.02

    def test_stats_include_decay_flag(self, web_graph):
        result = SPNLPartitioner(4, use_decay=False).partition(
            GraphStream(web_graph))
        assert result.stats["use_decay"] is False

    def test_windowed_spnl_completes(self, web_graph):
        result = SPNLPartitioner(8, num_shards="auto").partition(
            GraphStream(web_graph))
        result.assignment.validate(web_graph.num_vertices)

    def test_name(self):
        assert SPNLPartitioner(2).name == "SPNL"


def _spnl_gain(graph):
    spn = SPNPartitioner(8, num_shards=1).partition(GraphStream(graph))
    spnl = SPNLPartitioner(8, num_shards=1).partition(GraphStream(graph))
    return (evaluate(graph, spn.assignment).ecr
            - evaluate(graph, spnl.assignment).ecr)
