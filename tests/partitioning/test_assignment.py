"""Unit tests for PartitionAssignment."""

import numpy as np
import pytest

from repro.partitioning import UNASSIGNED, PartitionAssignment


class TestConstruction:
    def test_basic(self):
        a = PartitionAssignment([0, 1, 0, 1], 2)
        assert a.num_partitions == 2
        assert a.num_vertices == 4
        assert len(a) == 4

    def test_out_of_range_pid_rejected(self):
        with pytest.raises(ValueError, match=">= K"):
            PartitionAssignment([0, 3], 2)

    def test_invalid_negative_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            PartitionAssignment([0, -2], 2)

    def test_zero_partitions_rejected(self):
        with pytest.raises(ValueError, match="num_partitions"):
            PartitionAssignment([0], 0)

    def test_unassigned_sentinel_allowed(self):
        a = PartitionAssignment([0, UNASSIGNED], 2)
        assert not a.is_complete()


class TestAccess:
    def test_partition_of(self):
        a = PartitionAssignment([0, 1, 2], 3)
        assert a.partition_of(1) == 1
        assert a[2] == 2

    def test_vertices_in(self):
        a = PartitionAssignment([0, 1, 0, 1, 0], 2)
        assert list(a.vertices_in(0)) == [0, 2, 4]
        assert list(a.vertices_in(1)) == [1, 3]

    def test_vertex_counts(self):
        a = PartitionAssignment([0, 1, 0, 2], 4)
        assert list(a.vertex_counts()) == [2, 1, 1, 0]

    def test_vertex_counts_skip_unassigned(self):
        a = PartitionAssignment([0, UNASSIGNED, 1], 2)
        assert list(a.vertex_counts()) == [1, 1]

    def test_edge_counts(self, tiny_graph):
        a = PartitionAssignment([0, 0, 1, 1, 1], 2)
        # out-degrees: [2,1,1,1,1] → P0 gets 3, P1 gets 3
        assert list(a.edge_counts(tiny_graph)) == [3, 3]

    def test_route_read_only(self):
        a = PartitionAssignment([0, 1], 2)
        with pytest.raises(ValueError):
            a.route[0] = 1


class TestValidation:
    def test_complete_passes(self):
        PartitionAssignment([0, 1], 2).validate(2)

    def test_incomplete_fails(self):
        with pytest.raises(ValueError, match="unassigned"):
            PartitionAssignment([0, UNASSIGNED], 2).validate()

    def test_wrong_size_fails(self):
        with pytest.raises(ValueError, match="covers"):
            PartitionAssignment([0, 1], 2).validate(5)


class TestUpdatesAndFactories:
    def test_with_moved(self):
        a = PartitionAssignment([0, 0], 2)
        b = a.with_moved(1, 1)
        assert a[1] == 0 and b[1] == 1  # original untouched

    def test_from_blocks(self):
        a = PartitionAssignment.from_blocks([[0, 2], [1]], 3)
        assert a[0] == 0 and a[1] == 1 and a[2] == 0

    def test_from_blocks_overlap_rejected(self):
        with pytest.raises(ValueError, match="two blocks"):
            PartitionAssignment.from_blocks([[0], [0]], 2)

    def test_equality(self):
        assert PartitionAssignment([0, 1], 2) == PartitionAssignment(
            [0, 1], 2)
        assert PartitionAssignment([0, 1], 2) != PartitionAssignment(
            [1, 0], 2)
