"""Unit tests for the η decay schedules."""

import numpy as np
import pytest

from repro.graph import GraphStream, community_web_graph
from repro.partitioning import (
    ETA_SCHEDULES,
    SPNLPartitioner,
    evaluate,
    resolve_eta_schedule,
)
from repro.partitioning.eta import constant


@pytest.fixture
def arrays():
    lt = np.array([10, 5, 0], dtype=np.int64)
    pt = np.array([0, 5, 10], dtype=np.int64)
    sizes = np.array([10, 10, 10], dtype=np.int64)
    return lt, pt, sizes


class TestSchedules:
    def test_paper_formula(self, arrays):
        lt, pt, sizes = arrays
        eta = ETA_SCHEDULES["paper"](lt, pt, sizes)
        # (10-0)/10, (5-5)/5, lt=0 → 0
        assert list(eta) == [1.0, 0.0, 0.0]

    def test_paper_clamps_negative(self):
        lt = np.array([2], dtype=np.int64)
        pt = np.array([8], dtype=np.int64)
        eta = ETA_SCHEDULES["paper"](lt, pt, np.array([10]))
        assert eta[0] == 0.0

    def test_frozen_is_one(self, arrays):
        lt, pt, sizes = arrays
        assert list(ETA_SCHEDULES["frozen"](lt, pt, sizes)) == [1, 1, 1]

    def test_linear_is_remaining_fraction(self, arrays):
        lt, pt, sizes = arrays
        eta = ETA_SCHEDULES["linear"](lt, pt, sizes)
        assert list(eta) == [1.0, 0.5, 0.0]

    def test_sqrt_above_linear(self, arrays):
        lt, pt, sizes = arrays
        lin = ETA_SCHEDULES["linear"](lt, pt, sizes)
        sq = ETA_SCHEDULES["sqrt"](lt, pt, sizes)
        assert (sq >= lin).all()

    def test_all_in_unit_interval(self, arrays):
        lt, pt, sizes = arrays
        for name, schedule in ETA_SCHEDULES.items():
            eta = schedule(lt, pt, sizes)
            assert (eta >= 0).all() and (eta <= 1).all(), name

    def test_constant(self, arrays):
        lt, pt, sizes = arrays
        assert list(constant(0.3)(lt, pt, sizes)) == [0.3, 0.3, 0.3]

    def test_constant_validated(self):
        with pytest.raises(ValueError):
            constant(1.5)


class TestResolve:
    def test_by_name(self):
        assert resolve_eta_schedule("paper") is ETA_SCHEDULES["paper"]

    def test_by_float(self, arrays):
        lt, pt, sizes = arrays
        sched = resolve_eta_schedule(0.7)
        assert sched(lt, pt, sizes)[0] == 0.7

    def test_by_callable(self):
        fn = lambda lt, pt, sizes: np.zeros(len(lt))  # noqa: E731
        assert resolve_eta_schedule(fn) is fn

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown eta schedule"):
            resolve_eta_schedule("cosine")

    def test_garbage_rejected(self):
        with pytest.raises(ValueError):
            resolve_eta_schedule(None)


class TestSPNLIntegration:
    @pytest.fixture(scope="class")
    def graph(self):
        return community_web_graph(3000, avg_community_size=40, seed=21)

    def test_use_decay_maps_to_names(self):
        assert SPNLPartitioner(4, use_decay=True).eta_schedule is \
            ETA_SCHEDULES["paper"]
        assert SPNLPartitioner(4, use_decay=False).eta_schedule is \
            ETA_SCHEDULES["frozen"]

    def test_explicit_schedule_overrides(self):
        p = SPNLPartitioner(4, use_decay=True, eta_schedule="linear")
        assert p.eta_schedule is ETA_SCHEDULES["linear"]

    def test_all_schedules_complete(self, graph):
        for schedule in ("paper", "frozen", "linear", "sqrt", 0.25):
            result = SPNLPartitioner(
                4, eta_schedule=schedule).partition(GraphStream(graph))
            result.assignment.validate(graph.num_vertices)

    def test_schedule_name_in_stats(self, graph):
        result = SPNLPartitioner(4, eta_schedule="linear").partition(
            GraphStream(graph))
        assert result.stats["eta_schedule"] == "_linear"

    def test_slow_schedules_at_least_match_paper(self, graph):
        """The finding the ablation records: slower decay helps on
        locality-rich graphs."""
        by_schedule = {}
        for schedule in ("paper", "linear"):
            result = SPNLPartitioner(
                8, eta_schedule=schedule).partition(GraphStream(graph))
            by_schedule[schedule] = evaluate(
                graph, result.assignment).ecr
        assert by_schedule["linear"] <= by_schedule["paper"] + 0.02
