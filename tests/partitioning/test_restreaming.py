"""Unit tests for the re-streaming wrappers."""

import pytest

from repro.graph import GraphStream
from repro.partitioning import (
    LDGPartitioner,
    RestreamingPartitioner,
    SPNPartitioner,
    evaluate,
)


class TestConfiguration:
    def test_invalid_passes(self):
        with pytest.raises(ValueError, match="num_passes"):
            RestreamingPartitioner(lambda: LDGPartitioner(4), num_passes=0)

    def test_invalid_fraction(self):
        with pytest.raises(ValueError, match="restream_fraction"):
            RestreamingPartitioner(lambda: LDGPartitioner(4),
                                   restream_fraction=0.0)

    def test_name_encodes_passes(self):
        p = RestreamingPartitioner(lambda: LDGPartitioner(4), num_passes=3)
        assert p.name == "ReLDGx3"

    def test_num_partitions_delegates(self):
        p = RestreamingPartitioner(lambda: LDGPartitioner(7))
        assert p.num_partitions == 7


class TestQuality:
    def test_single_pass_equals_base(self, web_graph):
        base = LDGPartitioner(8).partition(GraphStream(web_graph))
        re1 = RestreamingPartitioner(lambda: LDGPartitioner(8),
                                     num_passes=1).partition(
            GraphStream(web_graph))
        assert base.assignment == re1.assignment

    def test_restreaming_improves_ldg(self, web_graph):
        """Pass 2 sees pass 1's placements for not-yet-arrived vertices,
        which is strictly more knowledge — ECR should drop (or stay)."""
        one = RestreamingPartitioner(lambda: LDGPartitioner(8),
                                     num_passes=1).partition(
            GraphStream(web_graph))
        three = RestreamingPartitioner(lambda: LDGPartitioner(8),
                                       num_passes=3).partition(
            GraphStream(web_graph))
        assert evaluate(web_graph, three.assignment).ecr <= evaluate(
            web_graph, one.assignment).ecr + 0.01

    def test_complete_assignment(self, web_graph):
        result = RestreamingPartitioner(lambda: LDGPartitioner(8),
                                        num_passes=2).partition(
            GraphStream(web_graph))
        result.assignment.validate(web_graph.num_vertices)

    def test_partial_restreaming_complete(self, web_graph):
        result = RestreamingPartitioner(
            lambda: LDGPartitioner(8), num_passes=2,
            restream_fraction=0.5).partition(GraphStream(web_graph))
        result.assignment.validate(web_graph.num_vertices)

    def test_works_with_spn(self, web_graph):
        result = RestreamingPartitioner(
            lambda: SPNPartitioner(8, num_shards=1),
            num_passes=2).partition(GraphStream(web_graph))
        result.assignment.validate(web_graph.num_vertices)

    def test_pass_history_recorded(self, web_graph):
        result = RestreamingPartitioner(lambda: LDGPartitioner(8),
                                        num_passes=3).partition(
            GraphStream(web_graph))
        assert len(result.stats["pass_history"]) == 3
