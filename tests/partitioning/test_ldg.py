"""Unit tests for LDG, including the paper's Figure 1 worked example."""

import numpy as np
import pytest

from repro.graph import AdjacencyRecord, GraphStream, ring_of_cliques
from repro.partitioning import (
    HashPartitioner,
    LDGPartitioner,
    PartitionState,
    evaluate,
)


def _figure1_state(adjacency, placement, k=3, n=16):
    """Rebuild the paper's pre-arrival local view."""
    state = PartitionState(k, n, 32, slack=1.1)
    for v, pid in placement.items():
        state.commit(
            AdjacencyRecord(v, np.asarray(adjacency[v], dtype=np.int64)),
            pid)
    return state


class TestPaperFigure1:
    """The worked example of Sec. IV-A: vertex 7 must go to P3."""

    def test_scores_match_figure(self, paper_fig1_state):
        adjacency, placement = paper_fig1_state
        state = _figure1_state(adjacency, placement)
        partitioner = LDGPartitioner(3)
        record = AdjacencyRecord(7, np.asarray(adjacency[7],
                                               dtype=np.int64))
        scores = partitioner._score(record, state)
        # Figure 1: distribution score (0, 0, 1) scaled by equal weights.
        assert scores[0] == 0 and scores[1] == 0 and scores[2] > 0

    def test_vertex7_placed_in_p3(self, paper_fig1_state):
        adjacency, placement = paper_fig1_state
        state = _figure1_state(adjacency, placement)
        partitioner = LDGPartitioner(3)
        record = AdjacencyRecord(7, np.asarray(adjacency[7],
                                               dtype=np.int64))
        assert partitioner.place(record, state) == 2  # 0-indexed P3


class TestLDGBehaviour:
    def test_keeps_cliques_together(self, cliques_graph):
        result = LDGPartitioner(8, slack=1.3).partition(
            GraphStream(cliques_graph))
        q = evaluate(cliques_graph, result.assignment)
        # 8 cliques, 8 partitions: a greedy partitioner keeps most of each
        # clique whole, so far fewer cut edges than the random baseline.
        random_q = evaluate(
            cliques_graph,
            HashPartitioner(8).partition(
                GraphStream(cliques_graph)).assignment)
        assert q.ecr < 0.5 * random_q.ecr

    def test_beats_hash_on_web_graph(self, web_graph):
        ldg = LDGPartitioner(8).partition(GraphStream(web_graph))
        hsh = HashPartitioner(8).partition(GraphStream(web_graph))
        assert evaluate(web_graph, ldg.assignment).ecr < evaluate(
            web_graph, hsh.assignment).ecr

    def test_complete_and_balanced(self, web_graph):
        result = LDGPartitioner(8, slack=1.1).partition(
            GraphStream(web_graph))
        result.assignment.validate(web_graph.num_vertices)
        q = evaluate(web_graph, result.assignment)
        assert q.delta_v <= 1.1 + 0.01

    def test_deterministic(self, web_graph):
        a = LDGPartitioner(8).partition(GraphStream(web_graph))
        b = LDGPartitioner(8).partition(GraphStream(web_graph))
        assert a.assignment == b.assignment

    def test_single_partition(self, web_graph):
        result = LDGPartitioner(1).partition(GraphStream(web_graph))
        assert evaluate(web_graph, result.assignment).ecr == 0.0
