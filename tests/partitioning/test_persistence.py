"""Unit tests for assignment persistence."""

import json

import numpy as np
import pytest

from repro.graph import GraphStream, from_edges
from repro.partitioning import (
    LDGPartitioner,
    PartitionAssignment,
    load_assignment,
    save_assignment,
)


@pytest.fixture
def assignment():
    return PartitionAssignment([0, 1, 2, 0, 1], 3)


class TestRoundtrip:
    def test_plain(self, assignment, tmp_path):
        path = tmp_path / "routes.txt"
        save_assignment(assignment, path)
        loaded, header = load_assignment(path)
        assert loaded == assignment
        assert header["num_partitions"] == 3

    def test_gzip(self, assignment, tmp_path):
        path = tmp_path / "routes.txt.gz"
        save_assignment(assignment, path)
        loaded, _ = load_assignment(path)
        assert loaded == assignment

    def test_quality_in_header(self, tiny_graph, tmp_path):
        result = LDGPartitioner(2).partition(GraphStream(tiny_graph))
        path = tmp_path / "routes.txt"
        save_assignment(result.assignment, path, graph=tiny_graph,
                        partitioner="LDG")
        _, header = load_assignment(path)
        assert header["partitioner"] == "LDG"
        assert header["graph"] == "tiny"
        assert 0.0 <= header["ecr"] <= 1.0

    def test_extra_metadata(self, assignment, tmp_path):
        path = tmp_path / "routes.txt"
        save_assignment(assignment, path, extra={"seed": 7})
        _, header = load_assignment(path)
        assert header["seed"] == 7

    def test_header_is_valid_json_line(self, assignment, tmp_path):
        path = tmp_path / "routes.txt"
        save_assignment(assignment, path)
        first = path.read_text().splitlines()[0]
        assert first.startswith("# ")
        json.loads(first[2:])  # must parse


class TestHeaderlessFiles:
    def test_numpy_dump_loads(self, tmp_path):
        path = tmp_path / "plain.txt"
        np.savetxt(path, np.array([0, 1, 1, 0]), fmt="%d")
        loaded, header = load_assignment(path)
        assert header == {}
        assert loaded.num_partitions == 2
        assert list(loaded.route) == [0, 1, 1, 0]

    def test_non_json_comments_skipped(self, tmp_path):
        path = tmp_path / "annotated.txt"
        path.write_text("# just a note\n0\n1\n")
        loaded, header = load_assignment(path)
        assert header == {}
        assert len(loaded) == 2


class TestValidation:
    def test_vertex_count_mismatch_rejected(self, assignment, tmp_path):
        path = tmp_path / "routes.txt"
        save_assignment(assignment, path)
        text = path.read_text().splitlines()
        path.write_text("\n".join(text[:-1]) + "\n")  # drop one row
        with pytest.raises(ValueError, match="declares"):
            load_assignment(path)

    def test_incomplete_assignment_saves_without_quality(self, tiny_graph,
                                                         tmp_path):
        from repro.partitioning import UNASSIGNED
        partial = PartitionAssignment([0, 1, UNASSIGNED, 0, 1], 2)
        path = tmp_path / "routes.txt"
        save_assignment(partial, path, graph=tiny_graph)
        _, header = load_assignment(path)
        assert "ecr" not in header
