"""Unit tests for the streaming framework (state, capacity, tie-breaks)."""

import numpy as np
import pytest

from repro.graph import AdjacencyRecord, GraphStream, from_edges
from repro.partitioning import (
    BalanceMode,
    LDGPartitioner,
    PartitionState,
    StreamingPartitioner,
)


def record(v, neighbors=()):
    return AdjacencyRecord(v, np.asarray(list(neighbors), dtype=np.int64))


class TestPartitionState:
    def test_capacity_vertex_mode(self):
        state = PartitionState(4, 100, 1000, slack=1.0)
        assert state.capacity == 25

    def test_capacity_edge_mode(self):
        state = PartitionState(4, 100, 1000,
                               balance=BalanceMode.EDGE, slack=1.0)
        assert state.capacity == 250

    def test_capacity_rounds_up(self):
        state = PartitionState(3, 10, 0, slack=1.0)
        assert state.capacity == 4  # ceil(10/3)

    def test_slack_below_one_rejected(self):
        with pytest.raises(ValueError, match="slack"):
            PartitionState(2, 10, 0, slack=0.9)

    def test_commit_updates_counts(self):
        state = PartitionState(2, 10, 20)
        state.commit(record(0, [1, 2, 3]), 1)
        assert state.vertex_counts[1] == 1
        assert state.edge_counts[1] == 3
        assert state.route[0] == 1
        assert state.placed_vertices == 1

    def test_double_commit_rejected(self):
        state = PartitionState(2, 10, 20)
        state.commit(record(0), 0)
        with pytest.raises(ValueError, match="twice"):
            state.commit(record(0), 1)

    def test_invalid_pid_rejected(self):
        state = PartitionState(2, 10, 20)
        with pytest.raises(ValueError, match="invalid partition"):
            state.commit(record(0), 5)

    def test_penalty_weights_decrease_with_load(self):
        state = PartitionState(2, 10, 0, slack=1.0)
        w0 = state.penalty_weights()[0]
        state.commit(record(0), 0)
        assert state.penalty_weights()[0] < w0
        assert state.penalty_weights()[1] == w0

    def test_penalty_never_negative(self):
        state = PartitionState(2, 2, 0, slack=1.0)
        state.commit(record(0), 0)
        state.commit(record(1), 0)  # partition 0 over its share
        assert state.penalty_weights()[0] >= 0.0

    def test_neighbor_partition_counts(self):
        state = PartitionState(3, 10, 0)
        state.commit(record(0), 2)
        state.commit(record(1), 2)
        state.commit(record(2), 0)
        counts = state.neighbor_partition_counts(
            np.array([0, 1, 2, 9]))  # 9 unplaced
        assert list(counts) == [1, 0, 2]

    def test_neighbor_counts_empty(self):
        state = PartitionState(3, 10, 0)
        assert list(state.neighbor_partition_counts(np.array([],
                                                             dtype=int))) \
            == [0, 0, 0]

    def test_eligible_mask(self):
        state = PartitionState(2, 2, 0, slack=1.0)
        state.commit(record(0), 0)
        assert list(state.eligible()) == [False, True]


class _ConstantScore(StreamingPartitioner):
    """Always prefers partition 0 — exercises capacity fallback."""

    def _score(self, record, state):
        scores = np.zeros(state.num_partitions)
        scores[0] = 1.0
        return scores


class TestChooseAndPlace:
    def test_choose_argmax(self):
        p = LDGPartitioner(3)
        state = PartitionState(3, 10, 0)
        assert p.choose(np.array([0.1, 0.9, 0.3]), state) == 1

    def test_tie_breaks_by_load_then_index(self):
        p = LDGPartitioner(3)
        state = PartitionState(3, 10, 0)
        state.commit(record(0), 0)
        # all scores equal; partition 0 is most loaded → pick 1 (lowest id
        # among least loaded)
        assert p.choose(np.array([1.0, 1.0, 1.0]), state) == 1

    def test_full_partition_not_chosen(self):
        p = _ConstantScore(2)
        g = from_edges([], num_vertices=4)
        result = p.partition(GraphStream(g))
        # capacity forces an even split despite the constant preference
        counts = result.assignment.vertex_counts()
        assert counts.max() <= int(1.1 * 4 / 2) + 1
        assert result.assignment.is_complete()

    def test_all_full_fallback_least_loaded(self):
        p = LDGPartitioner(2, slack=1.0)
        state = PartitionState(2, 2, 0, slack=1.0)
        state.commit(record(0), 0)
        state.commit(record(1), 1)
        # both at capacity: choose() must still return something sane
        pid = p.choose(np.array([0.0, 0.0]), state)
        assert pid in (0, 1)


class TestPartitionDriver:
    def test_result_fields(self, tiny_graph):
        result = LDGPartitioner(2).partition(GraphStream(tiny_graph))
        assert result.partitioner == "LDG"
        assert result.num_partitions == 2
        assert result.elapsed_seconds >= 0.0
        assert result.assignment.is_complete()

    def test_balance_mode_string_coerced(self):
        p = LDGPartitioner(2, balance="edge")
        assert p.balance is BalanceMode.EDGE

    def test_edge_balance_mode_runs(self, web_graph):
        from repro.partitioning import evaluate
        p = LDGPartitioner(8, balance="edge", slack=1.1)
        result = p.partition(GraphStream(web_graph))
        q = evaluate(web_graph, result.assignment)
        # edge capacity bounds δe near the slack
        assert q.delta_e <= 1.3

    def test_repr(self):
        assert "LDG" in repr(LDGPartitioner(4))


class TestChooseWithMargin:
    """choose_with_margin must pick exactly what choose picks."""

    def test_identical_picks_randomized(self):
        rng = np.random.default_rng(7)
        p = LDGPartitioner(8)
        for trial in range(500):
            state = PartitionState(8, 40, 0)
            for v in range(int(rng.integers(0, 30))):
                state.commit(record(v), int(rng.integers(0, 8)))
            # quantized scores force frequent exact ties
            scores = rng.integers(0, 4, size=8).astype(float)
            overflow_before = state.capacity_overflows
            pid, margin = p.choose_with_margin(scores.copy(), state)
            state.capacity_overflows = overflow_before
            assert pid == p.choose(scores.copy(), state), trial
            if margin is not None:
                assert margin >= 0.0
                assert np.isfinite(margin)

    def test_margin_values(self):
        p = LDGPartitioner(3)
        state = PartitionState(3, 10, 0)
        pid, margin = p.choose_with_margin(np.array([0.1, 0.9, 0.3]), state)
        assert (pid, margin) == (1, pytest.approx(0.6))
        pid, margin = p.choose_with_margin(np.array([1.0, 1.0, 0.2]), state)
        assert margin == 0.0  # tied argmax
        p1 = LDGPartitioner(1)
        state1 = PartitionState(1, 10, 0)
        pid, margin = p1.choose_with_margin(np.array([0.5]), state1)
        assert (pid, margin) == (0, None)  # no runner-up exists

    def test_all_full_counts_overflow_and_matches_choose(self):
        p = LDGPartitioner(2, slack=1.0)
        state = PartitionState(2, 2, 0, slack=1.0)
        state.commit(record(0), 0)
        state.commit(record(1), 1)
        pid, margin = p.choose_with_margin(np.array([0.0, 0.0]), state)
        assert pid in (0, 1)
        assert margin is None
        assert state.capacity_overflows == 1
