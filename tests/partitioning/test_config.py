"""PartitionConfig: validation, building, round-tripping, deprecation."""

import dataclasses
import warnings

import numpy as np
import pytest

import repro
from repro import PartitionConfig, partition_stream
from repro.partitioning.config import (
    _reset_kwargs_warning,
    warn_kwargs_style_once,
)
from repro.partitioning.registry import make_partitioner
from repro.partitioning.spnl import SPNLPartitioner


class TestValidation:
    def test_defaults(self):
        cfg = PartitionConfig()
        assert cfg.method == "spnl"
        assert cfg.num_partitions == 32
        assert cfg.kwargs() == {}

    def test_rejects_empty_method(self):
        with pytest.raises(ValueError, match="method"):
            PartitionConfig(method="")

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError, match="num_partitions"):
            PartitionConfig(num_partitions=0)

    def test_rejects_slack_below_one(self):
        with pytest.raises(ValueError, match="δ"):
            PartitionConfig(slack=0.9)

    def test_rejects_lam_outside_unit_interval(self):
        with pytest.raises(ValueError, match="λ"):
            PartitionConfig(lam=1.5)

    def test_extra_cannot_shadow_named_fields(self):
        with pytest.raises(ValueError, match="shadows"):
            PartitionConfig(extra={"slack": 1.2})

    def test_frozen(self):
        cfg = PartitionConfig()
        with pytest.raises(dataclasses.FrozenInstanceError):
            cfg.slack = 2.0

    def test_hashable(self):
        a = PartitionConfig(slack=1.2)
        b = PartitionConfig(slack=1.2)
        assert a == b and hash(a) == hash(b)
        assert len({a, b}) == 1


class TestBuilding:
    def test_kwargs_only_contains_set_knobs(self):
        cfg = PartitionConfig(slack=1.2, lam=0.7)
        assert cfg.kwargs() == {"slack": 1.2, "lam": 0.7}

    def test_extra_merges_into_kwargs(self):
        cfg = PartitionConfig(extra={"custom_knob": 3})
        assert cfg.kwargs() == {"custom_knob": 3}

    def test_make_builds_the_named_method(self):
        partitioner = PartitionConfig(method="spnl",
                                      num_partitions=8).make()
        assert isinstance(partitioner, SPNLPartitioner)
        assert partitioner.num_partitions == 8

    def test_make_drops_unknown_knobs_per_method(self):
        # lam means nothing to LDG; one config must still build it.
        partitioner = PartitionConfig(method="ldg", num_partitions=4,
                                      lam=0.7).make()
        assert partitioner.num_partitions == 4

    def test_make_unknown_method_lists_the_registry(self):
        with pytest.raises(ValueError, match="spnl"):
            PartitionConfig(method="nonesuch").make()

    def test_registry_accepts_a_config_directly(self):
        partitioner = make_partitioner(
            PartitionConfig(method="spnl", num_partitions=8, slack=1.3))
        assert isinstance(partitioner, SPNLPartitioner)
        assert partitioner.slack == pytest.approx(1.3)

    def test_registry_rejects_config_plus_loose_args(self):
        cfg = PartitionConfig()
        with pytest.raises(TypeError, match="not both"):
            make_partitioner(cfg, 16)
        with pytest.raises(TypeError, match="not both"):
            make_partitioner(cfg, slack=1.2)

    def test_replace_derives_without_mutating(self):
        base = PartitionConfig(slack=1.2)
        derived = base.replace(num_partitions=64)
        assert derived.num_partitions == 64
        assert derived.slack == 1.2
        assert base.num_partitions == 32


class TestRoundTrip:
    def test_to_from_dict(self):
        cfg = PartitionConfig(method="spn", num_partitions=16,
                              slack=1.2, gamma_store="hashed",
                              gamma_buckets=2048)
        assert PartitionConfig.from_dict(cfg.to_dict()) == cfg

    def test_from_dict_puts_unknown_keys_in_extra(self):
        cfg = PartitionConfig.from_dict(
            {"method": "spnl", "num_partitions": 8, "future_knob": 1})
        assert dict(cfg.extra) == {"future_knob": 1}
        assert cfg.kwargs() == {"future_knob": 1}


class TestFacadeIntegration:
    @pytest.fixture(scope="class")
    def graph(self):
        return repro.community_web_graph(400, avg_degree=8, seed=4)

    def test_config_equals_kwargs_call(self, graph):
        cfg = PartitionConfig(method="spnl", num_partitions=8, slack=1.2)
        via_config = partition_stream(graph, config=cfg)
        via_kwargs = partition_stream(graph, "spnl", 8, slack=1.2)
        assert np.array_equal(via_config.assignment.route,
                              via_kwargs.assignment.route)

    def test_config_as_positional_method(self, graph):
        cfg = PartitionConfig(method="spnl", num_partitions=8)
        result = partition_stream(graph, cfg)
        assert result.assignment.num_partitions == 8

    def test_config_and_kwargs_are_mutually_exclusive(self, graph):
        cfg = PartitionConfig()
        with pytest.raises(TypeError, match="mutually"):
            partition_stream(graph, config=cfg, slack=1.2)
        with pytest.raises(TypeError, match="not both"):
            partition_stream(graph, cfg, config=cfg)

    def test_kwargs_style_warns_exactly_once(self, graph):
        _reset_kwargs_warning()
        try:
            with pytest.warns(DeprecationWarning, match="PartitionConfig"):
                partition_stream(graph, "spnl", 8, slack=1.2)
            with warnings.catch_warnings(record=True) as record:
                warnings.simplefilter("always")
                partition_stream(graph, "spnl", 8, slack=1.2)
            assert not [w for w in record
                        if issubclass(w.category, DeprecationWarning)]
        finally:
            _reset_kwargs_warning()

    def test_config_call_does_not_warn(self, graph):
        _reset_kwargs_warning()
        with warnings.catch_warnings(record=True) as record:
            warnings.simplefilter("always")
            partition_stream(graph, config=PartitionConfig(
                method="spnl", num_partitions=8, slack=1.2))
        assert not [w for w in record
                    if issubclass(w.category, DeprecationWarning)]

    def test_warn_helper_is_idempotent(self):
        _reset_kwargs_warning()
        with pytest.warns(DeprecationWarning):
            warn_kwargs_style_once()
        with warnings.catch_warnings(record=True) as record:
            warnings.simplefilter("always")
            warn_kwargs_style_once()
        assert not record
        _reset_kwargs_warning()
