"""The unified partitioner registry: lookup, factory, kwarg filtering."""

import pytest

from repro.graph import GraphStream
from repro.partitioning.registry import (
    RegistryEntry,
    available_partitioners,
    make_partitioner,
    register,
    resolve,
)


class TestAvailable:
    def test_vertex_and_offline_names(self):
        names = available_partitioners()
        for expected in ("ldg", "fennel", "spn", "spnl", "hash", "random",
                         "range", "chunked", "metis", "xtrapulp"):
            assert expected in names
        assert names == tuple(sorted(names))

    def test_edge_namespace(self):
        assert available_partitioners("edge") == (
            "dbh", "greedy", "hdrf", "random", "spnl-e")

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError, match="kind"):
            available_partitioners("bogus")


class TestResolve:
    def test_unknown_name_lists_registered(self):
        with pytest.raises(ValueError) as exc:
            resolve("nope")
        assert "nope" in str(exc.value)
        assert "spnl" in str(exc.value)  # the error lists what exists

    def test_kind_namespaces_do_not_collide(self):
        vertex = resolve("random")
        edge = resolve("random", kind="edge")
        assert vertex.is_streaming
        assert vertex.factory is not edge.factory

    def test_offline_entries_not_streaming(self):
        assert not resolve("metis").is_streaming
        assert not resolve("xtrapulp").is_streaming


class TestRoundTrip:
    @pytest.mark.parametrize("name", available_partitioners())
    def test_every_vertex_and_offline_name_builds_and_runs(
            self, name, web_graph):
        partitioner = make_partitioner(name, 4)
        assert partitioner.num_partitions == 4
        if resolve(name).is_streaming:
            result = partitioner.partition(GraphStream(web_graph))
        else:
            result = partitioner.partition(web_graph)
        assert result.assignment.route.shape == (web_graph.num_vertices,)
        assert (result.assignment.route >= 0).all()

    @pytest.mark.parametrize("name", available_partitioners("edge"))
    def test_every_edge_name_builds_and_runs(self, name, tiny_graph):
        partitioner = make_partitioner(name, 2, kind="edge")
        assert partitioner.num_partitions == 2
        result = partitioner.partition(tiny_graph)
        assert len(result.assignment.edge_pids) == tiny_graph.num_edges

    def test_unknown_name_raises_with_list(self):
        with pytest.raises(ValueError, match="registered names"):
            make_partitioner("not-a-method", 4)


class TestKwargFiltering:
    def test_strict_mode_rejects_unknown_kwargs(self):
        with pytest.raises(TypeError):
            make_partitioner("fennel", 4, lam=0.5)

    def test_ignore_unknown_drops_per_factory(self):
        # One shared flag namespace across heterogeneous constructors:
        # fennel has no lam/num_shards, spnl has no gamma.
        f = make_partitioner("fennel", 4, ignore_unknown=True,
                             lam=0.5, num_shards=4, gamma=2.0, slack=1.2)
        assert f.gamma == 2.0
        assert f.slack == 1.2
        s = make_partitioner("spnl", 4, ignore_unknown=True,
                             lam=0.7, gamma=2.0)
        assert s.lam == 0.7

    def test_kwargs_reach_constructor(self):
        p = make_partitioner("spnl", 8, slack=1.3, num_shards=16)
        assert p.slack == 1.3


class TestRegisterDecorator:
    def test_third_party_registration_and_collision(self):
        @register("test-dummy", kind="vertex", summary="test only")
        class Dummy:
            def __init__(self, num_partitions):
                self.num_partitions = num_partitions

        try:
            entry = resolve("test-dummy")
            assert isinstance(entry, RegistryEntry)
            assert entry.summary == "test only"
            assert make_partitioner("test-dummy", 3).num_partitions == 3
            # Re-registering the same factory is idempotent ...
            register("test-dummy")(Dummy)
            # ... but a different factory under the same name is an error.
            with pytest.raises(ValueError, match="already registered"):
                @register("test-dummy")
                class Other:
                    pass
        finally:
            from repro.partitioning import registry
            registry._REGISTRY["vertex"].pop("test-dummy", None)

    def test_invalid_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            register("x", kind="nonsense")

    def test_extra_kwargs_are_defaults_not_overrides(self):
        @register("test-extra", extra_default=7)
        class WithExtra:
            def __init__(self, num_partitions, *, extra_default=0):
                self.num_partitions = num_partitions
                self.extra_default = extra_default

        try:
            assert make_partitioner("test-extra", 2).extra_default == 7
            assert make_partitioner("test-extra", 2,
                                    extra_default=9).extra_default == 9
        finally:
            from repro.partitioning import registry
            registry._REGISTRY["vertex"].pop("test-extra", None)
