"""Unit tests for the FENNEL baseline."""

import numpy as np
import pytest

from repro.graph import AdjacencyRecord, GraphStream, from_edges
from repro.partitioning import (
    FennelPartitioner,
    HashPartitioner,
    PartitionState,
    evaluate,
)


class TestParameters:
    def test_canonical_alpha(self):
        p = FennelPartitioner(4, gamma=1.5)

        class _Stream:
            num_vertices = 100
            num_edges = 1000
        state = PartitionState(4, 100, 1000)
        p._setup(_Stream(), state)
        expected = 1000 * 4 ** 0.5 / 100 ** 1.5
        assert p._alpha_effective == pytest.approx(expected)

    def test_explicit_alpha_kept(self):
        p = FennelPartitioner(4, alpha=0.7)

        class _Stream:
            num_vertices = 10
            num_edges = 10
        p._setup(_Stream(), PartitionState(4, 10, 10))
        assert p._alpha_effective == 0.7

    def test_gamma_must_exceed_one(self):
        with pytest.raises(ValueError, match="gamma"):
            FennelPartitioner(4, gamma=1.0)


class TestScoring:
    def test_load_penalty_monotone(self):
        """A more loaded partition scores strictly lower, neighbors equal."""
        p = FennelPartitioner(2, alpha=1.0)
        state = PartitionState(2, 100, 100)
        for v in range(10):
            state.commit(AdjacencyRecord(v, np.array([], dtype=np.int64)),
                         0)
        record = AdjacencyRecord(50, np.array([], dtype=np.int64))
        scores = p._score(record, state)
        assert scores[0] < scores[1]

    def test_neighbors_attract(self):
        p = FennelPartitioner(2, alpha=0.01)
        state = PartitionState(2, 100, 100)
        state.commit(AdjacencyRecord(0, np.array([], dtype=np.int64)), 1)
        record = AdjacencyRecord(5, np.array([0], dtype=np.int64))
        scores = p._score(record, state)
        assert scores[1] > scores[0]


class TestEndToEnd:
    def test_complete_assignment(self, web_graph):
        result = FennelPartitioner(8).partition(GraphStream(web_graph))
        result.assignment.validate(web_graph.num_vertices)

    def test_beats_hash(self, web_graph):
        fennel = FennelPartitioner(8).partition(GraphStream(web_graph))
        hsh = HashPartitioner(8).partition(GraphStream(web_graph))
        assert evaluate(web_graph, fennel.assignment).ecr < evaluate(
            web_graph, hsh.assignment).ecr

    def test_balance_bounded_by_capacity(self, web_graph):
        result = FennelPartitioner(8, slack=1.1).partition(
            GraphStream(web_graph))
        q = evaluate(web_graph, result.assignment)
        assert q.delta_v <= 1.11

    def test_name(self):
        assert FennelPartitioner(2).name == "FENNEL"
