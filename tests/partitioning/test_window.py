"""Unit tests for the fine-grained sliding-window expectation store."""

import numpy as np
import pytest

from repro.partitioning import (
    FullExpectationStore,
    SlidingWindowStore,
    default_num_shards,
)


class TestDefaultShards:
    def test_paper_formula(self):
        # X = min(αK, |V|/(βK)) with α=4, β=100
        assert default_num_shards(100_000, 32) == min(128, 100_000 // 3200)

    def test_at_least_one(self):
        assert default_num_shards(100, 32) == 1
        assert default_num_shards(0, 4) == 1

    def test_alpha_cap(self):
        # enormous graph: capped by αK
        assert default_num_shards(10**9, 4, alpha=4, beta=100) == 16


class TestWindowGeometry:
    def test_window_size_ceil(self):
        store = SlidingWindowStore(2, 10, num_shards=3)
        assert store.window_size == 4  # ceil(10/3)

    def test_initial_window(self):
        store = SlidingWindowStore(2, 10, num_shards=2)
        assert store.low == 0
        assert store.high == 5

    def test_high_clamped_to_n(self):
        store = SlidingWindowStore(2, 10, num_shards=2)
        store.advance_to(8)
        assert store.high == 10

    def test_invalid_shards(self):
        with pytest.raises(ValueError):
            SlidingWindowStore(2, 10, num_shards=0)


class TestWindowSemantics:
    def test_counts_inside_window(self):
        store = SlidingWindowStore(2, 10, num_shards=2)  # window [0, 5)
        store.record(0, np.array([1, 4]))
        assert store.expectation_of(1)[0] == 1
        assert store.expectation_of(4)[0] == 1

    def test_future_neighbors_skipped(self):
        """Case 3 of the paper: neighbors beyond the window are lost."""
        store = SlidingWindowStore(2, 10, num_shards=2)
        store.record(0, np.array([7]))  # 7 outside [0, 5)
        assert store.expectation_of(7)[0] == 0
        assert store.skipped_future == 1

    def test_past_neighbors_skipped(self):
        """Case 2: neighbors behind the window are harmless drops."""
        store = SlidingWindowStore(2, 10, num_shards=2)
        store.advance_to(4)
        store.record(0, np.array([2]))  # 2 < low
        assert store.skipped_past == 1

    def test_fine_grained_slide_keeps_overlap(self):
        """Advancing by one vertex must keep counters for ids still inside."""
        store = SlidingWindowStore(1, 10, num_shards=2)  # window size 5
        store.record(0, np.array([1, 2, 3, 4]))
        store.advance_to(1)  # window [1, 6): all recorded ids survive
        assert store.expectation_of(4)[0] == 1
        assert store.expectation_of(1)[0] == 1

    def test_slide_evicts_expired(self):
        store = SlidingWindowStore(1, 10, num_shards=2)
        store.record(0, np.array([1, 2]))
        store.advance_to(2)  # id 1 expired
        assert store.expectation_of(1)[0] == 0
        assert store.expectation_of(2)[0] == 1

    def test_ring_slot_reuse_is_clean(self):
        """A slot vacated by id i must read 0 for id i+W (no stale count)."""
        store = SlidingWindowStore(1, 20, num_shards=4)  # window size 5
        store.record(0, np.array([0]))  # slot 0 holds id 0
        store.advance_to(5)  # window [5, 10): slot 0 now backs id 5
        assert store.expectation_of(5)[0] == 0

    def test_jump_beyond_window_clears_all(self):
        store = SlidingWindowStore(1, 100, num_shards=10)
        store.record(0, np.array([3, 5]))
        store.advance_to(50)
        assert store.expectation_of(50)[0] == 0
        assert not store._table.any()

    def test_backwards_advance_is_noop(self):
        """Delayed (parallel) vertices re-read the window without error."""
        store = SlidingWindowStore(1, 10, num_shards=2)
        store.advance_to(4)
        store.record(0, np.array([5]))
        store.advance_to(2)  # no-op
        assert store.low == 4
        assert store.expectation_of(5)[0] == 1

    def test_gather_filters_to_window(self):
        store = SlidingWindowStore(2, 10, num_shards=2)
        store.record(1, np.array([1, 3]))
        gathered = store.gather(np.array([1, 3, 8]))  # 8 out of window
        assert list(gathered) == [0, 2]

    def test_nbytes_shrinks_with_shards(self):
        full = SlidingWindowStore(4, 1000, num_shards=1)
        windowed = SlidingWindowStore(4, 1000, num_shards=10)
        assert windowed.nbytes() < full.nbytes()
        assert windowed.nbytes() == pytest.approx(full.nbytes() / 10,
                                                  rel=0.05)


class TestEquivalenceWithFullStore:
    def test_single_shard_matches_full_store_on_live_ids(self, rng):
        """X=1 (window = whole id space) must agree with the dense table
        for every id the stream can still place (current or future).

        Ids *behind* the stream position may differ — the window drops
        them by design — but those counters are semantically dead: their
        vertices are already placed and will never be scored again.
        """
        n, k = 200, 4
        full = FullExpectationStore(k, n)
        windowed = SlidingWindowStore(k, n, num_shards=1)
        for v in range(0, n, 3):
            neighbors = rng.integers(v, n, size=rng.integers(0, 6))
            pid = int(rng.integers(0, k))
            for store in (full, windowed):
                store.advance_to(v)
                store.record(pid, neighbors)
            live = rng.integers(v, n, size=5)
            assert np.array_equal(full.gather(live),
                                  windowed.gather(live))
            assert np.array_equal(full.expectation_of(v),
                                  windowed.expectation_of(v))

    def test_windowed_is_lower_bound_of_full(self, rng):
        """A windowed count can never exceed the dense count."""
        n, k = 300, 3
        full = FullExpectationStore(k, n)
        windowed = SlidingWindowStore(k, n, num_shards=6)
        for v in range(0, n, 2):
            neighbors = rng.integers(0, n, size=4)
            pid = int(rng.integers(0, k))
            full.advance_to(v)
            windowed.advance_to(v)
            assert (windowed.gather(neighbors)
                    <= full.gather(neighbors)).all()
            full.record(pid, neighbors)
            windowed.record(pid, neighbors)
