"""Byte-identity tests for the vectorized streaming fast path.

The fused CSR loop in :mod:`repro.partitioning.base` must be a pure
performance change: for **every** registered vertex partitioner, on
ordered and shuffled streams, the fast path's route table must be
byte-equal to the seed record-at-a-time loop (``fast=False``).  These
tests are the acceptance gate for the hot-path rewrite — any elementwise
reassociation, tie-break drift, or capacity-mask divergence shows up as
a route mismatch here.
"""

import numpy as np
import pytest

from repro.graph import GraphStream, shuffled
from repro.graph.generators import community_web_graph
from repro.graph.stream import ArrayStream, as_array_stream
from repro.partitioning.registry import (
    available_partitioners,
    make_partitioner,
)

#: Heuristics that ship a fused kernel (everything else falls back).
FUSED = ("fennel", "ldg", "spn", "spnl")

ALL_VERTEX = available_partitioners(kind="vertex")


@pytest.fixture(scope="module")
def ident_graph():
    return community_web_graph(1500, seed=9)


def _both_paths(name, stream_factory, k=8, **kwargs):
    fast = make_partitioner(name, k, **kwargs).partition(stream_factory())
    slow = make_partitioner(name, k, **kwargs).partition(
        stream_factory(), fast=False)
    return fast, slow


class TestRegistryByteIdentity:
    @pytest.mark.parametrize("name", ALL_VERTEX)
    def test_ordered_stream(self, ident_graph, name):
        fast, slow = _both_paths(name, lambda: GraphStream(ident_graph))
        assert np.array_equal(fast.assignment.route, slow.assignment.route)
        assert slow.stats["fast_path"] is False
        assert fast.stats["fast_path"] is (name in FUSED)

    @pytest.mark.parametrize("name", ALL_VERTEX)
    def test_shuffled_stream(self, ident_graph, name):
        fast, slow = _both_paths(name,
                                 lambda: shuffled(ident_graph, seed=5))
        assert np.array_equal(fast.assignment.route, slow.assignment.route)

    @pytest.mark.parametrize("name", ALL_VERTEX)
    def test_array_stream(self, ident_graph, name):
        """Explicit CSR streams take the same fast path as GraphStream."""
        fast, slow = _both_paths(
            name, lambda: ArrayStream.from_graph(ident_graph))
        assert np.array_equal(fast.assignment.route, slow.assignment.route)
        assert fast.stats["fast_path"] is (name in FUSED)


#: Config variants that exercise every branch the fused kernels
#: maintain incrementally: the Γ window rotation, tight capacities
#: (overflow valve + ineligibility mask), the edge-balance mode, the
#: η decay schedules, and each in-degree estimator.
VARIANTS = [
    ("spn", {"num_shards": 4}),
    ("spn", {"in_estimator": "self"}),
    ("spn", {"in_estimator": "neighborhood"}),
    ("spnl", {"num_shards": 4}),
    ("spnl", {"eta_schedule": "frozen"}),
    ("spnl", {"eta_schedule": "linear"}),
    ("spnl", {"eta_schedule": 0.4}),
    ("spnl", {"slack": 1.0}),
    ("ldg", {"slack": 1.0}),
    ("fennel", {"slack": 1.0}),
    ("spnl", {"balance": "both"}),
]


class TestVariantByteIdentity:
    @pytest.mark.parametrize("name,kwargs", VARIANTS,
                             ids=[f"{n}-{kw}" for n, kw in VARIANTS])
    def test_variant_identity(self, ident_graph, name, kwargs):
        fast, slow = _both_paths(name, lambda: GraphStream(ident_graph),
                                 **kwargs)
        assert fast.stats["fast_path"] is True
        assert np.array_equal(fast.assignment.route, slow.assignment.route)
        # The tight-slack variants exist to hit the overflow valve; the
        # two paths must agree on how often it fired, not just where
        # vertices landed.
        assert fast.stats.get("capacity_overflows") == \
            slow.stats.get("capacity_overflows")


class TestFastDispatch:
    def test_fast_true_requires_csr_stream(self, ident_graph):
        """A non-CSR source cannot honour fast=True."""
        with pytest.raises(ValueError, match="fast=True"):
            make_partitioner("spnl", 8).partition(
                _GeneratorStream(ident_graph), fast=True)

    def test_fast_true_requires_fused_kernel(self, ident_graph):
        """Heuristics without a fused kernel refuse fast=True loudly."""
        with pytest.raises(ValueError, match="fast=True"):
            make_partitioner("hash", 8).partition(
                GraphStream(ident_graph), fast=True)

    def test_subclassed_stream_falls_back(self, ident_graph):
        """A GraphStream subclass overriding __iter__ must NOT be
        hijacked by the CSR conversion — its custom iteration is the
        whole point of subclassing."""

        class _Truncating(GraphStream):
            def __iter__(self):
                for i, record in enumerate(super().__iter__()):
                    if i >= 10:
                        return
                    yield record

        assert as_array_stream(_Truncating(ident_graph)) is None
        result = make_partitioner("ldg", 4).partition(
            _Truncating(ident_graph))
        assert result.stats["fast_path"] is False

    def test_as_array_stream_exact_types(self, ident_graph):
        gs = GraphStream(ident_graph)
        arr = as_array_stream(gs)
        assert type(arr) is ArrayStream
        assert as_array_stream(arr) is arr
        assert as_array_stream(object()) is None


class _GeneratorStream:
    """Minimal VertexStream with no materialized arrays."""

    def __init__(self, graph):
        self._graph = graph

    @property
    def num_vertices(self):
        return self._graph.num_vertices

    @property
    def num_edges(self):
        return self._graph.num_edges

    @property
    def is_id_ordered(self):
        return True

    def __iter__(self):
        yield from self._graph.records()
