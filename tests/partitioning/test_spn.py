"""Unit tests for SPN, including the paper's Figure 2 worked example."""

import numpy as np
import pytest

from repro.graph import AdjacencyRecord, GraphStream, from_edges
from repro.partitioning import (
    LDGPartitioner,
    PartitionState,
    SPNPartitioner,
    evaluate,
)


class _FixedStream:
    """Minimal stream stub for manual setup."""

    def __init__(self, num_vertices, num_edges=0, is_id_ordered=True):
        self.num_vertices = num_vertices
        self.num_edges = num_edges
        self.is_id_ordered = is_id_ordered

    def __iter__(self):
        return iter(())


def _spn_with_figure_state(adjacency, placement, *, lam=0.5,
                           in_estimator="self", k=3, n=16):
    """Rebuild Figure 2's local view inside an SPN instance."""
    partitioner = SPNPartitioner(k, lam=lam, in_estimator=in_estimator)
    state = PartitionState(k, n, 32, slack=1.1)
    partitioner._setup(_FixedStream(n), state)
    for v, pid in placement.items():
        record = AdjacencyRecord(v, np.asarray(adjacency[v],
                                               dtype=np.int64))
        state.commit(record, pid)
        partitioner._after_commit(record, pid, state)
    return partitioner, state


class TestPaperFigure2:
    """Sec. IV-B worked example: in-score (0,1,1), out (0,0,1) → P3."""

    def test_in_term_matches_figure(self, paper_fig1_state):
        adjacency, placement = paper_fig1_state
        partitioner, state = _spn_with_figure_state(adjacency, placement)
        record = AdjacencyRecord(7, np.asarray(adjacency[7],
                                               dtype=np.int64))
        # Γ_i(7): placed vertex 2 (P2) and 6 (P3) both link to 7.
        in_term = partitioner._in_term(record)
        assert list(in_term) == [0, 1, 1]

    def test_vertex7_placed_in_p3(self, paper_fig1_state):
        adjacency, placement = paper_fig1_state
        partitioner, state = _spn_with_figure_state(adjacency, placement)
        record = AdjacencyRecord(7, np.asarray(adjacency[7],
                                               dtype=np.int64))
        assert partitioner.place(record, state) == 2

    def test_combined_score_ordering(self, paper_fig1_state):
        adjacency, placement = paper_fig1_state
        partitioner, state = _spn_with_figure_state(adjacency, placement)
        record = AdjacencyRecord(7, np.asarray(adjacency[7],
                                               dtype=np.int64))
        scores = partitioner._score(record, state)
        # paper combined (0, 1, 2) up to the λ scaling and weights
        assert scores[2] > scores[1] > scores[0] == 0


class TestLDGEquivalence:
    def test_lambda_one_equals_ldg(self, web_graph):
        """SPN with λ=1 ignores Γ entirely → identical placements to LDG."""
        spn = SPNPartitioner(8, lam=1.0).partition(GraphStream(web_graph))
        ldg = LDGPartitioner(8).partition(GraphStream(web_graph))
        assert spn.assignment == ldg.assignment


class TestDirectedChain:
    def test_in_neighbors_rescue_one_way_edges(self):
        """A one-way chain gives LDG zero signal (targets arrive after
        sources and never look back), but SPN's Γ counters catch it."""
        n = 64
        g = from_edges([(i, i + 1) for i in range(n - 1)],
                       num_vertices=n, name="chain")
        ldg = LDGPartitioner(4, slack=1.05).partition(GraphStream(g))
        spn = SPNPartitioner(4, slack=1.05, lam=0.5).partition(
            GraphStream(g))
        assert evaluate(g, spn.assignment).ecr < evaluate(
            g, ldg.assignment).ecr


class TestConfiguration:
    def test_invalid_lambda(self):
        with pytest.raises(ValueError, match="lam"):
            SPNPartitioner(4, lam=1.5)

    def test_invalid_shards(self):
        with pytest.raises(ValueError, match="num_shards"):
            SPNPartitioner(4, num_shards=0)
        with pytest.raises(ValueError, match="num_shards"):
            SPNPartitioner(4, num_shards="many")

    def test_invalid_estimator(self):
        with pytest.raises(ValueError, match="in_estimator"):
            SPNPartitioner(4, in_estimator="psychic")

    def test_store_requires_setup(self):
        with pytest.raises(RuntimeError, match="set up"):
            SPNPartitioner(4).expectation_store

    def test_window_rejects_shuffled_stream(self, web_graph):
        from repro.graph import shuffled
        p = SPNPartitioner(4, num_shards=8)
        with pytest.raises(ValueError, match="id-ordered"):
            p.partition(shuffled(web_graph, seed=1))

    def test_full_store_accepts_shuffled_stream(self, web_graph):
        from repro.graph import shuffled
        result = SPNPartitioner(4, num_shards=1).partition(
            shuffled(web_graph, seed=1))
        result.assignment.validate(web_graph.num_vertices)

    def test_auto_shards_resolved_at_setup(self, web_graph):
        p = SPNPartitioner(8, num_shards="auto")
        result = p.partition(GraphStream(web_graph))
        assert "expectation_bytes" in result.stats


class TestWindowedQuality:
    def test_windowed_close_to_full(self, web_graph):
        """A modest X must not meaningfully hurt ECR (paper Fig. 7b)."""
        full = SPNPartitioner(8, num_shards=1).partition(
            GraphStream(web_graph))
        windowed = SPNPartitioner(8, num_shards=4).partition(
            GraphStream(web_graph))
        full_ecr = evaluate(web_graph, full.assignment).ecr
        win_ecr = evaluate(web_graph, windowed.assignment).ecr
        assert win_ecr <= full_ecr * 1.25 + 0.02

    def test_stats_expose_window_losses(self, web_graph):
        result = SPNPartitioner(8, num_shards=16).partition(
            GraphStream(web_graph))
        assert result.stats["window_size"] < web_graph.num_vertices
        assert result.stats["skipped_future"] >= 0

    def test_estimators_both_complete(self, web_graph):
        for est in ("self", "neighborhood"):
            result = SPNPartitioner(8, in_estimator=est).partition(
                GraphStream(web_graph))
            result.assignment.validate(web_graph.num_vertices)
