"""Unit tests for the multi-constraint (BOTH) balance mode."""

import numpy as np
import pytest

from repro.graph import AdjacencyRecord, GraphStream, community_web_graph
from repro.partitioning import (
    BalanceMode,
    LDGPartitioner,
    PartitionState,
    SPNLPartitioner,
    evaluate,
)


def record(v, deg):
    return AdjacencyRecord(v, np.arange(deg, dtype=np.int64))


@pytest.fixture(scope="module")
def skewed_graph():
    """Dense-region skew: the graph class where one cap isn't enough."""
    return community_web_graph(6000, avg_degree=6.0,
                               avg_community_size=60, density_skew=12.0,
                               seed=31, name="skewed6k")


class TestStateMechanics:
    def test_both_mode_has_two_capacities(self):
        state = PartitionState(4, 100, 1000, balance=BalanceMode.BOTH,
                               slack=1.0, edge_slack=1.2)
        assert state.capacity == 25
        assert state.edge_capacity == 300

    def test_default_edge_slack_is_looser(self):
        state = PartitionState(4, 100, 1000, balance=BalanceMode.BOTH,
                               slack=1.1)
        assert state.edge_capacity == np.ceil(1.5 * 1000 / 4)

    def test_single_modes_have_no_edge_cap(self):
        state = PartitionState(4, 100, 1000)
        assert state.edge_capacity is None

    def test_invalid_edge_slack(self):
        with pytest.raises(ValueError, match="edge_slack"):
            PartitionState(4, 100, 1000, balance=BalanceMode.BOTH,
                           edge_slack=0.5)

    def test_edge_cap_blocks_eligibility(self):
        state = PartitionState(2, 100, 10, balance=BalanceMode.BOTH,
                               slack=2.0, edge_slack=1.0)
        # edge capacity = 5 per partition
        state.commit(record(0, 5), 0)
        assert not state.eligible()[0]
        assert state.eligible()[1]
        # vertex capacity alone would still allow partition 0
        assert state.vertex_counts[0] < state.capacity

    def test_penalty_is_min_of_both(self):
        state = PartitionState(2, 100, 100, balance=BalanceMode.BOTH,
                               slack=1.0, edge_slack=1.0)
        # one vertex carrying most of the edge budget
        state.commit(record(0, 40), 0)
        weights = state.penalty_weights()
        vertex_w = 1.0 - state.vertex_counts[0] / state.capacity
        edge_w = 1.0 - state.edge_counts[0] / state.edge_capacity
        assert weights[0] == pytest.approx(min(vertex_w, edge_w))
        assert edge_w < vertex_w  # the edge cap is the binding one


class TestEndToEnd:
    def test_both_caps_bound_both_deltas(self, skewed_graph):
        result = SPNLPartitioner(
            8, balance="both", slack=1.1,
            edge_slack=1.5).partition(GraphStream(skewed_graph))
        q = evaluate(skewed_graph, result.assignment)
        assert q.delta_v <= 1.11
        assert q.delta_e <= 1.55

    def test_single_constraint_lets_the_other_blow_up(self, skewed_graph):
        """The motivation: vertex-only balance leaves δ_e unbounded on
        dense-region graphs; BOTH tames it."""
        vertex_only = SPNLPartitioner(8, balance="vertex").partition(
            GraphStream(skewed_graph))
        both = SPNLPartitioner(8, balance="both",
                               edge_slack=1.4).partition(
            GraphStream(skewed_graph))
        q_vertex = evaluate(skewed_graph, vertex_only.assignment)
        q_both = evaluate(skewed_graph, both.assignment)
        assert q_both.delta_e < q_vertex.delta_e
        assert q_both.delta_v <= 1.11

    def test_works_for_ldg_too(self, skewed_graph):
        result = LDGPartitioner(8, balance="both").partition(
            GraphStream(skewed_graph))
        result.assignment.validate(skewed_graph.num_vertices)

    def test_string_mode_coerced(self):
        p = LDGPartitioner(4, balance="both")
        assert p.balance is BalanceMode.BOTH
