"""Unit tests for incremental partition maintenance."""

import numpy as np
import pytest

from repro.graph import community_web_graph
from repro.partitioning import UNASSIGNED, DynamicPartitioner


@pytest.fixture
def dp():
    return DynamicPartitioner(4, capacity_vertices=500)


class TestInsertion:
    def test_add_vertex_places_it(self, dp):
        pid = dp.add_vertex(0, [1, 2])
        assert 0 <= pid < 4
        assert dp.partition_of(0) == pid

    def test_duplicate_vertex_rejected(self, dp):
        dp.add_vertex(0)
        with pytest.raises(ValueError, match="already present"):
            dp.add_vertex(0)

    def test_capacity_enforced(self, dp):
        with pytest.raises(ValueError, match="capacity"):
            dp.add_vertex(1000)
        with pytest.raises(ValueError, match="capacity"):
            dp.add_edges([(0, 1000)])

    def test_unseen_vertex_unassigned(self, dp):
        assert dp.partition_of(42) == UNASSIGNED

    def test_add_edges_places_endpoints(self, dp):
        dp.add_edges([(0, 1), (1, 2)])
        for v in (0, 1, 2):
            assert dp.partition_of(v) != UNASSIGNED
        assert dp.num_known_vertices == 3

    def test_duplicate_edge_ignored(self, dp):
        dp.add_edges([(0, 1)])
        edges_before = dp.graph().num_edges
        dp.add_edges([(0, 1)])
        assert dp.graph().num_edges == edges_before


class TestAdjacencyAffinity:
    def test_connected_vertices_colocate(self, dp):
        """A dense cluster inserted incrementally ends up together."""
        members = list(range(10))
        dp.add_vertex(0)
        for v in members[1:]:
            dp.add_vertex(v, [u for u in members if u < v])
        pids = [dp.partition_of(v) for v in members]
        most_common = max(set(pids), key=pids.count)
        assert pids.count(most_common) >= 7

    def test_graph_accumulates(self, dp):
        dp.add_edges([(0, 1), (1, 2), (2, 0)])
        g = dp.graph()
        assert g.num_edges == 3
        assert g.has_edge(2, 0)


class TestQualityMaintenance:
    @pytest.fixture(scope="class")
    def grown(self):
        base = community_web_graph(1200, avg_community_size=40, seed=4)
        dp = DynamicPartitioner(4, capacity_vertices=1500)
        for v in range(1000):
            dp.add_vertex(
                v, [int(u) for u in base.out_neighbors(v) if u < 1000])
        quality_initial = dp.current_quality()
        edges = [(v, int(u)) for v in range(1000, 1200)
                 for u in base.out_neighbors(v)]
        dp.add_edges(edges)
        return dp, quality_initial

    def test_growth_keeps_assignment_complete(self, grown):
        dp, _ = grown
        dp.assignment().validate(dp.graph().num_vertices)

    def test_quality_stays_sane_under_growth(self, grown):
        dp, initial = grown
        drifted = dp.current_quality()
        assert drifted.ecr < 3 * initial.ecr + 0.1

    def test_restream_restores_quality(self, grown):
        dp, _ = grown
        drifted = dp.current_quality()
        dp.restream()
        fresh = dp.current_quality()
        assert fresh.ecr <= drifted.ecr + 0.01
        assert fresh.delta_v <= 1.11

    def test_insert_after_restream(self, grown):
        dp, _ = grown
        dp.restream()
        # next contiguous id (the route table only covers ids that have
        # appeared; a gap would leave structurally-unassigned holes)
        new_id = dp.num_known_vertices
        dp.add_edges([(new_id, 0), (new_id, 1)])
        assert dp.partition_of(new_id) != UNASSIGNED
        dp.assignment().validate(dp.graph().num_vertices)

    def test_tallies_consistent_after_everything(self, grown):
        dp, _ = grown
        assignment = dp.assignment()
        counts = np.bincount(
            assignment.route[assignment.route != UNASSIGNED],
            minlength=4)
        known = dp.num_known_vertices
        assert counts.sum() == known
