"""Tests for the capped-width hashed Γ store and its SPN/SPNL wiring."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import GraphStream, community_web_graph, shuffled
from repro.partitioning.expectation import (
    FullExpectationStore,
    HashedExpectationStore,
)
from repro.partitioning.registry import make_partitioner
from repro.partitioning.spn import SPNPartitioner


@pytest.fixture(scope="module")
def graph():
    return community_web_graph(600, seed=5)


class TestStoreSemantics:
    def test_identity_mapping_matches_dense(self, rng):
        """With ``num_buckets >= num_vertices`` the store must be
        bit-identical to the dense table on every API call."""
        dense = FullExpectationStore(4, 50)
        hashed = HashedExpectationStore(4, 50, num_buckets=64)
        for _ in range(200):
            pid = int(rng.integers(4))
            nbrs = rng.integers(0, 50, size=int(rng.integers(0, 8)))
            nbrs = nbrs.astype(np.int64)
            dense.record(pid, nbrs)
            hashed.record(pid, nbrs)
        for v in range(50):
            np.testing.assert_array_equal(dense.expectation_of(v),
                                          hashed.expectation_of(v))
        probe = rng.integers(0, 50, size=12).astype(np.int64)
        np.testing.assert_array_equal(dense.gather(probe),
                                      hashed.gather(probe))
        out_d = np.empty(4, dtype=np.int64)
        out_h = np.empty(4, dtype=np.int64)
        np.testing.assert_array_equal(dense.gather_into(probe, out_d),
                                      hashed.gather_into(probe, out_h))

    def test_buckets_capped_at_num_vertices(self):
        store = HashedExpectationStore(2, 10, num_buckets=1000)
        assert store.num_buckets == 10
        assert store.window_size == 10

    def test_scalar_and_vector_hash_agree(self, rng):
        store = HashedExpectationStore(2, 10_000, num_buckets=97)
        ids = rng.integers(0, 10_000, size=500).astype(np.int64)
        vector = store._buckets(ids)
        scalar = [store._bucket_of(int(v)) for v in ids]
        np.testing.assert_array_equal(np.asarray(vector, dtype=np.int64),
                                      np.asarray(scalar, dtype=np.int64))

    def test_memory_bounded_by_buckets(self):
        small = HashedExpectationStore(8, 100_000, num_buckets=512)
        dense = FullExpectationStore(8, 100_000)
        assert small.nbytes() == 512 * 8 * 4
        assert small.nbytes() < dense.nbytes() // 100

    def test_validation(self):
        with pytest.raises(ValueError, match="num_buckets"):
            HashedExpectationStore(2, 10, num_buckets=0)
        with pytest.raises(ValueError, match="invalid dimensions"):
            HashedExpectationStore(0, 10, num_buckets=4)

    def test_state_round_trip(self, rng):
        store = HashedExpectationStore(3, 100, num_buckets=32)
        store.record(1, rng.integers(0, 100, size=20).astype(np.int64))
        payload = store.state_dict()
        fresh = HashedExpectationStore(3, 100, num_buckets=32)
        fresh.load_state(payload)
        np.testing.assert_array_equal(store._table, fresh._table)
        wrong_width = HashedExpectationStore(3, 100, num_buckets=16)
        with pytest.raises(ValueError, match="gamma_buckets"):
            wrong_width.load_state(payload)
        with pytest.raises(ValueError, match="Γ store"):
            fresh.load_state({"kind": "full", "table": store._table})


class TestSPNWiring:
    def test_hashed_wide_matches_dense_routes(self, graph):
        """B >= |V| pins the hashed SPN/SPNL routes to the dense ones,
        on both the record and the fast path."""
        for method in ("spn", "spnl"):
            for fast in (True, False):
                ref = make_partitioner(
                    method, 8, gamma_store="dense").partition(
                    GraphStream(graph), fast=fast).assignment.route
                got = make_partitioner(
                    method, 8, gamma_store="hashed",
                    gamma_buckets=graph.num_vertices).partition(
                    GraphStream(graph), fast=fast).assignment.route
                np.testing.assert_array_equal(ref, got)

    def test_fast_matches_record_when_capped(self, graph):
        """Aliasing changes quality, never fast-vs-record identity."""
        kwargs = dict(gamma_store="hashed", gamma_buckets=128)
        fast = make_partitioner("spn", 8, **kwargs).partition(
            GraphStream(graph), fast=True).assignment.route
        record = make_partitioner("spn", 8, **kwargs).partition(
            GraphStream(graph), fast=False).assignment.route
        np.testing.assert_array_equal(fast, record)

    def test_works_on_shuffled_streams(self, graph):
        """The windowed store demands id order; hashed must not."""
        stream = shuffled(graph, seed=9)
        result = make_partitioner(
            "spn", 8, gamma_store="hashed",
            gamma_buckets=256).partition(stream)
        assert int((result.assignment.route >= 0).sum()) \
            == graph.num_vertices

    def test_stats_report_store(self, graph):
        result = make_partitioner(
            "spn", 8, gamma_store="hashed",
            gamma_buckets=256).partition(GraphStream(graph))
        assert result.stats["gamma_store"] == "hashed"
        assert result.stats["gamma_buckets"] == 256

    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError, match="gamma_store"):
            SPNPartitioner(4, gamma_store="bogus")
        with pytest.raises(ValueError, match="gamma_buckets"):
            SPNPartitioner(4, gamma_buckets=64)  # requires hashed
        with pytest.raises(ValueError, match="gamma_buckets"):
            SPNPartitioner(4, gamma_store="hashed", gamma_buckets=0)
        with pytest.raises(ValueError, match="num_shards"):
            SPNPartitioner(4, gamma_store="hashed", num_shards=4)

    def test_checkpoint_resume_identity(self, graph, tmp_path):
        from repro.recovery.checkpoint import (latest_snapshot,
                                               partition_with_checkpoints,
                                               resume_partition)
        kwargs = dict(gamma_store="hashed", gamma_buckets=128)
        ref = make_partitioner("spn", 8, **kwargs).partition(
            GraphStream(graph)).assignment.route
        partition_with_checkpoints(
            make_partitioner("spn", 8, **kwargs), GraphStream(graph),
            tmp_path / "ckpt", every=217)
        snap = latest_snapshot(tmp_path / "ckpt")
        resumed = resume_partition(
            make_partitioner("spn", 8, **kwargs), GraphStream(graph),
            snap).assignment.route
        np.testing.assert_array_equal(ref, resumed)
