"""Unit tests for the partitioning introspection tools."""

import numpy as np
import pytest

from repro.graph import GraphStream, from_edges
from repro.partitioning import (
    HashPartitioner,
    PartitionAssignment,
    RangePartitioner,
    agreement,
    boundary_profile,
    cut_distance_histogram,
    edge_cut,
    partition_connectivity,
)


@pytest.fixture
def chain():
    # 0-1-2-3-4-5 path, both directions
    edges = []
    for i in range(5):
        edges += [(i, i + 1), (i + 1, i)]
    return from_edges(edges, num_vertices=6)


class TestCutDistanceHistogram:
    def test_empty_graph(self):
        g = from_edges([], num_vertices=3)
        a = PartitionAssignment([0, 1, 0], 2)
        assert cut_distance_histogram(g, a) == []

    def test_bins_cover_all_edges(self, web_graph):
        a = HashPartitioner(4).partition(GraphStream(web_graph)).assignment
        rows = cut_distance_histogram(web_graph, a, bins=8)
        assert sum(r["edges"] for r in rows) == web_graph.num_edges

    def test_hash_flat_range_steep(self, web_graph):
        """Range cuts only long edges; hash cuts uniformly."""
        ranged = RangePartitioner(8).partition(
            GraphStream(web_graph)).assignment
        hashed = HashPartitioner(8).partition(
            GraphStream(web_graph)).assignment
        r_rows = cut_distance_histogram(web_graph, ranged)
        h_rows = cut_distance_histogram(web_graph, hashed)
        # Range: first decile nearly uncut, last heavily cut.
        assert r_rows[0]["cut_fraction"] < 0.2
        assert r_rows[-1]["cut_fraction"] > 0.6
        # Hash: flat high cut everywhere.
        assert h_rows[0]["cut_fraction"] > 0.6

    def test_monotone_distance_bins(self, web_graph):
        a = RangePartitioner(4).partition(
            GraphStream(web_graph)).assignment
        rows = cut_distance_histogram(web_graph, a, bins=5)
        maxes = [r["max_dist"] for r in rows]
        assert maxes == sorted(maxes)


class TestBoundaryProfile:
    def test_chain_boundaries(self, chain):
        a = PartitionAssignment([0, 0, 0, 1, 1, 1], 2)
        rows = boundary_profile(chain, a)
        # only vertices 2 and 3 touch the cut
        assert rows[0]["boundary"] == 1
        assert rows[1]["boundary"] == 1

    def test_single_partition_no_boundary(self, chain):
        a = PartitionAssignment([0] * 6, 1)
        rows = boundary_profile(chain, a)
        assert rows[0]["boundary"] == 0

    def test_covers_all_partitions(self, web_graph):
        a = HashPartitioner(4).partition(GraphStream(web_graph)).assignment
        rows = boundary_profile(web_graph, a)
        assert len(rows) == 4
        assert sum(r["vertices"] for r in rows) == web_graph.num_vertices


class TestPartitionConnectivity:
    def test_chain_tallies(self, chain):
        a = PartitionAssignment([0, 0, 0, 1, 1, 1], 2)
        conn = partition_connectivity(chain, a)
        # internal: 4 directed edges per side; cut: (2,3) and (3,2)
        assert conn[0].internal_edges == 4
        assert conn[0].outgoing_cut == 1
        assert conn[0].incoming_cut == 1
        assert conn[0].neighbor_partitions == 1

    def test_totals_match_edge_cut(self, web_graph):
        a = HashPartitioner(4).partition(GraphStream(web_graph)).assignment
        conn = partition_connectivity(web_graph, a)
        assert sum(c.outgoing_cut for c in conn) == edge_cut(web_graph, a)
        assert sum(c.incoming_cut for c in conn) == edge_cut(web_graph, a)
        internal = sum(c.internal_edges for c in conn)
        assert internal + edge_cut(web_graph, a) == web_graph.num_edges


class TestAgreement:
    def test_identical_is_one(self):
        a = PartitionAssignment([0, 1, 0, 1], 2)
        assert agreement(a, a) == 1.0

    def test_label_permutation_invariant(self):
        a = PartitionAssignment([0, 1, 0, 1], 2)
        b = PartitionAssignment([1, 0, 1, 0], 2)
        assert agreement(a, b) == 1.0

    def test_disagreement_below_one(self):
        a = PartitionAssignment([0, 0, 1, 1], 2)
        b = PartitionAssignment([0, 1, 0, 1], 2)
        assert agreement(a, b) < 1.0

    def test_symmetry(self, web_graph):
        a = HashPartitioner(4).partition(GraphStream(web_graph)).assignment
        b = RangePartitioner(4).partition(
            GraphStream(web_graph)).assignment
        assert agreement(a, b) == pytest.approx(agreement(b, a))

    def test_size_mismatch_rejected(self):
        with pytest.raises(ValueError):
            agreement(PartitionAssignment([0], 1),
                      PartitionAssignment([0, 0], 1))

    def test_trivial_sizes(self):
        assert agreement(PartitionAssignment([0], 1),
                         PartitionAssignment([0], 1)) == 1.0
