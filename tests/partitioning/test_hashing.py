"""Unit tests for the stateless baselines (hash/random/range/chunked)."""

import numpy as np
import pytest

from repro.graph import GraphStream, from_edges
from repro.partitioning import (
    ChunkedPartitioner,
    HashPartitioner,
    RandomPartitioner,
    RangePartitioner,
    range_boundaries,
    range_partition_of,
)


class TestRangeHelpers:
    def test_boundaries_cover_space(self):
        b = range_boundaries(100, 4)
        assert b[0] == 0 and b[-1] == 100
        assert len(b) == 5

    def test_boundaries_near_equal(self):
        b = range_boundaries(10, 3)
        sizes = np.diff(b)
        assert sizes.sum() == 10
        assert sizes.max() - sizes.min() <= 1

    def test_partition_of_scalar(self):
        b = range_boundaries(100, 4)
        assert range_partition_of(0, b) == 0
        assert range_partition_of(99, b) == 3
        assert range_partition_of(25, b) == 1

    def test_partition_of_array(self):
        b = range_boundaries(100, 4)
        pids = range_partition_of(np.array([0, 30, 60, 99]), b)
        assert list(pids) == [0, 1, 2, 3]

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            range_boundaries(10, 0)


class TestHashPartitioner:
    def test_deterministic(self, web_graph):
        a = HashPartitioner(8).partition(GraphStream(web_graph))
        b = HashPartitioner(8).partition(GraphStream(web_graph))
        assert a.assignment == b.assignment

    def test_roughly_balanced(self, web_graph):
        result = HashPartitioner(8).partition(GraphStream(web_graph))
        counts = result.assignment.vertex_counts()
        assert counts.max() < 1.2 * web_graph.num_vertices / 8

    def test_adjacent_ids_spread(self):
        g = from_edges([], num_vertices=64)
        result = HashPartitioner(8).partition(GraphStream(g))
        route = result.assignment.route
        # multiplicative hashing must not map consecutive ids to one pid
        assert len(set(route[:16].tolist())) > 2


class TestRandomPartitioner:
    def test_seeded_determinism(self, web_graph):
        a = RandomPartitioner(8, seed=5).partition(GraphStream(web_graph))
        b = RandomPartitioner(8, seed=5).partition(GraphStream(web_graph))
        assert a.assignment == b.assignment

    def test_different_seeds_differ(self, web_graph):
        a = RandomPartitioner(8, seed=5).partition(GraphStream(web_graph))
        b = RandomPartitioner(8, seed=6).partition(GraphStream(web_graph))
        assert a.assignment != b.assignment

    def test_capacity_respected(self):
        g = from_edges([], num_vertices=100)
        result = RandomPartitioner(4, seed=1, slack=1.05).partition(
            GraphStream(g))
        assert result.assignment.vertex_counts().max() <= 27


class TestRangePartitioner:
    def test_contiguous_blocks(self):
        g = from_edges([], num_vertices=100)
        result = RangePartitioner(4).partition(GraphStream(g))
        route = result.assignment.route
        # ids within each quarter share a partition
        assert len(set(route[:25].tolist())) == 1
        assert len(set(route[75:].tolist())) == 1

    def test_strong_on_local_graph(self, web_graph):
        from repro.partitioning import evaluate
        result = RangePartitioner(8).partition(GraphStream(web_graph))
        q = evaluate(web_graph, result.assignment)
        hash_q = evaluate(
            web_graph,
            HashPartitioner(8).partition(GraphStream(web_graph)).assignment)
        assert q.ecr < 0.5 * hash_q.ecr


class TestChunkedPartitioner:
    def test_default_chunks_equal_range_on_id_order(self):
        g = from_edges([], num_vertices=100)
        chunked = ChunkedPartitioner(4).partition(GraphStream(g))
        ranged = RangePartitioner(4).partition(GraphStream(g))
        assert chunked.assignment == ranged.assignment

    def test_explicit_chunk_size_round_robin(self):
        g = from_edges([], num_vertices=8)
        result = ChunkedPartitioner(2, chunk_size=2).partition(
            GraphStream(g))
        assert list(result.assignment.route) == [0, 0, 1, 1, 0, 0, 1, 1]

    def test_follows_arrival_order(self):
        g = from_edges([], num_vertices=4)
        stream = GraphStream(g, order=[3, 2, 1, 0])
        result = ChunkedPartitioner(2, chunk_size=2).partition(stream)
        # first two arrivals (3, 2) → partition 0
        assert result.assignment[3] == 0 and result.assignment[2] == 0
        assert result.assignment[1] == 1 and result.assignment[0] == 1
