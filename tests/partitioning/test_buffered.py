"""Unit tests for the buffered hybrid streaming partitioner."""

import numpy as np
import pytest

from repro.graph import GraphStream
from repro.partitioning import (
    BufferedHybridPartitioner,
    LDGPartitioner,
    SPNLPartitioner,
    evaluate,
)


class TestConfiguration:
    def test_invalid_buffer(self):
        with pytest.raises(ValueError, match="buffer_size"):
            BufferedHybridPartitioner(lambda: LDGPartitioner(4),
                                      buffer_size=1)

    def test_name(self):
        p = BufferedHybridPartitioner(lambda: LDGPartitioner(4),
                                      buffer_size=128)
        assert p.name == "Buffered(LDG,B=128)"

    def test_k_delegates(self):
        p = BufferedHybridPartitioner(lambda: LDGPartitioner(7))
        assert p.num_partitions == 7


class TestBehaviour:
    def test_complete_assignment(self, web_graph):
        p = BufferedHybridPartitioner(lambda: LDGPartitioner(8),
                                      buffer_size=512)
        result = p.partition(GraphStream(web_graph))
        result.assignment.validate(web_graph.num_vertices)

    def test_counts_stay_consistent_after_moves(self, web_graph):
        """Refinement writes moves back; the tallies must still agree
        with the route table exactly."""
        p = BufferedHybridPartitioner(lambda: LDGPartitioner(8),
                                      buffer_size=256)
        result = p.partition(GraphStream(web_graph))
        assert result.stats["refinement_moves"] > 0
        counts = result.assignment.vertex_counts()
        assert counts.sum() == web_graph.num_vertices
        recomputed = np.bincount(result.assignment.route, minlength=8)
        assert np.array_equal(counts, recomputed)

    def test_improves_weak_component(self, web_graph):
        """Buffered refinement must lift LDG substantially (the hybrid
        framework's raison d'être)."""
        plain = LDGPartitioner(8).partition(GraphStream(web_graph))
        buffered = BufferedHybridPartitioner(
            lambda: LDGPartitioner(8), buffer_size=512).partition(
            GraphStream(web_graph))
        assert evaluate(web_graph, buffered.assignment).ecr < \
            0.9 * evaluate(web_graph, plain.assignment).ecr

    def test_spnl_component_stays_strong(self, web_graph):
        """With SPNL as the component, buffering may not *hurt* much —
        the paper's claim that SPNL plugs into hybrid frameworks."""
        plain = SPNLPartitioner(8).partition(GraphStream(web_graph))
        buffered = BufferedHybridPartitioner(
            lambda: SPNLPartitioner(8), buffer_size=512).partition(
            GraphStream(web_graph))
        plain_ecr = evaluate(web_graph, plain.assignment).ecr
        buf_ecr = evaluate(web_graph, buffered.assignment).ecr
        assert buf_ecr <= plain_ecr * 1.3 + 0.02

    def test_balance_respected(self, web_graph):
        p = BufferedHybridPartitioner(lambda: LDGPartitioner(8),
                                      buffer_size=512)
        result = p.partition(GraphStream(web_graph))
        q = evaluate(web_graph, result.assignment)
        assert q.delta_v <= 1.16  # streaming slack + refine slack

    def test_tiny_final_batch(self, web_graph):
        """Buffer size larger than the graph → one refinement at EOS."""
        p = BufferedHybridPartitioner(
            lambda: LDGPartitioner(4),
            buffer_size=web_graph.num_vertices + 100)
        result = p.partition(GraphStream(web_graph))
        result.assignment.validate(web_graph.num_vertices)
