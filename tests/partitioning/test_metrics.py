"""Unit tests for the quality metrics (ECR, balance factors, cut matrix)."""

import numpy as np
import pytest

from repro.graph import from_edges
from repro.partitioning import (
    PartitionAssignment,
    cut_matrix,
    edge_balance,
    edge_cut,
    edge_cut_ratio,
    evaluate,
    vertex_balance,
)


@pytest.fixture
def assigned(tiny_graph):
    # P0 = {0, 1}, P1 = {2, 3, 4}
    return PartitionAssignment([0, 0, 1, 1, 1], 2)


class TestEdgeCut:
    def test_hand_computed_cut(self, tiny_graph, assigned):
        # cut edges: 0→2, 1→2, 4→0  → |D| = 3
        assert edge_cut(tiny_graph, assigned) == 3
        assert edge_cut_ratio(tiny_graph, assigned) == 3 / 6

    def test_all_in_one_partition_no_cut(self, tiny_graph):
        a = PartitionAssignment([0] * 5, 1)
        assert edge_cut(tiny_graph, a) == 0

    def test_singleton_partitions_cut_everything(self, tiny_graph):
        a = PartitionAssignment([0, 1, 2, 3, 4], 5)
        assert edge_cut(tiny_graph, a) == 6

    def test_empty_graph_ratio_zero(self):
        g = from_edges([], num_vertices=3)
        a = PartitionAssignment([0, 1, 0], 2)
        assert edge_cut_ratio(g, a) == 0.0


class TestBalance:
    def test_vertex_balance(self, tiny_graph, assigned):
        # max |V_i| = 3, ideal = 2.5 → δv = 1.2
        assert vertex_balance(tiny_graph, assigned) == pytest.approx(1.2)

    def test_perfect_vertex_balance(self, tiny_graph):
        g = from_edges([], num_vertices=4)
        a = PartitionAssignment([0, 0, 1, 1], 2)
        assert vertex_balance(g, a) == 1.0

    def test_edge_balance(self, tiny_graph, assigned):
        # edge counts by source: P0 has deg(0)+deg(1)=3, P1 has 3 → δe=1.0
        assert edge_balance(tiny_graph, assigned) == pytest.approx(1.0)

    def test_edge_balance_skew(self, tiny_graph):
        a = PartitionAssignment([0, 0, 0, 0, 1], 2)
        # P0 holds deg 2+1+1+1=5, ideal=3 → 5/3
        assert edge_balance(tiny_graph, a) == pytest.approx(5 / 3)


class TestCutMatrix:
    def test_matrix_entries(self, tiny_graph, assigned):
        m = cut_matrix(tiny_graph, assigned)
        # P0→P0: 0→1; P0→P1: 0→2, 1→2; P1→P1: 2→3, 3→4; P1→P0: 4→0
        assert m[0, 0] == 1 and m[0, 1] == 2
        assert m[1, 1] == 2 and m[1, 0] == 1

    def test_offdiagonal_sum_equals_cut(self, tiny_graph, assigned):
        m = cut_matrix(tiny_graph, assigned)
        off_diagonal = m.sum() - np.trace(m)
        assert off_diagonal == edge_cut(tiny_graph, assigned)

    def test_total_equals_edges(self, tiny_graph, assigned):
        assert cut_matrix(tiny_graph, assigned).sum() == 6


class TestEvaluate:
    def test_full_report(self, tiny_graph, assigned):
        report = evaluate(tiny_graph, assigned)
        assert report.num_cut_edges == 3
        assert report.ecr == 0.5
        assert report.delta_v == pytest.approx(1.2)
        assert list(report.vertex_counts) == [2, 3]

    def test_incomplete_assignment_rejected(self, tiny_graph):
        from repro.partitioning import UNASSIGNED
        a = PartitionAssignment([0, 0, 1, 1, UNASSIGNED], 2)
        with pytest.raises(ValueError, match="unassigned"):
            evaluate(tiny_graph, a)

    def test_as_row(self, tiny_graph, assigned):
        row = evaluate(tiny_graph, assigned).as_row()
        assert row["ECR"] == 0.5
        assert row["K"] == 2

    def test_str_format(self, tiny_graph, assigned):
        text = str(evaluate(tiny_graph, assigned))
        assert "ECR=0.5" in text
