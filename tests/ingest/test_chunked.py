"""Differential tests: chunked tokenizer vs the seed line-by-line parser.

The chunked engine is only a performance optimization — every observable
(parsed rows, built graphs, quarantine files, error messages, error
*types*) must match the seed ``engine="python"`` path byte for byte.
"""

from __future__ import annotations

import gzip

import numpy as np
import pytest

from repro.graph.io import iter_adjacency_lines, read_adjacency, read_edge_list
from repro.ingest.chunked import (
    iter_adjacency_rows,
    iter_edge_chunks,
    scan_adjacency_stats,
)
from repro.recovery.lenient import IngestionPolicy

ADJ_TEXT = """\
# comment line
0 1 2
1 2

2 0
% another comment
3
4 0 1 2 3
"""

MESSY_TEXT = """\
0 1 2
not numbers at all
1 2
2 -1
3 0
4
"""


def _write(tmp_path, name, text):
    path = tmp_path / name
    path.write_text(text)
    return path


def _rows(events):
    return [(int(v), list(map(int, nbrs))) for v, nbrs in events]


class TestAdjacencyParity:
    def test_clean_file_rows_identical(self, tmp_path):
        path = _write(tmp_path, "g.adj", ADJ_TEXT)
        seed = _rows(iter_adjacency_lines(path, engine="python"))
        fast = _rows(iter_adjacency_rows(path))
        assert fast == seed

    def test_no_trailing_newline(self, tmp_path):
        path = _write(tmp_path, "g.adj", ADJ_TEXT.rstrip("\n"))
        seed = _rows(iter_adjacency_lines(path, engine="python"))
        fast = _rows(iter_adjacency_rows(path))
        assert fast == seed

    @pytest.mark.parametrize("chunk_bytes", [1, 3, 17, 64])
    def test_tiny_chunks_stress(self, tmp_path, chunk_bytes):
        """Rows split across chunk boundaries must reassemble exactly."""
        path = _write(tmp_path, "g.adj", ADJ_TEXT)
        seed = _rows(iter_adjacency_lines(path, engine="python"))
        fast = _rows(iter_adjacency_rows(path, chunk_bytes=chunk_bytes))
        assert fast == seed

    def test_gzip_source(self, tmp_path):
        path = tmp_path / "g.adj.gz"
        with gzip.open(path, "wt") as fh:
            fh.write(ADJ_TEXT)
        seed = _rows(iter_adjacency_lines(path, engine="python"))
        fast = _rows(iter_adjacency_rows(path))
        assert fast == seed

    def test_graphs_byte_identical(self, tmp_path):
        path = _write(tmp_path, "g.adj", ADJ_TEXT)
        seed = read_adjacency(path, engine="python")
        fast = read_adjacency(path, engine="chunked")
        np.testing.assert_array_equal(seed.indptr, fast.indptr)
        np.testing.assert_array_equal(seed.indices, fast.indices)

    def test_lenient_quarantine_bytes_identical(self, tmp_path):
        path = _write(tmp_path, "m.adj", MESSY_TEXT)
        outputs = {}
        for engine in ("python", "chunked"):
            qpath = tmp_path / f"quarantine-{engine}.log"
            policy = IngestionPolicy("lenient", quarantine=qpath)
            rows = _rows(iter_adjacency_lines(path, policy=policy,
                                              engine=engine))
            policy.quarantine.close()
            outputs[engine] = (rows, qpath.read_text(),
                               policy.errors_total)
        assert outputs["python"] == outputs["chunked"]

    def test_strict_error_identical(self, tmp_path):
        path = _write(tmp_path, "m.adj", MESSY_TEXT)
        messages = {}
        for engine in ("python", "chunked"):
            with pytest.raises(ValueError) as err:
                list(iter_adjacency_lines(path, engine=engine))
            messages[engine] = str(err.value)
        assert messages["python"] == messages["chunked"]
        assert "line 2" in messages["python"]

    def test_overflow_escapes_lenient_mode_both_engines(self, tmp_path):
        """>int64 tokens raise OverflowError in the seed parser even in
        lenient mode (it is not a ValueError); the fast path matches."""
        path = _write(tmp_path, "o.adj", "0 1\n1 99999999999999999999\n")
        for engine in ("python", "chunked"):
            policy = IngestionPolicy("lenient")
            with pytest.raises(OverflowError):
                list(iter_adjacency_lines(path, policy=policy,
                                          engine=engine))

    def test_plus_sign_and_underscores_accepted(self, tmp_path):
        """``int()`` accepts ``+5`` and ``1_000`` — parity preserved."""
        path = _write(tmp_path, "p.adj", "+0 1_0 2\n")
        seed = _rows(iter_adjacency_lines(path, engine="python"))
        fast = _rows(iter_adjacency_rows(path))
        assert fast == seed == [(0, [10, 2])]


class TestEdgeListParity:
    EDGES = "0 1\n1 2\n# c\n2 0\nbroken\n3 0\n"

    def test_lenient_graph_identical(self, tmp_path):
        path = _write(tmp_path, "g.edges", self.EDGES)
        graphs = {}
        for engine in ("python", "chunked"):
            policy = IngestionPolicy("lenient")
            graphs[engine] = read_edge_list(path, policy=policy,
                                            engine=engine)
        np.testing.assert_array_equal(graphs["python"].indptr,
                                      graphs["chunked"].indptr)
        np.testing.assert_array_equal(graphs["python"].indices,
                                      graphs["chunked"].indices)

    def test_strict_error_identical(self, tmp_path):
        path = _write(tmp_path, "g.edges", self.EDGES)
        messages = {}
        for engine in ("python", "chunked"):
            with pytest.raises(ValueError) as err:
                read_edge_list(path, engine=engine)
            messages[engine] = str(err.value)
        assert messages["python"] == messages["chunked"]

    def test_negative_ids_policy_handled(self, tmp_path):
        """Negative ids must be rejected *inside* the policy try-block
        with the seed message, in both engines."""
        path = _write(tmp_path, "n.edges", "0 1\n1 -2\n2 0\n")
        for engine in ("python", "chunked"):
            with pytest.raises(ValueError,
                               match="vertex ids must be non-negative"):
                read_edge_list(path, engine=engine)
            lenient = IngestionPolicy("lenient")
            graph = read_edge_list(path, policy=lenient, engine=engine)
            assert lenient.errors_total == 1
            assert graph.num_edges == 2

    def test_self_loops_do_not_extend_id_space(self, tmp_path):
        """A dropped self-loop on the max id must not widen the graph
        (seed ``add_edge`` returns before updating ``max_id``)."""
        path = _write(tmp_path, "s.edges", "0 1\n9 9\n")
        for engine in ("python", "chunked"):
            graph = read_edge_list(path, engine=engine)
            assert graph.num_vertices == 2
            assert graph.num_edges == 1

    def test_chunk_iterator_yields_int64_pairs(self, tmp_path):
        path = _write(tmp_path, "g.edges", "0 1\n1 2\n2 0\n")
        chunks = list(iter_edge_chunks(path))
        src = np.concatenate([s for s, _ in chunks])
        dst = np.concatenate([d for _, d in chunks])
        assert src.dtype == np.int64 and dst.dtype == np.int64
        assert list(zip(src.tolist(), dst.tolist())) == \
            [(0, 1), (1, 2), (2, 0)]


class TestScanStats:
    def test_stats_match_full_parse(self, tmp_path):
        path = _write(tmp_path, "g.adj", ADJ_TEXT)
        graph = read_adjacency(path, engine="python")
        max_id, num_edges, ordered, rows = scan_adjacency_stats(path)
        assert max_id == graph.num_vertices - 1
        assert num_edges == graph.num_edges
        assert ordered is True
        assert rows == 5

    def test_detects_unordered(self, tmp_path):
        path = _write(tmp_path, "u.adj", "1 0\n0 1\n")
        _max_id, _edges, ordered, rows = scan_adjacency_stats(path)
        assert ordered is False
        assert rows == 2
