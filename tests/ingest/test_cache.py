"""Tests for the ``.reprocsr`` binary graph cache.

Layered-integrity expectations mirror the snapshot codec tests:
truncation, corruption, and foreign files each fail with a distinct
:class:`GraphCacheError`; a damaged or stale cache silently falls back
to a parse and is rewritten.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.graph import community_web_graph, write_adjacency
from repro.ingest.cache import (
    GraphCacheError,
    cache_path_for,
    is_cache_fresh,
    load_or_parse,
    read_graph_cache,
    write_graph_cache,
)
from repro.observability.instrumentation import Instrumentation
from repro.observability.schema import validate_record


@pytest.fixture
def graph():
    return community_web_graph(300, seed=7, name="cache300")


@pytest.fixture
def source(tmp_path, graph):
    path = tmp_path / "g.adj"
    write_adjacency(graph, path)
    return path


def _assert_same(a, b):
    np.testing.assert_array_equal(a.indptr, b.indptr)
    np.testing.assert_array_equal(a.indices, b.indices)


class TestRoundTrip:
    def test_byte_identical(self, tmp_path, graph):
        path = tmp_path / "g.reprocsr"
        write_graph_cache(path, graph)
        _assert_same(graph, read_graph_cache(path))

    def test_no_mmap_path(self, tmp_path, graph):
        path = tmp_path / "g.reprocsr"
        write_graph_cache(path, graph)
        _assert_same(graph, read_graph_cache(path, use_mmap=False))

    def test_empty_graph(self, tmp_path):
        from repro.graph import from_edges
        empty = from_edges([], num_vertices=0, name="empty")
        path = tmp_path / "e.reprocsr"
        write_graph_cache(path, empty)
        loaded = read_graph_cache(path)
        assert loaded.num_vertices == 0 and loaded.num_edges == 0

    def test_name_preserved(self, tmp_path, graph):
        path = tmp_path / "g.reprocsr"
        write_graph_cache(path, graph)
        assert read_graph_cache(path).name == "cache300"


class TestIntegrity:
    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.reprocsr"
        path.write_bytes(b"NOTACACHE" + b"\x00" * 64)
        with pytest.raises(GraphCacheError, match="bad magic"):
            read_graph_cache(path)

    def test_truncation(self, tmp_path, graph):
        path = tmp_path / "g.reprocsr"
        write_graph_cache(path, graph)
        blob = path.read_bytes()
        path.write_bytes(blob[:-16])
        with pytest.raises(GraphCacheError, match="truncated"):
            read_graph_cache(path)

    def test_corruption_fails_crc(self, tmp_path, graph):
        path = tmp_path / "g.reprocsr"
        write_graph_cache(path, graph)
        blob = bytearray(path.read_bytes())
        blob[-5] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.raises(GraphCacheError, match="CRC32"):
            read_graph_cache(path)


class TestFreshness:
    def test_fresh_after_write(self, source, graph):
        cache = cache_path_for(source)
        write_graph_cache(cache, graph, source=source)
        assert is_cache_fresh(cache, source)

    def test_stale_after_source_change(self, source, graph):
        cache = cache_path_for(source)
        write_graph_cache(cache, graph, source=source)
        source.write_text(source.read_text() + "299\n")
        assert not is_cache_fresh(cache, source)

    def test_missing_cache_not_fresh(self, source):
        assert not is_cache_fresh(cache_path_for(source), source)

    def test_sourceless_cache_never_fresh(self, source, graph):
        cache = cache_path_for(source)
        write_graph_cache(cache, graph)  # no source signature
        assert not is_cache_fresh(cache, source)


class TestLoadOrParse:
    def test_miss_then_hit(self, source, graph):
        cache = cache_path_for(source)
        assert not cache.exists()
        first = load_or_parse(source)
        assert cache.exists()
        second = load_or_parse(source)
        _assert_same(graph, first)
        _assert_same(first, second)

    def test_stale_cache_rewritten(self, source):
        load_or_parse(source)
        cache = cache_path_for(source)
        before = cache.stat().st_mtime_ns
        # Append a vertex; the next load must re-parse and re-cache.
        with open(source, "a") as fh:
            fh.write("300\n")
        os.utime(source)
        graph = load_or_parse(source)
        assert graph.num_vertices == 301
        assert cache.stat().st_mtime_ns != before
        assert is_cache_fresh(cache, source)

    def test_damaged_cache_falls_back(self, source):
        load_or_parse(source)
        cache = cache_path_for(source)
        blob = bytearray(cache.read_bytes())
        blob[-1] ^= 0xFF
        cache.write_bytes(bytes(blob))
        # Force the freshness check to still pass (same size), so the
        # damaged body is actually read and must fall back cleanly.
        graph = load_or_parse(source)
        assert graph.num_vertices == 300

    def test_cache_false_always_parses(self, source):
        graph = load_or_parse(source, cache=False)
        assert not cache_path_for(source).exists()
        assert graph.num_vertices == 300

    def test_explicit_cache_path(self, source, tmp_path):
        cache = tmp_path / "elsewhere.reprocsr"
        load_or_parse(source, cache=cache)
        assert cache.exists()
        assert not cache_path_for(source).exists()

    def test_counters_and_trace_records(self, source):
        with Instrumentation() as hub:
            records = []
            hub.sinks = [type("Sink", (), {
                "emit": staticmethod(records.append)})()]
            load_or_parse(source, instrumentation=hub)
            assert hub.counters["graph_cache_miss"] == 1
            load_or_parse(source, instrumentation=hub)
            assert hub.counters["graph_cache_hit"] == 1
        phases = [r["phase"] for r in records
                  if r["type"] == "ingest_phase"]
        assert phases == ["parse", "cache_write", "cache_hit"]
        for record in records:
            validate_record(record)
