"""Tests for the double-buffered background prefetch reader.

:class:`PrefetchStream` must be observably indistinguishable from
:class:`FileStream` — same records, same ``tell()``/``seek()`` record
semantics, same strict-mode error surfacing — while doing its reads on
a producer thread.  Checkpoint/resume byte-identity rides on the seek
contract, so it gets pinned here at awkward mid-chunk positions.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import FileStream, community_web_graph, write_adjacency
from repro.graph.stream import GraphStream
from repro.ingest.prefetch import PrefetchStream
from repro.partitioning.registry import make_partitioner
from repro.recovery.checkpoint import (
    latest_snapshot,
    partition_with_checkpoints,
    resume_partition,
)


@pytest.fixture(scope="module")
def adj_file(tmp_path_factory):
    graph = community_web_graph(800, seed=3, name="pf800")
    path = tmp_path_factory.mktemp("prefetch") / "g.adj"
    write_adjacency(graph, path)
    return path, graph


def _records(stream):
    return [(int(v), nbrs.tolist()) for v, nbrs in stream]


class TestIdentity:
    def test_matches_file_stream(self, adj_file):
        path, _ = adj_file
        assert _records(PrefetchStream(path)) == _records(FileStream(path))

    def test_totals_discovered(self, adj_file):
        path, graph = adj_file
        stream = PrefetchStream(path)
        assert stream.num_vertices == graph.num_vertices
        assert stream.num_edges == graph.num_edges

    def test_small_chunks(self, adj_file):
        """Chunk boundaries mid-row must not duplicate or drop records."""
        path, _ = adj_file
        fast = PrefetchStream(path, chunk_bytes=512)
        assert _records(fast) == _records(FileStream(path))


class TestSeekSemantics:
    @pytest.mark.parametrize("position", [0, 1, 7, 123, 777, 799, 800])
    def test_seek_resumes_at_record(self, adj_file, position):
        path, _ = adj_file
        reference = _records(FileStream(path))
        stream = PrefetchStream(path, chunk_bytes=512)
        stream.seek(position)
        assert _records(stream) == reference[position:]

    def test_tell_unchanged_by_iteration(self, adj_file):
        """The _Seekable contract: iterating does not move the cursor."""
        path, _ = adj_file
        stream = PrefetchStream(path)
        stream.seek(5)
        _records(stream)
        assert stream.tell() == 5

    def test_tell_seek_round_trip(self, adj_file):
        path, _ = adj_file
        stream = PrefetchStream(path)
        for position in (0, 13, 799):
            stream.seek(position)
            assert stream.tell() == position

    def test_seek_past_end_rejected(self, adj_file):
        path, _ = adj_file
        with pytest.raises(ValueError, match="past the end"):
            PrefetchStream(path).seek(801)

    def test_early_close_no_deadlock(self, adj_file):
        path, _ = adj_file
        stream = PrefetchStream(path, depth=1, chunk_bytes=512)
        it = iter(stream)
        next(it)
        it.close()  # producer must unblock and join


class TestPartitionByteIdentity:
    @pytest.mark.parametrize("method", ["ldg", "fennel", "spn", "spnl"])
    def test_route_matches_graph_stream(self, adj_file, method):
        path, graph = adj_file
        ref = make_partitioner(method, 8).partition(
            GraphStream(graph), fast=False).assignment.route
        got = make_partitioner(method, 8).partition(
            PrefetchStream(path)).assignment.route
        np.testing.assert_array_equal(ref, got)

    @pytest.mark.parametrize("method", ["ldg", "spn"])
    def test_checkpoint_resume_mid_chunk(self, adj_file, method,
                                         tmp_path):
        """Resume from a snapshot at a position that lands mid-chunk in
        the prefetch reader's block structure — the resumed run must be
        byte-identical to the uninterrupted one."""
        path, graph = adj_file
        ref = make_partitioner(method, 8).partition(
            PrefetchStream(path)).assignment.route
        # 311 does not divide the chunk row counts at chunk_bytes=512.
        full = partition_with_checkpoints(
            make_partitioner(method, 8),
            PrefetchStream(path, chunk_bytes=512),
            tmp_path / "ckpt", every=311)
        np.testing.assert_array_equal(ref, full.assignment.route)
        snap = latest_snapshot(tmp_path / "ckpt")
        assert snap is not None
        resumed = resume_partition(
            make_partitioner(method, 8),
            PrefetchStream(path, chunk_bytes=512), snap)
        np.testing.assert_array_equal(ref, resumed.assignment.route)
        assert resumed.stats.get("resumed_from") == str(snap)

    def test_ingest_stats_attached(self, adj_file):
        path, _ = adj_file
        result = make_partitioner("ldg", 8).partition(PrefetchStream(path))
        stats = result.stats.get("ingest")
        assert stats is not None
        assert stats["records"] == 800
        assert stats["segments"] > 0
        assert stats["producer_busy_seconds"] >= 0.0


class TestErrors:
    def test_strict_error_ordering(self, tmp_path):
        """Records before the bad line arrive, then the seed error."""
        path = tmp_path / "bad.adj"
        path.write_text("0 1\n1 2\nbroken line\n3 0\n")
        stream = PrefetchStream(path, num_vertices=4, num_edges=3)
        seen = []
        with pytest.raises(ValueError, match="line 3"):
            for vertex, _ in stream:
                seen.append(int(vertex))
        assert seen == [0, 1]
