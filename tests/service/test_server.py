"""Placement-service integration tests (in-process, ephemeral ports)."""

import socket
import threading

import numpy as np
import pytest

import repro
from repro import PartitionConfig, partition_stream
from repro.graph import community_web_graph
from repro.service import (
    BackpressureError,
    PlacementService,
    ServiceClient,
    ServiceError,
)
from repro.service.protocol import decode_line, encode_message

K = 8
N = 600


@pytest.fixture(scope="module")
def graph():
    return community_web_graph(N, avg_degree=8, seed=5)


@pytest.fixture(scope="module")
def config():
    return PartitionConfig(method="spnl", num_partitions=K)


@pytest.fixture(scope="module")
def reference_route(graph, config):
    return partition_stream(graph, config=config).assignment.route


@pytest.fixture
def service(graph, config):
    with PlacementService.start(graph, config=config) as svc:
        yield svc


@pytest.fixture
def client(service):
    with ServiceClient(*service.address) as c:
        yield c


class TestRoundTrip:
    def test_hello_handshake(self, client, config):
        info = client.server_info
        assert info["protocol"] == 1
        assert info["server"] == "repro-placement-service"
        assert info["partitioner"] == "SPNL"
        assert info["config"]["num_partitions"] == K
        assert info["graph"]["num_vertices"] == N

    def test_id_ordered_stream_matches_batch_pass(
            self, client, service, reference_route):
        for start in range(0, N, 128):
            client.place_batch(list(range(start, min(N, start + 128))))
        assert np.array_equal(service._state.route, reference_route)
        stats = client.stats()
        assert stats["placements"] == N
        assert stats["fast_path"]["fused_placements"] == N
        assert stats["arrival_ordered"] is True

    def test_single_place_and_lookup(self, client):
        res = client.place(0)
        assert res["cached"] is False
        assert client.lookup(0) == res["pid"]

    def test_place_is_idempotent(self, client):
        first = client.place(3)
        again = client.place(3)
        assert again["pid"] == first["pid"]
        assert again["cached"] is True

    def test_lookup_unplaced_is_none(self, client):
        assert client.lookup(N - 1) is None

    def test_explicit_neighbors_take_the_record_path(
            self, client, service):
        res = client.place(10, neighbors=[1, 2, 3])
        assert 0 <= res["pid"] < K
        assert service.stats()["fast_path"]["record_placements"] >= 1

    def test_out_of_order_arrival_still_places_everything(
            self, client, service):
        order = list(range(N))
        rng = np.random.default_rng(3)
        rng.shuffle(order)
        for start in range(0, N, 200):
            client.place_batch(order[start:start + 200])
        assert client.stats()["placements"] == N
        assert (service._state.route != -1).all()

    def test_stats_shape(self, client):
        client.place(0)
        stats = client.stats()
        for key in ("partitioner", "num_partitions", "position",
                    "placements", "capacity_overflows", "loads",
                    "edge_loads", "queue_depth", "queue_capacity",
                    "groups_processed", "arrival_ordered", "fast_path",
                    "latency", "uptime_seconds"):
            assert key in stats, key
        assert len(stats["loads"]) == K
        assert "place" in stats["latency"]
        assert stats["latency"]["place"]["count"] >= 1
        assert stats["latency"]["place"]["p99_ms"] >= 0.0

    def test_health(self, client):
        health = client.health()
        assert health["status"] == "serving"

    def test_concurrent_clients_place_everything_once(
            self, service, reference_route):
        errors = []

        def worker(lo):
            try:
                with ServiceClient(*service.address) as c:
                    for start in range(lo, N, 4 * 50):
                        c.place_batch(list(range(start, start + 50)),
                                      retries=20)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(lo * 50,))
                   for lo in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert service.stats()["placements"] == N
        # Sorted group-commit keeps id-contiguous multi-client traffic
        # equivalent to the batch pass whenever arrival never raced.
        if service._arrival_ordered:
            assert np.array_equal(service._state.route, reference_route)


class TestProtocolErrors:
    def _raw(self, service, message: dict) -> dict:
        with socket.create_connection(service.address, timeout=10) as sock:
            sock.sendall(encode_message(message))
            return decode_line(sock.makefile("rb").readline())

    def test_unsupported_protocol_version(self, service):
        response = self._raw(service, {"protocol": 99, "op": "hello",
                                       "id": 1})
        assert response["ok"] is False
        assert response["error"]["code"] == "unsupported-protocol"
        assert response["error"]["supported"] == [1]

    def test_unknown_op(self, service):
        response = self._raw(service, {"protocol": 1, "op": "explode",
                                       "id": 1})
        assert response["error"]["code"] == "bad-request"

    def test_unknown_fields_are_ignored(self, service):
        # The additive-evolution rule, end to end.
        response = self._raw(service, {"protocol": 1, "op": "health",
                                       "id": 1, "future_field": True})
        assert response["ok"] is True

    def test_unknown_vertex(self, client):
        with pytest.raises(ServiceError) as exc:
            client.lookup(N + 5)
        assert exc.value.code == "unknown-vertex"

    def test_bool_vertex_is_rejected(self, client):
        with pytest.raises(ServiceError) as exc:
            client.place(True)
        assert exc.value.code == "bad-request"

    def test_bad_neighbors_type(self, client):
        with pytest.raises(ServiceError) as exc:
            client.request("place", vertex=0, neighbors="nope")
        assert exc.value.code == "bad-request"

    def test_snapshot_on_volatile_server_fails_cleanly(self, client):
        with pytest.raises(ServiceError) as exc:
            client.snapshot()
        assert "snapshot" in str(exc.value)


class TestBackpressure:
    def test_queue_full_answers_backpressure(self, graph, config):
        with PlacementService.start(
                graph, config=config, queue_depth=1,
                throttle_seconds=0.08) as svc:
            hits, errors = [], []

            def worker(v):
                try:
                    with ServiceClient(*svc.address) as c:
                        c.place(v)
                except BackpressureError as exc:
                    hits.append(exc.retry_after_ms)
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)

            threads = [threading.Thread(target=worker, args=(v,))
                       for v in range(12)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert not errors
            assert hits, "expected at least one backpressure rejection"
            assert all(ms >= 1 for ms in hits)

    def test_retries_absorb_backpressure(self, graph, config):
        with PlacementService.start(
                graph, config=config, queue_depth=1,
                throttle_seconds=0.02) as svc:
            errors = []

            def worker(lo):
                try:
                    with ServiceClient(*svc.address) as c:
                        c.place_batch(list(range(lo, lo + 40)),
                                      retries=100)
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)

            threads = [threading.Thread(target=worker, args=(lo * 40,))
                       for lo in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert not errors
            assert svc.stats()["placements"] == 160


class TestLifecycle:
    def test_close_is_idempotent_and_drains(self, graph, config):
        svc = PlacementService.start(graph, config=config)
        with ServiceClient(*svc.address) as c:
            c.place_batch(list(range(100)))
        svc.close()
        svc.close()
        assert svc.stats()["placements"] == 100

    def test_requests_after_drain_fail(self, graph, config):
        svc = PlacementService.start(graph, config=config)
        host, port = svc.address
        svc.close()
        with pytest.raises((ServiceError, OSError)):
            ServiceClient(host, port).place(0)

    def test_request_shutdown_wakes_wait(self, graph, config):
        svc = PlacementService.start(graph, config=config)
        try:
            assert svc.wait(0.01) is False
            svc.request_shutdown()
            assert svc.wait(5) is True
        finally:
            svc.close()

    def test_offline_method_is_rejected(self, graph):
        with pytest.raises(ValueError, match="streaming"):
            PlacementService(graph, config=PartitionConfig(
                method="metis", num_partitions=K))


class TestDurability:
    def test_snapshot_op_and_boot_guard(self, graph, config, tmp_path):
        state_dir = tmp_path / "state"
        with PlacementService.start(graph, config=config,
                                    snapshot_dir=state_dir) as svc:
            with ServiceClient(*svc.address) as c:
                c.place_batch(list(range(200)))
                snap = c.snapshot()
            assert snap["position"] == 200
            assert (state_dir / snap["path"].split("/")[-1]).exists()
        # Fresh boot into the now-dirty directory must refuse.
        with pytest.raises(ValueError, match="resume_from"):
            PlacementService(graph, config=config,
                             snapshot_dir=state_dir)

    def test_simulated_crash_resume_answers_acked_lookups(
            self, graph, config, tmp_path):
        state_dir = tmp_path / "state"
        svc = PlacementService.start(graph, config=config,
                                     snapshot_dir=state_dir,
                                     snapshot_every=150)
        acked = {}
        with ServiceClient(*svc.address) as c:
            for res in c.place_batch(list(range(0, 300))):
                acked[res["vertex"]] = res["pid"]
            # A few out-of-order + explicit-neighbor placements too.
            res = c.place(450, neighbors=[0, 1, 2])
            acked[450] = res["pid"]
            res = c.place(400)
            acked[400] = res["pid"]
        # Simulated SIGKILL: no close(), no final snapshot — only what
        # the WAL and periodic snapshots made durable survives.
        svc._listener.close()

        with PlacementService.start(graph, config=config,
                                    snapshot_dir=state_dir,
                                    resume_from=state_dir) as revived:
            with ServiceClient(*revived.address) as c:
                stats = c.stats()
                assert stats["position"] == len(acked)
                assert "resumed_from" in stats
                for vertex, pid in acked.items():
                    assert c.lookup(vertex) == pid, vertex

    def test_resume_continues_fused_after_ordered_history(
            self, graph, config, tmp_path):
        state_dir = tmp_path / "state"
        svc = PlacementService.start(graph, config=config,
                                     snapshot_dir=state_dir)
        with ServiceClient(*svc.address) as c:
            c.place_batch(list(range(0, 256)))
        svc._listener.close()  # crash

        with PlacementService.start(graph, config=config,
                                    snapshot_dir=state_dir,
                                    resume_from=state_dir) as revived:
            with ServiceClient(*revived.address) as c:
                c.place_batch(list(range(256, N)))
                stats = c.stats()
            assert stats["placements"] == N
            assert stats["fast_path"]["active"] is True
            assert stats["fast_path"]["fused_placements"] == N - 256


class TestFacade:
    def test_serve_connect_compose(self, graph, config):
        with repro.serve(graph, config) as service, \
                repro.connect(service) as client:
            pid = client.place(0)["pid"]
            assert client.lookup(0) == pid
            assert client.server_info["protocol"] == 1


class TestResilience:
    """Revision 1.1 surface: deadlines, degraded modes, recovery."""

    def test_hello_advertises_the_revision(self, client):
        assert client.server_info["revision"] == "1.2"

    def test_health_reports_state_and_shed_rate(self, client):
        health = client.health()
        assert health["health_state"] == "healthy"
        assert health["shed_rate"] == 0.0
        assert health["health_transitions"] == 0

    def test_stats_report_admission_and_health(self, client):
        client.place_batch(list(range(32)))
        stats = client.stats()
        assert stats["health"]["health_state"] == "healthy"
        assert stats["admission"]["accepted"] >= 1
        assert stats["admission"]["shed_rate"] == 0.0
        assert stats["deadline_expired_in_queue"] == 0
        assert "durability" not in stats  # volatile server

    def test_durable_stats_report_pending_wal(self, graph, config,
                                              tmp_path):
        with PlacementService.start(graph, config=config,
                                    snapshot_dir=tmp_path / "s") as svc:
            with ServiceClient(*svc.address) as c:
                c.place_batch(list(range(16)))
                stats = c.stats()
        assert stats["durability"]["wal_pending"] == 0
        assert stats["durability"]["snapshot_failures"] == 0

    def test_generous_deadline_is_met(self, client):
        result = client.place(0, deadline_ms=10_000)
        assert "pid" in result

    def test_hopeless_deadline_is_shed_with_the_typed_error(
            self, graph, config):
        from repro.service import DeadlineExceededError

        # A throttled engine + warmed EWMA makes the expected wait
        # provably exceed a 1 ms budget at admission time.
        with PlacementService.start(graph, config=config,
                                    throttle_seconds=0.05) as svc:
            with ServiceClient(*svc.address) as c:
                c.place_batch(list(range(64)))  # warm the lag EWMA
                with pytest.raises(DeadlineExceededError):
                    for v in range(64, N):
                        c.place(v, deadline_ms=0.001)

    def test_invalid_deadline_is_a_bad_request(self, client):
        with pytest.raises(ServiceError) as info:
            client.request("place", vertex=0, deadline_ms=-5)
        assert info.value.code == "bad-request"

    def test_wal_outage_degrades_to_read_only_and_recovers(
            self, graph, config, tmp_path):
        from repro.recovery.chaos import FlakyWAL
        from repro.service import ReadOnlyError

        holder = {}

        def factory(directory, *, start=0, fsync=True):
            holder["wal"] = FlakyWAL(directory, start=start, fsync=fsync)
            return holder["wal"]

        with PlacementService.start(graph, config=config,
                                    snapshot_dir=tmp_path / "state",
                                    wal_factory=factory) as svc:
            with ServiceClient(*svc.address) as c:
                c.place_batch(list(range(32)))
                holder["wal"].fail()
                with pytest.raises(ReadOnlyError):
                    c.place(32)
                assert svc.health_state == "read_only"
                # The read path keeps serving while degraded.
                assert c.lookup(0) is not None
                # Recovery while the disk is still broken fails safe.
                assert svc.try_recover()["recovered"] is False
                holder["wal"].restore()
                recovery = svc.try_recover()
                assert recovery["recovered"] is True
                assert svc.health_state == "healthy"
                c.place(32)  # mutations flow again

    def test_acked_survive_an_outage_recovery_crash_cycle(
            self, graph, config, tmp_path):
        from repro.recovery.chaos import FlakyWAL
        from repro.service import ReadOnlyError

        holder = {}

        def factory(directory, *, start=0, fsync=True):
            holder["wal"] = FlakyWAL(directory, start=start, fsync=fsync)
            return holder["wal"]

        state_dir = tmp_path / "state"
        svc = PlacementService.start(graph, config=config,
                                     snapshot_dir=state_dir,
                                     wal_factory=factory)
        acked = {}
        with ServiceClient(*svc.address) as c:
            for r in c.place_batch(list(range(48))):
                acked[r["vertex"]] = r["pid"]
            holder["wal"].fail()
            with pytest.raises(ReadOnlyError):
                c.place_batch(list(range(48, 64)))
            holder["wal"].restore()
            svc.try_recover()
            for r in c.place_batch(list(range(48, 64))):
                acked[r["vertex"]] = r["pid"]
        svc._listener.close()  # crash, no graceful drain

        with PlacementService.start(graph, config=config,
                                    snapshot_dir=state_dir,
                                    resume_from=state_dir) as revived:
            with ServiceClient(*revived.address) as c:
                for vertex, pid in acked.items():
                    assert c.lookup(vertex) == pid, vertex

    def test_retries_exhausted_is_typed_and_bounded(self, graph, config):
        import time

        from repro.service import RetriesExhausted

        # Park the engine inside a 0.6 s throttled group and queue one
        # request behind it: queue_depth 1 puts the watermark at depth
        # 1, so every admission while the queue is occupied sheds.  A
        # 2-retry budget (~100 ms of jittered sleep) exhausts long
        # before the engine drains -- deterministically, no racing.
        with PlacementService.start(graph, config=config, queue_depth=1,
                                    throttle_seconds=0.6) as svc:
            with ServiceClient(*svc.address) as b1, \
                    ServiceClient(*svc.address) as b2, \
                    ServiceClient(*svc.address) as c:
                threads = [
                    threading.Thread(target=b1.place, args=(100,),
                                     daemon=True),
                    threading.Thread(target=b2.place, args=(101,),
                                     daemon=True),
                ]
                threads[0].start()
                time.sleep(0.2)   # engine took it, throttling now
                threads[1].start()
                time.sleep(0.1)   # second request parked in the queue
                with pytest.raises(RetriesExhausted) as info:
                    c.place(102, retries=2)
                assert info.value.attempts == 3
                assert isinstance(info.value.last_error,
                                  BackpressureError)
                for t in threads:
                    t.join(timeout=10)

    def test_circuit_breaker_fails_fast_after_read_only(
            self, graph, config, tmp_path):
        from repro.recovery.chaos import FlakyWAL
        from repro.resilience.policy import (
            CircuitBreaker,
            CircuitOpenError,
        )
        from repro.service import ReadOnlyError

        holder = {}

        def factory(directory, *, start=0, fsync=True):
            holder["wal"] = FlakyWAL(directory, start=start, fsync=fsync)
            return holder["wal"]

        with PlacementService.start(graph, config=config,
                                    snapshot_dir=tmp_path / "state",
                                    wal_factory=factory) as svc:
            breaker = CircuitBreaker(failure_threshold=2,
                                     reset_after=30.0)
            with ServiceClient(*svc.address, breaker=breaker) as c:
                holder["wal"].fail()
                for _ in range(2):
                    with pytest.raises(ReadOnlyError):
                        c.place(0)
                # Third call never reaches the wire.
                with pytest.raises(CircuitOpenError):
                    c.place(1)
                assert breaker.trips == 1
                assert breaker.fast_failures >= 1
