"""Wire-protocol unit tests: framing, versioning, error codes."""

import json

import pytest

from repro.service.protocol import (
    MAX_LINE_BYTES,
    OPS,
    PROTOCOL_VERSION,
    SUPPORTED_PROTOCOLS,
    ProtocolError,
    decode_line,
    encode_message,
    error_body,
    validate_request,
)


class TestFraming:
    def test_encode_is_one_newline_terminated_compact_line(self):
        frame = encode_message({"protocol": 1, "op": "hello", "id": 1})
        assert frame.endswith(b"\n")
        assert frame.count(b"\n") == 1
        assert b" " not in frame  # compact separators

    def test_round_trip(self):
        msg = {"protocol": 1, "op": "place", "id": 9, "vertex": 42,
               "neighbors": [1, 2, 3]}
        assert decode_line(encode_message(msg)) == msg

    def test_unicode_round_trip(self):
        msg = {"protocol": 1, "op": "hello", "id": 1, "note": "Γ δ"}
        assert decode_line(encode_message(msg)) == msg

    def test_decode_rejects_non_json(self):
        with pytest.raises(ProtocolError) as exc:
            decode_line(b"not json\n")
        assert exc.value.code == "bad-request"

    def test_decode_rejects_non_object(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            decode_line(b"[1, 2, 3]\n")

    def test_decode_rejects_oversized_frame(self):
        line = b'"' + b"x" * MAX_LINE_BYTES + b'"\n'
        with pytest.raises(ProtocolError, match="line limit"):
            decode_line(line)

    def test_decode_rejects_invalid_utf8(self):
        with pytest.raises(ProtocolError):
            decode_line(b'{"op": "\xff\xfe"}\n')


class TestValidateRequest:
    def _req(self, **over):
        req = {"protocol": PROTOCOL_VERSION, "op": "place", "id": 1}
        req.update(over)
        return req

    @pytest.mark.parametrize("op", OPS)
    def test_every_v1_op_validates(self, op):
        assert validate_request(self._req(op=op)) == op

    def test_missing_protocol_is_unsupported(self):
        req = self._req()
        del req["protocol"]
        with pytest.raises(ProtocolError) as exc:
            validate_request(req)
        assert exc.value.code == "unsupported-protocol"

    def test_future_protocol_is_unsupported(self):
        with pytest.raises(ProtocolError) as exc:
            validate_request(self._req(protocol=99))
        assert exc.value.code == "unsupported-protocol"
        assert str(list(SUPPORTED_PROTOCOLS)) in str(exc.value)

    def test_missing_op(self):
        req = self._req()
        del req["op"]
        with pytest.raises(ProtocolError, match="missing the 'op'"):
            validate_request(req)

    def test_unknown_op_lists_the_vocabulary(self):
        with pytest.raises(ProtocolError, match="hello"):
            validate_request(self._req(op="explode"))

    def test_additive_rule_ignores_unknown_fields(self):
        # The versioning contract: extra fields are never an error.
        req = self._req(shiny_new_field=True, another={"nested": 1})
        assert validate_request(req) == "place"


class TestErrorBody:
    def test_shape_and_extras(self):
        body = error_body("backpressure", "queue full", retry_after_ms=20)
        assert body == {"code": "backpressure", "message": "queue full",
                        "retry_after_ms": 20}

    def test_error_body_is_json_serializable(self):
        assert json.loads(json.dumps(error_body("internal", "boom")))
