"""Service-suite fixtures: /dev/shm leak check for the sharded engine.

A sharded :class:`~repro.service.PlacementService` owns a
``ShardedScorePool`` whose shared-memory segments must be unlinked on
*every* teardown path — graceful close, boot failure, worker-pool
failure, chaos crash-stop.  The autouse fixture fails any test that
leaves a ``psm_*``/``shm_*`` segment behind (same rationale as
``tests/parallel/conftest.py``: leaks surface as ENOSPC in unrelated
suites, not where they were caused).
"""

from __future__ import annotations

import os

import pytest

_SHM_DIR = "/dev/shm"
_PREFIXES = ("psm_", "shm_")


def _shm_segments() -> set[str]:
    if not os.path.isdir(_SHM_DIR):  # non-Linux: nothing to check
        return set()
    try:
        names = os.listdir(_SHM_DIR)
    except OSError:
        return set()
    return {n for n in names if n.startswith(_PREFIXES)}


@pytest.fixture(autouse=True)
def shm_leak_check():
    before = _shm_segments()
    yield
    leaked = _shm_segments() - before
    assert not leaked, (
        f"test leaked {len(leaked)} shared-memory segment(s) in "
        f"{_SHM_DIR}: {sorted(leaked)} — a pool teardown path failed "
        f"to unlink")
