"""Service chaos suite: SIGKILL the server process, resume, verify acks.

The durability contract under test is exactly the one ``docs/service.md``
states: once the server acknowledges a placement, a crash (the real
thing here — ``SIGKILL`` to a live subprocess, not an injected
exception) followed by ``--resume-from`` answers every acknowledged
``lookup`` identically.
"""

import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

import repro
from repro.graph import community_web_graph, write_adjacency
from repro.service import ServiceClient

pytestmark = pytest.mark.chaos

K = 4


def _spawn_serve(graph_file: Path, state_dir: Path, *,
                 resume: bool = False) -> tuple[subprocess.Popen,
                                                tuple[str, int]]:
    src_root = Path(repro.__file__).resolve().parents[1]
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(src_root), env.get("PYTHONPATH", "")]).rstrip(os.pathsep)
    cmd = [sys.executable, "-m", "repro", "serve", str(graph_file),
           "-k", str(K), "--snapshot-dir", str(state_dir),
           "--snapshot-every", "100"]
    if resume:
        cmd += ["--resume-from", str(state_dir)]
    proc = subprocess.Popen(cmd, env=env, stdout=subprocess.PIPE,
                            stderr=subprocess.DEVNULL, text=True)
    line = proc.stdout.readline().strip()  # "listening on HOST:PORT"
    assert line.startswith("listening on "), line
    host, port = line.rsplit(" ", 1)[-1].rsplit(":", 1)
    return proc, (host, int(port))


@pytest.fixture(scope="module")
def graph_file(tmp_path_factory):
    graph = community_web_graph(1200, avg_degree=8, seed=11)
    path = tmp_path_factory.mktemp("chaos-graph") / "web.adj"
    write_adjacency(graph, path)
    return path


class TestSigkillResume:
    def test_no_acked_placement_is_lost(self, graph_file, tmp_path):
        state_dir = tmp_path / "state"
        proc, address = _spawn_serve(graph_file, state_dir)
        acked: dict[int, int] = {}
        lock = threading.Lock()
        stop = threading.Event()

        def traffic() -> None:
            try:
                with ServiceClient(*address) as client:
                    vertex = 0
                    while not stop.is_set() and vertex < 1200:
                        batch = list(range(vertex, vertex + 40))
                        results = client.place_batch(batch, retries=20)
                        with lock:
                            for res in results:
                                acked[res["vertex"]] = res["pid"]
                        vertex += 40
                        time.sleep(0.005)
            except Exception:
                # The SIGKILL severs the connection mid-request; whatever
                # response never arrived was never acked.
                pass

        thread = threading.Thread(target=traffic, daemon=True)
        thread.start()
        # Let real traffic flow (past at least one periodic snapshot),
        # then kill the process without any chance to clean up.
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            with lock:
                if len(acked) >= 300:
                    break
            time.sleep(0.01)
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=10)
        stop.set()
        thread.join(timeout=10)
        with lock:
            assert len(acked) >= 300, "chaos run acked too little traffic"

        revived, address = _spawn_serve(graph_file, state_dir, resume=True)
        try:
            with ServiceClient(*address) as client:
                stats = client.stats()
                assert stats["position"] >= len(acked)
                with lock:
                    for vertex, pid in acked.items():
                        assert client.lookup(vertex) == pid, vertex
                # The revived server keeps serving new traffic.
                rest = [v for v in range(1200) if v not in acked]
                for start in range(0, len(rest), 100):
                    client.place_batch(rest[start:start + 100],
                                       retries=20)
                assert client.stats()["placements"] == 1200
        finally:
            revived.send_signal(signal.SIGTERM)
            assert revived.wait(timeout=30) == 0

    def test_sigterm_drains_gracefully(self, graph_file, tmp_path):
        proc, address = _spawn_serve(graph_file, tmp_path / "state")
        with ServiceClient(*address) as client:
            client.place_batch(list(range(100)))
        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=30) == 0
