"""serve-bench artifact tests: structure, metrics extraction, gating."""

import json

import pytest

from repro.bench.compare import (
    compare_artifacts,
    extract_identity_flags,
    extract_metrics,
)
from repro.graph import community_web_graph
from repro.partitioning.config import PartitionConfig
from repro.service.loadgen import run_service_bench


@pytest.fixture(scope="module")
def artifact(tmp_path_factory):
    out = tmp_path_factory.mktemp("serve-bench") / "BENCH_service.json"
    graph = community_web_graph(800, avg_degree=8, seed=9)
    return run_service_bench(
        graph, config=PartitionConfig(method="spnl", num_partitions=8),
        clients=2, batch_size=64, lookups_per_client=50,
        repeats=2, warmup=0, durable=False, out_path=out), out


class TestArtifact:
    def test_structure(self, artifact):
        art, _ = artifact
        assert art["benchmark"] == "service-bench"
        assert "machine" in art and "config" in art
        endpoints = {r["endpoint"] for r in art["results"]}
        assert endpoints == {"place_batch", "lookup"}
        place = art["results"][0]
        for quantile in ("p50", "p95", "p99"):
            summary = place[quantile]
            assert len(summary["runs_s"]) == 2
            assert summary["min_s"] <= summary["median_s"] \
                <= summary["max_s"]
        assert place["placements_per_s"]["median"] > 0

    def test_meets_the_throughput_floor(self, artifact):
        # The PR's acceptance bar: >= 1000 placements/s sustained, with
        # latency percentiles captured in the artifact.
        art, _ = artifact
        assert art["results"][0]["placements_per_s"]["median"] >= 1000

    def test_written_file_is_the_returned_artifact(self, artifact):
        art, out = artifact
        assert json.loads(out.read_text(encoding="utf-8")) == art

    def test_extract_metrics_keys(self, artifact):
        art, _ = artifact
        metrics = extract_metrics(art)
        for key in ("place_batch/p50", "place_batch/p95",
                    "place_batch/p99", "lookup/p50", "lookup/p99"):
            assert key in metrics, key
            assert len(metrics[key]) == 2

    def test_identity_flag_rides_the_compare_machinery(self, artifact):
        art, _ = artifact
        flags = extract_identity_flags(art)
        if "reordered_repeats" in art["results"][0] \
                and art["results"][0].get("identical") is not None:
            assert flags.get("place_batch/identical") is True

    def test_self_comparison_gates_clean(self, artifact):
        art, _ = artifact
        result = compare_artifacts(art, art)
        assert result.gate_exit_code() == 0
        assert not result.regressions


class TestKnobs:
    def test_target_rps_paces_the_feed(self):
        graph = community_web_graph(300, avg_degree=6, seed=2)
        art = run_service_bench(
            graph, config=PartitionConfig(method="spnl",
                                          num_partitions=4),
            clients=1, batch_size=150, lookups_per_client=5,
            repeats=1, warmup=0, durable=False, target_rps=20,
            out_path=None)
        # 2 requests paced at 20 rps across 1 client -> >= ~50 ms wall.
        assert art["results"][0]["placements_per_s"]["median"] < 300 / 0.05
        assert art["config"]["target_rps"] == 20
