"""Placement-WAL unit tests: durability, rotation, pruning, replay."""

import pytest

from repro.service.wal import (
    PlacementLog,
    WalEntry,
    replay_entries,
    wal_segments,
)


def entries(start, count, *, neighbors=None):
    return [WalEntry(seq=start + i, vertex=start + i,
                     neighbors=neighbors, pid=i % 4)
            for i in range(count)]


class TestAppendReplay:
    def test_round_trip(self, tmp_path):
        log = PlacementLog(tmp_path)
        batch = entries(0, 5)
        log.append_batch(batch)
        log.close()
        assert list(replay_entries(tmp_path)) == batch
        assert log.appended == 5

    def test_explicit_neighbors_survive(self, tmp_path):
        log = PlacementLog(tmp_path)
        log.append_batch([WalEntry(0, 7, [1, 2, 9], 3)])
        log.close()
        (entry,) = replay_entries(tmp_path)
        assert entry.neighbors == [1, 2, 9]
        assert entry.pid == 3

    def test_empty_batch_is_a_noop(self, tmp_path):
        log = PlacementLog(tmp_path)
        log.append_batch([])
        log.close()
        assert list(replay_entries(tmp_path)) == []
        assert log.appended == 0

    def test_from_position_skips_snapshotted_prefix(self, tmp_path):
        log = PlacementLog(tmp_path)
        log.append_batch(entries(0, 10))
        log.close()
        tail = list(replay_entries(tmp_path, from_position=7))
        assert [e.seq for e in tail] == [7, 8, 9]


class TestRotation:
    def test_rotate_starts_a_new_segment(self, tmp_path):
        log = PlacementLog(tmp_path)
        log.append_batch(entries(0, 3))
        first = log.active_path
        log.rotate(3)
        assert log.active_path != first
        assert log.active_path.name == "wal-000000000003.jsonl"
        log.append_batch(entries(3, 2))
        log.close()
        assert [e.seq for e in replay_entries(tmp_path)] == list(range(5))

    def test_reopening_a_base_appends_instead_of_clobbering(self, tmp_path):
        # A crash-reboot before any snapshot reopens segment base 0; the
        # durable lines already in it must survive.
        log = PlacementLog(tmp_path)
        log.append_batch(entries(0, 3))
        log.close()
        log = PlacementLog(tmp_path, start=0)
        log.append_batch(entries(3, 2))
        log.close()
        assert [e.seq for e in replay_entries(tmp_path)] == list(range(5))

    def test_prune_drops_only_wholly_covered_segments(self, tmp_path):
        log = PlacementLog(tmp_path)
        log.append_batch(entries(0, 3))
        log.rotate(3)
        log.append_batch(entries(3, 3))
        log.rotate(6)
        log.append_batch(entries(6, 2))
        # Snapshot at position 6 covers segments [0,3) and [3,6).
        removed = log.prune(6)
        log.close()
        assert removed == 2
        assert [base for base, _ in wal_segments(tmp_path)] == [6]
        assert [e.seq for e in replay_entries(tmp_path,
                                              from_position=6)] == [6, 7]

    def test_prune_never_removes_the_active_segment(self, tmp_path):
        log = PlacementLog(tmp_path)
        log.append_batch(entries(0, 2))
        assert log.prune(10) == 0
        log.close()
        assert len(wal_segments(tmp_path)) == 1


class TestCorruption:
    def test_torn_final_line_is_silently_dropped(self, tmp_path):
        log = PlacementLog(tmp_path)
        log.append_batch(entries(0, 4))
        log.close()
        path = wal_segments(tmp_path)[0][1]
        with open(path, "ab") as fh:  # the crash landed mid-write
            fh.write(b'{"s":4,"v":4,"n":nu')
        assert [e.seq for e in replay_entries(tmp_path)] == [0, 1, 2, 3]

    def test_corruption_followed_by_data_raises(self, tmp_path):
        log = PlacementLog(tmp_path)
        log.append_batch(entries(0, 2))
        path = log.active_path
        log.close()
        raw = path.read_bytes()
        lines = raw.strip().split(b"\n")
        path.write_bytes(lines[0] + b"\n" + b"garbage\n" + lines[1] + b"\n")
        with pytest.raises(ValueError, match="corrupt WAL line"):
            list(replay_entries(tmp_path))

    def test_sequence_gap_raises(self, tmp_path):
        log = PlacementLog(tmp_path)
        log.append_batch([WalEntry(0, 0, None, 0), WalEntry(2, 2, None, 1)])
        log.close()
        with pytest.raises(ValueError, match="sequence gap"):
            list(replay_entries(tmp_path))

    def test_missing_prefix_is_a_gap_not_a_silent_skip(self, tmp_path):
        # Replay from position 0 against a log whose first entry is 5:
        # a deleted segment must be loud, not quietly absorbed.
        log = PlacementLog(tmp_path, start=5)
        log.append_batch(entries(5, 2))
        log.close()
        with pytest.raises(ValueError, match="sequence gap"):
            list(replay_entries(tmp_path, from_position=0))

    def test_empty_directory_replays_nothing(self, tmp_path):
        assert list(replay_entries(tmp_path / "nowhere")) == []


class TestRotationEdgeCases:
    """Crash/corruption cases at segment boundaries — the places where
    'torn tail is fine, mid-stream damage is not' gets subtle."""

    def test_torn_final_line_of_active_segment_after_rotation(
            self, tmp_path):
        # Crash mid-write *after* a rotation: only the torn tail of the
        # newest segment drops; the rotated-away prefix stays whole.
        log = PlacementLog(tmp_path)
        log.append_batch(entries(0, 4))
        log.rotate(4)
        log.append_batch(entries(4, 2))
        log.close()
        with open(log.active_path, "ab") as fh:
            fh.write(b'{"s":6,"v":6,"n":nul')
        assert [e.seq for e in replay_entries(tmp_path)] == [0, 1, 2, 3,
                                                             4, 5]

    def test_torn_line_at_rotation_boundary_followed_by_data_raises(
            self, tmp_path):
        # A torn line at the END of a rotated-away segment is not a
        # mid-write crash tail — valid lines follow in the next segment,
        # so replaying past it would silently drop an acked placement.
        log = PlacementLog(tmp_path)
        log.append_batch(entries(0, 3))
        first_segment = log.active_path
        log.rotate(4)
        log.append_batch(entries(4, 2))
        log.close()
        with open(first_segment, "ab") as fh:
            fh.write(b'{"s":3,"v":3,"n":nu')
        with pytest.raises(ValueError, match="followed by"):
            list(replay_entries(tmp_path))

    def test_sequence_gap_across_rotation_boundary_raises(self, tmp_path):
        # Segment files individually valid, but a whole commit vanished
        # between them (rotate skipped seq 3): replay must refuse.
        log = PlacementLog(tmp_path)
        log.append_batch(entries(0, 3))
        log.rotate(4)
        log.append_batch(entries(4, 2))
        log.close()
        with pytest.raises(ValueError, match="sequence gap"):
            list(replay_entries(tmp_path))


class TestFlakyWALGroupCommit:
    """Injected fsync failure mid-group-commit (the FlakyWAL model):
    a failed commit leaves zero bytes behind and a later retry of the
    same entries lands cleanly."""

    def test_failed_commit_writes_nothing(self, tmp_path):
        from repro.recovery.chaos import FlakyWAL

        log = FlakyWAL(tmp_path)
        log.append_batch(entries(0, 2))
        log.fail()
        with pytest.raises(OSError, match="injected WAL append"):
            log.append_batch(entries(2, 2))
        log.close()
        assert log.injected_failures == 1
        # Nothing of the failed group reached disk: replay is clean.
        assert [e.seq for e in replay_entries(tmp_path)] == [0, 1]

    def test_restore_then_reflush_is_gapless(self, tmp_path):
        from repro.recovery.chaos import FlakyWAL

        log = FlakyWAL(tmp_path)
        log.append_batch(entries(0, 2))
        log.fail()
        with pytest.raises(OSError):
            log.append_batch(entries(2, 2))
        log.restore()
        assert not log.armed
        log.append_batch(entries(2, 2))  # the recovery flush
        log.close()
        assert [e.seq for e in replay_entries(tmp_path)] == [0, 1, 2, 3]

    def test_fail_at_seq_fires_once(self, tmp_path):
        from repro.recovery.chaos import FlakyWAL

        log = FlakyWAL(tmp_path, fail_at={1})
        with pytest.raises(OSError, match="seq \\[1\\]"):
            log.append_batch(entries(0, 3))
        log.append_batch(entries(0, 3))  # same batch, second try: clean
        log.close()
        assert log.injected_failures == 1
        assert [e.seq for e in replay_entries(tmp_path)] == [0, 1, 2]
