"""Sharded scoring engine + lock-free read path (the multicore server).

Three contracts under test:

* **Byte parity** — at the same group size M, the sharded engine
  (``processes=N``) produces the identical route table *and* identical
  WAL bytes as the single-process grouped engine, and both match the
  deterministic :class:`~repro.parallel.SimulatedParallelPartitioner`
  at the same M.  Worker processes are a throughput knob, never a
  semantics knob.
* **Durability under worker death** — SIGKILLing a scoring worker
  (including mid-group, via the pool's barrier hook) loses no acked
  placement: supervision respawns the worker and the stream completes
  with the same bytes.
* **Acked-only reads** — ``lookup``/``stats`` serve from a
  seqlock-versioned view published only after a group's WAL fsync, so
  concurrent readers can never observe an unacked or torn placement,
  even while the WAL is failing or the writer is held mid-publish.
"""

import os
import signal
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro import PartitionConfig
from repro.graph import GraphStream, community_web_graph
from repro.parallel import SimulatedParallelPartitioner
from repro.service import PlacementService, ServiceClient, ServiceError

K = 8
N = 384
M = 8          # scoring group size; batches below stay multiples of M
BATCH = 64


@pytest.fixture(scope="module")
def graph():
    return community_web_graph(N, avg_degree=8, seed=5)


@pytest.fixture(scope="module")
def config():
    return PartitionConfig(method="spnl", num_partitions=K)


@pytest.fixture(scope="module")
def simulated_route(graph, config):
    """The M-grouped deterministic reference (use_rct=False, like the
    service engine)."""
    sim = SimulatedParallelPartitioner(
        config.make(), parallelism=M, use_rct=False)
    return sim.partition(GraphStream(graph)).assignment.route


def _place_all(svc):
    with ServiceClient(*svc.address) as client:
        for start in range(0, N, BATCH):
            client.place_batch(list(range(start, start + BATCH)))


def _wal_bytes(snapshot_dir: Path) -> bytes:
    return b"".join(p.read_bytes()
                    for p in sorted(snapshot_dir.glob("wal-*")))


class TestByteParity:
    def test_processes_is_a_throughput_knob_only(self, graph, config,
                                                 tmp_path,
                                                 simulated_route):
        """Same M, same trace: route and WAL bytes identical at
        processes=1 and processes=2, both equal to the simulated
        M-executor."""
        routes, wal_blobs = [], []
        for procs in (1, 2):
            state = tmp_path / f"state-p{procs}"
            with PlacementService.start(
                    graph, config=config, snapshot_dir=state,
                    parallelism=M, processes=procs) as svc:
                _place_all(svc)
                routes.append(np.array(svc._state.route))
                wal_blobs.append(_wal_bytes(state))
                engine = svc.stats()["engine"]
                assert engine["m_aligned"] is True
                assert engine["wal_pipeline"] is True
                if procs == 2:
                    assert engine["mode"] == "sharded"
                    assert engine["pool_chunks"] > 0
        assert np.array_equal(routes[0], routes[1])
        assert wal_blobs[0] == wal_blobs[1]
        assert len(wal_blobs[0]) > 0
        assert np.array_equal(routes[0], simulated_route)

    def test_engine_stats_surface(self, graph, config):
        with PlacementService.start(graph, config=config,
                                    parallelism=M, processes=2) as svc:
            _place_all(svc)
            stats = svc.stats()
            engine = stats["engine"]
            assert engine["processes"] == 2
            assert engine["parallelism"] == M
            assert engine["chunks_scored"] >= N // M
            assert engine["worker_restarts"] == 0
            # Volatile server: no WAL, so nothing to pipeline.
            assert engine["wal_pipeline"] is False
            view = stats["read_view"]
            assert view["seq"] % 2 == 0
            assert view["retries"] >= 0


class TestWorkerDeath:
    def test_mid_group_sigkill_loses_nothing(self, graph, config,
                                             tmp_path,
                                             simulated_route):
        """SIGKILL a worker inside a group's dispatch window: the
        group retries on the respawned pool and the full stream still
        lands byte-identical, with every acked placement in the WAL."""
        state = tmp_path / "state"
        with PlacementService.start(
                graph, config=config, snapshot_dir=state,
                parallelism=M, processes=2) as svc:
            pool = svc._pool

            def hook(group_index, procs):
                pool.barrier_hook = None  # one-shot
                victim = procs[0]
                if victim is not None and victim.is_alive():
                    os.kill(victim.pid, signal.SIGKILL)

            with ServiceClient(*svc.address) as client:
                client.place_batch(list(range(0, BATCH)))
                pool.barrier_hook = hook
                for start in range(BATCH, N, BATCH):
                    client.place_batch(
                        list(range(start, start + BATCH)))
            assert svc.stats()["engine"]["worker_restarts"] >= 1
            assert np.array_equal(svc._state.route, simulated_route)
            final_route = np.array(svc._state.route)

        # Every acked placement survived into durable state: a cold
        # resume reconstructs the identical route table.
        with PlacementService(graph, config=config,
                              resume_from=state) as revived:
            assert np.array_equal(revived._state.route, final_route)


class TestAckedOnlyReads:
    def test_lookup_never_observes_unacked_placements(
            self, graph, config, tmp_path):
        """While the WAL is failing, applied-but-unacked placements
        stay invisible to lookup/stats; recovery (which makes them
        durable) is what publishes them."""
        from repro.recovery.chaos import FlakyWAL

        holder = {}

        def factory(directory, *, start=0, fsync=True):
            holder["wal"] = FlakyWAL(directory, start=start, fsync=fsync)
            return holder["wal"]

        with PlacementService.start(
                graph, config=config, snapshot_dir=tmp_path / "state",
                wal_factory=factory, parallelism=M) as svc:
            with ServiceClient(*svc.address) as client:
                client.place_batch(list(range(0, BATCH)))
                holder["wal"].fail()
                with pytest.raises(ServiceError) as err:
                    client.place_batch(list(range(BATCH, 2 * BATCH)))
                assert err.value.code == "read_only"
                # The engine applied the group in memory...
                assert int(svc._state.route[BATCH]) >= 0
                # ...but no reader may see it: it was never acked.
                for v in range(BATCH, 2 * BATCH):
                    assert client.lookup(v) is None
                stats = client.stats()
                assert stats["placements"] == BATCH
                assert sum(stats["loads"]) == BATCH

                holder["wal"].restore()
                assert svc.try_recover()["recovered"] is True
                # Recovery flushed the parked entries to the WAL —
                # now durable, now visible.
                for v in range(BATCH, 2 * BATCH):
                    assert client.lookup(v) == int(svc._state.route[v])

    def test_concurrent_lookups_stay_consistent_under_churn(
            self, graph, config):
        """Lookups racing the publish path: an already-acked vertex
        always answers its (immutable) pid, and the stats snapshot is
        never torn — published loads always sum to published
        placements.  ``hold_seconds`` widens the seqlock's odd window
        so the retry path provably runs."""
        with PlacementService.start(graph, config=config,
                                    parallelism=M) as svc:
            with ServiceClient(*svc.address) as writer:
                writer.place_batch(list(range(0, BATCH)))
                expected = {v: int(svc._state.route[v])
                            for v in range(BATCH)}
                svc._read_view.hold_seconds = 0.002
                stop = threading.Event()
                failures: list[str] = []

                def reader():
                    try:
                        with ServiceClient(*svc.address) as c:
                            while not stop.is_set():
                                for v in (0, 7, 31, BATCH - 1):
                                    got = c.lookup(v)
                                    if got != expected[v]:
                                        failures.append(
                                            f"v{v}: {got} != "
                                            f"{expected[v]}")
                                stats = c.stats()
                                if (sum(stats["loads"])
                                        != stats["placements"]):
                                    failures.append(
                                        f"torn stats: {stats['loads']}"
                                        f" vs {stats['placements']}")
                    except Exception as exc:  # surfaced below
                        failures.append(repr(exc))

                thread = threading.Thread(target=reader, daemon=True)
                thread.start()
                try:
                    for start in range(BATCH, N, M):
                        writer.place_batch(
                            list(range(start, start + M)))
                        time.sleep(0.001)
                finally:
                    stop.set()
                    thread.join(10.0)
                svc._read_view.hold_seconds = 0.0
                assert not failures, failures[:5]
                assert svc._read_view.retries > 0

    def test_reads_keep_serving_while_read_only(self, graph, config,
                                                tmp_path):
        from repro.recovery.chaos import FlakyWAL

        holder = {}

        def factory(directory, *, start=0, fsync=True):
            holder["wal"] = FlakyWAL(directory, start=start, fsync=fsync)
            return holder["wal"]

        with PlacementService.start(
                graph, config=config, snapshot_dir=tmp_path / "state",
                wal_factory=factory, parallelism=M, processes=2) as svc:
            with ServiceClient(*svc.address) as client:
                client.place_batch(list(range(0, BATCH)))
                holder["wal"].fail()
                with pytest.raises(ServiceError):
                    client.place_batch(
                        list(range(BATCH, 2 * BATCH)))
                assert client.health()["health_state"] == "read_only"
                assert client.lookup(0) == int(svc._state.route[0])
                assert client.stats()["placements"] == BATCH
