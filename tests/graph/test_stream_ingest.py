"""Stream-layer contracts added with the ingest pipeline.

Covers the :func:`as_array_stream` exact-type dispatch (subclasses that
override iteration must NOT be flattened to CSR arrays), the memoized
``FileStream.is_id_ordered`` verdict, and its invalidation when a
``seek`` observes that the underlying file changed.
"""

from __future__ import annotations

import os

import numpy as np

from repro.graph import FileStream, GraphStream, write_adjacency
from repro.graph.stream import ArrayStream, as_array_stream


class _TruncatingStream(GraphStream):
    """A subclass that yields only the first half of the records."""

    def __iter__(self):
        records = list(super().__iter__())
        yield from records[:len(records) // 2]


class _ReversingArrayStream(ArrayStream):
    def __iter__(self):
        yield from reversed(list(super().__iter__()))


class TestAsArrayStreamDispatch:
    def test_exact_graph_stream_converts(self, tiny_graph):
        arrays = as_array_stream(GraphStream(tiny_graph))
        assert isinstance(arrays, ArrayStream)

    def test_exact_array_stream_returns_self(self, tiny_graph):
        stream = ArrayStream.from_graph(tiny_graph)
        assert as_array_stream(stream) is stream

    def test_graph_stream_subclass_falls_back(self, tiny_graph):
        """Overridden ``__iter__`` semantics must survive: converting a
        subclass to raw CSR arrays would silently bypass them."""
        assert as_array_stream(_TruncatingStream(tiny_graph)) is None

    def test_array_stream_subclass_falls_back(self, tiny_graph):
        stream = _ReversingArrayStream.from_graph(tiny_graph)
        assert as_array_stream(stream) is None

    def test_subclass_takes_record_path(self, tiny_graph):
        """End to end: a truncating subclass partitions only the records
        it actually yields — the fast path must not resurrect them."""
        from repro.partitioning.registry import make_partitioner
        result = make_partitioner("ldg", 2).partition(
            _TruncatingStream(tiny_graph))
        assert result.stats["fast_path"] is False
        route = result.assignment.route
        assert int((route >= 0).sum()) == tiny_graph.num_vertices // 2

    def test_converted_stream_keeps_position(self, tiny_graph):
        stream = GraphStream(tiny_graph)
        stream.seek(3)
        arrays = as_array_stream(stream)
        assert arrays.tell() == 3


class TestFileStreamOrderMemo:
    def test_verdict_memoized(self, tmp_path, tiny_graph):
        path = tmp_path / "g.adj"
        write_adjacency(tiny_graph, path)
        stream = FileStream(path)
        assert stream.is_id_ordered
        # Repeated checks must not re-scan: delete the file and ask
        # again — a re-scan would raise, the memo answers quietly.
        os.unlink(path)
        assert stream.is_id_ordered

    def test_seek_invalidates_on_file_change(self, tmp_path, tiny_graph):
        path = tmp_path / "g.adj"
        write_adjacency(tiny_graph, path)
        stream = FileStream(path)
        assert stream.is_id_ordered
        # Rewrite out of order (different size => different signature).
        path.write_text("4 0\n0 1 2\n1 2\n2 3\n3 4 10\n")
        stream.seek(0)
        assert not stream.is_id_ordered

    def test_seek_keeps_memo_when_file_unchanged(self, tmp_path,
                                                 tiny_graph):
        path = tmp_path / "g.adj"
        write_adjacency(tiny_graph, path)
        stream = FileStream(path)
        assert stream.is_id_ordered
        stream.seek(2)
        os.unlink(path)
        # Unchanged at seek time, so the verdict must still be cached.
        assert stream.is_id_ordered

    def test_iteration_identical_across_engines(self, tmp_path,
                                                tiny_graph):
        path = tmp_path / "g.adj"
        write_adjacency(tiny_graph, path)
        stream = FileStream(path)
        got = [(int(v), nbrs.tolist()) for v, nbrs in stream]
        want = [(v, tiny_graph.out_neighbors(v).tolist())
                for v in range(tiny_graph.num_vertices)]
        assert got == want
        np.testing.assert_array_equal(
            stream.num_vertices, tiny_graph.num_vertices)
