"""Unit tests for graph statistics."""

import numpy as np

from repro.graph import degree_histogram, describe, from_edges, gini


class TestGini:
    def test_uniform_is_zero(self):
        assert gini(np.full(100, 7.0)) == 0.0

    def test_empty_is_zero(self):
        assert gini(np.array([])) == 0.0

    def test_all_zero_is_zero(self):
        assert gini(np.zeros(10)) == 0.0

    def test_concentrated_is_near_one(self):
        values = np.zeros(1000)
        values[0] = 1e6
        assert gini(values) > 0.99

    def test_monotone_in_skew(self):
        mild = np.array([1, 1, 1, 2, 2, 3], dtype=float)
        harsh = np.array([1, 1, 1, 1, 1, 20], dtype=float)
        assert gini(harsh) > gini(mild)


class TestDegreeHistogram:
    def test_out_histogram(self, tiny_graph):
        values, counts = degree_histogram(tiny_graph, direction="out")
        # degrees: [2,1,1,1,1] → value 1 appears 4x, value 2 once
        assert dict(zip(values.tolist(), counts.tolist())) == {1: 4, 2: 1}

    def test_in_histogram(self, tiny_graph):
        values, counts = degree_histogram(tiny_graph, direction="in")
        assert dict(zip(values.tolist(), counts.tolist())) == {1: 4, 2: 1}

    def test_invalid_direction(self, tiny_graph):
        import pytest
        with pytest.raises(ValueError):
            degree_histogram(tiny_graph, direction="sideways")


class TestDescribe:
    def test_fields(self, tiny_graph):
        stats = describe(tiny_graph)
        assert stats.num_vertices == 5
        assert stats.num_edges == 6
        assert stats.avg_out_degree == 1.2
        assert stats.max_out_degree == 2
        assert stats.max_in_degree == 2
        assert stats.csr_bytes > 0

    def test_as_row_keys(self, tiny_graph):
        row = describe(tiny_graph).as_row()
        assert {"graph", "|V|", "|E|", "avg_deg", "locality"} <= set(row)

    def test_empty_graph(self):
        stats = describe(from_edges([], num_vertices=0))
        assert stats.num_vertices == 0
        assert stats.avg_out_degree == 0.0
