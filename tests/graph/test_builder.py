"""Unit tests for GraphBuilder and the from_* helpers."""

import pytest

from repro.graph import GraphBuilder, from_adjacency, from_edges


class TestGraphBuilder:
    def test_basic_build(self):
        g = GraphBuilder().add_edge(0, 1).add_edge(1, 2).build()
        assert g.num_vertices == 3
        assert g.num_edges == 2

    def test_inferred_vertex_count(self):
        g = GraphBuilder().add_edge(0, 7).build()
        assert g.num_vertices == 8

    def test_fixed_vertex_count(self):
        g = GraphBuilder(num_vertices=10).add_edge(0, 1).build()
        assert g.num_vertices == 10

    def test_fixed_count_too_small_raises(self):
        builder = GraphBuilder(num_vertices=3).add_edge(0, 5)
        with pytest.raises(ValueError, match="num_vertices"):
            builder.build()

    def test_dedupe_default(self):
        g = GraphBuilder().add_edge(0, 1).add_edge(0, 1).build()
        assert g.num_edges == 1

    def test_dedupe_disabled(self):
        g = GraphBuilder(dedupe=False).add_edge(0, 1).add_edge(0, 1).build()
        assert g.num_edges == 2

    def test_self_loops_dropped_by_default(self):
        g = GraphBuilder().add_edge(0, 0).add_edge(0, 1).build()
        assert g.num_edges == 1
        assert not g.has_edge(0, 0)

    def test_self_loops_kept_when_allowed(self):
        g = GraphBuilder(allow_self_loops=True).add_edge(0, 0).build()
        assert g.num_edges == 1
        assert g.has_edge(0, 0)

    def test_negative_id_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            GraphBuilder().add_edge(-1, 0)

    def test_rows_sorted_ascending(self):
        g = GraphBuilder().add_edges([(0, 5), (0, 2), (0, 9)]).build()
        assert list(g.out_neighbors(0)) == [2, 5, 9]

    def test_add_adjacency_extends_id_space(self):
        # An isolated vertex mentioned only as a row id still counts.
        g = GraphBuilder().add_adjacency(6, []).build()
        assert g.num_vertices == 7
        assert g.num_edges == 0

    def test_num_pending_edges(self):
        builder = GraphBuilder().add_edge(0, 1).add_edge(1, 2)
        assert builder.num_pending_edges == 2

    def test_empty_build(self):
        g = GraphBuilder().build()
        assert g.num_vertices == 0
        assert g.num_edges == 0


class TestHelpers:
    def test_from_edges(self):
        g = from_edges([(0, 1), (2, 0)])
        assert g.num_vertices == 3
        assert set(g.edges()) == {(0, 1), (2, 0)}

    def test_from_adjacency(self):
        g = from_adjacency({0: [1, 2], 2: [0]})
        assert set(g.edges()) == {(0, 1), (0, 2), (2, 0)}

    def test_from_edges_name(self):
        assert from_edges([(0, 1)], name="mygraph").name == "mygraph"
