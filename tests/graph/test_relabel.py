"""Unit tests for vertex relabeling and the locality score."""

import numpy as np

from repro.graph import (
    bfs_order,
    bfs_relabel,
    community_web_graph,
    degree_order,
    degree_relabel,
    from_edges,
    locality_score,
    random_relabel,
)


class TestBfsOrder:
    def test_visits_every_vertex_once(self, tiny_graph):
        order = bfs_order(tiny_graph)
        assert sorted(order.tolist()) == [0, 1, 2, 3, 4]

    def test_starts_at_start(self, tiny_graph):
        assert bfs_order(tiny_graph, start=3)[0] == 3

    def test_handles_disconnected(self):
        g = from_edges([(0, 1)], num_vertices=4)
        order = bfs_order(g)
        assert sorted(order.tolist()) == [0, 1, 2, 3]

    def test_bfs_layers_are_contiguous(self):
        # path graph: BFS from 0 must visit in path order
        g = from_edges([(0, 1), (1, 2), (2, 3)], num_vertices=4)
        assert bfs_order(g, start=0).tolist() == [0, 1, 2, 3]


class TestRelabeling:
    def test_bfs_relabel_preserves_structure(self, tiny_graph):
        g2 = bfs_relabel(tiny_graph)
        assert g2.num_edges == tiny_graph.num_edges
        assert g2.num_vertices == tiny_graph.num_vertices

    def test_bfs_relabel_improves_locality(self):
        base = community_web_graph(3000, avg_community_size=40, seed=5)
        scrambled = random_relabel(base, seed=7)
        restored = bfs_relabel(scrambled)
        assert locality_score(restored) > locality_score(scrambled)

    def test_random_relabel_destroys_locality(self):
        base = community_web_graph(3000, avg_community_size=40, seed=5)
        scrambled = random_relabel(base, seed=7)
        assert locality_score(scrambled) < 0.5 * locality_score(base)

    def test_random_relabel_deterministic(self, tiny_graph):
        assert random_relabel(tiny_graph, seed=3) == random_relabel(
            tiny_graph, seed=3)

    def test_degree_order_sorts_descending(self, tiny_graph):
        order = degree_order(tiny_graph)
        totals = tiny_graph.out_degrees() + tiny_graph.in_degrees()
        sorted_totals = totals[order]
        assert all(sorted_totals[:-1] >= sorted_totals[1:])

    def test_degree_relabel_puts_hub_first(self):
        g = from_edges([(0, 3), (1, 3), (2, 3), (3, 0)], num_vertices=4)
        relabeled = degree_relabel(g)
        # vertex 3 (degree 4) becomes vertex 0
        assert relabeled.out_degree(0) + relabeled.in_degrees()[0] == 4


class TestLocalityScore:
    def test_empty_graph(self):
        g = from_edges([], num_vertices=0)
        assert locality_score(g) == 1.0

    def test_perfectly_local(self):
        g = from_edges([(i, i + 1) for i in range(99)], num_vertices=100)
        assert locality_score(g, window=1) == 1.0

    def test_antilocal(self):
        g = from_edges([(0, 99), (1, 98)], num_vertices=100)
        assert locality_score(g, window=5) == 0.0

    def test_window_parameter(self):
        g = from_edges([(0, 10)], num_vertices=20)
        assert locality_score(g, window=10) == 1.0
        assert locality_score(g, window=9) == 0.0
