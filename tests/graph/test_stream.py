"""Unit tests for the one-pass vertex streams."""

import numpy as np
import pytest

from repro.graph import FileStream, GraphStream, shuffled, write_adjacency


class TestGraphStream:
    def test_default_id_order(self, tiny_graph):
        stream = GraphStream(tiny_graph)
        assert [r.vertex for r in stream] == [0, 1, 2, 3, 4]
        assert stream.is_id_ordered

    def test_totals(self, tiny_graph):
        stream = GraphStream(tiny_graph)
        assert stream.num_vertices == 5
        assert stream.num_edges == 6

    def test_explicit_order(self, tiny_graph):
        stream = GraphStream(tiny_graph, order=[4, 3, 2, 1, 0])
        assert [r.vertex for r in stream] == [4, 3, 2, 1, 0]
        assert not stream.is_id_ordered

    def test_order_must_be_permutation(self, tiny_graph):
        with pytest.raises(ValueError, match="permutation"):
            GraphStream(tiny_graph, order=[0, 0, 1, 2, 3])

    def test_order_must_cover_all(self, tiny_graph):
        with pytest.raises(ValueError, match="every vertex"):
            GraphStream(tiny_graph, order=[0, 1, 2])

    def test_order_rejects_out_of_range(self, tiny_graph):
        """Regression: an id >= |V| used to escape as a raw IndexError
        from fancy indexing instead of a ValueError at construction."""
        with pytest.raises(ValueError, match="out-of-range"):
            GraphStream(tiny_graph, order=[0, 1, 2, 3, 7])

    def test_order_rejects_negative_ids(self, tiny_graph):
        """Regression: negative ids silently wrapped around (numpy
        fancy indexing), streaming the wrong vertices without error."""
        with pytest.raises(ValueError, match="out-of-range"):
            GraphStream(tiny_graph, order=[0, 1, 2, 3, -1])

    def test_order_rejects_wrong_shape(self, tiny_graph):
        with pytest.raises(ValueError, match="every vertex"):
            GraphStream(tiny_graph,
                        order=np.array([[0, 1], [2, 3]]))

    @pytest.mark.parametrize("bad", [
        [5, 0, 1, 2, 3],          # out of range
        [-5, 0, 1, 2, 3],         # negative
        [4, 4, 3, 2, 1],          # duplicate
        [],                        # wrong length
    ])
    def test_malformed_orders_never_raise_indexerror(self, tiny_graph,
                                                     bad):
        """Property: every malformed order is a ValueError, never a
        bare IndexError or a silently-wrong stream."""
        with pytest.raises(ValueError):
            GraphStream(tiny_graph, order=bad)

    def test_reiterable(self, tiny_graph):
        stream = GraphStream(tiny_graph)
        first = [r.vertex for r in stream]
        second = [r.vertex for r in stream]
        assert first == second

    def test_records_carry_neighbors(self, tiny_graph):
        record = next(iter(GraphStream(tiny_graph)))
        assert list(record.neighbors) == [1, 2]


class TestFileStream:
    def test_streams_file(self, tiny_graph, tmp_path):
        path = tmp_path / "g.adj"
        write_adjacency(tiny_graph, path)
        stream = FileStream(path)
        assert stream.num_vertices == 5
        assert stream.num_edges == 6
        assert [r.vertex for r in stream] == [0, 1, 2, 3, 4]

    def test_explicit_totals_skip_prescan(self, tiny_graph, tmp_path):
        path = tmp_path / "g.adj"
        write_adjacency(tiny_graph, path)
        stream = FileStream(path, num_vertices=5, num_edges=6)
        assert stream.num_vertices == 5

    def test_prescan_infers_max_id(self, tmp_path):
        path = tmp_path / "g.adj"
        path.write_text("0 9\n")
        stream = FileStream(path)
        assert stream.num_vertices == 10
        assert stream.num_edges == 1

    def test_is_id_ordered(self, tiny_graph, tmp_path):
        path = tmp_path / "g.adj"
        write_adjacency(tiny_graph, path)
        assert FileStream(path).is_id_ordered

    def test_unordered_file_reported_unordered(self, tmp_path):
        """Regression: is_id_ordered returned True unconditionally, so
        sliding-window consumers rotated against out-of-order ids."""
        path = tmp_path / "g.adj"
        path.write_text("2 0\n0 1\n1 2\n")
        assert not FileStream(path).is_id_ordered

    def test_unordered_file_with_explicit_totals(self, tmp_path):
        """Supplying totals skips the pre-scan; the ordering answer
        must come from a dedicated lazy scan, not a hard-coded True."""
        path = tmp_path / "g.adj"
        path.write_text("2 0\n0 1\n1 2\n")
        stream = FileStream(path, num_vertices=3, num_edges=3)
        assert not stream.is_id_ordered

    def test_duplicate_vertex_line_is_unordered(self, tmp_path):
        path = tmp_path / "g.adj"
        path.write_text("0 1\n1 0\n1 2\n")
        assert not FileStream(path).is_id_ordered

    def test_unordered_file_still_streams(self, tmp_path):
        path = tmp_path / "g.adj"
        path.write_text("2 0\n0 1\n1 2\n")
        stream = FileStream(path)
        assert [r.vertex for r in stream] == [2, 0, 1]

    def test_file_mutated_after_ordered_prescan_fails_loud(self, tmp_path):
        """If the pre-scan saw an ordered file but iteration later
        observes disorder, the file changed underneath us — consumers
        sized from the stale claim must not proceed silently."""
        path = tmp_path / "g.adj"
        path.write_text("0 1\n1 2\n2 0\n")
        stream = FileStream(path)
        assert stream.is_id_ordered
        path.write_text("1 2\n0 1\n2 0\n")
        with pytest.raises(ValueError, match="no longer id-ordered"):
            list(stream)


class TestShuffled:
    def test_covers_all_vertices(self, tiny_graph):
        stream = shuffled(tiny_graph, seed=3)
        assert sorted(r.vertex for r in stream) == [0, 1, 2, 3, 4]

    def test_deterministic_per_seed(self, tiny_graph):
        a = [r.vertex for r in shuffled(tiny_graph, seed=3)]
        b = [r.vertex for r in shuffled(tiny_graph, seed=3)]
        assert a == b

    def test_different_seeds_differ(self, web_graph):
        a = [r.vertex for r in shuffled(web_graph, seed=1)]
        b = [r.vertex for r in shuffled(web_graph, seed=2)]
        assert a != b
