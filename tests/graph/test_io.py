"""Unit tests for graph file formats (edge list, adjacency, METIS, gzip)."""

import pytest

from repro.graph import (
    from_edges,
    read_adjacency,
    read_edge_list,
    read_metis,
    write_adjacency,
    write_edge_list,
    write_metis,
)
from repro.graph.io import iter_adjacency_lines


class TestEdgeList:
    def test_roundtrip(self, tiny_graph, tmp_path):
        path = tmp_path / "g.edges"
        write_edge_list(tiny_graph, path)
        loaded = read_edge_list(path, num_vertices=5)
        assert loaded == tiny_graph

    def test_comments_skipped(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# header\n% more\n0 1\n\n1 2\n")
        g = read_edge_list(path)
        assert g.num_edges == 2

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0\n")
        with pytest.raises(ValueError, match="malformed"):
            read_edge_list(path)

    def test_gzip_roundtrip(self, tiny_graph, tmp_path):
        path = tmp_path / "g.edges.gz"
        write_edge_list(tiny_graph, path)
        assert read_edge_list(path, num_vertices=5) == tiny_graph


class TestAdjacency:
    def test_roundtrip(self, tiny_graph, tmp_path):
        path = tmp_path / "g.adj"
        write_adjacency(tiny_graph, path)
        assert read_adjacency(path) == tiny_graph

    def test_streaming_iteration(self, tiny_graph, tmp_path):
        path = tmp_path / "g.adj"
        write_adjacency(tiny_graph, path)
        rows = list(iter_adjacency_lines(path))
        assert [v for v, _ in rows] == [0, 1, 2, 3, 4]
        assert list(rows[0][1]) == [1, 2]

    def test_isolated_vertices_preserved(self, tmp_path):
        g = from_edges([(0, 1)], num_vertices=4)
        path = tmp_path / "g.adj"
        write_adjacency(g, path)
        assert read_adjacency(path).num_vertices == 4

    def test_skip_isolated_option(self, tmp_path):
        g = from_edges([(0, 1)], num_vertices=4)
        path = tmp_path / "g.adj"
        write_adjacency(g, path, include_isolated=False)
        rows = list(iter_adjacency_lines(path))
        assert len(rows) == 1

    def test_gzip_roundtrip(self, tiny_graph, tmp_path):
        path = tmp_path / "g.adj.gz"
        write_adjacency(tiny_graph, path)
        assert read_adjacency(path) == tiny_graph


class TestMetis:
    def test_roundtrip_symmetric(self, tiny_graph, tmp_path):
        path = tmp_path / "g.metis"
        write_metis(tiny_graph, path)
        loaded = read_metis(path)
        assert loaded == tiny_graph.to_undirected_csr()

    def test_header_vertex_mismatch_raises(self, tmp_path):
        path = tmp_path / "bad.metis"
        path.write_text("3 1\n2\n1\n")  # declares 3 rows, provides 2
        with pytest.raises(ValueError, match="adjacency rows"):
            read_metis(path)

    def test_header_edge_mismatch_raises(self, tmp_path):
        path = tmp_path / "bad.metis"
        path.write_text("2 5\n2\n1\n")  # declares 5 edges, has 1
        with pytest.raises(ValueError, match="directed entries"):
            read_metis(path)

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty.metis"
        path.write_text("")
        with pytest.raises(ValueError, match="header"):
            read_metis(path)

    def test_one_indexing(self, tmp_path):
        path = tmp_path / "g.metis"
        path.write_text("2 1\n2\n1\n")  # single undirected edge {1,2}
        g = read_metis(path)
        assert g.has_edge(0, 1) and g.has_edge(1, 0)
