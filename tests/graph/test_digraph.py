"""Unit tests for the CSR directed-graph substrate."""

import numpy as np
import pytest

from repro.graph import AdjacencyRecord, DiGraph, from_edges


class TestConstruction:
    def test_valid_graph(self, tiny_graph):
        assert tiny_graph.num_vertices == 5
        assert tiny_graph.num_edges == 6

    def test_empty_graph(self):
        g = DiGraph.empty(4)
        assert g.num_vertices == 4
        assert g.num_edges == 0
        assert g.max_out_degree() == 0

    def test_zero_vertex_graph(self):
        g = DiGraph.empty(0)
        assert g.num_vertices == 0
        assert list(g.records()) == []

    def test_indptr_must_start_at_zero(self):
        with pytest.raises(ValueError, match="start with 0"):
            DiGraph(np.array([1, 2]), np.array([0]))

    def test_indptr_must_match_indices(self):
        with pytest.raises(ValueError, match="must equal len"):
            DiGraph(np.array([0, 2]), np.array([0]))

    def test_indptr_must_be_monotonic(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            DiGraph(np.array([0, 2, 1, 3]), np.array([0, 1, 2]))

    def test_targets_must_be_in_range(self):
        with pytest.raises(ValueError, match="valid vertex ids"):
            DiGraph(np.array([0, 1]), np.array([5]))

    def test_negative_target_rejected(self):
        with pytest.raises(ValueError, match="valid vertex ids"):
            DiGraph(np.array([0, 1]), np.array([-1]))

    def test_repr_mentions_sizes(self, tiny_graph):
        assert "|V|=5" in repr(tiny_graph)
        assert "|E|=6" in repr(tiny_graph)


class TestNeighborhoods:
    def test_out_neighbors(self, tiny_graph):
        assert list(tiny_graph.out_neighbors(0)) == [1, 2]
        assert list(tiny_graph.out_neighbors(2)) == [3]
        assert list(tiny_graph.out_neighbors(4)) == [0]

    def test_out_degrees_vector(self, tiny_graph):
        assert list(tiny_graph.out_degrees()) == [2, 1, 1, 1, 1]

    def test_in_degrees(self, tiny_graph):
        # in-edges: 0←4, 1←0, 2←{0,1}, 3←2, 4←3
        assert list(tiny_graph.in_degrees()) == [1, 1, 2, 1, 1]

    def test_in_neighbors_via_reverse(self, tiny_graph):
        assert sorted(tiny_graph.in_neighbors(2)) == [0, 1]

    def test_max_out_degree(self, tiny_graph):
        assert tiny_graph.max_out_degree() == 2

    def test_has_edge(self, tiny_graph):
        assert tiny_graph.has_edge(0, 1)
        assert tiny_graph.has_edge(4, 0)
        assert not tiny_graph.has_edge(1, 0)
        assert not tiny_graph.has_edge(3, 3)


class TestIteration:
    def test_records_cover_all_vertices_in_order(self, tiny_graph):
        records = list(tiny_graph.records())
        assert [r.vertex for r in records] == [0, 1, 2, 3, 4]
        assert all(isinstance(r, AdjacencyRecord) for r in records)

    def test_record_unpacking(self, tiny_graph):
        v, neighbors = next(tiny_graph.records())
        assert v == 0
        assert list(neighbors) == [1, 2]

    def test_edges_iteration(self, tiny_graph):
        edges = set(tiny_graph.edges())
        assert edges == {(0, 1), (0, 2), (1, 2), (2, 3), (3, 4), (4, 0)}

    def test_edge_array_matches_edges(self, tiny_graph):
        src, dst = tiny_graph.edge_array()
        assert set(zip(src.tolist(), dst.tolist())) == set(
            tiny_graph.edges())


class TestDerivedGraphs:
    def test_reverse_flips_edges(self, tiny_graph):
        rev = tiny_graph.reverse()
        assert set(rev.edges()) == {(b, a) for a, b in tiny_graph.edges()}

    def test_reverse_is_cached(self, tiny_graph):
        assert tiny_graph.reverse() is tiny_graph.reverse()

    def test_double_reverse_roundtrips(self, tiny_graph):
        assert set(tiny_graph.reverse().reverse().edges()) == set(
            tiny_graph.edges())

    def test_undirected_symmetry(self, tiny_graph):
        und = tiny_graph.to_undirected_csr()
        edges = set(und.edges())
        assert all((b, a) in edges for a, b in edges)

    def test_undirected_dedupes_antiparallel(self):
        g = from_edges([(0, 1), (1, 0)], num_vertices=2)
        und = g.to_undirected_csr()
        assert und.num_edges == 2  # one entry per direction, no dupes

    def test_relabel_preserves_structure(self, tiny_graph):
        perm = [4, 3, 2, 1, 0]
        relabeled = tiny_graph.relabeled(perm)
        expected = {(perm[a], perm[b]) for a, b in tiny_graph.edges()}
        assert set(relabeled.edges()) == expected

    def test_relabel_identity(self, tiny_graph):
        same = tiny_graph.relabeled(range(5))
        assert same == tiny_graph

    def test_relabel_rejects_non_bijection(self, tiny_graph):
        with pytest.raises(ValueError, match="bijection"):
            tiny_graph.relabeled([0, 0, 1, 2, 3])

    def test_relabel_rejects_wrong_length(self, tiny_graph):
        with pytest.raises(ValueError, match="length"):
            tiny_graph.relabeled([0, 1, 2])


class TestEquality:
    def test_equal_graphs(self, tiny_graph):
        other = from_edges(list(tiny_graph.edges()), num_vertices=5)
        assert tiny_graph == other
        assert hash(tiny_graph) == hash(other)

    def test_unequal_graphs(self, tiny_graph):
        other = from_edges([(0, 1)], num_vertices=5)
        assert tiny_graph != other

    def test_read_only_views(self, tiny_graph):
        with pytest.raises(ValueError):
            tiny_graph.indptr[0] = 99
        with pytest.raises(ValueError):
            tiny_graph.indices[0] = 99

    def test_nbytes_positive(self, tiny_graph):
        assert tiny_graph.nbytes() > 0
