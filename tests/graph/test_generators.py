"""Unit tests for the synthetic graph generators."""

import numpy as np
import pytest

from repro.graph import (
    barabasi_albert,
    community_web_graph,
    erdos_renyi,
    grid_graph,
    locality_score,
    power_law_degrees,
    ring_of_cliques,
    rmat,
)


class TestPowerLawDegrees:
    def test_bounds_respected(self, rng):
        d = power_law_degrees(5000, exponent=2.2, min_degree=2,
                              max_degree=50, rng=rng)
        assert d.min() >= 2 and d.max() <= 50

    def test_skewed_distribution(self, rng):
        d = power_law_degrees(20000, exponent=2.0, min_degree=1,
                              max_degree=1000, rng=rng)
        # A power law has median well below mean.
        assert np.median(d) < d.mean()

    def test_exponent_one_special_case(self, rng):
        d = power_law_degrees(1000, exponent=1.0, min_degree=1,
                              max_degree=100, rng=rng)
        assert d.min() >= 1 and d.max() <= 100


class TestErdosRenyi:
    def test_size(self):
        g = erdos_renyi(500, avg_degree=6.0, seed=1)
        assert g.num_vertices == 500
        # dedupe + self-loop removal trims slightly below n·avg
        assert 0.8 * 3000 <= g.num_edges <= 3000

    def test_deterministic(self):
        assert erdos_renyi(200, seed=5) == erdos_renyi(200, seed=5)

    def test_no_locality(self):
        g = erdos_renyi(2000, avg_degree=8.0, seed=1)
        assert locality_score(g) < 0.3


class TestBarabasiAlbert:
    def test_size(self):
        g = barabasi_albert(300, m=3, seed=1)
        assert g.num_vertices == 300
        assert g.num_edges == (300 - 3) * 3

    def test_scale_free_in_degree(self):
        g = barabasi_albert(2000, m=4, seed=1)
        in_deg = g.in_degrees()
        assert in_deg.max() > 10 * np.median(in_deg[in_deg > 0])

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            barabasi_albert(3, m=5)


class TestRmat:
    def test_size_power_of_two(self):
        g = rmat(8, edge_factor=8, seed=1)
        assert g.num_vertices == 256

    def test_invalid_probabilities(self):
        with pytest.raises(ValueError):
            rmat(6, a=0.6, b=0.3, c=0.3)

    def test_degree_skew(self):
        g = rmat(10, edge_factor=16, seed=2)
        out = g.out_degrees()
        assert out.max() > 5 * max(1, np.median(out))


class TestCommunityWebGraph:
    def test_size_and_determinism(self):
        a = community_web_graph(2000, seed=9)
        b = community_web_graph(2000, seed=9)
        assert a == b
        assert a.num_vertices == 2000

    def test_locality_from_consecutive_communities(self):
        g = community_web_graph(4000, avg_community_size=40,
                                intra_fraction=0.85, near_fraction=0.1,
                                seed=3)
        assert locality_score(g) > 0.8

    def test_low_intra_reduces_locality(self):
        local = community_web_graph(4000, intra_fraction=0.9,
                                    near_fraction=0.05, seed=3)
        glob = community_web_graph(4000, intra_fraction=0.2,
                                   near_fraction=0.05, seed=3)
        assert locality_score(glob) < locality_score(local)

    def test_invalid_fractions(self):
        with pytest.raises(ValueError):
            community_web_graph(100, intra_fraction=0.9, near_fraction=0.3)

    def test_superhubs_present(self):
        g = community_web_graph(3000, superhub_count=2,
                                superhub_degree=800, seed=4)
        assert g.max_out_degree() > 400  # dedupe trims but stays large

    def test_density_skew_increases_edges(self):
        flat = community_web_graph(3000, density_skew=1.0, seed=4)
        skew = community_web_graph(3000, density_skew=10.0, seed=4)
        assert skew.num_edges > flat.num_edges

    def test_reciprocity_adds_back_edges(self):
        none = community_web_graph(2000, reciprocity=0.0, seed=4)
        full = community_web_graph(2000, reciprocity=0.9, seed=4)
        assert full.num_edges > none.num_edges


class TestDeterministicGraphs:
    def test_ring_of_cliques_structure(self):
        g = ring_of_cliques(4, 5)
        assert g.num_vertices == 20
        # each clique: 5·4 directed edges; plus 4 bridges
        assert g.num_edges == 4 * 20 + 4
        assert g.has_edge(0, 1) and g.has_edge(4, 5)  # bridge 4→5

    def test_grid_degrees(self):
        g = grid_graph(4, 4)
        assert g.num_vertices == 16
        # corner vertex has 2 out-edges, center has 4
        assert g.out_degree(0) == 2
        assert g.out_degree(5) == 4

    def test_grid_symmetry(self):
        g = grid_graph(3, 3)
        assert all(g.has_edge(b, a) for a, b in g.edges())
