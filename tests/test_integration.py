"""Integration tests: full pipelines across modules.

Each test exercises a realistic end-to-end flow: generate → (write/read)
→ stream → partition → evaluate → run a distributed job on the result.
"""

import numpy as np
import pytest

from repro.graph import (
    FileStream,
    GraphStream,
    community_web_graph,
    random_relabel,
    write_adjacency,
)
from repro.offline import LabelPropagationPartitioner, MultilevelPartitioner
from repro.parallel import SimulatedParallelPartitioner
from repro.partitioning import (
    FennelPartitioner,
    HashPartitioner,
    LDGPartitioner,
    RestreamingPartitioner,
    SPNLPartitioner,
    SPNPartitioner,
    evaluate,
)
from repro.runtime import run_pagerank, run_sssp


@pytest.fixture(scope="module")
def pipeline_graph():
    return community_web_graph(5000, avg_community_size=60, seed=77,
                               name="pipeline")


class TestFullQualityOrdering:
    """The paper's headline ordering must hold end-to-end on a fresh
    locality-rich graph: SPNL ≤ SPN < LDG ≈ FENNEL < Hash, with the
    METIS-like baseline at or near the front."""

    @pytest.fixture(scope="class")
    def ecrs(self, pipeline_graph):
        g = pipeline_graph
        out = {}
        for p in [HashPartitioner(16), LDGPartitioner(16),
                  FennelPartitioner(16), SPNPartitioner(16),
                  SPNLPartitioner(16, num_shards="auto")]:
            result = p.partition(GraphStream(g))
            out[p.name] = evaluate(g, result.assignment).ecr
        out["METIS-like"] = evaluate(
            g, MultilevelPartitioner(16).partition(g).assignment).ecr
        out["XtraPuLP-like"] = evaluate(
            g, LabelPropagationPartitioner(16).partition(g).assignment).ecr
        return out

    def test_spn_family_beats_ldg(self, ecrs):
        assert ecrs["SPN"] < ecrs["LDG"]
        assert ecrs["SPNL"] < ecrs["LDG"]

    def test_spnl_at_least_matches_spn(self, ecrs):
        assert ecrs["SPNL"] <= ecrs["SPN"] * 1.1

    def test_everything_beats_hash(self, ecrs):
        for name, value in ecrs.items():
            if name != "Hash":
                assert value < ecrs["Hash"], name

    def test_spnl_within_reach_of_metis(self, ecrs):
        """Table V: SPNL is comparable to the offline quality bar."""
        assert ecrs["SPNL"] <= 2.5 * ecrs["METIS-like"]

    def test_xtrapulp_worse_than_metis(self, ecrs):
        assert ecrs["XtraPuLP-like"] >= ecrs["METIS-like"]


class TestDiskPipeline:
    def test_file_stream_partition(self, pipeline_graph, tmp_path):
        """Graph written to disk, streamed back one pass, partitioned."""
        path = tmp_path / "g.adj"
        write_adjacency(pipeline_graph, path)
        stream = FileStream(path)
        result = SPNLPartitioner(8, num_shards="auto").partition(stream)
        result.assignment.validate(pipeline_graph.num_vertices)
        q = evaluate(pipeline_graph, result.assignment)
        assert q.ecr < 0.5

    def test_file_stream_matches_memory_stream(self, pipeline_graph,
                                               tmp_path):
        path = tmp_path / "g.adj"
        write_adjacency(pipeline_graph, path)
        from_file = SPNLPartitioner(8).partition(FileStream(path))
        from_memory = SPNLPartitioner(8).partition(
            GraphStream(pipeline_graph))
        assert from_file.assignment == from_memory.assignment


class TestDownstreamJob:
    def test_partitioning_cuts_job_communication(self, pipeline_graph):
        """The system-level claim: better partitioning → less remote
        traffic for the same PageRank job, identical answers."""
        spnl = SPNLPartitioner(8).partition(
            GraphStream(pipeline_graph)).assignment
        hsh = HashPartitioner(8).partition(
            GraphStream(pipeline_graph)).assignment
        run_spnl = run_pagerank(pipeline_graph, spnl, iterations=5)
        run_hash = run_pagerank(pipeline_graph, hsh, iterations=5)
        assert np.allclose(run_spnl.values, run_hash.values)
        assert run_spnl.comm.remote_messages < \
            0.7 * run_hash.comm.remote_messages

    def test_sssp_over_partitioned_graph(self, pipeline_graph):
        assignment = SPNLPartitioner(8).partition(
            GraphStream(pipeline_graph)).assignment
        run = run_sssp(pipeline_graph, assignment, source=0)
        assert run.values[0] == 0.0
        assert np.isfinite(run.values).sum() > 1


class TestAdvancedFlows:
    def test_parallel_pipeline(self, pipeline_graph):
        partitioner = SimulatedParallelPartitioner(
            SPNLPartitioner(8, num_shards="auto"), parallelism=4)
        result = partitioner.partition(GraphStream(pipeline_graph))
        q = evaluate(pipeline_graph, result.assignment)
        serial = evaluate(
            pipeline_graph,
            SPNLPartitioner(8, num_shards="auto").partition(
                GraphStream(pipeline_graph)).assignment)
        assert q.ecr <= serial.ecr * 1.35 + 0.02  # bounded degradation

    def test_restreaming_pipeline(self, pipeline_graph):
        restreamed = RestreamingPartitioner(
            lambda: LDGPartitioner(8), num_passes=3).partition(
            GraphStream(pipeline_graph))
        single = LDGPartitioner(8).partition(GraphStream(pipeline_graph))
        assert evaluate(pipeline_graph, restreamed.assignment).ecr <= \
            evaluate(pipeline_graph, single.assignment).ecr

    def test_shuffled_ids_collapse_locality_methods(self, pipeline_graph):
        """Destroying id order hurts SPNL more than LDG — the locality
        premise made falsifiable."""
        scrambled = random_relabel(pipeline_graph, seed=3)
        spnl_local = evaluate(
            pipeline_graph,
            SPNLPartitioner(8).partition(
                GraphStream(pipeline_graph)).assignment).ecr
        spnl_scrambled = evaluate(
            scrambled,
            SPNLPartitioner(8).partition(
                GraphStream(scrambled)).assignment).ecr
        assert spnl_scrambled > spnl_local


class TestModuleInvocation:
    """`python -m repro` end to end, as a real subprocess."""

    def test_partition_with_probe_every(self, tmp_path):
        import json
        import os
        import subprocess
        import sys

        from repro.observability import validate_record

        repo_src = os.path.join(os.path.dirname(__file__), "..", "src")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.abspath(repo_src),
             env.get("PYTHONPATH", "")]).rstrip(os.pathsep)
        routes = tmp_path / "routes.txt"
        trace = tmp_path / "trace.jsonl"
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "partition", "uk2005",
             str(routes), "--method", "spnl", "-k", "8",
             "--probe-every", "500", "--trace", str(trace)],
            capture_output=True, text=True, env=env, timeout=300)
        assert proc.returncode == 0, proc.stderr
        assert "ECR=" in proc.stdout
        assert routes.exists()
        records = [json.loads(line)
                   for line in trace.read_text().splitlines()]
        assert records, "trace file is empty"
        for record in records:
            validate_record(record)
        assert records[-1]["type"] == "stream_summary"

    def test_probe_every_alone_streams_progress(self, tmp_path):
        import os
        import subprocess
        import sys

        repo_src = os.path.join(os.path.dirname(__file__), "..", "src")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.abspath(repo_src),
             env.get("PYTHONPATH", "")]).rstrip(os.pathsep)
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "partition", "uk2005",
             str(tmp_path / "r.txt"), "--method", "ldg", "-k", "8",
             "--probe-every", "1000"],
            capture_output=True, text=True, env=env, timeout=300)
        assert proc.returncode == 0, proc.stderr
        assert "[probe LDG]" in proc.stderr
