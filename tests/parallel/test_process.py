"""Process-sharded executor: parity, shared-memory plumbing, recovery.

The load-bearing guarantee is *byte-parity*: at the same ``parallelism``
(the paper's M) the process executor must place every vertex exactly
where :class:`SimulatedParallelPartitioner` places it, regardless of how
many worker processes the group is sharded over — and at ``parallelism=1``
it must match the plain sequential pass.  Everything else (SIGKILL
recovery, checkpoint/resume) is pinned *through* that parity: a recovered
run that differs by one byte from the clean run is a failure.
"""

import os
import signal

import numpy as np
import pytest

from repro.graph import GraphStream, community_web_graph
from repro.observability import Instrumentation, MemorySink
from repro.parallel import (
    ProcessShardedPartitioner,
    ReversedCountingTable,
    SharedArrayBlock,
    SharedConflictTable,
    SimulatedParallelPartitioner,
    WorkerCrashedError,
)
from repro.partitioning import evaluate
from repro.partitioning.registry import make_partitioner
from repro.recovery import latest_snapshot
from repro.recovery import resume_partition as resume_sequential

K = 4

#: Streaming heuristics that declare score lanes and can shard.
SHARDED_METHODS = ("hash", "range", "ldg", "fennel", "spn", "spnl")


@pytest.fixture(scope="module")
def graph():
    return community_web_graph(800, avg_degree=8, seed=7)


def _make(method, **kwargs):
    if method in ("spn", "spnl"):
        kwargs.setdefault("num_shards", 1)
    return make_partitioner(method, K, **kwargs)


# ----------------------------------------------------------------------
# Satellite: registry-wide parity suite
# ----------------------------------------------------------------------
class TestRegistryParity:
    @pytest.mark.parametrize("method", SHARDED_METHODS)
    def test_p1_matches_sequential(self, graph, method):
        """One-wide groups are exactly the sequential record path."""
        seq = _make(method).partition(GraphStream(graph), fast=False)
        proc = ProcessShardedPartitioner(
            _make(method), parallelism=1, num_workers=1,
            use_rct=False).partition(GraphStream(graph))
        assert proc.assignment == seq.assignment

    @pytest.mark.parametrize("method", ("ldg", "fennel", "spn", "spnl"))
    def test_p1_matches_fast_path(self, graph, method):
        """... and therefore the fused fast path too (fast ≡ record is
        pinned elsewhere; this closes the triangle)."""
        fast = _make(method).partition(GraphStream(graph), fast=True)
        proc = ProcessShardedPartitioner(
            _make(method), parallelism=1, num_workers=1,
            use_rct=False).partition(GraphStream(graph))
        assert proc.assignment == fast.assignment

    @pytest.mark.parametrize("method", SHARDED_METHODS)
    def test_wide_groups_match_simulated(self, graph, method):
        """At M>1 the process executor is byte-identical to the
        deterministic simulated executor at the same M — the whole
        point of the group-barrier design."""
        sim = SimulatedParallelPartitioner(
            _make(method), parallelism=4).partition(GraphStream(graph))
        proc = ProcessShardedPartitioner(
            _make(method), parallelism=4,
            num_workers=2).partition(GraphStream(graph))
        assert proc.assignment == sim.assignment
        assert proc.stats["delayed"] == sim.stats["delayed"]
        assert proc.stats["conflicts"] == sim.stats["conflicts"]

    def test_worker_count_does_not_change_results(self, graph):
        """num_workers is a throughput knob only: same M, same bytes."""
        routes = []
        for workers in (1, 2, 3):
            p = ProcessShardedPartitioner(
                _make("spnl"), parallelism=6, num_workers=workers)
            routes.append(p.partition(GraphStream(graph)).assignment)
        assert routes[0] == routes[1] == routes[2]

    def test_hashed_gamma_store_parity(self, graph):
        sim = SimulatedParallelPartitioner(
            _make("spnl", gamma_store="hashed"),
            parallelism=4).partition(GraphStream(graph))
        proc = ProcessShardedPartitioner(
            _make("spnl", gamma_store="hashed"), parallelism=4,
            num_workers=2).partition(GraphStream(graph))
        assert proc.assignment == sim.assignment

    def test_ecr_stays_near_sequential(self, graph):
        """Paper Sec. V-B: RCT-delayed wide-parallel quality stays in
        the sequential ballpark (~6% cap in the paper's experiments)."""
        seq = evaluate(graph, _make("spnl").partition(
            GraphStream(graph)).assignment).ecr
        par = evaluate(graph, ProcessShardedPartitioner(
            _make("spnl"), parallelism=4, num_workers=2).partition(
            GraphStream(graph)).assignment).ecr
        assert par <= seq * 1.5 + 0.05

    @pytest.mark.parametrize("method", ("random", "chunked"))
    def test_sequential_only_heuristics_refused(self, graph, method):
        p = ProcessShardedPartitioner(_make(method), parallelism=2,
                                      num_workers=1)
        with pytest.raises(ValueError, match="score lanes"):
            p.partition(GraphStream(graph))

    def test_sliding_window_store_refused_with_guidance(self, graph):
        spn = make_partitioner("spn", K, num_shards=4)
        p = ProcessShardedPartitioner(spn, parallelism=2, num_workers=1)
        with pytest.raises(ValueError, match="dense.*hashed|hashed.*dense"):
            p.partition(GraphStream(graph))


class TestBasics:
    def test_name_encodes_mode(self):
        p = ProcessShardedPartitioner(_make("spnl"), parallelism=4,
                                      num_workers=2)
        assert p.name == "SPNL-par4(proc2)"

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            ProcessShardedPartitioner(_make("ldg"), parallelism=0)
        with pytest.raises(ValueError):
            ProcessShardedPartitioner(_make("ldg"), num_workers=0)
        with pytest.raises(ValueError):
            ProcessShardedPartitioner(_make("ldg"), ring_slots=0)
        with pytest.raises(ValueError):
            ProcessShardedPartitioner(_make("ldg"), max_worker_restarts=-1)
        with pytest.raises(ValueError):
            ProcessShardedPartitioner(_make("ldg"), worker_timeout=0.0)

    def test_stats_shape(self, graph):
        p = ProcessShardedPartitioner(_make("spnl"), parallelism=4,
                                      num_workers=2)
        result = p.partition(GraphStream(graph))
        assert {"parallelism", "use_rct", "delayed", "conflicts",
                "num_workers", "worker_restarts",
                "groups"} <= set(result.stats)
        assert result.stats["num_workers"] == 2
        assert result.stats["worker_restarts"] == 0
        assert result.stats["groups"] >= graph.num_vertices // 4

    def test_emits_group_events(self, graph):
        sink = MemorySink()
        hub = Instrumentation([sink])
        p = ProcessShardedPartitioner(_make("ldg"), parallelism=8,
                                      num_workers=2)
        p.partition(GraphStream(graph), instrumentation=hub)
        hub.close()
        groups = [r for r in sink.records if r["type"] == "parallel_group"]
        assert groups
        assert groups[-1]["placements"] == graph.num_vertices

    def test_gamma_store_survives_detach(self, graph):
        """After the segment closes the heuristic's Γ lanes must hold
        private copies — inspecting them must not touch freed memory
        and must reflect the finished run, not zeros."""
        base = _make("spnl")
        ProcessShardedPartitioner(base, parallelism=4,
                                  num_workers=2).partition(
            GraphStream(graph))
        lanes = base.score_lanes()
        assert any(np.abs(arr).sum() > 0 for arr in lanes.values())


# ----------------------------------------------------------------------
# Checkpoint / resume
# ----------------------------------------------------------------------
class TestCheckpointResume:
    def test_resume_is_byte_identical_to_uncrashed_run(self, graph,
                                                       tmp_path):
        full_dir = tmp_path / "full"
        ref = ProcessShardedPartitioner(
            _make("spnl"), parallelism=4,
            num_workers=2).partition_with_checkpoints(
            GraphStream(graph), full_dir, every=250)
        assert ref.stats["checkpoints_written"] >= 2

        crash_dir = tmp_path / "crashed"
        # A run that "crashed" right after its first snapshot is modelled
        # by copying that snapshot alone and resuming from it.
        first = sorted(full_dir.glob("ckpt-*.snap"))[0]
        crash_dir.mkdir()
        (crash_dir / first.name).write_bytes(first.read_bytes())
        resumed = ProcessShardedPartitioner(
            _make("spnl"), parallelism=4, num_workers=2).resume_partition(
            GraphStream(graph), crash_dir, every=250)
        assert resumed.assignment == ref.assignment
        assert resumed.stats["resumed_from"].endswith(first.name)

    def test_snapshot_is_sequentially_resumable(self, graph, tmp_path):
        """A sharded snapshot is the plain sequential triple: the
        recovery layer can finish the pass without any executor."""
        ProcessShardedPartitioner(
            _make("spnl"), parallelism=4,
            num_workers=2).partition_with_checkpoints(
            GraphStream(graph), tmp_path, every=300)
        snap = latest_snapshot(tmp_path)
        assert snap is not None
        result = resume_sequential(_make("spnl"), GraphStream(graph),
                                   snap, config=tmp_path, every=300)
        result.assignment.validate(graph.num_vertices)

    def test_resume_missing_snapshot_raises(self, graph, tmp_path):
        p = ProcessShardedPartitioner(_make("ldg"), parallelism=2,
                                      num_workers=1)
        with pytest.raises(FileNotFoundError):
            p.resume_partition(GraphStream(graph), tmp_path, every=100)


# ----------------------------------------------------------------------
# Chaos: SIGKILL worker processes mid-batch
# ----------------------------------------------------------------------
@pytest.mark.chaos
class TestProcessChaos:
    def test_sigkill_mid_batch_loses_no_placement(self, graph):
        clean = ProcessShardedPartitioner(
            _make("spnl"), parallelism=4,
            num_workers=2).partition(GraphStream(graph))

        chaotic = ProcessShardedPartitioner(
            _make("spnl"), parallelism=4, num_workers=2,
            max_worker_restarts=4, restart_backoff=0.0)
        kills = []

        def kill_once(group_index, procs):
            if group_index == 3 and not kills:
                os.kill(procs[0].pid, signal.SIGKILL)
                kills.append(procs[0].pid)

        chaotic.barrier_hook = kill_once
        result = chaotic.partition(GraphStream(graph))
        assert kills, "the chaos hook never fired"
        assert result.assignment == clean.assignment
        assert 1 <= result.stats["worker_restarts"] <= 4

    def test_repeated_kills_within_budget_recover(self, graph):
        clean = ProcessShardedPartitioner(
            _make("ldg"), parallelism=4,
            num_workers=2).partition(GraphStream(graph))
        chaotic = ProcessShardedPartitioner(
            _make("ldg"), parallelism=4, num_workers=2,
            max_worker_restarts=3, restart_backoff=0.0)
        kills = []

        def kill_thrice(group_index, procs):
            if group_index in (2, 10, 30) and len(kills) < 3:
                victim = procs[group_index % 2]
                os.kill(victim.pid, signal.SIGKILL)
                kills.append(victim.pid)

        chaotic.barrier_hook = kill_thrice
        result = chaotic.partition(GraphStream(graph))
        assert len(kills) == 3
        assert result.assignment == clean.assignment

    def test_restart_budget_exhaustion_raises(self, graph):
        p = ProcessShardedPartitioner(
            _make("ldg"), parallelism=2, num_workers=1,
            max_worker_restarts=0, restart_backoff=0.0)
        p.barrier_hook = lambda _g, procs: os.kill(procs[0].pid,
                                                   signal.SIGKILL)
        with pytest.raises(WorkerCrashedError, match="restart budget"):
            p.partition(GraphStream(graph))

    def test_restart_emits_trace_records(self, graph):
        sink = MemorySink()
        hub = Instrumentation([sink])
        p = ProcessShardedPartitioner(
            _make("ldg"), parallelism=4, num_workers=2,
            max_worker_restarts=2, restart_backoff=0.0)
        fired = []

        def kill_once(group_index, procs):
            if group_index == 1 and not fired:
                os.kill(procs[1].pid, signal.SIGKILL)
                fired.append(True)

        p.barrier_hook = kill_once
        p.partition(GraphStream(graph), instrumentation=hub)
        hub.close()
        restarts = [r for r in sink.records
                    if r["type"] == "worker_restart"]
        assert restarts and restarts[0]["worker"] == 1

    def test_kill_during_checkpointed_run_resumes_identically(
            self, graph, tmp_path):
        ref = ProcessShardedPartitioner(
            _make("spnl"), parallelism=4,
            num_workers=2).partition_with_checkpoints(
            GraphStream(graph), tmp_path / "ref", every=250)

        chaotic = ProcessShardedPartitioner(
            _make("spnl"), parallelism=4, num_workers=2,
            max_worker_restarts=4, restart_backoff=0.0)
        kills = []

        def kill_once(group_index, procs):
            if group_index == 5 and not kills:
                os.kill(procs[0].pid, signal.SIGKILL)
                kills.append(True)

        chaotic.barrier_hook = kill_once
        survived = chaotic.partition_with_checkpoints(
            GraphStream(graph), tmp_path / "chaos", every=250)
        assert kills
        assert survived.assignment == ref.assignment


# ----------------------------------------------------------------------
# SharedConflictTable ≡ ReversedCountingTable
# ----------------------------------------------------------------------
class TestSharedConflictTableParity:
    def _fresh(self, num_vertices=200, workers=3, parallelism=4):
        counts = np.zeros(num_vertices, dtype=np.int32)
        in_flight = np.zeros(num_vertices, dtype=np.uint8)
        lanes = np.zeros((workers, num_vertices), dtype=np.int32)
        shared = SharedConflictTable(counts, in_flight, lanes,
                                     capacity=2 * parallelism)
        ref = ReversedCountingTable(parallelism, epsilon=2)
        return shared, ref, lanes, in_flight

    def test_mirrors_dict_table_operation_for_operation(self):
        rng = np.random.default_rng(3)
        shared, ref, lanes, in_flight = self._fresh()
        workers = lanes.shape[0]
        for _ in range(60):
            group = [int(v) for v in rng.integers(0, 200, size=4)]
            for v in group:
                assert shared.register(v) == ref.register(v)
            neighbors = rng.integers(0, 200, size=12)
            ref.note_references(neighbors)
            # Workers note into private lanes; the parent folds.
            for w in range(workers):
                chunk = neighbors[w::workers]
                hits = chunk[in_flight[chunk] != 0]
                np.add.at(lanes[w], hits, 1)
            shared.fold_lanes()
            assert shared.total_conflicts == ref.total_conflicts
            assert shared.threshold() == ref.threshold()
            for v in group:
                assert shared.dependency_of(v) == ref.dependency_of(v)
                assert shared.should_delay(v) == ref.should_delay(v)
            for v in group:
                shared.remove(v)
                ref.remove(v)
                shared.release_references(neighbors[:4])
                ref.release_references(neighbors[:4])
            assert len(shared) == len(ref)

    def test_capacity_bound(self):
        shared, ref, _, _ = self._fresh()
        for v in range(20):
            assert shared.register(v) == ref.register(v)
        assert len(shared) == 8  # ε·M = 2·4

    def test_clear_lane_discards_partial_notes(self):
        shared, _, lanes, in_flight = self._fresh()
        shared.register(5)
        lanes[1, 5] = 7  # a dying worker's partial notes
        shared.clear_lane(1)
        shared.fold_lanes()
        assert shared.dependency_of(5) == 0
        assert shared.total_conflicts == 0

    def test_register_rejects_when_full_without_corrupting(self):
        shared, _, _, in_flight = self._fresh()
        for v in range(8):
            assert shared.register(v)
        assert not shared.register(99)
        assert in_flight[99] == 0


# ----------------------------------------------------------------------
# SharedArrayBlock
# ----------------------------------------------------------------------
class TestSharedArrayBlock:
    SPEC = [("a", (5,), np.int64), ("b", (3, 4), np.float64),
            ("c", (7,), np.uint8)]

    def test_round_trip_through_attach(self):
        block = SharedArrayBlock.create(self.SPEC)
        try:
            block.views["a"][:] = np.arange(5)
            block.views["b"][:] = 2.5
            other = SharedArrayBlock.attach(block.name, self.SPEC)
            try:
                assert np.array_equal(other.views["a"], np.arange(5))
                assert (other.views["b"] == 2.5).all()
                other.views["c"][:] = 9  # writes flow the other way too
                assert (block.views["c"] == 9).all()
            finally:
                other.close()
        finally:
            block.close()

    def test_views_are_cache_line_aligned(self):
        block = SharedArrayBlock.create(self.SPEC)
        try:
            for view in block.views.values():
                assert view.ctypes.data % 64 == 0
        finally:
            block.close()

    def test_oversized_spec_rejected_on_attach(self):
        block = SharedArrayBlock.create(self.SPEC)
        try:
            bigger = [("x", (64 * 1024,), np.int64)]
            with pytest.raises(ValueError, match="spec mismatch"):
                SharedArrayBlock.attach(block.name, bigger)
        finally:
            block.close()

    def test_owner_close_unlinks_segment(self):
        block = SharedArrayBlock.create(self.SPEC)
        name = block.name
        block.close()
        with pytest.raises(FileNotFoundError):
            SharedArrayBlock.attach(name, self.SPEC)
