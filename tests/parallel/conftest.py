"""Leak check: every test must leave /dev/shm the way it found it.

The process-sharded executor and the service's scoring pool allocate
POSIX shared memory (``psm_*`` segments under /dev/shm on Linux).  A
segment that outlives its test is a real resource leak — on a long-
lived host the 64 MB tmpfs quota eventually fills and *unrelated*
allocations start failing — and it is exactly the failure mode the
teardown paths (pool close, crash teardown, SIGKILL supervision) are
supposed to prevent.  This autouse fixture snapshots the segment names
before each test and fails the test that leaked, naming the segments,
instead of letting the leak surface as a mysterious ENOSPC three
suites later.
"""

from __future__ import annotations

import os

import pytest

_SHM_DIR = "/dev/shm"
#: Python's multiprocessing.shared_memory default name prefix plus the
#: bare ``shm_`` some allocators use; anything else in /dev/shm (other
#: tools, the OS) is not ours to police.
_PREFIXES = ("psm_", "shm_")


def _shm_segments() -> set[str]:
    if not os.path.isdir(_SHM_DIR):  # non-Linux: nothing to check
        return set()
    try:
        names = os.listdir(_SHM_DIR)
    except OSError:
        return set()
    return {n for n in names if n.startswith(_PREFIXES)}


@pytest.fixture(autouse=True)
def shm_leak_check():
    before = _shm_segments()
    yield
    leaked = _shm_segments() - before
    assert not leaked, (
        f"test leaked {len(leaked)} shared-memory segment(s) in "
        f"{_SHM_DIR}: {sorted(leaked)} — a pool teardown path failed "
        f"to unlink")
