"""Unit tests for the Reversed-Counting-Table."""

import numpy as np
import pytest

from repro.parallel import ReversedCountingTable


class TestRegistration:
    def test_register_and_len(self):
        rct = ReversedCountingTable(2)
        assert rct.register(5)
        assert len(rct) == 1

    def test_capacity_is_epsilon_m(self):
        rct = ReversedCountingTable(2, epsilon=2)
        assert rct.capacity == 4
        for v in range(4):
            assert rct.register(v)
        assert not rct.register(99)  # full

    def test_reregister_existing_is_ok_when_full(self):
        rct = ReversedCountingTable(1, epsilon=1)
        rct.register(0)
        assert rct.register(0)  # already present, not a capacity issue

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            ReversedCountingTable(0)
        with pytest.raises(ValueError):
            ReversedCountingTable(2, epsilon=0)


class TestCounting:
    def test_note_references_counts_inflight_only(self):
        rct = ReversedCountingTable(4)
        rct.register(1)
        rct.register(2)
        hits = rct.note_references(np.array([1, 2, 7]))
        assert hits == 2
        assert rct.dependency_of(1) == 1
        assert rct.dependency_of(7) == 0

    def test_total_conflicts_accumulates(self):
        rct = ReversedCountingTable(4)
        rct.register(1)
        rct.note_references([1])
        rct.note_references([1])
        assert rct.total_conflicts == 2
        assert rct.dependency_of(1) == 2

    def test_release_references_drains(self):
        rct = ReversedCountingTable(4)
        rct.register(1)
        rct.note_references([1, 1])
        rct.release_references([1])
        assert rct.dependency_of(1) == 1
        rct.release_references([1])
        rct.release_references([1])  # draining below zero clamps
        assert rct.dependency_of(1) == 0

    def test_remove(self):
        rct = ReversedCountingTable(4)
        rct.register(1)
        rct.remove(1)
        assert len(rct) == 0
        rct.remove(1)  # idempotent


class TestThreshold:
    def test_threshold_is_mean_of_nonzero(self):
        rct = ReversedCountingTable(4)
        for v in (1, 2, 3):
            rct.register(v)
        rct.note_references([1, 1, 1, 2])  # counts: 3, 1, 0
        assert rct.threshold() == pytest.approx(2.0)

    def test_threshold_infinite_when_all_zero(self):
        rct = ReversedCountingTable(4)
        rct.register(1)
        assert rct.threshold() == float("inf")

    def test_should_delay_above_mean(self):
        rct = ReversedCountingTable(4)
        for v in (1, 2):
            rct.register(v)
        rct.note_references([1, 1, 1, 2])  # 1:3, 2:1; mean 2
        assert rct.should_delay(1)
        assert not rct.should_delay(2)

    def test_should_delay_false_for_unknown(self):
        rct = ReversedCountingTable(4)
        assert not rct.should_delay(42)

    def test_total_delays_counted(self):
        rct = ReversedCountingTable(4)
        for v in (1, 2):
            rct.register(v)
        rct.note_references([1, 1, 1, 2])
        rct.should_delay(1)
        assert rct.total_delays == 1
