"""Unit tests for the parallel streaming executors."""

import threading

import pytest

from repro.graph import GraphStream, from_adjacency
from repro.parallel import (
    ReversedCountingTable,
    SimulatedParallelPartitioner,
    ThreadedParallelPartitioner,
)
from repro.partitioning import LDGPartitioner, SPNLPartitioner, evaluate


class TestSimulatedExecutor:
    def test_complete_assignment(self, web_graph):
        p = SimulatedParallelPartitioner(SPNLPartitioner(8), parallelism=4)
        result = p.partition(GraphStream(web_graph))
        result.assignment.validate(web_graph.num_vertices)

    def test_deterministic(self, web_graph):
        def run():
            p = SimulatedParallelPartitioner(SPNLPartitioner(8),
                                             parallelism=4)
            return p.partition(GraphStream(web_graph)).assignment
        assert run() == run()

    def test_m1_matches_serial(self, web_graph):
        """A one-wide batch is exactly the serial algorithm."""
        serial = SPNLPartitioner(8).partition(GraphStream(web_graph))
        par = SimulatedParallelPartitioner(
            SPNLPartitioner(8), parallelism=1,
            use_rct=False).partition(GraphStream(web_graph))
        assert serial.assignment == par.assignment

    def test_quality_degrades_with_parallelism(self, web_graph):
        """Stale in-batch scoring must cost quality as M grows (the
        paper's motivation for the RCT)."""
        serial = SPNLPartitioner(8).partition(GraphStream(web_graph))
        wide = SimulatedParallelPartitioner(
            SPNLPartitioner(8), parallelism=32,
            use_rct=False).partition(GraphStream(web_graph))
        assert evaluate(web_graph, wide.assignment).ecr >= evaluate(
            web_graph, serial.assignment).ecr

    def test_rct_limits_degradation(self, web_graph):
        """With the RCT, wide-parallel ECR must stay closer to serial
        than without it."""
        def ecr(use_rct):
            p = SimulatedParallelPartitioner(
                SPNLPartitioner(8), parallelism=16, use_rct=use_rct)
            return evaluate(
                web_graph,
                p.partition(GraphStream(web_graph)).assignment).ecr
        serial = evaluate(
            web_graph,
            SPNLPartitioner(8).partition(
                GraphStream(web_graph)).assignment).ecr
        with_rct, without_rct = ecr(True), ecr(False)
        assert abs(with_rct - serial) <= abs(without_rct - serial) + 0.01

    def test_delay_stats_reported(self, web_graph):
        p = SimulatedParallelPartitioner(SPNLPartitioner(8), parallelism=8)
        result = p.partition(GraphStream(web_graph))
        assert result.stats["parallelism"] == 8
        assert result.stats["conflicts"] > 0

    def test_works_with_ldg(self, web_graph):
        p = SimulatedParallelPartitioner(LDGPartitioner(8), parallelism=4)
        result = p.partition(GraphStream(web_graph))
        result.assignment.validate(web_graph.num_vertices)

    def test_invalid_parallelism(self):
        with pytest.raises(ValueError):
            SimulatedParallelPartitioner(LDGPartitioner(4), parallelism=0)

    def test_name_encodes_mode(self):
        p = SimulatedParallelPartitioner(SPNLPartitioner(8), parallelism=4)
        assert p.name == "SPNL-par4(sim)"


class TestThreadedExecutor:
    def test_complete_assignment(self, web_graph):
        p = ThreadedParallelPartitioner(
            SPNLPartitioner(8, num_shards="auto"), parallelism=4)
        result = p.partition(GraphStream(web_graph))
        result.assignment.validate(web_graph.num_vertices)

    def test_single_worker_complete(self, web_graph):
        p = ThreadedParallelPartitioner(SPNLPartitioner(8), parallelism=1)
        result = p.partition(GraphStream(web_graph))
        result.assignment.validate(web_graph.num_vertices)

    def test_quality_sane(self, web_graph):
        """Threaded placement must stay in the serial ballpark (the RCT's
        whole job); a 2x blowup would mean lost heuristic state."""
        serial = evaluate(
            web_graph,
            SPNLPartitioner(8).partition(
                GraphStream(web_graph)).assignment).ecr
        p = ThreadedParallelPartitioner(SPNLPartitioner(8), parallelism=4)
        threaded = evaluate(
            web_graph,
            p.partition(GraphStream(web_graph)).assignment).ecr
        assert threaded <= serial * 1.5 + 0.05

    def test_no_rct_mode(self, web_graph):
        p = ThreadedParallelPartitioner(SPNLPartitioner(8), parallelism=2,
                                        use_rct=False)
        result = p.partition(GraphStream(web_graph))
        result.assignment.validate(web_graph.num_vertices)
        assert result.stats["conflicts"] == 0

    def test_stats_shape(self, web_graph):
        p = ThreadedParallelPartitioner(SPNLPartitioner(8), parallelism=2)
        result = p.partition(GraphStream(web_graph))
        assert {"parallelism", "use_rct", "delayed",
                "conflicts"} <= set(result.stats)


class _ExplodingLDG(LDGPartitioner):
    """Scoring raises on every record — simulates a poisoned worker."""

    def _score(self, record, state):
        raise RuntimeError("injected score failure")


class _DelayOnceRCT:
    """RCT stand-in that delays every vertex exactly once (thread-safe),
    making the expected ``delayed`` total exact: one per vertex."""

    def __init__(self, parallelism, epsilon=2):
        self.total_conflicts = 0
        self._lock = threading.Lock()
        self._seen = set()

    def register(self, vertex):
        return True

    def note_references(self, neighbors):
        return 0

    def release_references(self, neighbors):
        pass

    def should_delay(self, vertex):
        with self._lock:
            if vertex in self._seen:
                return False
            self._seen.add(vertex)
            return True

    def remove(self, vertex):
        pass


class _NoteCountingRCT(ReversedCountingTable):
    """Real RCT that additionally counts ``note_references`` *calls*.

    Exactly-once noting means one call per adjacency record — retries,
    delays, and carried batches must not call again for the same record.
    """

    instances: list["_NoteCountingRCT"] = []

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.note_calls = 0
        type(self).instances.append(self)

    def note_references(self, neighbors):
        with self._lock:
            self.note_calls += 1
        return super().note_references(neighbors)


@pytest.fixture
def counting_rct(monkeypatch):
    from repro.parallel import executor as executor_module

    _NoteCountingRCT.instances = []
    monkeypatch.setattr(executor_module, "ReversedCountingTable",
                        _NoteCountingRCT)
    return _NoteCountingRCT.instances


def star_graph(num_spokes: int):
    """Hub 0 referenced by every spoke — the RCT's worst case: while
    the hub is in flight, every concurrent spoke bumps its counter."""
    adjacency = {0: list(range(1, num_spokes + 1))}
    adjacency.update({v: [0] for v in range(1, num_spokes + 1)})
    return from_adjacency(adjacency, num_vertices=num_spokes + 1,
                          name="star")


class TestSimulatedCarriedRecords:
    """Regression (adversarial star graph): carried records used to
    re-note their references on every batch they were carried through,
    inflating neighbor counters without bound — the hub stayed above
    the delay threshold until every record burned its whole delay
    budget, and the ``conflicts`` stat lied."""

    def test_star_graph_terminates_and_places_exactly_once(self):
        graph = star_graph(64)
        p = SimulatedParallelPartitioner(LDGPartitioner(4), parallelism=8,
                                         max_delays=3)
        result = p.partition(GraphStream(graph))
        result.assignment.validate(graph.num_vertices)
        # Force-commit bound: nothing can be delayed more than
        # max_delays times, so the stat is hard-capped.
        assert result.stats["delayed"] <= 3 * graph.num_vertices

    def test_references_noted_exactly_once_per_record(self, counting_rct):
        graph = star_graph(64)
        p = SimulatedParallelPartitioner(LDGPartitioner(4), parallelism=8,
                                         max_delays=3)
        result = p.partition(GraphStream(graph))
        result.assignment.validate(graph.num_vertices)
        (rct,) = counting_rct
        assert rct.note_calls == graph.num_vertices
        assert len(rct) == 0  # fully drained: no ghost registrations

    def test_star_graph_deterministic(self):
        graph = star_graph(48)

        def run():
            p = SimulatedParallelPartitioner(SPNLPartitioner(4),
                                             parallelism=8)
            return p.partition(GraphStream(graph)).assignment

        assert run() == run()


class _CrashOnVertexLDG(LDGPartitioner):
    """Scoring dies the first time it sees a chosen vertex, simulating
    a worker crash mid-record; the retry must succeed."""

    def __init__(self, *args, crash_vertex=37, **kwargs):
        super().__init__(*args, **kwargs)
        self._crash_vertex = crash_vertex
        self._crashed = threading.Event()

    def _score(self, record, state):
        if record.vertex == self._crash_vertex \
                and not self._crashed.is_set():
            self._crashed.set()
            raise RuntimeError("injected one-shot score failure")
        return super()._score(record, state)


class TestThreadedExactlyOnceStats:
    """Regression (satellite of the chaos suite): a record handed back
    by a dying worker was re-noted on retry, so ``conflicts`` and the
    delay behaviour of a crash-recovered run drifted from a clean run's.
    The ``noted`` flag must make noting exactly-once across retries."""

    def test_crash_recovered_run_notes_each_record_once(self, web_graph,
                                                        counting_rct):
        p = ThreadedParallelPartitioner(
            _CrashOnVertexLDG(8), parallelism=2,
            queue_capacity=web_graph.num_vertices + 8,
            max_worker_restarts=2, restart_backoff=0.0)
        result = p.partition(GraphStream(web_graph))
        result.assignment.validate(web_graph.num_vertices)
        assert result.stats["worker_restarts"] == 1
        (rct,) = counting_rct
        assert rct.note_calls == web_graph.num_vertices

    def test_clean_run_notes_each_record_once(self, web_graph,
                                              counting_rct):
        p = ThreadedParallelPartitioner(
            LDGPartitioner(8), parallelism=2,
            queue_capacity=web_graph.num_vertices + 8)
        result = p.partition(GraphStream(web_graph))
        result.assignment.validate(web_graph.num_vertices)
        (rct,) = counting_rct
        assert rct.note_calls == web_graph.num_vertices


class TestThreadedExecutorRegressions:
    def test_worker_errors_do_not_deadlock_producer(self, web_graph):
        """Regression: when every worker dies on an error while the
        bounded buffer is full, the producer used to block forever in
        ``buffer.put`` — nobody was left to drain it.  The bounded-
        timeout put must notice the errors, abort the stream, and let
        ``partition`` surface the original exception."""
        p = ThreadedParallelPartitioner(
            _ExplodingLDG(8), parallelism=2, queue_capacity=2,
            use_rct=False)
        outcome = {}

        def run():
            try:
                p.partition(GraphStream(web_graph))
                outcome["exc"] = None
            except BaseException as exc:
                outcome["exc"] = exc

        t = threading.Thread(target=run, daemon=True)
        t.start()
        t.join(timeout=20.0)
        assert not t.is_alive(), \
            "partition() deadlocked after all workers errored"
        assert isinstance(outcome["exc"], RuntimeError)
        assert "injected score failure" in str(outcome["exc"])

    def test_worker_error_surfaces_with_roomy_queue(self, web_graph):
        """Even without buffer pressure the injected error must reach
        the caller, not vanish into a worker thread."""
        p = ThreadedParallelPartitioner(
            _ExplodingLDG(8), parallelism=2,
            queue_capacity=web_graph.num_vertices + 8, use_rct=False)
        with pytest.raises(RuntimeError, match="injected score failure"):
            p.partition(GraphStream(web_graph))

    def test_delayed_count_exact_under_contention(self, web_graph,
                                                  monkeypatch):
        """Regression: ``delayed_counter[0] += 1`` was an unguarded
        read-modify-write, so racing workers lost increments.  With an
        RCT that delays each vertex exactly once and a queue big enough
        that every re-queue succeeds, the reported total must equal
        |V| exactly — not approximately."""
        from repro.parallel import executor as executor_module

        monkeypatch.setattr(executor_module, "ReversedCountingTable",
                            _DelayOnceRCT)
        p = ThreadedParallelPartitioner(
            LDGPartitioner(8), parallelism=8,
            queue_capacity=web_graph.num_vertices + 16)
        result = p.partition(GraphStream(web_graph))
        result.assignment.validate(web_graph.num_vertices)
        assert result.stats["delayed"] == web_graph.num_vertices
