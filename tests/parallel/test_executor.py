"""Unit tests for the parallel streaming executors."""

import pytest

from repro.graph import GraphStream
from repro.parallel import (
    SimulatedParallelPartitioner,
    ThreadedParallelPartitioner,
)
from repro.partitioning import LDGPartitioner, SPNLPartitioner, evaluate


class TestSimulatedExecutor:
    def test_complete_assignment(self, web_graph):
        p = SimulatedParallelPartitioner(SPNLPartitioner(8), parallelism=4)
        result = p.partition(GraphStream(web_graph))
        result.assignment.validate(web_graph.num_vertices)

    def test_deterministic(self, web_graph):
        def run():
            p = SimulatedParallelPartitioner(SPNLPartitioner(8),
                                             parallelism=4)
            return p.partition(GraphStream(web_graph)).assignment
        assert run() == run()

    def test_m1_matches_serial(self, web_graph):
        """A one-wide batch is exactly the serial algorithm."""
        serial = SPNLPartitioner(8).partition(GraphStream(web_graph))
        par = SimulatedParallelPartitioner(
            SPNLPartitioner(8), parallelism=1,
            use_rct=False).partition(GraphStream(web_graph))
        assert serial.assignment == par.assignment

    def test_quality_degrades_with_parallelism(self, web_graph):
        """Stale in-batch scoring must cost quality as M grows (the
        paper's motivation for the RCT)."""
        serial = SPNLPartitioner(8).partition(GraphStream(web_graph))
        wide = SimulatedParallelPartitioner(
            SPNLPartitioner(8), parallelism=32,
            use_rct=False).partition(GraphStream(web_graph))
        assert evaluate(web_graph, wide.assignment).ecr >= evaluate(
            web_graph, serial.assignment).ecr

    def test_rct_limits_degradation(self, web_graph):
        """With the RCT, wide-parallel ECR must stay closer to serial
        than without it."""
        def ecr(use_rct):
            p = SimulatedParallelPartitioner(
                SPNLPartitioner(8), parallelism=16, use_rct=use_rct)
            return evaluate(
                web_graph,
                p.partition(GraphStream(web_graph)).assignment).ecr
        serial = evaluate(
            web_graph,
            SPNLPartitioner(8).partition(
                GraphStream(web_graph)).assignment).ecr
        with_rct, without_rct = ecr(True), ecr(False)
        assert abs(with_rct - serial) <= abs(without_rct - serial) + 0.01

    def test_delay_stats_reported(self, web_graph):
        p = SimulatedParallelPartitioner(SPNLPartitioner(8), parallelism=8)
        result = p.partition(GraphStream(web_graph))
        assert result.stats["parallelism"] == 8
        assert result.stats["conflicts"] > 0

    def test_works_with_ldg(self, web_graph):
        p = SimulatedParallelPartitioner(LDGPartitioner(8), parallelism=4)
        result = p.partition(GraphStream(web_graph))
        result.assignment.validate(web_graph.num_vertices)

    def test_invalid_parallelism(self):
        with pytest.raises(ValueError):
            SimulatedParallelPartitioner(LDGPartitioner(4), parallelism=0)

    def test_name_encodes_mode(self):
        p = SimulatedParallelPartitioner(SPNLPartitioner(8), parallelism=4)
        assert p.name == "SPNL-par4(sim)"


class TestThreadedExecutor:
    def test_complete_assignment(self, web_graph):
        p = ThreadedParallelPartitioner(
            SPNLPartitioner(8, num_shards="auto"), parallelism=4)
        result = p.partition(GraphStream(web_graph))
        result.assignment.validate(web_graph.num_vertices)

    def test_single_worker_complete(self, web_graph):
        p = ThreadedParallelPartitioner(SPNLPartitioner(8), parallelism=1)
        result = p.partition(GraphStream(web_graph))
        result.assignment.validate(web_graph.num_vertices)

    def test_quality_sane(self, web_graph):
        """Threaded placement must stay in the serial ballpark (the RCT's
        whole job); a 2x blowup would mean lost heuristic state."""
        serial = evaluate(
            web_graph,
            SPNLPartitioner(8).partition(
                GraphStream(web_graph)).assignment).ecr
        p = ThreadedParallelPartitioner(SPNLPartitioner(8), parallelism=4)
        threaded = evaluate(
            web_graph,
            p.partition(GraphStream(web_graph)).assignment).ecr
        assert threaded <= serial * 1.5 + 0.05

    def test_no_rct_mode(self, web_graph):
        p = ThreadedParallelPartitioner(SPNLPartitioner(8), parallelism=2,
                                        use_rct=False)
        result = p.partition(GraphStream(web_graph))
        result.assignment.validate(web_graph.num_vertices)
        assert result.stats["conflicts"] == 0

    def test_stats_shape(self, web_graph):
        p = ThreadedParallelPartitioner(SPNLPartitioner(8), parallelism=2)
        result = p.partition(GraphStream(web_graph))
        assert {"parallelism", "use_rct", "delayed",
                "conflicts"} <= set(result.stats)
