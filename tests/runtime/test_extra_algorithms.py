"""Unit tests for personalized PageRank and HITS."""

import numpy as np
import pytest

networkx = pytest.importorskip("networkx")

from repro.graph import GraphStream, community_web_graph, from_edges
from repro.partitioning import PartitionAssignment, SPNLPartitioner
from repro.runtime import (
    PersonalizedPageRankProgram,
    run_hits,
    run_ppr,
)


@pytest.fixture(scope="module")
def small_graph():
    return community_web_graph(400, avg_community_size=30, seed=15,
                               name="small")


@pytest.fixture(scope="module")
def assignment(small_graph):
    return SPNLPartitioner(4).partition(
        GraphStream(small_graph)).assignment


class TestPPR:
    def test_mass_conserved(self, small_graph, assignment):
        run = run_ppr(small_graph, assignment, [0, 5], iterations=20)
        assert run.values.sum() == pytest.approx(1.0, abs=1e-9)

    def test_matches_networkx(self, small_graph, assignment):
        run = run_ppr(small_graph, assignment, [3], iterations=80)
        g = networkx.DiGraph()
        g.add_nodes_from(range(small_graph.num_vertices))
        g.add_edges_from(small_graph.edges())
        expected = networkx.pagerank(
            g, alpha=0.85, personalization={3: 1.0}, max_iter=300,
            tol=1e-12)
        want = np.array([expected[v]
                         for v in range(small_graph.num_vertices)])
        assert np.allclose(run.values, want, atol=5e-4)

    def test_mass_concentrates_near_sources(self, small_graph,
                                            assignment):
        run = run_ppr(small_graph, assignment, [7], iterations=30)
        assert run.values[7] > np.median(run.values) * 10

    def test_empty_sources_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            PersonalizedPageRankProgram([])

    def test_invalid_damping(self):
        with pytest.raises(ValueError, match="damping"):
            PersonalizedPageRankProgram([0], damping=0.0)


class TestHITS:
    def test_matches_networkx(self, small_graph, assignment):
        run = run_hits(small_graph, assignment, iterations=40)
        g = networkx.DiGraph()
        g.add_nodes_from(range(small_graph.num_vertices))
        g.add_edges_from(small_graph.edges())
        hubs, auths = networkx.hits(g, max_iter=1000, tol=1e-12)
        n = small_graph.num_vertices
        mine_h = run.values[:, 0] / max(run.values[:, 0].sum(), 1e-12)
        ref_h = np.array([hubs[v] for v in range(n)])
        assert np.corrcoef(mine_h, ref_h)[0, 1] > 0.999
        mine_a = run.values[:, 1] / max(run.values[:, 1].sum(), 1e-12)
        ref_a = np.array([auths[v] for v in range(n)])
        assert np.corrcoef(mine_a, ref_a)[0, 1] > 0.999

    def test_star_hub_identified(self):
        """In a star 0→{1..9}, vertex 0 is the hub, leaves are
        authorities."""
        g = from_edges([(0, i) for i in range(1, 10)], num_vertices=10)
        a = PartitionAssignment([0, 0, 0, 0, 0, 1, 1, 1, 1, 1], 2)
        run = run_hits(g, a, iterations=10)
        hubs, auths = run.values[:, 0], run.values[:, 1]
        assert hubs[0] == hubs.max()
        assert auths[0] == pytest.approx(0.0, abs=1e-12)
        assert all(auths[1:] > 0)

    def test_comm_counts_both_directions(self, small_graph, assignment):
        run = run_hits(small_graph, assignment, iterations=3)
        # 3 iterations × 2 phases, one sending superstep each
        assert run.comm.num_supersteps == 6
        assert run.comm.total_messages == 6 * small_graph.num_edges

    def test_partitioning_independent_result(self, small_graph):
        one = PartitionAssignment(
            np.zeros(small_graph.num_vertices, dtype=np.int32), 1)
        many = SPNLPartitioner(8).partition(
            GraphStream(small_graph)).assignment
        a = run_hits(small_graph, one, iterations=10)
        b = run_hits(small_graph, many, iterations=10)
        assert np.allclose(a.values, b.values)
