"""Unit tests for the BSP engine and communication accounting."""

import numpy as np
import pytest

from repro.graph import GraphStream, from_edges
from repro.partitioning import (
    HashPartitioner,
    PartitionAssignment,
    SPNLPartitioner,
    edge_cut,
    evaluate,
)
from repro.runtime import BSPEngine, CommReport, VertexProgram


class _BroadcastOnce(VertexProgram):
    """Every vertex sends its id along out-edges in superstep 0 only."""

    combiner = "sum"

    def initial_values(self, graph):
        return np.zeros(graph.num_vertices)

    def compute(self, superstep, graph, values, incoming):
        if superstep == 0:
            sends = graph.out_degrees() > 0
        else:
            sends = np.zeros(graph.num_vertices, dtype=bool)
        payloads = np.ones(graph.num_vertices)
        if incoming is not None:
            values = values + incoming
        return values, payloads, sends


class TestEngine:
    def test_requires_complete_assignment(self, tiny_graph):
        from repro.partitioning import UNASSIGNED
        a = PartitionAssignment([0, 0, 1, 1, UNASSIGNED], 2)
        with pytest.raises(ValueError):
            BSPEngine(tiny_graph, a)

    def test_broadcast_message_counts_equal_cut(self, tiny_graph):
        """One all-edges broadcast: remote messages == |D| exactly."""
        a = PartitionAssignment([0, 0, 1, 1, 1], 2)
        run = BSPEngine(tiny_graph, a).run(_BroadcastOnce())
        assert run.comm.remote_messages == edge_cut(tiny_graph, a)
        assert run.comm.total_messages == tiny_graph.num_edges

    def test_remote_fraction_equals_ecr(self, web_graph):
        """The headline identity: broadcast remote fraction == ECR."""
        a = SPNLPartitioner(8).partition(
            GraphStream(web_graph)).assignment
        run = BSPEngine(web_graph, a).run(_BroadcastOnce())
        assert run.comm.remote_fraction == pytest.approx(
            evaluate(web_graph, a).ecr)

    def test_sum_combiner(self):
        g = from_edges([(0, 2), (1, 2)], num_vertices=3)
        a = PartitionAssignment([0, 0, 0], 1)
        run = BSPEngine(g, a).run(_BroadcastOnce(), max_supersteps=3)
        assert run.values[2] == 2.0  # both payloads summed

    def test_halts_when_no_sends(self, tiny_graph):
        a = PartitionAssignment([0] * 5, 1)
        run = BSPEngine(tiny_graph, a).run(_BroadcastOnce(),
                                           max_supersteps=50)
        assert run.supersteps == 1

    def test_invalid_combiner_rejected(self, tiny_graph):
        class _Bad(_BroadcastOnce):
            combiner = "median"
        a = PartitionAssignment([0] * 5, 1)
        with pytest.raises(ValueError, match="combiner"):
            BSPEngine(tiny_graph, a).run(_Bad())

    def test_received_per_partition_totals(self, tiny_graph):
        a = PartitionAssignment([0, 0, 1, 1, 1], 2)
        run = BSPEngine(tiny_graph, a).run(_BroadcastOnce())
        assert run.comm.received_per_partition.sum() == \
            tiny_graph.num_edges


class TestCommReport:
    def test_aggregation(self):
        report = CommReport(num_partitions=2)
        report.record(0, local=10, remote=5, active=7)
        report.record(1, local=2, remote=3, active=4)
        assert report.local_messages == 12
        assert report.remote_messages == 8
        assert report.total_messages == 20
        assert report.remote_fraction == 0.4
        assert report.num_supersteps == 2

    def test_empty_report(self):
        report = CommReport(num_partitions=4)
        assert report.remote_fraction == 0.0
        assert report.estimated_makespan() == 0.0

    def test_makespan_penalizes_remote(self):
        local_heavy = CommReport(num_partitions=2)
        local_heavy.record(0, local=100, remote=0, active=10)
        remote_heavy = CommReport(num_partitions=2)
        remote_heavy.record(0, local=0, remote=100, active=10)
        assert remote_heavy.estimated_makespan() > \
            local_heavy.estimated_makespan()

    def test_better_partitioning_lower_makespan(self, web_graph):
        """ECR improvements must translate into makespan improvements."""
        good = SPNLPartitioner(8).partition(
            GraphStream(web_graph)).assignment
        bad = HashPartitioner(8).partition(
            GraphStream(web_graph)).assignment
        good_run = BSPEngine(web_graph, good).run(_BroadcastOnce())
        bad_run = BSPEngine(web_graph, bad).run(_BroadcastOnce())
        assert good_run.comm.estimated_makespan() < \
            bad_run.comm.estimated_makespan()
