"""Unit tests for the vertex-centric algorithms (vs. reference results)."""

import numpy as np
import pytest

networkx = pytest.importorskip("networkx")

from repro.graph import GraphStream, community_web_graph, from_edges
from repro.partitioning import PartitionAssignment, SPNLPartitioner
from repro.runtime import run_pagerank, run_sssp, run_wcc


def _nx_digraph(graph):
    g = networkx.DiGraph()
    g.add_nodes_from(range(graph.num_vertices))
    g.add_edges_from(graph.edges())
    return g


@pytest.fixture(scope="module")
def small_graph():
    return community_web_graph(400, avg_community_size=30, seed=8,
                               name="small")


@pytest.fixture(scope="module")
def small_assignment(small_graph):
    return SPNLPartitioner(4).partition(
        GraphStream(small_graph)).assignment


class TestPageRank:
    def test_ranks_sum_to_one(self, small_graph, small_assignment):
        run = run_pagerank(small_graph, small_assignment, iterations=15)
        assert run.values.sum() == pytest.approx(1.0, abs=1e-9)

    def test_matches_networkx(self, small_graph, small_assignment):
        run = run_pagerank(small_graph, small_assignment, iterations=60)
        expected = networkx.pagerank(_nx_digraph(small_graph), alpha=0.85,
                                     max_iter=200, tol=1e-12)
        got = run.values
        want = np.array([expected[v] for v in
                         range(small_graph.num_vertices)])
        assert np.allclose(got, want, atol=2e-4)

    def test_partitioning_does_not_change_result(self, small_graph):
        """Pregel semantics: the answer is partitioning-independent."""
        a = PartitionAssignment([0] * small_graph.num_vertices, 1)
        b = SPNLPartitioner(8).partition(
            GraphStream(small_graph)).assignment
        run_a = run_pagerank(small_graph, a, iterations=20)
        run_b = run_pagerank(small_graph, b, iterations=20)
        assert np.allclose(run_a.values, run_b.values)

    def test_damping_validation(self):
        from repro.runtime import PageRankProgram
        with pytest.raises(ValueError):
            PageRankProgram(damping=1.5)


class TestSSSP:
    def test_matches_bfs_distances(self, small_graph, small_assignment):
        run = run_sssp(small_graph, small_assignment, source=0)
        expected = networkx.single_source_shortest_path_length(
            _nx_digraph(small_graph), 0)
        for v in range(small_graph.num_vertices):
            if v in expected:
                assert run.values[v] == expected[v]
            else:
                assert np.isinf(run.values[v])

    def test_source_distance_zero(self, small_graph, small_assignment):
        run = run_sssp(small_graph, small_assignment, source=5)
        assert run.values[5] == 0.0

    def test_chain_distances(self):
        g = from_edges([(0, 1), (1, 2), (2, 3)], num_vertices=4)
        a = PartitionAssignment([0, 0, 1, 1], 2)
        run = run_sssp(g, a, source=0)
        assert list(run.values) == [0, 1, 2, 3]

    def test_supersteps_equal_eccentricity_plus_one(self):
        g = from_edges([(i, i + 1) for i in range(9)], num_vertices=10)
        a = PartitionAssignment([0] * 10, 1)
        run = run_sssp(g, a, source=0)
        # 9 sending supersteps: the source broadcast plus 8 interior
        # relaxations (the chain's last vertex has no out-edge to send on).
        assert run.supersteps == 9


class TestWCC:
    def test_single_component(self, small_graph, small_assignment):
        run = run_wcc(small_graph, small_assignment)
        expected = networkx.number_weakly_connected_components(
            _nx_digraph(small_graph))
        assert len(np.unique(run.values)) == expected

    def test_multiple_components(self):
        g = from_edges([(0, 1), (2, 3)], num_vertices=5)
        a = PartitionAssignment([0, 0, 1, 1, 0], 2)
        run = run_wcc(g, a)
        labels = run.values
        assert labels[0] == labels[1]
        assert labels[2] == labels[3]
        assert len({labels[0], labels[2], labels[4]}) == 3

    def test_labels_are_component_minima(self):
        g = from_edges([(4, 2), (2, 7)], num_vertices=8)
        a = PartitionAssignment([0] * 8, 1)
        run = run_wcc(g, a)
        assert run.values[4] == run.values[2] == run.values[7] == 2.0
