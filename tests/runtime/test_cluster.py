"""Unit tests for the cluster cost simulator."""

import numpy as np
import pytest

from repro.graph import GraphStream
from repro.partitioning import HashPartitioner, SPNLPartitioner
from repro.runtime import (
    ClusterModel,
    CommReport,
    run_pagerank,
    simulate_job,
)


class TestClusterModel:
    def test_defaults_valid(self):
        ClusterModel()

    def test_invalid_rates(self):
        with pytest.raises(ValueError):
            ClusterModel(compute_rate=0)
        with pytest.raises(ValueError):
            ClusterModel(network_rate=-1)

    def test_invalid_straggler(self):
        with pytest.raises(ValueError):
            ClusterModel(straggler_factor=0.5)

    def test_invalid_latency(self):
        with pytest.raises(ValueError):
            ClusterModel(barrier_latency=-1)


class TestSimulateJob:
    def _report_with_traffic(self, k=4):
        comm = CommReport(num_partitions=k)
        received = np.array([100, 100, 100, 500])
        remote = np.array([10, 10, 10, 200])
        comm.record(0, local=600, remote=230, active=400,
                    received=received, remote_in=remote,
                    remote_out=remote)
        return comm

    def test_decomposition_sums_to_makespan(self):
        cost = simulate_job(self._report_with_traffic())
        assert cost.makespan_seconds == pytest.approx(
            cost.compute_seconds + cost.network_seconds
            + cost.barrier_seconds)

    def test_barrier_per_superstep(self):
        model = ClusterModel(barrier_latency=0.5)
        cost = simulate_job(self._report_with_traffic(), model)
        assert cost.barrier_seconds == 0.5

    def test_imbalance_creates_wait(self):
        cost = simulate_job(self._report_with_traffic())
        assert cost.wait_seconds > 0
        assert cost.utilization < 1.0

    def test_balanced_traffic_no_wait(self):
        comm = CommReport(num_partitions=2)
        even = np.array([100, 100])
        comm.record(0, local=200, remote=0, active=100,
                    received=even, remote_in=np.zeros(2, dtype=int),
                    remote_out=np.zeros(2, dtype=int))
        cost = simulate_job(comm)
        assert cost.wait_seconds == pytest.approx(0.0)
        assert cost.utilization == pytest.approx(1.0)

    def test_straggler_scales_makespan(self):
        # zero barrier so the (fixed) barrier cost doesn't mask scaling
        base = simulate_job(self._report_with_traffic(),
                            ClusterModel(barrier_latency=0.0))
        slow = simulate_job(
            self._report_with_traffic(),
            ClusterModel(barrier_latency=0.0, straggler_factor=2.0))
        assert slow.makespan_seconds == pytest.approx(
            2.0 * base.makespan_seconds)

    def test_fallback_without_traffic_arrays(self):
        comm = CommReport(num_partitions=4)
        comm.record(0, local=100, remote=20, active=50)
        cost = simulate_job(comm)
        assert cost.makespan_seconds > 0
        assert cost.wait_seconds == pytest.approx(0.0)

    def test_network_dominates_for_remote_heavy(self):
        comm = CommReport(num_partitions=2)
        received = np.array([1000, 1000])
        remote = np.array([1000, 1000])
        comm.record(0, local=0, remote=2000, active=100,
                    received=received, remote_in=remote,
                    remote_out=remote)
        cost = simulate_job(comm)  # network rate 10x slower than compute
        assert cost.network_seconds > cost.compute_seconds


class TestEndToEnd:
    def test_better_partitioning_cheaper_job(self, web_graph):
        """The paper's bottom line, through the full cost model: on a
        locality-rich graph, SPNL's PageRank costs less cluster time
        than hash placement."""
        spnl = SPNLPartitioner(8).partition(
            GraphStream(web_graph)).assignment
        hashed = HashPartitioner(8).partition(
            GraphStream(web_graph)).assignment
        cost_spnl = simulate_job(
            run_pagerank(web_graph, spnl, iterations=8).comm)
        cost_hash = simulate_job(
            run_pagerank(web_graph, hashed, iterations=8).comm)
        assert cost_spnl.makespan_seconds < cost_hash.makespan_seconds

    def test_engine_populates_traffic(self, web_graph):
        a = HashPartitioner(4).partition(GraphStream(web_graph)).assignment
        run = run_pagerank(web_graph, a, iterations=3)
        assert len(run.comm.per_partition_traffic) == \
            run.comm.num_supersteps
        received, remote_in, remote_out = \
            run.comm.per_partition_traffic[0]
        assert received.sum() == run.comm.supersteps[0].total_messages
        assert remote_in.sum() == run.comm.supersteps[0].remote_messages
        assert remote_out.sum() == run.comm.supersteps[0].remote_messages