"""Property-based tests (hypothesis) on core invariants.

These pin the contracts every component must honor for *arbitrary*
graphs, not just the fixtures: complete/disjoint assignments, capacity
bounds, metric ranges, store equivalences, and the LDG-degradation
identity of Eq. 5.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.graph import DiGraph, GraphStream, from_edges
from repro.partitioning import (
    FennelPartitioner,
    FullExpectationStore,
    HashPartitioner,
    LDGPartitioner,
    PartitionAssignment,
    SPNLPartitioner,
    SPNPartitioner,
    SlidingWindowStore,
    edge_cut,
    evaluate,
)

_SETTINGS = settings(
    max_examples=30, deadline=None,
    suppress_health_check=[HealthCheck.too_slow])


@st.composite
def graphs(draw, max_vertices=60, max_edges=240):
    """Arbitrary small directed graphs with consecutive ids."""
    n = draw(st.integers(min_value=2, max_value=max_vertices))
    m = draw(st.integers(min_value=0, max_value=max_edges))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    src = rng.integers(0, n, size=m)
    dst = rng.integers(0, n, size=m)
    keep = src != dst
    return from_edges(zip(src[keep].tolist(), dst[keep].tolist()),
                      num_vertices=n, name=f"hyp{seed % 1000}")


@st.composite
def graph_and_k(draw):
    graph = draw(graphs())
    k = draw(st.integers(min_value=1, max_value=8))
    return graph, k


_PARTITIONER_FACTORIES = [
    lambda k: HashPartitioner(k),
    lambda k: LDGPartitioner(k),
    lambda k: FennelPartitioner(k),
    lambda k: SPNPartitioner(k),
    lambda k: SPNLPartitioner(k),
    lambda k: SPNLPartitioner(k, num_shards="auto"),
]


class TestPartitionerInvariants:
    @_SETTINGS
    @given(data=graph_and_k(),
           factory_idx=st.integers(0, len(_PARTITIONER_FACTORIES) - 1))
    def test_complete_disjoint_assignment(self, data, factory_idx):
        """Sec. II definition: every partitioner yields a total, disjoint
        cover of V for any graph and any K."""
        graph, k = data
        partitioner = _PARTITIONER_FACTORIES[factory_idx](k)
        result = partitioner.partition(GraphStream(graph))
        result.assignment.validate(graph.num_vertices)
        assert result.assignment.num_partitions == k
        assert result.assignment.vertex_counts().sum() == \
            graph.num_vertices

    @_SETTINGS
    @given(data=graph_and_k())
    def test_capacity_bound_holds(self, data):
        """No partition exceeds C = ceil(δ·|V|/K) under vertex balance."""
        graph, k = data
        result = LDGPartitioner(k, slack=1.2).partition(GraphStream(graph))
        cap = int(np.ceil(1.2 * graph.num_vertices / k))
        assert result.assignment.vertex_counts().max() <= cap

    @_SETTINGS
    @given(data=graph_and_k())
    def test_spn_lambda_one_is_ldg(self, data):
        """Eq. 5 with λ=1 degrades to Eq. 3 exactly, placement by
        placement (the paper's own consistency claim)."""
        graph, k = data
        spn = SPNPartitioner(k, lam=1.0).partition(GraphStream(graph))
        ldg = LDGPartitioner(k).partition(GraphStream(graph))
        assert spn.assignment == ldg.assignment

    @_SETTINGS
    @given(data=graph_and_k())
    def test_determinism(self, data):
        graph, k = data
        a = SPNLPartitioner(k).partition(GraphStream(graph)).assignment
        b = SPNLPartitioner(k).partition(GraphStream(graph)).assignment
        assert a == b


class TestMetricInvariants:
    @_SETTINGS
    @given(data=graph_and_k())
    def test_metric_ranges(self, data):
        graph, k = data
        assignment = HashPartitioner(k).partition(
            GraphStream(graph)).assignment
        q = evaluate(graph, assignment)
        assert 0.0 <= q.ecr <= 1.0
        assert q.delta_v >= 1.0 - 1e-9 or graph.num_vertices % k != 0
        assert q.num_cut_edges <= graph.num_edges
        assert q.vertex_counts.sum() == graph.num_vertices
        assert q.edge_counts.sum() == graph.num_edges

    @_SETTINGS
    @given(graph=graphs())
    def test_single_partition_never_cuts(self, graph):
        assignment = PartitionAssignment(
            np.zeros(graph.num_vertices, dtype=np.int32), 1)
        assert edge_cut(graph, assignment) == 0

    @_SETTINGS
    @given(data=graph_and_k())
    def test_cut_matrix_consistency(self, data):
        from repro.partitioning import cut_matrix
        graph, k = data
        assignment = HashPartitioner(k).partition(
            GraphStream(graph)).assignment
        m = cut_matrix(graph, assignment)
        assert m.sum() == graph.num_edges
        assert m.sum() - np.trace(m) == edge_cut(graph, assignment)


class TestStoreEquivalence:
    @_SETTINGS
    @given(seed=st.integers(0, 2**31 - 1),
           shards=st.integers(1, 8))
    def test_windowed_counts_never_exceed_full(self, seed, shards):
        rng = np.random.default_rng(seed)
        n, k = 80, 3
        full = FullExpectationStore(k, n)
        windowed = SlidingWindowStore(k, n, num_shards=shards)
        for v in range(0, n, 2):
            full.advance_to(v)
            windowed.advance_to(v)
            neighbors = rng.integers(0, n, size=3)
            assert (windowed.gather(neighbors)
                    <= full.gather(neighbors)).all()
            pid = int(rng.integers(0, k))
            full.record(pid, neighbors)
            windowed.record(pid, neighbors)

    @_SETTINGS
    @given(seed=st.integers(0, 2**31 - 1))
    def test_window_equals_full_for_live_ids(self, seed):
        """With X=1 the window spans all ids ≥ the stream position, so
        every *placeable* vertex sees identical counts."""
        rng = np.random.default_rng(seed)
        n, k = 60, 2
        full = FullExpectationStore(k, n)
        windowed = SlidingWindowStore(k, n, num_shards=1)
        for v in range(n):
            full.advance_to(v)
            windowed.advance_to(v)
            assert np.array_equal(full.expectation_of(v),
                                  windowed.expectation_of(v))
            neighbors = rng.integers(v, n, size=2)
            pid = int(rng.integers(0, k))
            full.record(pid, neighbors)
            windowed.record(pid, neighbors)


class TestRuntimeIdentity:
    @_SETTINGS
    @given(data=graph_and_k())
    def test_broadcast_remote_fraction_is_ecr(self, data):
        """A one-superstep broadcast over all edges crosses partitions
        exactly |D| times — remote_fraction == ECR for any partitioning."""
        graph, k = data
        if graph.num_edges == 0:
            return
        from repro.runtime import BSPEngine
        from tests.runtime.test_engine import _BroadcastOnce
        assignment = HashPartitioner(k).partition(
            GraphStream(graph)).assignment
        run = BSPEngine(graph, assignment).run(_BroadcastOnce())
        assert run.comm.remote_fraction == pytest.approx(
            evaluate(graph, assignment).ecr)


class TestBuilderRoundtrip:
    @_SETTINGS
    @given(graph=graphs())
    def test_adjacency_file_roundtrip(self, graph, tmp_path_factory):
        from repro.graph import read_adjacency, write_adjacency
        path = tmp_path_factory.mktemp("io") / "g.adj"
        write_adjacency(graph, path)
        assert read_adjacency(path) == graph

    @_SETTINGS
    @given(graph=graphs())
    def test_relabel_preserves_cut_under_mapped_assignment(self, graph):
        """Relabeling a graph and mapping the assignment the same way
        leaves every metric unchanged — metrics depend on structure,
        not on ids."""
        k = 3
        assignment = HashPartitioner(k).partition(
            GraphStream(graph)).assignment
        rng = np.random.default_rng(7)
        perm = rng.permutation(graph.num_vertices)
        relabeled = graph.relabeled(perm)
        mapped_route = np.empty(graph.num_vertices, dtype=np.int32)
        mapped_route[perm] = assignment.route
        mapped = PartitionAssignment(mapped_route, k)
        assert edge_cut(graph, assignment) == edge_cut(relabeled, mapped)
