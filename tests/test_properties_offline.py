"""Property-based tests for the offline substrate.

The multilevel pipeline has the most internal moving parts (matching →
contraction → growing → refinement → projection); hypothesis sweeps
arbitrary graphs through the whole chain and checks the end-to-end
contracts, plus the intermediate invariants that make the chain sound.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.graph import from_edges
from repro.offline import (
    LabelPropagationPartitioner,
    MultilevelPartitioner,
    WeightedGraph,
    coarsen,
    contract,
    heavy_edge_matching,
)
from repro.partitioning import evaluate
from repro.partitioning.eta import ETA_SCHEDULES

_SETTINGS = settings(
    max_examples=20, deadline=None,
    suppress_health_check=[HealthCheck.too_slow])


@st.composite
def graphs(draw, max_vertices=60, max_edges=240):
    n = draw(st.integers(min_value=2, max_value=max_vertices))
    m = draw(st.integers(min_value=0, max_value=max_edges))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    src = rng.integers(0, n, size=m)
    dst = rng.integers(0, n, size=m)
    keep = src != dst
    return from_edges(zip(src[keep].tolist(), dst[keep].tolist()),
                      num_vertices=n, name=f"hyp{seed % 991}")


class TestMatchingProperties:
    @_SETTINGS
    @given(graph=graphs(), seed=st.integers(0, 2**31 - 1))
    def test_matching_is_involution(self, graph, seed):
        wg = WeightedGraph.from_digraph(graph)
        match = heavy_edge_matching(wg, rng=np.random.default_rng(seed))
        assert np.array_equal(match[match], np.arange(wg.num_vertices))

    @_SETTINGS
    @given(graph=graphs(), seed=st.integers(0, 2**31 - 1))
    def test_contraction_conserves_weight_and_cut_upper_bound(
            self, graph, seed):
        wg = WeightedGraph.from_digraph(graph)
        match = heavy_edge_matching(wg, rng=np.random.default_rng(seed))
        coarse, coarse_of = contract(wg, match)
        assert coarse.total_vertex_weight == wg.total_vertex_weight
        # cross-super-vertex edge weight never grows under contraction
        assert coarse.edge_weights.sum() <= wg.edge_weights.sum()

    @_SETTINGS
    @given(graph=graphs(), seed=st.integers(0, 2**31 - 1))
    def test_hierarchy_projects_to_full_cover(self, graph, seed):
        wg = WeightedGraph.from_digraph(graph)
        levels = coarsen(wg, target_vertices=8, seed=seed)
        labels = np.arange(levels[-1].graph.num_vertices)
        for level in reversed(levels[:-1]):
            labels = labels[level.coarse_of]
        assert len(labels) == graph.num_vertices


class TestOfflinePartitionerProperties:
    @_SETTINGS
    @given(graph=graphs(), k=st.integers(1, 6),
           which=st.sampled_from(["multilevel", "lp"]))
    def test_complete_and_within_quota(self, graph, k, which):
        if which == "multilevel":
            partitioner = MultilevelPartitioner(k, slack=1.2)
        else:
            partitioner = LabelPropagationPartitioner(k, slack=1.2)
        result = partitioner.partition(graph)
        result.assignment.validate(graph.num_vertices)
        q = evaluate(graph, result.assignment)
        assert 0.0 <= q.ecr <= 1.0
        # quota + one vertex of rounding headroom on tiny graphs
        assert q.delta_v <= 1.2 + k / max(1, graph.num_vertices) + 0.01


class TestEtaScheduleProperties:
    @_SETTINGS
    @given(seed=st.integers(0, 2**31 - 1),
           name=st.sampled_from(sorted(ETA_SCHEDULES)))
    def test_all_schedules_stay_in_unit_interval(self, seed, name):
        rng = np.random.default_rng(seed)
        k = int(rng.integers(1, 16))
        sizes = rng.integers(1, 1000, size=k)
        lt = np.array([int(rng.integers(0, s + 1)) for s in sizes])
        pt = rng.integers(0, 2000, size=k)
        eta = ETA_SCHEDULES[name](lt.astype(np.int64),
                                  pt.astype(np.int64),
                                  sizes.astype(np.int64))
        assert eta.shape == (k,)
        assert (eta >= 0.0).all() and (eta <= 1.0).all()

    @_SETTINGS
    @given(seed=st.integers(0, 2**31 - 1))
    def test_schedules_vanish_with_exhausted_ranges(self, seed):
        rng = np.random.default_rng(seed)
        k = int(rng.integers(1, 8))
        sizes = rng.integers(1, 100, size=k).astype(np.int64)
        lt = np.zeros(k, dtype=np.int64)
        pt = sizes.copy()
        for name in ("paper", "linear", "sqrt"):
            eta = ETA_SCHEDULES[name](lt, pt, sizes)
            assert np.allclose(eta, 0.0), name
