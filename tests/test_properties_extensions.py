"""Property-based tests for the extension subsystems.

Edge partitioning, the buffered hybrid, and dynamic maintenance each
have their own invariants worth pinning across arbitrary inputs.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.edgepart import (
    DBHPartitioner,
    GreedyEdgePartitioner,
    HDRFPartitioner,
    RandomEdgePartitioner,
    SPNLEdgePartitioner,
    evaluate_edges,
)
from repro.graph import GraphStream, from_edges
from repro.partitioning import (
    BufferedHybridPartitioner,
    DynamicPartitioner,
    LDGPartitioner,
    UNASSIGNED,
)

_SETTINGS = settings(
    max_examples=20, deadline=None,
    suppress_health_check=[HealthCheck.too_slow])


@st.composite
def graphs(draw, max_vertices=50, max_edges=200):
    n = draw(st.integers(min_value=2, max_value=max_vertices))
    m = draw(st.integers(min_value=1, max_value=max_edges))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    src = rng.integers(0, n, size=m)
    dst = rng.integers(0, n, size=m)
    keep = src != dst
    return from_edges(zip(src[keep].tolist(), dst[keep].tolist()),
                      num_vertices=n, name=f"hyp{seed % 997}")


_EDGE_FACTORIES = [
    lambda k: RandomEdgePartitioner(k),
    lambda k: DBHPartitioner(k),
    lambda k: GreedyEdgePartitioner(k),
    lambda k: HDRFPartitioner(k),
    lambda k: SPNLEdgePartitioner(k, num_shards=1),
]


class TestEdgePartitioningInvariants:
    @_SETTINGS
    @given(graph=graphs(), k=st.integers(1, 6),
           idx=st.integers(0, len(_EDGE_FACTORIES) - 1))
    def test_every_edge_assigned_once(self, graph, k, idx):
        result = _EDGE_FACTORIES[idx](k).partition(graph)
        assert result.assignment.num_edges == graph.num_edges
        assert result.assignment.edge_counts().sum() == graph.num_edges

    @_SETTINGS
    @given(graph=graphs(), k=st.integers(1, 6),
           idx=st.integers(0, len(_EDGE_FACTORIES) - 1))
    def test_replicas_cover_exactly_touched_partitions(self, graph, k,
                                                       idx):
        """A vertex is replicated in partition p iff some incident edge
        was assigned to p — the defining identity of edge partitioning."""
        result = _EDGE_FACTORIES[idx](k).partition(graph)
        expected = np.zeros((graph.num_vertices, k), dtype=bool)
        for (src, dst), pid in zip(graph.edges(),
                                   result.assignment.edge_pids):
            expected[src, pid] = True
            expected[dst, pid] = True
        assert np.array_equal(result.assignment.replicas, expected)

    @_SETTINGS
    @given(graph=graphs(), k=st.integers(1, 6))
    def test_rf_bounds(self, graph, k):
        if graph.num_edges == 0:
            return  # RF undefined (0 by convention) with no edges
        result = HDRFPartitioner(k).partition(graph)
        rf = evaluate_edges(graph, result.assignment).replication_factor
        assert 1.0 <= rf <= k


class TestBufferedInvariants:
    @_SETTINGS
    @given(graph=graphs(), k=st.integers(1, 6),
           buffer=st.integers(2, 64))
    def test_complete_and_consistent(self, graph, k, buffer):
        p = BufferedHybridPartitioner(lambda: LDGPartitioner(k),
                                      buffer_size=buffer)
        result = p.partition(GraphStream(graph))
        result.assignment.validate(graph.num_vertices)
        counts = np.bincount(result.assignment.route, minlength=k)
        assert np.array_equal(counts,
                              result.assignment.vertex_counts())


class TestDynamicInvariants:
    @_SETTINGS
    @given(graph=graphs(max_vertices=40, max_edges=120),
           k=st.integers(1, 4))
    def test_incremental_equals_streaming_domain(self, graph, k):
        """Feeding a whole graph incrementally leaves every vertex
        placed and all tallies consistent."""
        dp = DynamicPartitioner(k, capacity_vertices=graph.num_vertices)
        for record in graph.records():
            dp.add_vertex(record.vertex, record.neighbors.tolist())
        assignment = dp.assignment()
        assignment.validate(graph.num_vertices)
        assert dp.graph() == graph

    @_SETTINGS
    @given(graph=graphs(max_vertices=40, max_edges=120),
           k=st.integers(1, 4))
    def test_restream_completeness(self, graph, k):
        dp = DynamicPartitioner(k, capacity_vertices=graph.num_vertices)
        for record in graph.records():
            dp.add_vertex(record.vertex, record.neighbors.tolist())
        quality = dp.restream()
        assert 0.0 <= quality.ecr <= 1.0
        dp.assignment().validate(graph.num_vertices)
