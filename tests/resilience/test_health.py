"""HealthMonitor unit tests: the degraded-modes state machine."""

import pytest

from repro.resilience.health import (
    DEGRADED,
    DRAINING,
    HEALTH_STATES,
    HEALTHY,
    READ_ONLY,
    HealthMonitor,
)


class TestTransitions:
    def test_starts_healthy_and_mutable(self):
        monitor = HealthMonitor()
        assert monitor.state == HEALTHY
        assert monitor.allows_mutation

    def test_read_only_blocks_mutation(self):
        monitor = HealthMonitor()
        assert monitor.transition(READ_ONLY, "wal_append_failed")
        assert not monitor.allows_mutation

    def test_degraded_still_mutates(self):
        monitor = HealthMonitor()
        monitor.transition(DEGRADED, "snapshot_failed")
        assert monitor.allows_mutation

    def test_self_transition_is_a_silent_noop(self):
        seen = []
        monitor = HealthMonitor(on_transition=seen.append)
        assert not monitor.transition(HEALTHY, "redundant")
        assert seen == []
        assert monitor.transitions == 0

    def test_draining_is_terminal(self):
        monitor = HealthMonitor()
        monitor.transition(DRAINING, "shutdown")
        for state in (HEALTHY, DEGRADED, READ_ONLY):
            assert not monitor.transition(state, "too_late")
        assert monitor.state == DRAINING

    def test_unknown_state_is_a_programming_error(self):
        with pytest.raises(ValueError, match="unknown health state"):
            HealthMonitor().transition("on_fire", "whoops")

    def test_recovery_round_trip(self):
        monitor = HealthMonitor()
        monitor.transition(READ_ONLY, "wal_append_failed")
        monitor.transition(HEALTHY, "recovered")
        assert monitor.allows_mutation
        assert monitor.transitions == 2


class TestObservability:
    def test_callback_sees_the_record(self):
        seen = []
        monitor = HealthMonitor(on_transition=seen.append)
        monitor.transition(READ_ONLY, "wal_append_failed",
                           detail="disk said no")
        assert seen[0]["from_state"] == HEALTHY
        assert seen[0]["to_state"] == READ_ONLY
        assert seen[0]["reason"] == "wal_append_failed"
        assert seen[0]["detail"] == "disk said no"

    def test_callback_exceptions_never_block_the_transition(self):
        def explode(record):
            raise RuntimeError("observer bug")

        monitor = HealthMonitor(on_transition=explode)
        assert monitor.transition(READ_ONLY, "wal_append_failed")
        assert monitor.state == READ_ONLY

    def test_snapshot_reports_state_and_history(self):
        monitor = HealthMonitor()
        monitor.transition(DEGRADED, "snapshot_failed")
        monitor.transition(HEALTHY, "snapshot_recovered")
        snap = monitor.snapshot()
        assert snap["health_state"] == HEALTHY
        assert snap["transitions"] == 2
        assert [r["reason"] for r in snap["history"]] \
            == ["snapshot_failed", "snapshot_recovered"]

    def test_history_is_bounded(self):
        monitor = HealthMonitor(history_keep=4)
        for _ in range(10):
            monitor.transition(DEGRADED, "snapshot_failed")
            monitor.transition(HEALTHY, "snapshot_recovered")
        assert len(monitor.snapshot()["history"]) == 4

    def test_every_state_is_reachable_from_somewhere(self):
        assert set(HEALTH_STATES) == {HEALTHY, DEGRADED, READ_ONLY,
                                      DRAINING}
