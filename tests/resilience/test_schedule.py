"""Chaos-schedule harness tests.

The light half pins the declarative surface (FaultEvent/ChaosSchedule
serialization and validation).  The ``chaos``-marked half runs real
schedules against a live server / the process executor and asserts the
tentpole acceptance criterion: a scripted WAL failure degrades the
server to read-only *without dropping an acked placement*, recovery
returns it to healthy, and a seeded replay is deterministic — two runs
produce the identical trace of faults and health transitions.
"""

import json

import pytest

from repro.graph import community_web_graph
from repro.partitioning.config import PartitionConfig
from repro.resilience.schedule import (
    SCENARIOS,
    ChaosSchedule,
    FaultEvent,
    run_executor_schedule,
    run_schedule,
)

K = 8


@pytest.fixture(scope="module")
def graph():
    return community_web_graph(600, seed=7)


@pytest.fixture(scope="module")
def config():
    return PartitionConfig(method="spnl", num_partitions=K)


class TestDeclarativeSurface:
    def test_event_round_trip(self):
        event = FaultEvent(3, "slow_engine", {"throttle_seconds": 0.25})
        assert FaultEvent.from_dict(event.to_dict()) == event

    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError, match="unknown action"):
            FaultEvent(0, "set_on_fire")

    def test_negative_step_rejected(self):
        with pytest.raises(ValueError, match="step"):
            FaultEvent(-1, "fail_wal")

    def test_schedule_round_trip(self):
        schedule = SCENARIOS["wal-outage"]()
        again = ChaosSchedule.from_dict(schedule.to_dict())
        assert again == schedule

    def test_schedule_loads_from_json_file(self, tmp_path):
        schedule = SCENARIOS["slow-engine"]()
        path = tmp_path / "schedule.json"
        path.write_text(json.dumps(schedule.to_dict()))
        assert ChaosSchedule.from_json(path) == schedule

    def test_schedule_validation(self):
        with pytest.raises(ValueError, match="steps"):
            ChaosSchedule("bad", steps=0)
        with pytest.raises(ValueError, match="teardown"):
            ChaosSchedule("bad", steps=1, teardown="shrug")
        with pytest.raises(ValueError, match="max_shed_rate"):
            ChaosSchedule("bad", steps=1, max_shed_rate=1.5)

    def test_builtin_scenarios_build(self):
        for name, build in SCENARIOS.items():
            schedule = build()
            assert schedule.name == name
            assert schedule.steps >= 1


@pytest.mark.chaos
class TestServiceSchedules:
    def test_wal_outage_degrades_recovers_and_loses_nothing(
            self, graph, config, tmp_path):
        report = run_schedule(SCENARIOS["wal-outage"](), graph,
                              workdir=tmp_path, config=config)
        assert report.ok, report.invariants
        # The scripted outage really happened: read_only was entered
        # and left, and steps in between answered read_only.
        assert ("healthy", "read_only", "wal_append_failed") \
            in report.health_transitions
        assert ("read_only", "healthy", "recovered") \
            in report.health_transitions
        outcomes = [t["outcome"] for t in report.trace]
        assert "read_only" in outcomes
        assert outcomes[-1] == "ok"
        assert report.final_recovery["health_state"] == "healthy"
        assert report.acked  # placements survived the crash teardown

    def test_replay_is_deterministic(self, graph, config, tmp_path):
        rep1 = run_schedule(SCENARIOS["wal-outage"](), graph,
                            workdir=tmp_path / "a", config=config)
        rep2 = run_schedule(SCENARIOS["wal-outage"](), graph,
                            workdir=tmp_path / "b", config=config)
        assert rep1.replay_key() == rep2.replay_key()

    def test_slow_engine_sheds_on_deadline_then_recovers(
            self, graph, config, tmp_path):
        report = run_schedule(SCENARIOS["slow-engine"](), graph,
                              workdir=tmp_path, config=config)
        assert report.ok, report.invariants
        outcomes = [t["outcome"] for t in report.trace]
        # Throttled steps miss the 100 ms budget (whether shed at
        # admission or expired in queue); restoring the engine heals.
        assert outcomes.count("deadline_exceeded") >= 2
        assert outcomes[-1] == "ok"
        # A slow engine is overload, not damage: health stays healthy.
        assert all(t["health"] == "healthy" for t in report.trace)

    def test_wal_flap_walks_two_full_cycles(self, graph, config,
                                            tmp_path):
        report = run_schedule(SCENARIOS["wal-flap"](), graph,
                              workdir=tmp_path, config=config)
        assert report.ok, report.invariants
        entered = [t for t in report.health_transitions
                   if t[1] == "read_only"]
        recovered = [t for t in report.health_transitions
                     if t == ("read_only", "healthy", "recovered")]
        assert len(entered) == 2
        assert len(recovered) == 2

    def test_report_to_dict_is_json_serializable(self, graph, config,
                                                 tmp_path):
        report = run_schedule(SCENARIOS["wal-outage"](), graph,
                              workdir=tmp_path, config=config)
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["ok"] is True
        assert payload["schedule"]["name"] == "wal-outage"
        assert len(payload["trace"]) == report.schedule.steps


@pytest.mark.chaos
class TestExecutorSchedules:
    def test_kill_worker_keeps_assignment_parity(self, graph):
        schedule = ChaosSchedule(
            name="executor-kill", steps=1,
            events=[FaultEvent(1, "kill_worker", {"worker": 0})])
        report = run_executor_schedule(schedule, graph, method="spnl",
                                       parallelism=4, num_workers=2)
        assert report.ok, report.invariants

    def test_kill_worker_noop_on_single_process_service(self, graph,
                                                        config, tmp_path):
        # kill_worker is a documented no-op against an unsharded server:
        # the schedule runs to completion with every invariant intact.
        schedule = ChaosSchedule(
            name="kill-noop", steps=2,
            events=[FaultEvent(0, "kill_worker")])
        report = run_schedule(schedule, graph, workdir=tmp_path,
                              config=config)
        assert report.ok, report.invariants
