"""BackoffPolicy unit tests: capping, jitter bounds, floors, seeding."""

import pytest

from repro.resilience.backoff import BackoffPolicy


class TestIdeal:
    def test_doubles_then_caps(self):
        policy = BackoffPolicy(0.05, 0.4, jitter=False)
        assert policy.ideal(1) == pytest.approx(0.05)
        assert policy.ideal(2) == pytest.approx(0.10)
        assert policy.ideal(3) == pytest.approx(0.20)
        assert policy.ideal(4) == pytest.approx(0.40)
        assert policy.ideal(5) == pytest.approx(0.40)  # capped
        assert policy.ideal(500) == pytest.approx(0.40)  # no overflow

    def test_no_jitter_delay_is_the_ideal(self):
        policy = BackoffPolicy(0.05, 2.0, jitter=False)
        assert policy.delay(3) == pytest.approx(policy.ideal(3))


class TestJitter:
    def test_full_jitter_stays_within_the_envelope(self):
        policy = BackoffPolicy(0.05, 2.0, seed=1)
        for attempt in range(1, 12):
            for _ in range(20):
                d = policy.delay(attempt)
                assert 0.0 <= d <= policy.ideal(attempt)

    def test_seeded_sequences_replay(self):
        a = BackoffPolicy(0.05, 2.0, seed=42)
        b = BackoffPolicy(0.05, 2.0, seed=42)
        assert [a.delay(i) for i in range(1, 10)] \
            == [b.delay(i) for i in range(1, 10)]

    def test_jitter_actually_varies(self):
        policy = BackoffPolicy(0.05, 2.0, seed=7)
        assert len({policy.delay(6) for _ in range(16)}) > 1


class TestFloor:
    def test_floor_is_respected(self):
        policy = BackoffPolicy(0.05, 2.0, seed=3)
        for _ in range(50):
            assert policy.delay(1, floor=0.03) >= 0.03

    def test_floor_above_ideal_wins_outright(self):
        # The server's retry_after hint dominates a smaller ideal.
        policy = BackoffPolicy(0.01, 0.02, seed=3)
        assert policy.delay(1, floor=0.5) == pytest.approx(0.5)


class TestValidation:
    def test_negative_base_rejected(self):
        with pytest.raises(ValueError):
            BackoffPolicy(-0.1, 1.0)

    def test_cap_below_base_rejected(self):
        with pytest.raises(ValueError):
            BackoffPolicy(0.5, 0.1)
