"""AdmissionController unit tests: watermarks, lag, deadlines, stats."""

import pytest

from repro.resilience.admission import AdmissionController


class TestWatermark:
    def test_below_watermark_admits(self):
        ctl = AdmissionController(10, shed_watermark=0.8)
        assert ctl.admit(0) is None
        assert ctl.admit(7) is None

    def test_at_watermark_sheds_overloaded(self):
        ctl = AdmissionController(10, shed_watermark=0.8)
        decision = ctl.admit(8)
        assert decision is not None
        assert decision.code == "overloaded"

    def test_watermark_1_still_admits_an_empty_queue(self):
        # capacity 1 -> watermark depth 1: depth 0 gets in, depth 1 sheds.
        ctl = AdmissionController(1)
        assert ctl.admit(0) is None
        assert ctl.admit(1).code == "overloaded"

    def test_watermark_of_one_disables_early_shedding(self):
        ctl = AdmissionController(10, shed_watermark=1.0)
        assert ctl.admit(9) is None  # only a genuinely full queue sheds
        assert ctl.admit(10).code == "overloaded"


class TestLagWatermark:
    def test_lag_sheds_even_with_a_short_queue(self):
        # Strict inequality: expected_wait == max_lag still admits,
        # one more queued request tips it over.
        ctl = AdmissionController(100, max_lag_seconds=0.15)
        ctl.observe_group(1.0, 10)  # 100 ms per request
        assert ctl.admit(0) is None      # wait 0.1 <= 0.15
        assert ctl.admit(1).code == "overloaded"  # wait 0.2 > 0.15

    def test_no_lag_watermark_ignores_the_ewma(self):
        ctl = AdmissionController(100)
        ctl.observe_group(10.0, 1)  # 10 s per request, nobody cares
        assert ctl.admit(50) is None

    def test_ewma_smooths(self):
        ctl = AdmissionController(10, ewma_alpha=0.5)
        ctl.observe_group(1.0, 1)
        ctl.observe_group(3.0, 1)
        assert ctl.stats()["ewma_request_seconds"] == pytest.approx(2.0)


class TestDeadlines:
    def test_exhausted_budget_sheds_immediately(self):
        ctl = AdmissionController(10)
        assert ctl.admit(0, deadline_remaining=0.0).code \
            == "deadline_exceeded"
        assert ctl.admit(0, deadline_remaining=-1.0).code \
            == "deadline_exceeded"

    def test_unmeetable_wait_sheds_up_front(self):
        ctl = AdmissionController(10)
        ctl.observe_group(0.5, 1)  # 500 ms per request
        decision = ctl.admit(3, deadline_remaining=0.1)
        assert decision.code == "deadline_exceeded"

    def test_meetable_deadline_admits(self):
        ctl = AdmissionController(10)
        ctl.observe_group(0.001, 1)
        assert ctl.admit(2, deadline_remaining=1.0) is None

    def test_deadline_check_precedes_the_watermark(self):
        # Both would shed; the deadline code wins (freshest client signal).
        ctl = AdmissionController(10, shed_watermark=0.5)
        ctl.observe_group(1.0, 1)
        decision = ctl.admit(9, deadline_remaining=0.1)
        assert decision.code == "deadline_exceeded"


class TestStats:
    def test_shed_rate_accounting(self):
        ctl = AdmissionController(4)
        for _ in range(6):
            ctl.count_accept()
        ctl.count_shed("overloaded")
        ctl.count_shed("backpressure")
        stats = ctl.stats()
        assert stats["accepted"] == 6
        assert stats["shed"] == {"backpressure": 1, "overloaded": 1}
        assert stats["shed_total"] == 2
        assert stats["shed_rate"] == pytest.approx(0.25)

    def test_fresh_controller_reports_zero_rate(self):
        assert AdmissionController(4).stats()["shed_rate"] == 0.0

    def test_watermark_depth_is_reported(self):
        assert AdmissionController(64).stats()["watermark_depth"] == 55


class TestValidation:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            AdmissionController(0)

    def test_watermark_bounds(self):
        with pytest.raises(ValueError):
            AdmissionController(4, shed_watermark=0.0)
        with pytest.raises(ValueError):
            AdmissionController(4, shed_watermark=1.5)

    def test_lag_must_be_positive(self):
        with pytest.raises(ValueError):
            AdmissionController(4, max_lag_seconds=0.0)
