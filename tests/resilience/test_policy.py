"""RetryPolicy and CircuitBreaker unit tests (no real sleeping)."""

import pytest

from repro.resilience.policy import (
    CircuitBreaker,
    CircuitOpenError,
    RetriesExhausted,
    RetryPolicy,
)


class Flaky:
    """Fails ``failures`` times, then returns ``value``."""

    def __init__(self, failures, value="ok", exc=ValueError):
        self.failures = failures
        self.value = value
        self.exc = exc
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.calls <= self.failures:
            raise self.exc(f"boom {self.calls}")
        return self.value


class TestRetryPolicy:
    def test_first_try_success_never_sleeps(self):
        sleeps = []
        policy = RetryPolicy(max_attempts=3)
        assert policy.call(Flaky(0), sleep=sleeps.append) == "ok"
        assert sleeps == []

    def test_retries_then_succeeds(self):
        sleeps = []
        fn = Flaky(2)
        policy = RetryPolicy(max_attempts=3, base_backoff=0.01,
                             jitter=False)
        assert policy.call(fn, sleep=sleeps.append) == "ok"
        assert fn.calls == 3
        assert sleeps == [pytest.approx(0.01), pytest.approx(0.02)]

    def test_exhaustion_is_typed_and_carries_the_cause(self):
        policy = RetryPolicy(max_attempts=2, base_backoff=0.001,
                             jitter=False)
        with pytest.raises(RetriesExhausted) as info:
            policy.call(Flaky(99), sleep=lambda _: None)
        assert info.value.attempts == 3
        assert isinstance(info.value.last_error, ValueError)
        assert isinstance(info.value.__cause__, ValueError)

    def test_non_retryable_errors_propagate_untouched(self):
        policy = RetryPolicy(max_attempts=5)
        with pytest.raises(KeyError):
            policy.call(Flaky(1, exc=KeyError),
                        retry_on=(ValueError,), sleep=lambda _: None)

    def test_total_budget_stops_before_the_sleep(self):
        # Budget smaller than the first delay: fail fast, zero sleeping.
        sleeps = []
        policy = RetryPolicy(max_attempts=10, base_backoff=0.5,
                             total_budget=0.1, jitter=False)
        with pytest.raises(RetriesExhausted) as info:
            policy.call(Flaky(99), sleep=sleeps.append)
        assert sleeps == []
        assert info.value.slept == 0.0

    def test_floor_hint_lifts_the_delay(self):
        sleeps = []
        policy = RetryPolicy(max_attempts=1, base_backoff=0.001,
                             jitter=False)
        policy.call(Flaky(1), floor_hint=lambda exc: 0.25,
                    sleep=sleeps.append)
        assert sleeps == [pytest.approx(0.25)]

    def test_zero_attempts_means_single_try(self):
        policy = RetryPolicy(max_attempts=0)
        with pytest.raises(RetriesExhausted):
            policy.call(Flaky(1), sleep=lambda _: None)


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


class TestCircuitBreaker:
    def test_stays_closed_below_threshold(self):
        breaker = CircuitBreaker(failure_threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow()

    def test_trips_open_at_threshold_and_fails_fast(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=2, reset_after=5.0,
                                 clock=clock)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.trips == 1
        with pytest.raises(CircuitOpenError) as info:
            breaker.check()
        assert info.value.retry_after == pytest.approx(5.0)
        assert breaker.fast_failures == 1

    def test_success_resets_the_failure_streak(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_allows_exactly_one_probe(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_after=5.0,
                                 clock=clock)
        breaker.record_failure()
        clock.now += 5.0
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert breaker.allow()       # the single probe
        assert not breaker.allow()   # everyone else keeps failing fast

    def test_probe_success_closes(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_after=1.0,
                                 clock=clock)
        breaker.record_failure()
        clock.now += 1.0
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_probe_failure_reopens_immediately(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=3, reset_after=1.0,
                                 clock=clock)
        for _ in range(3):
            breaker.record_failure()
        clock.now += 1.0
        assert breaker.allow()
        breaker.record_failure()  # one failed probe re-trips, not three
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.trips == 2

    def test_retry_after_hint_extends_the_open_window(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_after=1.0,
                                 clock=clock)
        breaker.record_failure(retry_after=10.0)
        clock.now += 5.0
        assert breaker.state == CircuitBreaker.OPEN
        clock.now += 5.0
        assert breaker.state == CircuitBreaker.HALF_OPEN
