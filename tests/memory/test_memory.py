"""Unit tests for the analytic memory models and the tracemalloc tracker."""

import numpy as np
import pytest

from repro.memory import (
    measure_peak,
    offline_bytes,
    spn_bytes,
    spnl_bytes,
    streaming_baseline_bytes,
    trace_peak,
)


class TestAnalyticModels:
    def test_ldg_components(self):
        est = streaming_baseline_bytes(1000, 32, 50)
        assert set(est.breakdown) == {"route_table", "score_vector",
                                      "record_buffer"}
        assert est.total_bytes == sum(est.breakdown.values())

    def test_spn_adds_expectation_tables(self):
        base = streaming_baseline_bytes(1000, 32, 50)
        spn = spn_bytes(1000, 32, 50, num_shards=1)
        assert spn.total_bytes > base.total_bytes
        assert spn.breakdown["expectation_tables"] == 32 * 1000 * 4

    def test_window_divides_expectation_cost(self):
        full = spn_bytes(10_000, 32, 50, num_shards=1)
        windowed = spn_bytes(10_000, 32, 50, num_shards=100)
        ratio = (full.breakdown["expectation_tables"]
                 / windowed.breakdown["expectation_tables"])
        assert ratio == pytest.approx(100, rel=0.02)

    def test_monotone_in_shards(self):
        sizes = [spn_bytes(10_000, 32, 50, num_shards=x).total_bytes
                 for x in (1, 4, 16, 64)]
        assert all(a > b for a, b in zip(sizes, sizes[1:]))

    def test_spnl_adds_logical_tables(self):
        spn = spn_bytes(1000, 32, 50, num_shards=4)
        spnl = spnl_bytes(1000, 32, 50, num_shards=4)
        assert spnl.total_bytes > spn.total_bytes
        assert "logical_tables" in spnl.breakdown

    def test_offline_scales_with_edges(self):
        small = offline_bytes(1000, 10_000)
        big = offline_bytes(1000, 100_000)
        assert big.total_bytes > 5 * small.total_bytes

    def test_table4_ordering(self):
        """The paper's Table IV ordering must hold in the models:
        LDG ≈ SPNL(X=128) « SPNL(X=1), and offline ≥ graph size."""
        n, k, maxd = 10**6, 32, 10_000
        ldg = streaming_baseline_bytes(n, k, maxd).total_bytes
        spnl_full = spnl_bytes(n, k, maxd, 1).total_bytes
        spnl_win = spnl_bytes(n, k, maxd, 128).total_bytes
        assert spnl_full > 10 * ldg
        assert spnl_win < 2 * ldg
        metis = offline_bytes(n, 10**7, "METIS", 2.5).total_bytes
        assert metis > spnl_win

    def test_as_row(self):
        row = spn_bytes(1000, 8, 10).as_row()
        assert "MC(MB)" in row and row["method"] == "SPN"


class TestTracker:
    def test_detects_allocation(self):
        with trace_peak() as peak:
            data = np.zeros(1_000_000, dtype=np.int64)  # 8 MB
            del data
        assert peak.peak_bytes > 7_000_000

    def test_measure_peak_returns_result(self):
        result, peak = measure_peak(lambda: sum(range(10)))
        assert result == 45
        assert peak >= 0

    def test_small_block_small_peak(self):
        with trace_peak() as peak:
            _ = [1, 2, 3]
        assert peak.peak_bytes < 1_000_000

    def test_peak_mb_property(self):
        with trace_peak() as peak:
            _ = np.zeros(500_000)
        assert peak.peak_mb == pytest.approx(peak.peak_bytes / 1e6)
