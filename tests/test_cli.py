"""End-to-end tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_partition_defaults(self):
        args = build_parser().parse_args(["partition", "g.adj", "out"])
        assert args.method == "spnl"
        assert args.k == 32
        assert args.shards == "auto"

    def test_bench_targets_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "table99"])


class TestGenerate:
    def test_generate_writes_file(self, tmp_path, capsys):
        out = tmp_path / "g.adj"
        assert main(["generate", str(out), "--vertices", "500",
                     "--seed", "2"]) == 0
        assert out.exists()
        assert "|V|=500" in capsys.readouterr().out

    def test_generate_named_dataset(self, tmp_path, capsys):
        out = tmp_path / "uk.adj"
        assert main(["generate", str(out), "--dataset", "uk2005"]) == 0
        assert "uk2005" in capsys.readouterr().out


class TestPartitionEvaluateInfo:
    @pytest.fixture
    def graph_file(self, tmp_path):
        out = tmp_path / "g.adj"
        main(["generate", str(out), "--vertices", "800", "--seed", "4"])
        return out

    def test_partition_writes_routes(self, graph_file, tmp_path, capsys):
        routes = tmp_path / "routes.txt"
        assert main(["partition", str(graph_file), str(routes),
                     "--method", "spnl", "-k", "4"]) == 0
        table = np.loadtxt(routes, dtype=int)
        assert len(table) == 800
        assert set(np.unique(table)) <= set(range(4))
        assert "ECR=" in capsys.readouterr().out

    def test_every_method_runs(self, graph_file, tmp_path):
        for method in ("ldg", "fennel", "spn", "spnl", "hash", "range",
                       "metis", "xtrapulp"):
            routes = tmp_path / f"{method}.txt"
            assert main(["partition", str(graph_file), str(routes),
                         "--method", method, "-k", "4"]) == 0

    def test_threaded_partition(self, graph_file, tmp_path):
        routes = tmp_path / "routes.txt"
        assert main(["partition", str(graph_file), str(routes),
                     "--method", "spnl", "-k", "4",
                     "--threads", "2"]) == 0
        assert len(np.loadtxt(routes, dtype=int)) == 800

    def test_process_sharded_partition(self, graph_file, tmp_path):
        routes = tmp_path / "routes.txt"
        assert main(["partition", str(graph_file), str(routes),
                     "--method", "spnl", "-k", "4", "--shards", "1",
                     "--processes", "4"]) == 0
        assert len(np.loadtxt(routes, dtype=int)) == 800

    def test_process_sharded_checkpoint_resume(self, graph_file,
                                               tmp_path, capsys):
        base = ["partition", str(graph_file), "--method", "spnl",
                "-k", "4", "--shards", "1", "--processes", "4"]
        clean = tmp_path / "clean.txt"
        assert main([base[0], base[1], str(clean), *base[2:],
                     "--checkpoint-every", "200"]) == 0
        snaps = sorted((tmp_path / "clean.txt.ckpt").glob("*.snap"))
        assert snaps
        resumed = tmp_path / "resumed.txt"
        assert main([base[0], base[1], str(resumed), *base[2:],
                     "--resume-from", str(snaps[0]),
                     "--checkpoint-dir",
                     str(tmp_path / "clean.txt.ckpt")]) == 0
        assert "resumed from" in capsys.readouterr().out
        np.testing.assert_array_equal(np.loadtxt(clean, dtype=int),
                                      np.loadtxt(resumed, dtype=int))

    def test_processes_and_threads_are_exclusive(self, graph_file,
                                                 tmp_path):
        with pytest.raises(SystemExit, match="mutually exclusive"):
            main(["partition", str(graph_file),
                  str(tmp_path / "r.txt"), "--method", "spnl",
                  "-k", "4", "--threads", "2", "--processes", "2"])

    def test_processes_reject_offline_method(self, graph_file,
                                             tmp_path):
        with pytest.raises(SystemExit, match="offline"):
            main(["partition", str(graph_file),
                  str(tmp_path / "r.txt"), "--method", "metis",
                  "-k", "4", "--processes", "2"])

    def test_processes_reject_unsupported_heuristic(self, graph_file,
                                                    tmp_path):
        with pytest.raises(SystemExit, match="score lanes"):
            main(["partition", str(graph_file),
                  str(tmp_path / "r.txt"), "--method", "random",
                  "-k", "4", "--processes", "2"])

    def test_evaluate_roundtrip(self, graph_file, tmp_path, capsys):
        routes = tmp_path / "routes.txt"
        main(["partition", str(graph_file), str(routes), "-k", "4"])
        capsys.readouterr()
        assert main(["evaluate", str(graph_file), str(routes)]) == 0
        assert "ECR=" in capsys.readouterr().out

    def test_info(self, graph_file, capsys):
        assert main(["info", str(graph_file)]) == 0
        out = capsys.readouterr().out
        assert "|V|" in out

    def test_analyze(self, graph_file, tmp_path, capsys):
        routes = tmp_path / "routes.txt"
        main(["partition", str(graph_file), str(routes), "-k", "4"])
        capsys.readouterr()
        assert main(["analyze", str(graph_file), str(routes),
                     "--bins", "5"]) == 0
        out = capsys.readouterr().out
        assert "cut fraction by id-distance" in out
        assert "boundary vertices" in out
        assert "partition connectivity" in out

    def test_named_dataset_partition(self, tmp_path):
        routes = tmp_path / "routes.txt"
        assert main(["partition", "uk2005", str(routes), "--method",
                     "ldg", "-k", "8"]) == 0

    def test_missing_graph_errors(self, tmp_path):
        with pytest.raises(SystemExit, match="neither"):
            main(["info", str(tmp_path / "missing.adj")])


class TestEdgePartition:
    def test_edgepartition_writes_assignment(self, tmp_path, capsys):
        graph = tmp_path / "g.adj"
        main(["generate", str(graph), "--vertices", "600", "--seed", "6"])
        out = tmp_path / "edges.txt"
        assert main(["edgepartition", str(graph), str(out),
                     "--method", "hdrf", "-k", "4"]) == 0
        table = np.loadtxt(out, dtype=int)
        assert set(np.unique(table)) <= set(range(4))
        assert "RF=" in capsys.readouterr().out

    def test_every_edge_method_runs(self, tmp_path):
        graph = tmp_path / "g.adj"
        main(["generate", str(graph), "--vertices", "400", "--seed", "6"])
        for method in ("random", "dbh", "greedy", "hdrf", "spnl-e"):
            out = tmp_path / f"{method}.txt"
            assert main(["edgepartition", str(graph), str(out),
                         "--method", method, "-k", "4"]) == 0


class TestBenchCommand:
    def test_table2(self, capsys):
        assert main(["bench", "table2"]) == 0
        assert "stanford" in capsys.readouterr().out

    def test_fig3_small_k(self, capsys):
        assert main(["bench", "fig3", "-k", "4"]) == 0
        assert "lambda" in capsys.readouterr().out


class TestTraceFlags:
    """The observability CLI surface: --trace and --probe-every."""

    @pytest.fixture
    def graph_file(self, tmp_path):
        out = tmp_path / "g.adj"
        main(["generate", str(out), "--vertices", "800", "--seed", "4"])
        return out

    def test_trace_writes_schema_valid_jsonl(self, graph_file, tmp_path,
                                             capsys):
        import json

        from repro.observability import validate_record

        routes = tmp_path / "routes.txt"
        trace = tmp_path / "trace.jsonl"
        assert main(["partition", str(graph_file), str(routes),
                     "--method", "spnl", "-k", "4",
                     "--trace", str(trace), "--probe-every", "100"]) == 0
        assert f"trace -> {trace}" in capsys.readouterr().out
        lines = trace.read_text().splitlines()
        records = [json.loads(line) for line in lines]
        assert len(records) == 800 // 100 + 1  # windows + summary
        for record in records:
            validate_record(record)
        assert records[-1]["type"] == "stream_summary"
        assert records[-1]["placements"] == 800

    def test_trace_does_not_change_assignment(self, graph_file, tmp_path):
        plain = tmp_path / "plain.txt"
        traced = tmp_path / "traced.txt"
        main(["partition", str(graph_file), str(plain),
              "--method", "spnl", "-k", "4"])
        main(["partition", str(graph_file), str(traced),
              "--method", "spnl", "-k", "4",
              "--trace", str(tmp_path / "t.jsonl")])
        np.testing.assert_array_equal(np.loadtxt(plain, dtype=int),
                                      np.loadtxt(traced, dtype=int))

    def test_probe_every_without_trace_prints_progress(
            self, graph_file, tmp_path, capsys):
        routes = tmp_path / "routes.txt"
        assert main(["partition", str(graph_file), str(routes),
                     "--method", "ldg", "-k", "4",
                     "--probe-every", "200"]) == 0
        err = capsys.readouterr().err
        assert "[probe LDG]" in err
        assert "200 placed" in err

    def test_threaded_trace(self, graph_file, tmp_path):
        import json

        from repro.observability import validate_record

        trace = tmp_path / "t.jsonl"
        assert main(["partition", str(graph_file),
                     str(tmp_path / "r.txt"), "--method", "spnl",
                     "-k", "4", "--threads", "2",
                     "--trace", str(trace), "--probe-every", "200"]) == 0
        records = [json.loads(line)
                   for line in trace.read_text().splitlines()]
        for record in records:
            validate_record(record)
        assert records[-1]["type"] == "stream_summary"
        assert records[-1]["placements"] == 800

    def test_offline_method_ignores_trace_flags(self, graph_file,
                                                tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        assert main(["partition", str(graph_file),
                     str(tmp_path / "r.txt"), "--method", "metis",
                     "-k", "4", "--trace", str(trace)]) == 0
        assert not trace.exists()
        assert "ignored" in capsys.readouterr().err
