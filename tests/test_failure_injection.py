"""Failure-injection tests: broken inputs, dying workers, bad streams.

Production partitioners fail loudly and early; these tests pin the
failure behavior rather than the happy path.
"""

import numpy as np
import pytest

from repro.graph import (
    AdjacencyRecord,
    GraphStream,
    from_edges,
    read_adjacency,
    read_edge_list,
)
from repro.parallel import ThreadedParallelPartitioner
from repro.partitioning import (
    LDGPartitioner,
    SPNLPartitioner,
    StreamingPartitioner,
)


class TestCorruptFiles:
    def test_garbage_tokens_in_edge_list(self, tmp_path):
        path = tmp_path / "bad.edges"
        path.write_text("0 1\nfoo bar\n")
        with pytest.raises(ValueError):
            read_edge_list(path)

    def test_garbage_tokens_in_adjacency(self, tmp_path):
        path = tmp_path / "bad.adj"
        path.write_text("0 1 2\nnot-a-number 3\n")
        with pytest.raises(ValueError):
            read_adjacency(path)

    def test_negative_ids_rejected(self, tmp_path):
        path = tmp_path / "neg.edges"
        path.write_text("0 -5\n")
        with pytest.raises(ValueError):
            read_edge_list(path)

    def test_truncated_gzip(self, tmp_path):
        import gzip
        path = tmp_path / "g.adj.gz"
        with gzip.open(path, "wt") as fh:
            fh.write("0 1 2\n" * 100)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        with pytest.raises(Exception):  # EOFError / BadGzipFile
            read_adjacency(path)


class _ExplodingStream:
    """A stream that dies partway through (disk error, network drop)."""

    def __init__(self, graph, fail_after: int) -> None:
        self._graph = graph
        self.fail_after = fail_after
        self.num_vertices = graph.num_vertices
        self.num_edges = graph.num_edges
        self.is_id_ordered = True

    def __iter__(self):
        for i, record in enumerate(self._graph.records()):
            if i >= self.fail_after:
                raise IOError("stream source died")
            yield record


class _ExplodingPartitioner(StreamingPartitioner):
    """Scores fine until a poisoned vertex arrives."""

    def __init__(self, *args, poison: int = 10, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.poison = poison

    def _score(self, record, state):
        if record.vertex == self.poison:
            raise RuntimeError("scoring blew up")
        return np.zeros(state.num_partitions)


class TestStreamFailures:
    def test_serial_propagates_stream_error(self, web_graph):
        stream = _ExplodingStream(web_graph, fail_after=50)
        with pytest.raises(IOError, match="died"):
            LDGPartitioner(4).partition(stream)

    def test_threaded_producer_error_surfaces(self, web_graph):
        """A dying producer must not hang the executor; the error (or a
        partial-result failure) must reach the caller."""
        stream = _ExplodingStream(web_graph, fail_after=50)
        executor = ThreadedParallelPartitioner(SPNLPartitioner(4),
                                               parallelism=2)
        with pytest.raises(Exception):
            result = executor.partition(stream)
            # if no exception was re-raised, the assignment must betray
            # the truncation loudly on validation
            result.assignment.validate(web_graph.num_vertices)

    def test_threaded_worker_error_surfaces(self, web_graph):
        executor = ThreadedParallelPartitioner(
            _ExplodingPartitioner(4, poison=25), parallelism=2)
        with pytest.raises(RuntimeError, match="blew up"):
            executor.partition(GraphStream(web_graph))

    def test_serial_worker_error_propagates(self, web_graph):
        with pytest.raises(RuntimeError, match="blew up"):
            _ExplodingPartitioner(4, poison=25).partition(
                GraphStream(web_graph))


class TestStateCorruptionGuards:
    def test_double_placement_rejected(self):
        from repro.partitioning import PartitionState
        state = PartitionState(2, 10, 0)
        record = AdjacencyRecord(3, np.array([], dtype=np.int64))
        state.commit(record, 0)
        with pytest.raises(ValueError, match="twice"):
            state.commit(record, 1)

    def test_route_table_with_oversized_pid_rejected(self):
        from repro.partitioning import PartitionAssignment
        with pytest.raises(ValueError):
            PartitionAssignment([0, 7], 4)

    def test_stream_shorter_than_declared_detected(self, web_graph):
        """A stream that under-delivers leaves unassigned vertices, and
        evaluation refuses to produce numbers for it."""
        class _Short(GraphStream):
            def __iter__(self):
                for i, record in enumerate(super().__iter__()):
                    if i >= 100:
                        return
                    yield record

        from repro.partitioning import evaluate
        result = LDGPartitioner(4).partition(_Short(web_graph))
        with pytest.raises(ValueError, match="unassigned"):
            evaluate(web_graph, result.assignment)
