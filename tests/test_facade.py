"""The top-level facade: ``from repro import partition_stream, ...``."""

import numpy as np
import pytest

from repro import (
    available_partitioners,
    evaluate,
    make_partitioner,
    partition_stream,
)
from repro.graph import GraphStream


class TestExports:
    def test_facade_names_at_top_level(self):
        import repro

        for name in ("partition_stream", "make_partitioner", "evaluate",
                     "available_partitioners"):
            assert name in repro.__all__
            assert callable(getattr(repro, name))

    def test_deep_import_paths_still_work(self):
        # The pre-facade module paths remain the same objects.
        from repro.partitioning.metrics import evaluate as deep_evaluate
        from repro.partitioning.registry import (
            make_partitioner as deep_make,
        )

        assert deep_evaluate is evaluate
        assert deep_make is make_partitioner


class TestPartitionStream:
    def test_streaming_smoke(self, web_graph):
        result = partition_stream(web_graph, "spnl", 8)
        assert result.num_partitions == 8
        quality = evaluate(web_graph, result.assignment)
        assert 0.0 <= quality.ecr <= 1.0
        assert quality.delta_v < 1.2

    def test_matches_direct_construction(self, web_graph):
        facade = partition_stream(web_graph, "ldg", 8, slack=1.2)
        direct = make_partitioner("ldg", 8, slack=1.2).partition(
            GraphStream(web_graph))
        np.testing.assert_array_equal(facade.assignment.route,
                                      direct.assignment.route)

    def test_accepts_existing_stream(self, web_graph):
        result = partition_stream(GraphStream(web_graph), "ldg", 4)
        assert result.assignment.route.shape == (web_graph.num_vertices,)

    def test_order_forwarded(self, web_graph):
        rng = np.random.default_rng(0)
        order = rng.permutation(web_graph.num_vertices)
        a = partition_stream(web_graph, "ldg", 4, order=order)
        b = partition_stream(web_graph, "ldg", 4, order=order)
        np.testing.assert_array_equal(a.assignment.route,
                                      b.assignment.route)

    def test_offline_method_takes_graph_or_stream(self, web_graph):
        for graph in (web_graph, GraphStream(web_graph)):
            result = partition_stream(graph, "metis", 4)
            assert result.assignment.route.shape == \
                (web_graph.num_vertices,)

    def test_offline_method_rejects_bare_stream(self, web_graph):
        class NotAGraph:
            pass

        with pytest.raises(TypeError, match="DiGraph"):
            partition_stream(NotAGraph(), "metis", 4)

    def test_threads_wrap_in_parallel_executor(self, web_graph):
        result = partition_stream(web_graph, "spnl", 8, threads=2)
        assert "par2" in result.partitioner
        assert result.stats["placements"] == web_graph.num_vertices

    def test_unknown_method_lists_names(self, web_graph):
        with pytest.raises(ValueError, match="registered names"):
            partition_stream(web_graph, "not-a-method", 8)

    def test_unknown_kwargs_dropped(self, web_graph):
        # The facade shares one kwargs namespace across methods.
        result = partition_stream(web_graph, "fennel", 8, lam=0.5,
                                  num_shards=4)
        assert result.assignment.route.shape == (web_graph.num_vertices,)

    def test_instrumentation_wires_through(self, web_graph):
        from repro.observability import Instrumentation, MemorySink

        sink = MemorySink()
        with Instrumentation([sink], probe_every=500) as hub:
            result = partition_stream(web_graph, "spnl", 8,
                                      instrumentation=hub)
        assert sink.records[-1]["type"] == "stream_summary"
        assert sink.records[-1]["placements"] == web_graph.num_vertices
        assert result.stats["placements"] == web_graph.num_vertices

    def test_offline_instrumentation_records_timer(self, web_graph):
        from repro.observability import Instrumentation

        hub = Instrumentation()
        partition_stream(web_graph, "metis", 4, instrumentation=hub)
        assert hub.timers["partition.metis"].count == 1


class TestNormalizedStats:
    @pytest.mark.parametrize("method", ["spnl", "spn", "ldg", "fennel",
                                        "hash", "random"])
    def test_common_keys_always_present(self, web_graph, method):
        result = partition_stream(web_graph, method, 8)
        assert result.stats["placements"] == web_graph.num_vertices
        assert result.stats["capacity_overflows"] >= 0
        assert result.stats["expectation_table_entries"] >= 0

    def test_spnl_reports_real_table_size(self, web_graph):
        result = partition_stream(web_graph, "spnl", 8)
        assert result.stats["expectation_table_entries"] > 0
        assert result.stats["expectation_table_bytes"] > 0
        # The legacy key stays for existing consumers.
        assert result.stats["expectation_bytes"] == \
            result.stats["expectation_table_bytes"]
