"""Snapshot codec and atomic-write guarantees."""

import json

import numpy as np
import pytest

from repro.recovery import (
    SnapshotError,
    atomic_write_text,
    atomic_writer,
    read_snapshot,
    write_snapshot,
)
from repro.recovery.chaos import corrupt_snapshot, tear_snapshot


def _payload():
    return {
        "position": 1234,
        "elapsed_seconds": 0.75,
        "partitioner": "SPNL",
        "partition_state": {
            "route": np.arange(50, dtype=np.int32),
            "vertex_counts": np.array([20, 30], dtype=np.int64),
            "capacity": 27.0,
            "balance": "vertex",
            "edge_capacity": None,
        },
        "heuristic": {
            "lt_counts": np.array([5, 7], dtype=np.int64),
            "store": {"kind": "full",
                      "table": np.zeros((50, 2), dtype=np.int32)},
        },
    }


class TestRoundTrip:
    def test_nested_payload_survives(self, tmp_path):
        path = tmp_path / "s.snap"
        original = _payload()
        write_snapshot(path, original)
        loaded = read_snapshot(path)
        assert loaded["position"] == 1234
        assert loaded["partitioner"] == "SPNL"
        assert loaded["partition_state"]["edge_capacity"] is None
        np.testing.assert_array_equal(
            loaded["partition_state"]["route"],
            original["partition_state"]["route"])
        np.testing.assert_array_equal(
            loaded["heuristic"]["store"]["table"],
            original["heuristic"]["store"]["table"])

    def test_empty_heuristic_dict_round_trips(self, tmp_path):
        path = tmp_path / "s.snap"
        write_snapshot(path, {"position": 0, "heuristic": {}})
        loaded = read_snapshot(path)
        assert loaded["heuristic"] == {}

    def test_big_int_scalars_survive(self, tmp_path):
        # RandomPartitioner's PCG64 state holds 128-bit ints.
        path = tmp_path / "s.snap"
        state = json.dumps({"state": {"state": 2**127 + 3}})
        write_snapshot(path, {"rng_state": state})
        assert read_snapshot(path)["rng_state"] == state

    def test_slash_in_key_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="/"):
            write_snapshot(tmp_path / "s.snap", {"a/b": 1})


class TestIntegrity:
    def test_torn_snapshot_rejected(self, tmp_path):
        path = tmp_path / "s.snap"
        write_snapshot(path, _payload())
        tear_snapshot(path, keep_fraction=0.6)
        with pytest.raises(SnapshotError, match="truncated"):
            read_snapshot(path)

    def test_bitflip_fails_crc(self, tmp_path):
        path = tmp_path / "s.snap"
        write_snapshot(path, _payload())
        for seed in range(5):
            blob = path.read_bytes()
            corrupt_snapshot(path, seed=seed)
            with pytest.raises(SnapshotError):
                read_snapshot(path)
            path.write_bytes(blob)  # restore for the next flip

    def test_not_a_snapshot_rejected(self, tmp_path):
        path = tmp_path / "s.snap"
        path.write_bytes(b"definitely not a snapshot file")
        with pytest.raises(SnapshotError, match="magic"):
            read_snapshot(path)

    def test_future_version_rejected(self, tmp_path):
        import struct

        path = tmp_path / "s.snap"
        write_snapshot(path, _payload())
        blob = path.read_bytes()
        (header_len,) = struct.unpack_from(">I", blob, 10)
        header = json.loads(blob[14:14 + header_len])
        header["version"] = 99
        raw = json.dumps(header, sort_keys=True).encode()
        path.write_bytes(blob[:10] + struct.pack(">I", len(raw)) + raw
                         + blob[14 + header_len:])
        with pytest.raises(SnapshotError, match="version"):
            read_snapshot(path)


class TestAtomicWriter:
    def test_failure_leaves_previous_contents(self, tmp_path):
        path = tmp_path / "out.txt"
        path.write_text("previous complete version\n")
        with pytest.raises(RuntimeError):
            with atomic_writer(path) as fh:
                fh.write("half-written")
                raise RuntimeError("crash mid-write")
        assert path.read_text() == "previous complete version\n"
        assert list(tmp_path.iterdir()) == [path]  # tmp file cleaned up

    def test_success_replaces(self, tmp_path):
        path = tmp_path / "out.txt"
        path.write_text("old")
        atomic_write_text(path, "new")
        assert path.read_text() == "new"

    def test_gzip_transparent(self, tmp_path):
        import gzip

        path = tmp_path / "out.txt.gz"
        atomic_write_text(path, "compressed payload")
        with gzip.open(path, "rt") as fh:
            assert fh.read() == "compressed payload"
