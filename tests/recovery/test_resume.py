"""Byte-identical checkpoint/resume for every streaming partitioner.

The acceptance bar: a run killed at an arbitrary record and resumed from
its latest snapshot produces the *byte-identical* route table to the run
that never crashed — on both execution paths (the vectorized fast path
over CSR arrays and the record-at-a-time path over a disk stream).
"""

import numpy as np
import pytest

from repro.graph import GraphStream, community_web_graph, write_adjacency
from repro.graph.stream import FileStream
from repro.partitioning.registry import (
    available_partitioners,
    make_partitioner,
    resolve,
)
from repro.recovery import (
    CheckpointConfig,
    latest_snapshot,
    partition_with_checkpoints,
    read_snapshot,
    resume_partition,
    snapshot_path,
)

STREAMING = tuple(n for n in available_partitioners()
                  if resolve(n).is_streaming)
K = 4


@pytest.fixture(scope="module")
def graph():
    return community_web_graph(400, avg_degree=8, seed=7)


@pytest.fixture(scope="module")
def baselines(graph):
    """Uninterrupted single-call route tables, per method."""
    return {
        name: make_partitioner(name, K).partition(
            GraphStream(graph)).assignment.route
        for name in STREAMING
    }


class TestFastPathResume:
    """CSR-backed streams: segmented kernels + kernel rebuild on resume."""

    @pytest.mark.parametrize("name", STREAMING)
    def test_checkpointed_run_matches_plain_run(self, name, graph,
                                                baselines, tmp_path):
        result = partition_with_checkpoints(
            make_partitioner(name, K), GraphStream(graph),
            tmp_path, every=97, keep=100)
        np.testing.assert_array_equal(result.assignment.route,
                                      baselines[name])
        assert result.stats["checkpoints_written"] > 0

    @pytest.mark.parametrize("name", STREAMING)
    def test_resume_from_every_cut_point(self, name, graph, baselines,
                                         tmp_path):
        # One pass writes snapshots at several positions (keep them all),
        # then each snapshot seeds an independent fresh-process resume.
        partition_with_checkpoints(
            make_partitioner(name, K), GraphStream(graph),
            tmp_path, every=101, keep=100)
        snaps = sorted(tmp_path.glob("ckpt-*.snap"))
        assert len(snaps) >= 2
        for snap in snaps:
            resumed = resume_partition(
                make_partitioner(name, K), GraphStream(graph), snap,
                config=CheckpointConfig(tmp_path / "resumed", keep=100))
            np.testing.assert_array_equal(
                resumed.assignment.route, baselines[name],
                err_msg=f"{name} diverged resuming from {snap.name}")

    def test_resume_mid_stream_keeps_fast_path(self, graph, tmp_path):
        partition_with_checkpoints(
            make_partitioner("spnl", K), GraphStream(graph),
            tmp_path, every=150, keep=100)
        resumed = resume_partition(
            make_partitioner("spnl", K), GraphStream(graph),
            snapshot_path(tmp_path, 150))
        assert resumed.stats["fast_path"] is True


class TestRecordPathResume:
    """Disk streams (never CSR-convertible): the record-at-a-time loop."""

    @pytest.fixture(scope="class")
    def adj_file(self, graph, tmp_path_factory):
        path = tmp_path_factory.mktemp("stream") / "g.adj"
        write_adjacency(graph, path)
        return path

    @pytest.mark.parametrize("name", ("ldg", "fennel", "spn", "spnl"))
    def test_file_stream_resume_matches(self, name, adj_file, graph,
                                        baselines, tmp_path):
        partition_with_checkpoints(
            make_partitioner(name, K), FileStream(adj_file),
            tmp_path, every=123, keep=100)
        for snap in sorted(tmp_path.glob("ckpt-*.snap")):
            resumed = resume_partition(
                make_partitioner(name, K), FileStream(adj_file), snap,
                config=CheckpointConfig(tmp_path / "r", keep=100))
            assert resumed.stats["fast_path"] is False
            np.testing.assert_array_equal(
                resumed.assignment.route, baselines[name],
                err_msg=f"{name} record-path resume from {snap.name}")


class TestResumeGuards:
    def test_wrong_partitioner_rejected(self, graph, tmp_path):
        partition_with_checkpoints(make_partitioner("spnl", K),
                                   GraphStream(graph), tmp_path, every=150)
        with pytest.raises(ValueError, match="SPNL"):
            resume_partition(make_partitioner("ldg", K),
                             GraphStream(graph), latest_snapshot(tmp_path))

    def test_wrong_k_rejected(self, graph, tmp_path):
        partition_with_checkpoints(make_partitioner("ldg", K),
                                   GraphStream(graph), tmp_path, every=150)
        with pytest.raises(ValueError):
            resume_partition(make_partitioner("ldg", K + 1),
                             GraphStream(graph), latest_snapshot(tmp_path))

    def test_snapshot_records_position_and_elapsed(self, graph, tmp_path):
        partition_with_checkpoints(make_partitioner("ldg", K),
                                   GraphStream(graph), tmp_path, every=150)
        payload = read_snapshot(snapshot_path(tmp_path, 150))
        assert payload["position"] == 150
        assert payload["partition_state"]["placed_vertices"] == 150
        assert payload["elapsed_seconds"] >= 0.0

    def test_pruning_keeps_newest(self, graph, tmp_path):
        partition_with_checkpoints(make_partitioner("ldg", K),
                                   GraphStream(graph), tmp_path,
                                   every=50, keep=2)
        snaps = sorted(p.name for p in tmp_path.glob("ckpt-*.snap"))
        assert len(snaps) == 2
        assert snaps[-1] == snapshot_path(tmp_path, 350).name

    def test_empty_directory_has_no_latest(self, tmp_path):
        assert latest_snapshot(tmp_path) is None
        assert latest_snapshot(tmp_path / "missing") is None
