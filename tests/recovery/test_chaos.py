"""Seeded chaos suite (``pytest -m chaos``).

Each test injects a fault the runtime claims to survive — a mid-pass
crash, a torn snapshot, a flaky disk, a dying worker, a garbage feed —
and asserts the documented recovery behavior, deterministically.
"""

import numpy as np
import pytest

from repro.graph import GraphStream, community_web_graph, write_adjacency
from repro.observability import Instrumentation, MemorySink
from repro.parallel import ThreadedParallelPartitioner
from repro.partitioning import SPNLPartitioner
from repro.partitioning.registry import make_partitioner
from repro.recovery import (
    ErrorBudgetExceeded,
    IngestionPolicy,
    SnapshotError,
    latest_snapshot,
    partition_with_checkpoints,
    resume_partition,
)
from repro.recovery.chaos import (
    CrashingStream,
    FlakyFileStream,
    FlakyScorer,
    InjectedCrash,
    tear_snapshot,
)

pytestmark = pytest.mark.chaos

K = 4


@pytest.fixture(scope="module")
def graph():
    return community_web_graph(400, avg_degree=8, seed=13)


@pytest.fixture(scope="module")
def baseline(graph):
    return SPNLPartitioner(K).partition(GraphStream(graph)).assignment.route


class TestCrashResume:
    @pytest.mark.parametrize("crash_at", (120, 255, 399))
    def test_killed_run_resumes_byte_identically(self, graph, baseline,
                                                 tmp_path, crash_at):
        # The "process" dies mid-pass; the snapshots it managed to write
        # survive.  A fresh partitioner resumes from the newest one and
        # must land exactly where the never-crashed run lands.
        doomed = CrashingStream(GraphStream(graph), crash_at=crash_at)
        with pytest.raises(InjectedCrash):
            partition_with_checkpoints(SPNLPartitioner(K), doomed,
                                       tmp_path, every=100)
        snap = latest_snapshot(tmp_path)
        assert snap is not None
        result = resume_partition(SPNLPartitioner(K), GraphStream(graph),
                                  snap)
        np.testing.assert_array_equal(result.assignment.route, baseline)

    def test_torn_snapshot_refused_loudly(self, graph, tmp_path):
        partition_with_checkpoints(SPNLPartitioner(K), GraphStream(graph),
                                   tmp_path, every=100)
        snap = latest_snapshot(tmp_path)
        tear_snapshot(snap, keep_fraction=0.5)
        with pytest.raises(SnapshotError):
            resume_partition(SPNLPartitioner(K), GraphStream(graph), snap)


class TestFlakyDisk:
    def test_transient_read_failures_are_retried(self, graph, tmp_path,
                                                 baseline):
        path = tmp_path / "g.adj"
        write_adjacency(graph, path)
        stream = FlakyFileStream(path, failure_rate=0.02, max_failures=3,
                                 seed=5, retries=5, retry_backoff=0.0)
        result = SPNLPartitioner(K).partition(stream)
        assert stream.failures_injected == 3  # the chaos actually fired
        # Exactly-once delivery despite retries: identical to a calm disk.
        np.testing.assert_array_equal(result.assignment.route, baseline)

    def test_persistent_failures_exhaust_retries(self, graph, tmp_path):
        path = tmp_path / "g.adj"
        write_adjacency(graph, path)
        stream = FlakyFileStream(path, failure_rate=1.0, max_failures=10**9,
                                 seed=0, retries=2, retry_backoff=0.0)
        with pytest.raises(OSError, match="injected"):
            SPNLPartitioner(K).partition(stream)


class TestDyingWorkers:
    def test_transient_worker_death_is_survived(self, graph):
        flaky = FlakyScorer(SPNLPartitioner(K), die_on={50: 1, 200: 1})
        executor = ThreadedParallelPartitioner(
            flaky, parallelism=2, max_worker_restarts=4,
            restart_backoff=0.0)
        sink = MemorySink()
        with Instrumentation([sink]) as hub:
            result = executor.partition(GraphStream(graph),
                                        instrumentation=hub)
        assert flaky.deaths == 2
        assert result.stats["worker_restarts"] >= 1
        result.assignment.validate(graph.num_vertices)  # every vertex placed
        restarts = [r for r in sink.records
                    if r["type"] == "worker_restart"]
        assert restarts and restarts[0]["backoff_seconds"] >= 0.0

    def test_poison_record_exhausts_budget_and_surfaces(self, graph):
        flaky = FlakyScorer(SPNLPartitioner(K), die_on={50: 10**9})
        executor = ThreadedParallelPartitioner(
            flaky, parallelism=2, max_worker_restarts=2,
            restart_backoff=0.0)
        with pytest.raises(InjectedCrash, match="vertex 50"):
            executor.partition(GraphStream(graph))
        # At least the initial death plus the 2 budgeted restarts; the
        # second (still-live) worker may also grab the requeued poison
        # record before the abort lands, so the count is a lower bound.
        assert flaky.deaths >= 3


class TestGarbageFeed:
    def _write_dirty(self, path, bad_lines):
        rows = []
        for v in range(100):
            rows.append(f"{v} {(v + 1) % 100}")
        for line_no in bad_lines:
            rows[line_no] = f"{line_no} garbage-token"
        path.write_text("\n".join(rows) + "\n")

    def test_quarantine_under_budget(self, tmp_path):
        path = tmp_path / "dirty.adj"
        self._write_dirty(path, bad_lines=(10, 40, 70))
        from repro.graph import read_adjacency

        policy = IngestionPolicy("lenient",
                                 quarantine=tmp_path / "q.tsv",
                                 max_errors=5)
        graph = read_adjacency(path, policy=policy)
        policy.close()
        assert policy.errors_total == 3
        assert graph.num_vertices == 100
        lines = (tmp_path / "q.tsv").read_text().splitlines()
        assert len(lines) == 3
        assert lines[0].split("\t")[1] == "11"  # 1-based line number

    def test_budget_exceeded_fails_loudly(self, tmp_path):
        path = tmp_path / "dirty.adj"
        self._write_dirty(path, bad_lines=tuple(range(0, 50)))
        from repro.graph import read_adjacency

        policy = IngestionPolicy("lenient", max_errors=10)
        with pytest.raises(ErrorBudgetExceeded, match="budget"):
            read_adjacency(path, policy=policy)


class TestOverflowPolicy:
    def _full_state(self, overflow):
        from repro.graph.digraph import AdjacencyRecord
        from repro.partitioning.base import PartitionState

        # capacity = ceil(slack * 10 / 2) = 5 per partition; fill both.
        state = PartitionState(2, 10, 0, slack=1.0, overflow=overflow)
        empty = np.empty(0, dtype=np.int64)
        for v in range(10):
            state.commit(AdjacencyRecord(v, empty), v % 2)
        return state

    def test_strict_overflow_raises(self):
        from repro.partitioning.base import CapacityOverflowError

        part = make_partitioner("ldg", 2, slack=1.0, overflow="strict")
        state = self._full_state("strict")
        with pytest.raises(CapacityOverflowError, match="capacity"):
            part.choose(np.array([1.0, 2.0]), state)

    def test_least_loaded_absorbs_overflow(self):
        part = make_partitioner("ldg", 2, slack=1.0)
        state = self._full_state("least-loaded")
        pid = part.choose(np.array([1.0, 2.0]), state)
        assert pid in (0, 1)
        assert state.capacity_overflows == 1
