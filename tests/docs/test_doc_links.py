"""Audit intra-repo references in README.md and docs/*.md.

Two reference styles are checked:

* markdown links ``[text](target)`` whose target is not an external URL
  or a pure anchor — the target must exist, resolved against the linking
  file's directory or the repo root;
* inline-code path references like ``src/repro/bench/micro.py``,
  ``docs/observability.md``, ``tests/bench/test_datasets.py::TestRegimes``
  or ``src/repro/cli.py:42`` — the file must exist; ``::symbol`` suffixes
  must appear in the file text and ``:line`` suffixes must be within the
  file's length.

Only tokens that are unambiguously repo paths are audited: they must
start with a known top-level directory (``repro/…`` resolves under
``src/``) or be a top-level ``*.md`` file.  Tokens containing ``...``
(deliberate elisions), trailing-slash directory mentions of generated
output, and user-artifact names like ``crawl.adj`` are out of scope.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from tests.docs.snippets import DOC_FILES, REPO_ROOT

_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_CODE_REF = re.compile(
    r"`(?P<ref>[A-Za-z0-9_.\-/]+(?:::[A-Za-z0-9_.:]+|:\d+)?)`")
_PATH_ROOTS = ("src/", "docs/", "tests/", "examples/", "benchmarks/",
               "repro/")


def _strip_code_fences(text: str) -> str:
    """Blank out fenced blocks — code is executed, not link-audited."""
    out, fenced = [], False
    for line in text.splitlines():
        if line.lstrip().startswith("```"):
            fenced = not fenced
            out.append("")
        else:
            out.append("" if fenced else line)
    return "\n".join(out)


def _resolve(base: Path, target: str) -> Path | None:
    for root in (base.parent, REPO_ROOT):
        candidate = (root / target).resolve()
        if candidate.exists():
            return candidate
    return None


def _iter_docs():
    for relpath in DOC_FILES:
        path = REPO_ROOT / relpath
        yield relpath, path, _strip_code_fences(
            path.read_text(encoding="utf-8"))


_IDS = [str(p).replace("/", "-") for p in DOC_FILES]


@pytest.mark.parametrize("relpath", DOC_FILES, ids=_IDS)
def test_markdown_links_resolve(relpath):
    path = REPO_ROOT / relpath
    text = _strip_code_fences(path.read_text(encoding="utf-8"))
    broken = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        for match in _LINK.finditer(line):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            target = target.split("#", 1)[0]
            if not target:
                continue
            if _resolve(path, target) is None:
                broken.append(f"{relpath}:{lineno} -> {target}")
    assert not broken, "dead markdown links:\n" + "\n".join(broken)


def _audit_code_ref(path: Path, ref: str) -> str | None:
    """Return a failure description for one inline-code ref, or None."""
    if "..." in ref:
        return None
    symbol = line_no = None
    base = ref
    if "::" in ref:
        base, symbol = ref.split("::", 1)
    elif re.search(r":\d+$", ref):
        base, line_str = ref.rsplit(":", 1)
        line_no = int(line_str)
    is_top_md = "/" not in base and base.endswith(".md")
    if not (base.startswith(_PATH_ROOTS) or is_top_md):
        return None
    if base.endswith("/"):
        return None  # directory mentions (often generated output)
    if base.startswith("repro/"):
        base = "src/" + base
    resolved = _resolve(path, base)
    if resolved is None or not resolved.is_file():
        return f"{ref}: file {base} not found"
    text = resolved.read_text(encoding="utf-8")
    if symbol is not None:
        first = symbol.split("::", 1)[0].split(".", 1)[0]
        if first not in text:
            return f"{ref}: symbol {first!r} not in {base}"
    if line_no is not None and line_no > text.count("\n") + 1:
        return f"{ref}: {base} has fewer than {line_no} lines"
    return None


@pytest.mark.parametrize("relpath", DOC_FILES, ids=_IDS)
def test_inline_code_path_references_resolve(relpath):
    path = REPO_ROOT / relpath
    text = _strip_code_fences(path.read_text(encoding="utf-8"))
    broken = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        for match in _CODE_REF.finditer(line):
            failure = _audit_code_ref(path, match.group("ref"))
            if failure:
                broken.append(f"{relpath}:{lineno} {failure}")
    assert not broken, "stale code references:\n" + "\n".join(broken)


def test_audit_catches_a_dead_link(tmp_path):
    """The audit itself must be live — a planted dead ref must trip it."""
    assert _audit_code_ref(
        REPO_ROOT / "README.md",
        "src/repro/definitely_not_here.py") is not None
    assert _audit_code_ref(
        REPO_ROOT / "README.md",
        "tests/bench/test_compare.py::NoSuchClassXYZ") is not None
    assert _audit_code_ref(
        REPO_ROOT / "README.md", "src/repro/cli.py:999999") is not None


def test_audit_skips_out_of_scope_tokens():
    readme = REPO_ROOT / "README.md"
    assert _audit_code_ref(readme, "crawl.adj") is None
    assert _audit_code_ref(readme, "tests/.../test_spn.py") is None
    assert _audit_code_ref(readme, "benchmarks/results/") is None
    assert _audit_code_ref(readme, "repro.bench.sweep") is None
