"""Execute every fenced ```python block in README.md and docs/*.md.

Blocks run cumulatively per file — later blocks see names defined by
earlier ones, matching how a reader would paste them into one session —
inside a scratch working directory, so snippets may freely write files
(`crawl.adj.gz`, `trace.jsonl`, checkpoint dirs) without touching the
repo.  A block that must not run carries an explicit marker (see
`tests/docs/snippets.py`); markers without a reason fail the suite.
"""

from pathlib import Path

import pytest

from tests.docs.snippets import DOC_FILES, Snippet, python_snippets

_IDS = [str(p).replace("/", "-") for p in DOC_FILES]


@pytest.mark.parametrize("relpath", DOC_FILES, ids=_IDS)
def test_python_snippets_execute(relpath, tmp_path, monkeypatch):
    snippets = python_snippets(relpath)
    runnable = [s for s in snippets if not s.no_run]
    if not runnable:
        pytest.skip(f"{relpath}: no runnable python blocks")
    monkeypatch.chdir(tmp_path)
    namespace: dict = {"__name__": f"doc_snippet_{relpath.stem}"}
    for snippet in runnable:
        code = compile(snippet.code, snippet.where, "exec")
        try:
            exec(code, namespace)  # noqa: S102 - the docs ARE the test
        except Exception as exc:  # pragma: no cover - failure reporting
            pytest.fail(
                f"doc snippet {snippet.where} raised "
                f"{type(exc).__name__}: {exc}\n--- snippet ---\n"
                f"{snippet.code}")


@pytest.mark.parametrize("relpath", DOC_FILES, ids=_IDS)
def test_opted_out_snippets_state_a_reason(relpath):
    for snippet in python_snippets(relpath):
        if snippet.no_run:
            assert snippet.reason, (
                f"{snippet.where}: no-run marker without a reason — "
                "say why the block cannot execute")


def test_the_docs_actually_contain_executable_blocks():
    """Guard against the extractor silently matching nothing."""
    total = sum(
        1
        for relpath in DOC_FILES
        for s in python_snippets(relpath)
        if not s.no_run)
    assert total >= 10, f"only {total} runnable blocks found across docs"


def test_extractor_sees_every_doc_file():
    names = {Path(p).name for p in DOC_FILES}
    assert "README.md" in names
    assert "tutorial.md" in names
    assert "benchmarks.md" in names


class TestExtractorSemantics:
    """Pin the marker grammar the docs rely on."""

    def _one(self, tmp_path, text) -> Snippet:
        import tests.docs.snippets as mod
        doc = tmp_path / "doc.md"
        doc.write_text(text, encoding="utf-8")
        original = mod.REPO_ROOT
        mod.REPO_ROOT = tmp_path
        try:
            (snippet,) = mod.python_snippets(Path("doc.md"))
        finally:
            mod.REPO_ROOT = original
        return snippet

    def test_plain_block_is_runnable(self, tmp_path):
        snippet = self._one(tmp_path, "```python\nx = 1\n```\n")
        assert not snippet.no_run
        assert snippet.code == "x = 1\n"
        assert snippet.lineno == 1

    def test_comment_marker_opts_out(self, tmp_path):
        snippet = self._one(
            tmp_path,
            "<!-- no-run: needs a cluster -->\n\n```python\nboom()\n```\n")
        assert snippet.no_run
        assert snippet.reason == "needs a cluster"

    def test_info_string_marker_opts_out(self, tmp_path):
        snippet = self._one(tmp_path, "```python no-run\nboom()\n```\n")
        assert snippet.no_run

    def test_bash_blocks_are_not_collected(self, tmp_path):
        import tests.docs.snippets as mod
        doc = tmp_path / "doc.md"
        doc.write_text("```bash\nrm -rf /\n```\n", encoding="utf-8")
        original = mod.REPO_ROOT
        mod.REPO_ROOT = tmp_path
        try:
            assert mod.python_snippets(Path("doc.md")) == []
        finally:
            mod.REPO_ROOT = original
