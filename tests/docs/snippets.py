"""Shared extraction of fenced code blocks from the repo's markdown.

The executable-docs contract: every fenced ```python block in README.md
and docs/*.md either runs top-to-bottom (cumulatively per file, in a
scratch directory) or carries an explicit opt-out.  Opt-out is either

* an HTML comment on the line(s) just above the fence::

      <!-- no-run: needs a live crawler -->
      ```python

* or the fence info string itself: ```python no-run

Both forms require a reason (after the colon, or prose in the comment);
an opt-out without one fails the suite, so skips stay auditable.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]

DOC_FILES = tuple(
    path.relative_to(REPO_ROOT)
    for path in (REPO_ROOT / "README.md",
                 *sorted((REPO_ROOT / "docs").glob("*.md")))
)

_FENCE_OPEN = re.compile(r"^```(\w+)?(.*)$")
_NO_RUN_COMMENT = re.compile(r"<!--\s*no-run\s*(?::\s*(.*?))?\s*-->")


@dataclass
class Snippet:
    path: Path          # repo-relative
    lineno: int         # 1-based line of the opening fence
    language: str
    code: str
    no_run: bool
    reason: str | None  # why it is opted out (None when runnable)

    @property
    def where(self) -> str:
        return f"{self.path}:{self.lineno}"


def _marker_above(lines: list[str], fence_index: int) -> str | None:
    """Return the no-run reason from a comment above the fence, if any."""
    i = fence_index - 1
    while i >= 0 and not lines[i].strip():
        i -= 1
    if i >= 0:
        match = _NO_RUN_COMMENT.search(lines[i])
        if match:
            return match.group(1) or ""
    return None


def extract_snippets(relpath: Path) -> list[Snippet]:
    text = (REPO_ROOT / relpath).read_text(encoding="utf-8")
    lines = text.splitlines()
    snippets: list[Snippet] = []
    i = 0
    while i < len(lines):
        match = _FENCE_OPEN.match(lines[i])
        if not match or lines[i].strip() == "```":
            i += 1
            continue
        language = (match.group(1) or "").lower()
        info_rest = (match.group(2) or "").strip()
        start = i
        body: list[str] = []
        i += 1
        while i < len(lines) and lines[i].strip() != "```":
            body.append(lines[i])
            i += 1
        i += 1  # past the closing fence
        no_run = False
        reason: str | None = None
        if "no-run" in info_rest:
            no_run, reason = True, info_rest.replace("no-run", "").strip()
        else:
            comment_reason = _marker_above(lines, start)
            if comment_reason is not None:
                no_run, reason = True, comment_reason
        snippets.append(Snippet(
            path=relpath, lineno=start + 1, language=language,
            code="\n".join(body) + "\n", no_run=no_run, reason=reason))
    return snippets


def python_snippets(relpath: Path) -> list[Snippet]:
    return [s for s in extract_snippets(relpath) if s.language == "python"]
