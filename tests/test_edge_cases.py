"""Edge-case batch: small but sharp corners across the library."""

import numpy as np
import pytest

from repro.graph import (
    DiGraph,
    GraphStream,
    from_edges,
    read_edge_list,
    write_edge_list,
)
from repro.partitioning import (
    PartitionAssignment,
    SPNLPartitioner,
    cut_distance_histogram,
    evaluate,
)
from repro.runtime import run_pagerank


class TestGraphCorners:
    def test_declared_vertices_smaller_than_ids(self, tmp_path):
        path = tmp_path / "g.edges"
        path.write_text("0 9\n")
        with pytest.raises(ValueError, match="num_vertices"):
            read_edge_list(path, num_vertices=5)

    def test_large_sparse_ids(self):
        g = from_edges([(0, 99_999)], num_vertices=100_000)
        assert g.num_vertices == 100_000
        assert g.out_degree(0) == 1

    def test_write_edge_list_empty_graph(self, tmp_path):
        g = DiGraph.empty(3)
        path = tmp_path / "empty.edges"
        write_edge_list(g, path)
        assert read_edge_list(path, num_vertices=3) == g

    def test_self_loop_only_input(self):
        g = from_edges([(1, 1), (2, 2)], num_vertices=3)
        assert g.num_edges == 0  # loops dropped by default


class TestPartitioningCorners:
    def test_histogram_more_bins_than_edges(self, tiny_graph):
        a = PartitionAssignment([0, 0, 1, 1, 1], 2)
        rows = cut_distance_histogram(tiny_graph, a, bins=100)
        assert sum(r["edges"] for r in rows) == tiny_graph.num_edges

    def test_spnl_on_two_vertices(self):
        g = from_edges([(0, 1)], num_vertices=2)
        result = SPNLPartitioner(2, slack=1.0).partition(GraphStream(g))
        result.assignment.validate(2)

    def test_k_larger_than_vertices(self):
        g = from_edges([(0, 1), (1, 2)], num_vertices=3)
        result = SPNLPartitioner(8).partition(GraphStream(g))
        result.assignment.validate(3)
        # only 3 of the 8 partitions can be non-empty
        assert (result.assignment.vertex_counts() > 0).sum() <= 3

    def test_evaluate_single_vertex_graph(self):
        g = DiGraph.empty(1)
        q = evaluate(g, PartitionAssignment([0], 1))
        assert q.ecr == 0.0
        assert q.delta_v == 1.0


class TestRuntimeCorners:
    def test_pagerank_with_dangling_vertices(self):
        """Sinks redistribute their mass; ranks must stay a
        distribution and favor the sink everyone points at."""
        g = from_edges([(0, 2), (1, 2)], num_vertices=3)  # 2 is a sink
        a = PartitionAssignment([0, 0, 1], 2)
        run = run_pagerank(g, a, iterations=30)
        assert run.values.sum() == pytest.approx(1.0, abs=1e-9)
        assert run.values[2] > run.values[0]

    def test_pagerank_on_edgeless_graph(self):
        g = DiGraph.empty(4)
        a = PartitionAssignment([0, 0, 1, 1], 2)
        run = run_pagerank(g, a, iterations=5)
        # nothing sends → one silent superstep → uniform ranks
        assert np.allclose(run.values, 0.25)
        assert run.comm.total_messages == 0

    def test_isolated_vertex_keeps_base_rank(self):
        g = from_edges([(0, 1)], num_vertices=3)  # vertex 2 isolated
        a = PartitionAssignment([0, 0, 1], 2)
        run = run_pagerank(g, a, iterations=20)
        assert run.values[2] > 0
        assert run.values.sum() == pytest.approx(1.0, abs=1e-9)
