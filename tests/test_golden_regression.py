"""Golden regression tests.

Every partitioner in this library is deterministic given its seed, so
exact outputs on a fixed graph are stable signatures: a change in any
scoring rule, tie-break, window rotation, or generator shows up here as
an exact-count diff even when the aggregate quality barely moves.
These counts were recorded from the implementation that produced the
results in EXPERIMENTS.md; a legitimate algorithm change should update
them *consciously* alongside the experiment records.

(The web4k fixture: ``community_web_graph(4000, avg_community_size=50,
seed=42)`` → |E| = 42 789.)
"""

import pytest

from repro.edgepart import (
    HDRFPartitioner,
    SPNLEdgePartitioner,
    evaluate_edges,
)
from repro.graph import GraphStream
from repro.parallel import SimulatedParallelPartitioner
from repro.partitioning import (
    FennelPartitioner,
    HashPartitioner,
    LDGPartitioner,
    SPNLPartitioner,
    SPNPartitioner,
    evaluate,
)

K = 8


def _cut(partitioner, graph):
    result = partitioner.partition(GraphStream(graph))
    return evaluate(graph, result.assignment).num_cut_edges


class TestGraphGenerator:
    def test_web4k_signature(self, web_graph):
        assert web_graph.num_vertices == 4000
        assert web_graph.num_edges == 42789
        assert web_graph.max_out_degree() == 231
        assert int(web_graph.in_degrees().max()) == 300


class TestVertexPartitioners:
    def test_hash(self, web_graph):
        assert _cut(HashPartitioner(K), web_graph) == 38335

    def test_ldg(self, web_graph):
        assert _cut(LDGPartitioner(K), web_graph) == 18639

    def test_fennel(self, web_graph):
        assert _cut(FennelPartitioner(K), web_graph) == 22030

    def test_spn(self, web_graph):
        assert _cut(SPNPartitioner(K), web_graph) == 7221

    def test_spnl(self, web_graph):
        assert _cut(SPNLPartitioner(K), web_graph) == 4718

    def test_spnl_windowed(self, web_graph):
        assert _cut(SPNLPartitioner(K, num_shards=4), web_graph) == 4162

    def test_simulated_parallel(self, web_graph):
        # Re-pinned after the carried-record fix: a delayed record now
        # notes its RCT references only in its first batch (re-noting
        # every batch inflated neighbor counters and kept the delay
        # threshold artificially hot), which shifts placements and
        # lands a better cut.
        partitioner = SimulatedParallelPartitioner(SPNLPartitioner(K),
                                                   parallelism=4)
        result = partitioner.partition(GraphStream(web_graph))
        assert evaluate(web_graph,
                        result.assignment).num_cut_edges == 6085


class TestEdgePartitioners:
    def test_hdrf(self, web_graph):
        result = HDRFPartitioner(K).partition(web_graph)
        rf = evaluate_edges(web_graph, result.assignment
                            ).replication_factor
        assert rf == pytest.approx(2.79225, abs=1e-9)

    def test_spnl_e(self, web_graph):
        result = SPNLEdgePartitioner(K).partition(web_graph)
        rf = evaluate_edges(web_graph, result.assignment
                            ).replication_factor
        assert rf == pytest.approx(1.74275, abs=1e-9)
