"""Unit tests for the GAS synchronization cost model."""

import numpy as np
import pytest

from repro.edgepart import (
    EdgeAssignment,
    HDRFPartitioner,
    RandomEdgePartitioner,
    SPNLEdgePartitioner,
    evaluate_edges,
    gas_sync_report,
    simulate_gas_job,
)
from repro.graph import from_edges


@pytest.fixture
def two_partition_case():
    """Edge (0,1) on P0, edge (1,2) on P1: vertex 1 has one mirror."""
    g = from_edges([(0, 1), (1, 2)], num_vertices=3)
    replicas = np.zeros((3, 2), dtype=bool)
    replicas[0, 0] = True
    replicas[1, 0] = True
    replicas[1, 1] = True
    replicas[2, 1] = True
    assignment = EdgeAssignment(np.array([0, 1], dtype=np.int32), 2,
                                replicas)
    return g, assignment


class TestGasSyncReport:
    def test_mirror_traffic_counted(self, two_partition_case):
        g, assignment = two_partition_case
        comm = gas_sync_report(g, assignment, supersteps=1)
        # one mirror (vertex 1 on P1) ↔ its master on P0: 2 messages
        assert comm.remote_messages == 2

    def test_no_replication_no_remote(self):
        g = from_edges([(0, 1), (1, 0)], num_vertices=2)
        replicas = np.zeros((2, 2), dtype=bool)
        replicas[0, 0] = True
        replicas[1, 0] = True
        assignment = EdgeAssignment(np.array([0, 0], dtype=np.int32), 2,
                                    replicas)
        comm = gas_sync_report(g, assignment)
        assert comm.remote_messages == 0

    def test_supersteps_scale_linearly(self, two_partition_case):
        g, assignment = two_partition_case
        one = gas_sync_report(g, assignment, supersteps=1)
        five = gas_sync_report(g, assignment, supersteps=5)
        assert five.remote_messages == 5 * one.remote_messages
        assert five.num_supersteps == 5

    def test_total_remote_matches_rf_identity(self, web_graph):
        """Σ 2(|A(v)|-1) == 2·touched·(RF-1), the PowerGraph identity."""
        result = HDRFPartitioner(8).partition(web_graph)
        comm = gas_sync_report(web_graph, result.assignment)
        counts = result.assignment.replicas.sum(axis=1)
        expected = int(2 * (counts[counts > 0] - 1).sum())
        assert comm.remote_messages == expected

    def test_graph_mismatch_rejected(self, two_partition_case):
        _, assignment = two_partition_case
        other = from_edges([(0, 1)], num_vertices=2)
        with pytest.raises(ValueError, match="cover"):
            gas_sync_report(other, assignment)


class TestSimulateGasJob:
    def test_lower_rf_cheaper_job(self, web_graph):
        """The edge-partitioning bottom line: SPNL-E's lower RF turns
        into less simulated cluster time than HDRF and Random."""
        costs = {}
        for cls in (RandomEdgePartitioner, HDRFPartitioner,
                    SPNLEdgePartitioner):
            result = cls(8).partition(web_graph)
            costs[cls.__name__] = simulate_gas_job(
                web_graph, result.assignment,
                supersteps=10).makespan_seconds
        assert costs["SPNLEdgePartitioner"] < costs["HDRFPartitioner"]
        assert costs["HDRFPartitioner"] < costs["RandomEdgePartitioner"]

    def test_report_fields(self, two_partition_case):
        g, assignment = two_partition_case
        cost = simulate_gas_job(g, assignment, supersteps=3)
        assert cost.makespan_seconds > 0
        assert cost.num_partitions == 2
