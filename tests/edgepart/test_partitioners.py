"""Unit tests for the streaming edge partitioners."""

import numpy as np
import pytest

from repro.edgepart import (
    DBHPartitioner,
    EdgePartitionState,
    GreedyEdgePartitioner,
    HDRFPartitioner,
    RandomEdgePartitioner,
    SPNLEdgePartitioner,
    evaluate_edges,
)
from repro.graph import from_edges


def _rf(partitioner, graph):
    result = partitioner.partition(graph)
    return evaluate_edges(graph, result.assignment).replication_factor


class TestGreedyCases:
    def test_common_partition_preferred(self):
        """Case 1: an edge joins endpoints sharing a partition there."""
        p = GreedyEdgePartitioner(3)
        g = from_edges([(0, 1), (1, 2), (0, 2)], num_vertices=3)
        state = EdgePartitionState(3, 3)
        p._setup(g, state)
        p._capacity_value = p._capacity(30)  # ample headroom
        state.place(0, 1, 1)
        state.place(1, 2, 1)
        # edge (0,2): both endpoints live in partition 1
        assert p._choose(0, 2, state) == 1

    def test_fresh_edge_goes_least_loaded(self):
        p = GreedyEdgePartitioner(3)
        state = EdgePartitionState(3, 10)
        p._capacity_value = p._capacity(10)
        state.place(0, 1, 0)
        assert p._choose(5, 6, state) != 0  # 0 is loaded

    def test_single_endpoint_replicas_used(self):
        p = GreedyEdgePartitioner(3)
        state = EdgePartitionState(3, 10)
        p._capacity_value = p._capacity(10)
        state.place(0, 1, 2)
        assert p._choose(1, 7, state) == 2  # follow vertex 1's replica


class TestDBH:
    def test_hub_replicated_not_tail(self):
        """A star's leaves each hash by themselves (lower degree), so the
        hub fans out but every leaf stays in one partition."""
        edges = [(0, i) for i in range(1, 33)]
        g = from_edges(edges, num_vertices=33)
        result = DBHPartitioner(4).partition(g)
        replicas = result.assignment.replicas
        assert replicas[0].sum() > 1          # hub replicated
        assert all(replicas[i].sum() == 1 for i in range(1, 33))


class TestQualityOrdering:
    @pytest.fixture(scope="class")
    def rfs(self, web_graph):
        return {
            "random": _rf(RandomEdgePartitioner(8), web_graph),
            "dbh": _rf(DBHPartitioner(8), web_graph),
            "greedy": _rf(GreedyEdgePartitioner(8), web_graph),
            "hdrf": _rf(HDRFPartitioner(8), web_graph),
            "spnl_e": _rf(SPNLEdgePartitioner(8), web_graph),
        }

    def test_knowledge_beats_hashing(self, rfs):
        assert rfs["greedy"] < rfs["dbh"] < rfs["random"]
        assert rfs["hdrf"] < rfs["dbh"]

    def test_spnl_e_wins(self, rfs):
        """The paper's future-work claim: its techniques transfer."""
        assert rfs["spnl_e"] < rfs["hdrf"]
        assert rfs["spnl_e"] < rfs["greedy"]

    def test_rf_at_least_one(self, rfs):
        assert all(rf >= 1.0 for rf in rfs.values())


class TestSPNLE:
    def test_parameters_validated(self):
        with pytest.raises(ValueError):
            SPNLEdgePartitioner(4, mu=-1)

    def test_stats_expose_window(self, web_graph):
        result = SPNLEdgePartitioner(4).partition(web_graph)
        assert result.stats["window_size"] > 0
        assert result.stats["mu"] == 1.0

    def test_balance_respected(self, web_graph):
        result = SPNLEdgePartitioner(8, slack=1.1).partition(web_graph)
        q = evaluate_edges(web_graph, result.assignment)
        assert q.load_balance <= 1.11

    def test_locality_drives_the_win(self, web_graph):
        """Disable both knowledge terms → collapses toward plain HDRF."""
        plain = _rf(SPNLEdgePartitioner(8, mu=0.0, nu=0.0), web_graph)
        full = _rf(SPNLEdgePartitioner(8), web_graph)
        hdrf = _rf(HDRFPartitioner(8), web_graph)
        assert full < plain
        assert abs(plain - hdrf) < 0.35 * hdrf
