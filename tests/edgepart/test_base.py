"""Unit tests for the edge-partitioning substrate."""

import numpy as np
import pytest

from repro.edgepart import (
    EdgeAssignment,
    EdgePartitionState,
    RandomEdgePartitioner,
    edge_stream,
    evaluate_edges,
)
from repro.graph import from_edges


class TestEdgeStream:
    def test_storage_order(self, tiny_graph):
        edges = list(edge_stream(tiny_graph))
        assert edges == list(tiny_graph.edges())
        assert edges[0][0] <= edges[-1][0]  # grouped by source


class TestEdgePartitionState:
    def test_place_updates_replicas(self):
        state = EdgePartitionState(3, 10)
        state.place(0, 5, 2)
        assert state.replica_mask(0)[2]
        assert state.replica_mask(5)[2]
        assert state.replica_count(0) == 1
        assert state.edge_loads[2] == 1
        assert state.partial_degrees[0] == 1

    def test_replication_factor(self):
        state = EdgePartitionState(3, 10)
        state.place(0, 1, 0)
        state.place(0, 2, 1)  # vertex 0 now in two partitions
        # replicas: 0 -> 2, 1 -> 1, 2 -> 1 → RF = 4/3
        assert state.replication_factor() == pytest.approx(4 / 3)

    def test_rf_ignores_untouched_vertices(self):
        state = EdgePartitionState(2, 100)
        state.place(0, 1, 0)
        assert state.replication_factor() == 1.0

    def test_load_balance(self):
        state = EdgePartitionState(2, 10)
        state.place(0, 1, 0)
        state.place(1, 2, 0)
        state.place(2, 3, 0)
        state.place(3, 4, 1)
        assert state.load_balance() == pytest.approx(1.5)

    def test_invalid_pid(self):
        state = EdgePartitionState(2, 10)
        with pytest.raises(ValueError):
            state.place(0, 1, 5)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            EdgePartitionState(0, 10)


class TestDriver:
    def test_all_edges_assigned(self, web_graph):
        result = RandomEdgePartitioner(4).partition(web_graph)
        assert result.assignment.num_edges == web_graph.num_edges
        assert result.assignment.edge_counts().sum() == \
            web_graph.num_edges

    def test_capacity_respected(self, web_graph):
        result = RandomEdgePartitioner(4, slack=1.1).partition(web_graph)
        counts = result.assignment.edge_counts()
        assert counts.max() <= np.ceil(1.1 * web_graph.num_edges / 4)

    def test_evaluate_validates_coverage(self, tiny_graph):
        bad = EdgeAssignment(np.zeros(2, dtype=np.int32), 2,
                             np.zeros((5, 2), dtype=bool))
        with pytest.raises(ValueError, match="covers"):
            evaluate_edges(tiny_graph, bad)

    def test_deterministic(self, web_graph):
        a = RandomEdgePartitioner(4).partition(web_graph)
        b = RandomEdgePartitioner(4).partition(web_graph)
        assert np.array_equal(a.assignment.edge_pids,
                              b.assignment.edge_pids)

    def test_report_fields(self, tiny_graph):
        result = RandomEdgePartitioner(2).partition(tiny_graph)
        report = evaluate_edges(tiny_graph, result.assignment)
        assert report.replication_factor >= 1.0
        assert report.load_balance >= 1.0
        assert "RF" in report.as_row()
