"""Tests for the opt-in bench profiler (``--profile``).

The acceptance bar from the issue: ``--profile cprofile`` on a quick
streaming bench produces per-stage profile artifacts with loadable
pstats dumps and a measured overhead, and the profiled run's outputs
are byte-identical to an unprofiled run — profiling must observe, never
perturb.
"""

import json
import pstats

import numpy as np
import pytest

from repro.bench.micro import run_streaming_microbench
from repro.bench.profile import (
    PROFILE_MODES,
    BenchProfiler,
    default_profile_dir,
)
from repro.graph.generators import community_web_graph
from repro.graph.stream import GraphStream
from repro.observability import Instrumentation, JsonlSink
from repro.observability.schema import validate_record
from repro.partitioning.registry import make_partitioner

QUICK = dict(n=600, k=8, warmup=0, repeats=2, methods=("ldg",))


@pytest.fixture(scope="module")
def profiled(tmp_path_factory):
    """One quick profiled streaming bench shared by the assertions."""
    tmp = tmp_path_factory.mktemp("profiled")
    out = tmp / "BENCH_streaming.json"
    profiler = BenchProfiler("cprofile", default_profile_dir(out),
                             bench="streaming-hot-path")
    artifact = run_streaming_microbench(out_path=out, profile=profiler,
                                        **QUICK)
    profiler.finalize()
    return artifact, profiler


class TestBenchProfiler:
    def test_rejects_unknown_mode(self, tmp_path):
        with pytest.raises(ValueError, match="unknown profile mode"):
            BenchProfiler("perf", tmp_path)

    def test_modes_constant_matches_cli(self):
        assert PROFILE_MODES == ("cprofile", "pyspy")

    def test_default_dir_sits_next_to_artifact(self, tmp_path):
        out = tmp_path / "sub" / "BENCH_ingest.json"
        assert default_profile_dir(out) == \
            tmp_path / "sub" / "BENCH_ingest.profile"

    def test_pstats_dump_is_loadable(self, profiled):
        artifact, _profiler = profiled
        (stage,) = artifact["profile"]["stages"]
        stats = pstats.Stats(stage["pstats_path"])
        assert stats.total_calls > 0
        top = stage["top_functions"]
        assert top and all(
            set(row) == {"function", "ncalls", "tottime_s", "cumtime_s"}
            for row in top)

    def test_overhead_is_measured_against_unprofiled_median(
            self, profiled):
        artifact, _profiler = profiled
        (stage,) = artifact["profile"]["stages"]
        (rec,) = artifact["results"]
        assert stage["reference_median_s"] == rec["fast"]["median_s"]
        expected = (stage["profiled_s"] - stage["reference_median_s"]) \
            / stage["reference_median_s"] * 100.0
        assert stage["overhead_pct"] == pytest.approx(expected)

    def test_profiled_pass_route_checked_identical(self, profiled):
        artifact, _profiler = profiled
        (stage,) = artifact["profile"]["stages"]
        assert stage["identical"] is True

    def test_index_written_and_matches_artifact_entry(self, profiled):
        artifact, profiler = profiled
        index = json.loads(
            (profiler.out_dir / "profile.json").read_text())
        assert index == artifact["profile"]
        assert index["mode"] == index["requested_mode"] == "cprofile"

    def test_top_listing_is_human_readable(self, profiled):
        artifact, _profiler = profiled
        (stage,) = artifact["profile"]["stages"]
        from pathlib import Path
        assert "cumulative" in Path(stage["top_path"]).read_text()


class TestByteIdentity:
    def test_profiled_partition_result_is_byte_identical(self, tmp_path):
        """profile_stage returns fn()'s result unperturbed."""
        graph = community_web_graph(400, seed=3)
        reference = make_partitioner("ldg", 4).partition(
            GraphStream(graph)).assignment.route
        profiler = BenchProfiler("cprofile", tmp_path)
        result = profiler.profile_stage(
            "ldg/fast",
            lambda: make_partitioner("ldg", 4).partition(
                GraphStream(graph)))
        assert np.array_equal(result.assignment.route, reference)

    def test_timed_samples_do_not_change_shape_under_profile(
            self, profiled):
        """The timed repeats run exactly as unprofiled (extra-pass
        discipline): same result schema, same sample counts."""
        artifact, _profiler = profiled
        plain = run_streaming_microbench(out_path=None, **QUICK)
        (prof_rec,) = artifact["results"]
        (plain_rec,) = plain["results"]
        assert set(prof_rec) == set(plain_rec)
        assert len(prof_rec["fast"]["runs_s"]) == \
            len(plain_rec["fast"]["runs_s"])
        assert prof_rec["identical"] and plain_rec["identical"]


class TestPyspyFallback:
    def test_missing_pyspy_degrades_to_cprofile(self, tmp_path,
                                                monkeypatch):
        monkeypatch.setattr("repro.bench.profile.shutil.which",
                            lambda _name: None)
        profiler = BenchProfiler("pyspy", tmp_path)
        assert profiler.mode == "cprofile"
        assert profiler.requested_mode == "pyspy"
        assert any("py-spy not found" in w for w in profiler.warnings)
        profiler.profile_stage("noop", lambda: 1 + 1)
        (stage,) = profiler.stages
        assert stage["mode"] == "cprofile"
        assert stage["collapsed_path"] is None
        assert pstats.Stats(stage["pstats_path"]).total_calls > 0


class TestTraceRecords:
    def test_bench_profile_records_validate_against_schema(
            self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        hub = Instrumentation([JsonlSink(trace)])
        profiler = BenchProfiler("cprofile", tmp_path / "prof",
                                 bench="streaming-hot-path",
                                 instrumentation=hub)
        profiler.profile_stage("ldg/fast", lambda: sum(range(100)),
                               reference_s=0.01,
                               check=lambda result: result == 4950)
        hub.close()
        (record,) = [json.loads(line)
                     for line in trace.read_text().splitlines()]
        validate_record(record)
        assert record["type"] == "bench_profile"
        assert record["bench"] == "streaming-hot-path"
        assert record["stage"] == "ldg/fast"
        assert record["identical"] is True
        assert record["overhead_pct"] is not None
