"""Tests for the streaming hot-path microbench harness.

The ``benchsmoke`` marker selects the artifact-generating smoke tests
(``pytest -m benchsmoke``) so CI can exercise BENCH_streaming.json
production without running the full default suite.
"""

import json

import pytest

from repro.bench import (
    DEFAULT_METHODS,
    bench_method,
    machine_fingerprint,
    run_streaming_microbench,
)
from repro.bench.micro import _summary
from repro.graph.generators import community_web_graph


class TestPieces:
    def test_machine_fingerprint_keys(self):
        fp = machine_fingerprint()
        assert {"platform", "machine", "python",
                "numpy", "cpu_count"} <= set(fp)

    def test_summary_stats(self):
        s = _summary([3.0, 1.0, 2.0])
        assert s["median_s"] == 2.0
        assert s["min_s"] == 1.0
        assert s["max_s"] == 3.0
        assert s["runs_s"] == [3.0, 1.0, 2.0]

    def test_summary_single_run_no_stdev_crash(self):
        assert _summary([1.5])["stdev_s"] == 0.0

    def test_bench_method_record(self):
        graph = community_web_graph(600, seed=3)
        rec = bench_method("ldg", graph, 4, warmup=0, repeats=2)
        assert rec["method"] == "ldg"
        assert rec["identical"] is True
        assert len(rec["fast"]["runs_s"]) == 2
        assert rec["speedup_median"] > 0


@pytest.mark.benchsmoke
class TestBenchSmoke:
    def test_artifact_written_and_identical(self, tmp_path):
        out = tmp_path / "BENCH_streaming.json"
        artifact = run_streaming_microbench(
            n=1200, k=4, warmup=0, repeats=2, out_path=out)
        on_disk = json.loads(out.read_text(encoding="utf-8"))
        assert on_disk["benchmark"] == artifact["benchmark"] \
            == "streaming-hot-path"
        assert {"machine", "config", "results"} <= set(on_disk)
        assert [r["method"] for r in on_disk["results"]] \
            == list(DEFAULT_METHODS)
        for record in on_disk["results"]:
            # A bench run that loses byte-identity is a correctness
            # bug, not a perf result.
            assert record["identical"] is True
            assert record["fast"]["median_s"] > 0
            assert record["seed"]["median_s"] > 0

    def test_cli_quick_streaming(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "bench.json"
        main(["bench", "streaming", "--quick", "-k", "4",
              "--bench-out", str(out)])
        assert out.exists()
        printed = capsys.readouterr().out
        assert "Streaming hot path" in printed
        assert str(out) in printed
        artifact = json.loads(out.read_text(encoding="utf-8"))
        assert artifact["config"]["k"] == 4
        assert artifact["config"]["num_vertices"] == 4000
