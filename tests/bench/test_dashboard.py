"""Tests for the static perf dashboard (``bench dashboard``).

Pinned behaviors: the rendered HTML references every exported metric,
is fully self-contained (no scripts, no network fetches), never merges
series across machine-fingerprint keys, marks baseline points and
``scaling_expected`` regime boundaries, and surfaces quarantined
inputs instead of hiding them.
"""

import json
from pathlib import Path

import pytest

from repro.bench.dashboard import build_dashboard, render_dashboard
from repro.bench.export import default_artifact_paths, export_history

REPO = Path(__file__).resolve().parents[2]


def _row(**over):
    base = {
        "bench": "streaming-hot-path", "metric": "ldg/fast",
        "unit": "s", "value": 0.2, "n": 3, "min": 0.19, "max": 0.21,
        "commit": "abc1234", "dirty": False,
        "fingerprint_key": "aaaaaaaaaaaa",
        "created_unix": 1700000000.0, "scaling_expected": None,
        "source": "artifact", "path": "BENCH_streaming.json",
    }
    base.update(over)
    return base


def _history(rows, profiles=(), skipped=()):
    return {"format": "repro-bench-history", "version": 1,
            "rows": list(rows), "profiles": list(profiles),
            "skipped": list(skipped)}


@pytest.fixture(scope="module")
def committed_html(tmp_path_factory):
    history = export_history(default_artifact_paths(REPO),
                             REPO / "benchmarks" / "baselines")
    out = tmp_path_factory.mktemp("dash") / "dashboard.html"
    build_dashboard(history, out)
    return history, out.read_text(encoding="utf-8")


class TestCommittedDashboard:
    def test_every_exported_metric_is_referenced(self, committed_html):
        history, html = committed_html
        for row in history["rows"]:
            assert row["metric"] in html
        for bench in {r["bench"] for r in history["rows"]}:
            assert f"<h2 id='{bench}'>" in html

    def test_self_contained_no_scripts_no_network(self, committed_html):
        _history_, html = committed_html
        lowered = html.lower()
        assert "<script" not in lowered
        assert "http://" not in lowered
        assert "https://" not in lowered
        assert "<style>" in lowered  # CSS is inline

    def test_baseline_points_are_ringed(self, committed_html):
        _history_, html = committed_html
        assert "pt-baseline" in html


class TestSeriesDiscipline:
    def test_fingerprint_keys_are_never_merged(self):
        rows = [_row(fingerprint_key="aaaaaaaaaaaa"),
                _row(fingerprint_key="bbbbbbbbbbbb", value=0.4,
                     path="BENCH_other.json")]
        html = render_dashboard(_history(rows))
        assert "2 series over 2 rows" in html
        assert "aaaaaaaaaaaa" in html and "bbbbbbbbbbbb" in html

    def test_regime_boundary_is_annotated(self):
        rows = [_row(bench="parallel-scaling", metric="spnl/parallel",
                     scaling_expected=False, created_unix=1.0),
                _row(bench="parallel-scaling", metric="spnl/parallel",
                     scaling_expected=True, created_unix=2.0,
                     value=0.1, path="BENCH_parallel2.json")]
        html = render_dashboard(_history(rows))
        assert "REGIME BOUNDARY" in html
        assert "class='regime'" in html

    def test_lost_identity_flag_is_called_out(self):
        rows = [_row(metric="ldg/identical", unit="bool", value=0.0)]
        html = render_dashboard(_history(rows))
        assert "identity lost" in html

    def test_skipped_inputs_are_listed(self):
        html = render_dashboard(_history(
            [_row()],
            skipped=[{"path": "BENCH_torn.json",
                      "reason": "not valid JSON (torn or partial "
                                "write)"}]))
        assert "BENCH_torn.json" in html
        assert "torn or partial write" in html

    def test_profile_links_are_relative_to_out_dir(self, tmp_path):
        profdir = tmp_path / "BENCH_streaming.profile"
        history = _history(
            [_row()],
            profiles=[{"bench": "streaming-hot-path",
                       "artifact_path": str(tmp_path /
                                            "BENCH_streaming.json"),
                       "mode": "cprofile", "out_dir": str(profdir),
                       "stages": [{"stage": "ldg/fast",
                                   "mode": "cprofile",
                                   "pstats_path": str(
                                       profdir / "ldg-fast.pstats"),
                                   "top_path": str(
                                       profdir / "ldg-fast.top.txt"),
                                   "collapsed_path": None,
                                   "overhead_pct": 12.0}]}])
        out = tmp_path / "dashboard.html"
        build_dashboard(history, out)
        html = out.read_text(encoding="utf-8")
        assert "href='BENCH_streaming.profile/ldg-fast.pstats'" in html
        assert "+12%" in html

    def test_empty_history_still_renders(self, tmp_path):
        out = tmp_path / "dashboard.html"
        build_dashboard(_history([]), out)
        html = out.read_text(encoding="utf-8")
        assert "Every input parsed cleanly" in html
        assert "No profiled runs" in html


class TestDashboardCLI:
    def test_dashboard_from_history_file_and_in_process_agree(
            self, tmp_path, monkeypatch, capsys):
        from repro.cli import main

        artifact_dir = tmp_path / "arts"
        artifact_dir.mkdir()
        from tests.bench.test_compare import make_streaming_artifact
        (artifact_dir / "BENCH_streaming.json").write_text(
            json.dumps(make_streaming_artifact()))
        monkeypatch.chdir(artifact_dir)
        assert main(["bench", "export", "--out", "history.json",
                     "--csv", "history.csv",
                     "--baselines-dir", "baselines"]) == 0
        assert main(["bench", "dashboard", "--history", "history.json",
                     "--out", "via_history.html"]) == 0
        assert main(["bench", "dashboard", "--out", "direct.html",
                     "--baselines-dir", "baselines"]) == 0
        via = (artifact_dir / "via_history.html").read_text()
        direct = (artifact_dir / "direct.html").read_text()
        assert via == direct
        assert "ldg/fast" in via

    def test_dashboard_rejects_non_history_json(self, tmp_path,
                                                monkeypatch):
        from repro.cli import main

        monkeypatch.chdir(tmp_path)
        (tmp_path / "not_history.json").write_text("{\"rows\": []}")
        with pytest.raises(SystemExit, match="not a bench-history"):
            main(["bench", "dashboard", "--history",
                  "not_history.json"])
