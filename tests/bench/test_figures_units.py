"""Unit tests for the remaining figure generators (minimal arguments).

The full-size sweeps with shape assertions live in benchmarks/; these
runs use the smallest meaningful arguments so the figure *machinery*
(series alignment, naming, dataset plumbing) is covered in the fast
suite.
"""

import pytest

from repro.bench import (
    ablation_rct,
    ablation_restreaming,
    fig7_window_sweep,
    fig8_9_k_sweep_streaming,
    fig10_11_k_sweep_offline,
    fig12_thread_sweep,
)


class TestKSweeps:
    def test_streaming_sweep_structure(self):
        metrics = fig8_9_k_sweep_streaming("uk2005", ks=(2, 4))
        assert set(metrics) == {"ECR", "delta_v", "delta_e", "PT"}
        ecr = metrics["ECR"]
        assert set(ecr.series) == {"LDG", "FENNEL", "SPN", "SPNL"}
        assert ecr.x_values == [2, 4]
        for values in ecr.series.values():
            assert all(0.0 <= v <= 1.0 for v in values)

    def test_offline_sweep_structure(self):
        metrics = fig10_11_k_sweep_offline("uk2005", ks=(2, 4))
        ecr = metrics["ECR"]
        assert set(ecr.series) == {"METIS-like", "XtraPuLP-like", "SPNL"}
        for values in metrics["PT"].series.values():
            assert all(v > 0 for v in values)


class TestWindowSweep:
    def test_multiple_k(self):
        figures = fig7_window_sweep(dataset="uk2005", shards=(1, 4),
                                    ks=(2, 4))
        assert set(figures) == {2, 4}
        for fig in figures.values():
            assert set(fig.series) == {"MC(MB)", "ECR", "delta_v",
                                       "PT(s)"}
            assert fig.x_values == [1, 4]

    def test_memory_monotone(self):
        figures = fig7_window_sweep(dataset="uk2005", shards=(1, 8),
                                    ks=(4,))
        mc = figures[4].series["MC(MB)"]
        assert mc[1] <= mc[0]


class TestThreadSweep:
    def test_structure(self):
        fig = fig12_thread_sweep(datasets=("uk2005",), threads=(1, 2),
                                 k=4)
        assert fig.x_values == [1, 2]
        assert "PT(uk2005)" in fig.series
        assert all(v > 0 for v in fig.series["PT(uk2005)"])


class TestRctAblation:
    def test_structure(self):
        fig = ablation_rct(dataset="uk2005", parallelisms=(1, 4), k=4)
        assert set(fig.series) == {"ECR(with RCT)", "ECR(no RCT)",
                                   "ECR(serial)"}
        serial = fig.series["ECR(serial)"]
        assert serial[0] == serial[1]  # constant reference line
        # M=1 rows equal the serial value by construction
        assert fig.series["ECR(with RCT)"][0] == serial[0]


class TestRestreamingAblation:
    def test_structure(self):
        fig = ablation_restreaming(dataset="uk2005", k=4, passes=(1, 2))
        assert fig.x_values == [1, 2]
        assert len(fig.series["ECR(ReLDG)"]) == 2
        assert len(set(fig.series["ECR(SPNL, 1 pass)"])) == 1
