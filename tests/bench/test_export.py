"""Tests for the perf-history export (``bench export``).

Pinned behaviors: exporting the repo's committed artifacts + baselines
is deterministic and yields one row per (bench kind, metric, source
file); the CSV agrees losslessly with the JSON rows; malformed inputs
(torn JSON, pre-PR-5 layouts, hand-edited envelopes) are quarantined
with a reason instead of crashing; fingerprint keys ride on every row.
"""

import csv
import io
import json
import shutil
from pathlib import Path

import pytest

from repro.bench.export import (
    CSV_COLUMNS,
    HISTORY_FORMAT,
    HISTORY_VERSION,
    default_artifact_paths,
    export_history,
    rows_to_csv,
)
from tests.bench.test_compare import make_streaming_artifact

REPO = Path(__file__).resolve().parents[2]
FIXTURES = Path(__file__).resolve().parent / "fixtures"


@pytest.fixture(scope="module")
def committed_history():
    """Export over the repo's committed artifacts + baseline store."""
    return export_history(
        default_artifact_paths(REPO),
        REPO / "benchmarks" / "baselines")


class TestCommittedExport:
    def test_payload_envelope(self, committed_history):
        history = committed_history
        assert history["format"] == HISTORY_FORMAT
        assert history["version"] == HISTORY_VERSION
        assert history["rows"] and not history["skipped"]

    def test_one_row_per_kind_metric_and_source_file(
            self, committed_history):
        keys = [(r["bench"], r["metric"], r["commit"], r["path"])
                for r in committed_history["rows"]]
        assert len(keys) == len(set(keys))
        kinds = {r["bench"] for r in committed_history["rows"]}
        assert kinds == {"streaming-hot-path", "ingest-pipeline",
                         "parallel-scaling", "service-bench",
                         "service-bench-sharded"}

    def test_both_sources_present_with_fingerprint_keys(
            self, committed_history):
        rows = committed_history["rows"]
        assert {r["source"] for r in rows} == {"artifact", "baseline"}
        assert all(len(r["fingerprint_key"]) == 12 for r in rows)

    def test_identity_flags_exported_as_bool_rows(self,
                                                  committed_history):
        flags = [r for r in committed_history["rows"]
                 if r["unit"] == "bool"]
        assert flags
        assert all(r["value"] in (0.0, 1.0) for r in flags)

    def test_export_is_deterministic(self, committed_history):
        again = export_history(default_artifact_paths(REPO),
                               REPO / "benchmarks" / "baselines")
        assert json.dumps(again, sort_keys=True) == \
            json.dumps(committed_history, sort_keys=True)

    def test_csv_agrees_losslessly_with_json(self, committed_history):
        rows = committed_history["rows"]
        text = rows_to_csv(rows)
        parsed = list(csv.reader(io.StringIO(text)))
        assert tuple(parsed[0]) == CSV_COLUMNS
        assert len(parsed) == len(rows) + 1
        for cells, row in zip(parsed[1:], rows):
            for col, cell in zip(CSV_COLUMNS, cells):
                value = row[col]
                if value is None:
                    assert cell == ""
                elif isinstance(value, bool):
                    assert cell == ("true" if value else "false")
                elif isinstance(value, float):
                    assert float(cell) == value  # repr round-trips
                else:
                    assert cell == str(value)


class TestQuarantine:
    def _export(self, tmp_path, warn=None):
        return export_history(
            sorted(tmp_path.glob("BENCH_*.json")),
            tmp_path / "baselines", warn=warn)

    def test_torn_json_fixture_is_skipped_with_reason(self, tmp_path):
        shutil.copy(FIXTURES / "BENCH_torn.json",
                    tmp_path / "BENCH_torn.json")
        warnings = []
        history = self._export(tmp_path, warn=warnings.append)
        (skip,) = history["skipped"]
        assert "torn or partial write" in skip["reason"]
        assert warnings and "BENCH_torn.json" in warnings[0]
        assert history["rows"] == []

    def test_pre_pr5_layout_is_skipped_not_fatal(self, tmp_path):
        shutil.copy(FIXTURES / "BENCH_pre_pr5.json",
                    tmp_path / "BENCH_pre_pr5.json")
        history = self._export(tmp_path)
        (skip,) = history["skipped"]
        assert "unrecognized or partial artifact layout" in skip["reason"]

    def test_unknown_bench_kind_is_quarantined(self, tmp_path):
        artifact = make_streaming_artifact()
        artifact["benchmark"] = "never-heard-of-it"
        (tmp_path / "BENCH_x.json").write_text(json.dumps(artifact))
        history = self._export(tmp_path)
        assert len(history["skipped"]) == 1
        assert history["rows"] == []

    def test_non_object_json_is_skipped(self, tmp_path):
        (tmp_path / "BENCH_list.json").write_text("[1, 2, 3]")
        history = self._export(tmp_path)
        (skip,) = history["skipped"]
        assert skip["reason"] == "not a JSON object"

    def test_hand_edited_baseline_envelope_is_quarantined(self, tmp_path):
        from repro.bench.baseline import make_baseline

        envelope = make_baseline(make_streaming_artifact())
        envelope["fingerprint_key"] = "deadbeef0000"  # tampered
        bdir = tmp_path / "baselines"
        bdir.mkdir()
        (bdir / "streaming-hot-path-deadbeef0000.json").write_text(
            json.dumps(envelope))
        history = self._export(tmp_path)
        (skip,) = history["skipped"]
        assert "invalid baseline envelope" in skip["reason"]

    def test_good_rows_survive_next_to_quarantined_ones(self, tmp_path):
        (tmp_path / "BENCH_good.json").write_text(
            json.dumps(make_streaming_artifact()))
        shutil.copy(FIXTURES / "BENCH_torn.json",
                    tmp_path / "BENCH_torn.json")
        history = self._export(tmp_path)
        assert len(history["skipped"]) == 1
        assert {r["bench"] for r in history["rows"]} == \
            {"streaming-hot-path"}

    def test_missing_inputs_yield_empty_history(self, tmp_path):
        history = export_history([], tmp_path / "nonexistent")
        assert history["rows"] == [] and history["skipped"] == []


class TestProfileProvenance:
    def test_profile_entry_rides_into_the_export(self, tmp_path):
        artifact = make_streaming_artifact()
        artifact["profile"] = {
            "mode": "cprofile", "requested_mode": "cprofile",
            "out_dir": "BENCH_streaming.profile", "top_n": 10,
            "warnings": [],
            "stages": [{"stage": "ldg/fast", "mode": "cprofile",
                        "pstats_path": "BENCH_streaming.profile/"
                                       "ldg-fast.pstats",
                        "top_path": "BENCH_streaming.profile/"
                                    "ldg-fast.top.txt",
                        "collapsed_path": None,
                        "profiled_s": 0.3, "reference_median_s": 0.2,
                        "overhead_pct": 50.0, "top_functions": []}],
        }
        (tmp_path / "BENCH_streaming.json").write_text(
            json.dumps(artifact))
        history = export_history(
            sorted(tmp_path.glob("BENCH_*.json")), None)
        (prof,) = history["profiles"]
        assert prof["bench"] == "streaming-hot-path"
        (stage,) = prof["stages"]
        assert stage["stage"] == "ldg/fast"
        assert stage["overhead_pct"] == 50.0
