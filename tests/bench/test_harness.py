"""Unit tests for the benchmark harness."""

import pytest

from repro.bench import BenchRecord, run_many, run_partitioner
from repro.offline import LabelPropagationPartitioner, MultilevelPartitioner
from repro.partitioning import LDGPartitioner, SPNLPartitioner


class TestRunPartitioner:
    def test_streaming_record(self, web_graph):
        record = run_partitioner(LDGPartitioner(4), web_graph)
        assert record.partitioner == "LDG"
        assert record.graph == web_graph.name
        assert 0.0 <= record.ecr <= 1.0
        assert record.pt_seconds > 0
        assert not record.failed

    def test_offline_record(self, web_graph):
        record = run_partitioner(LabelPropagationPartitioner(4), web_graph)
        assert record.ecr is not None
        assert not record.failed

    def test_memory_measurement(self, web_graph):
        record = run_partitioner(SPNLPartitioner(4), web_graph,
                                 measure_memory=True)
        assert record.mc_bytes > 0

    def test_oom_becomes_failed_record(self, web_graph):
        partitioner = MultilevelPartitioner(4, memory_budget_bytes=100)
        record = run_partitioner(partitioner, web_graph)
        assert record.failed
        assert record.ecr is None
        assert record.as_row()["ECR"] == "F"

    def test_work_units_ordering(self, web_graph):
        """Machine-independent efficiency: streaming << offline."""
        ldg = run_partitioner(LDGPartitioner(4), web_graph)
        spnl = run_partitioner(SPNLPartitioner(4), web_graph)
        metis = run_partitioner(MultilevelPartitioner(4), web_graph)
        assert ldg.work_units < spnl.work_units < metis.work_units

    def test_as_row_shape(self, web_graph):
        row = run_partitioner(LDGPartitioner(4), web_graph).as_row()
        assert {"graph", "method", "K", "ECR", "delta_v", "delta_e",
                "PT(s)"} <= set(row)


class TestRunMany:
    def test_cross_product(self, web_graph):
        records = run_many([LDGPartitioner(2), SPNLPartitioner(2)],
                           [web_graph])
        assert len(records) == 2
        assert {r.partitioner for r in records} == {"LDG", "SPNL"}
