"""Unit tests for the full-suite runner's plumbing (rendering, layout).

The end-to-end quick run lives in benchmarks/test_suite_all.py; here we
only pin the pure pieces so failures localize.
"""

import pytest

from repro.bench.figures import FigureData
from repro.bench.harness import BenchRecord
from repro.bench.suite import _figure_sections, _render


class TestRender:
    def test_figure_data(self):
        fig = FigureData("f", "x", [1, 2])
        fig.add("y", [0.1, 0.2])
        text = _render(fig)
        assert "| x | y |" in text

    def test_dict_of_figures(self):
        fig = FigureData("f", "x", [1])
        fig.add("y", [3])
        text = _render({"ECR": fig, "PT": fig})
        assert "*ECR*" in text and "*PT*" in text

    def test_list_of_records(self):
        record = BenchRecord(graph="g", partitioner="LDG",
                             num_partitions=4, ecr=0.5, delta_v=1.0,
                             delta_e=1.2, pt_seconds=0.1)
        text = _render([record])
        assert "LDG" in text

    def test_list_of_dicts(self):
        assert "| a |" in _render([{"a": 1}])


class TestSections:
    def test_quick_mode_shrinks_sweeps(self):
        quick = _figure_sections(quick=True)
        full = _figure_sections(quick=False)
        assert len(quick) == len(full)
        titles = [t for t, _ in full]
        assert any("Fig. 3" in t for t in titles)
        assert any("Ablation" in t for t in titles)
        assert any("Extension" in t for t in titles)


class TestExtensionRowHelpers:
    def test_edge_partitioning_rows(self):
        from repro.bench.suite import _edge_partitioning_rows
        rows = _edge_partitioning_rows(("uk2005",))
        methods = [r["method"] for r in rows]
        assert "SPNL-E" in methods and "HDRF" in methods
        by_method = {r["method"]: r["RF"] for r in rows}
        assert by_method["SPNL-E"] < by_method["Random-E"]

    def test_hybrid_rows(self):
        from repro.bench.suite import _hybrid_rows
        rows = _hybrid_rows("uk2005")
        assert len(rows) == 4
        assert any(r["method"].startswith("Buffered(") for r in rows)
        assert all(0.0 <= r["ECR"] <= 1.0 for r in rows)
