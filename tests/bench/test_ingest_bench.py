"""Smoke tests for the ingest microbench harness and its artifact."""

from __future__ import annotations

import json

import pytest

from repro.bench.ingest import bench_stage, run_ingest_microbench


class TestBenchStage:
    def test_shape_and_identity(self):
        record = bench_stage("demo", lambda: [1, 2], lambda: [1, 2],
                             warmup=0, repeats=2, same=lambda a, b: a == b)
        assert record["stage"] == "demo"
        assert record["identical"] is True
        assert record["speedup_median"] > 0
        assert len(record["baseline"]["runs_s"]) == 2
        assert len(record["optimized"]["runs_s"]) == 2

    def test_divergence_flagged(self):
        record = bench_stage("demo", lambda: 1, lambda: 2,
                             warmup=0, repeats=1, same=lambda a, b: a == b)
        assert record["identical"] is False


@pytest.mark.benchsmoke
class TestIngestArtifact:
    @pytest.fixture(scope="class")
    def artifact(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("bench") / "BENCH_ingest.json"
        run_ingest_microbench(n=1500, k=8, warmup=0, repeats=2,
                              out_path=out)
        return json.loads(out.read_text())

    def test_stages_present(self, artifact):
        assert [r["stage"] for r in artifact["results"]] == \
            ["parse", "cache_hit", "end_to_end"]

    def test_every_stage_identical(self, artifact):
        for record in artifact["results"]:
            assert record["identical"] is True, record["stage"]

    def test_registry_identity_section(self, artifact):
        assert set(artifact["identity"]) == {"ldg", "fennel", "spn",
                                             "spnl"}
        for method, checks in artifact["identity"].items():
            for check, passed in checks.items():
                assert passed is True, f"{method}.{check}"

    def test_fingerprint_and_config(self, artifact):
        assert artifact["machine"]["cpu_count"] >= 1
        assert artifact["machine"]["cpu_count"] \
            <= artifact["machine"]["cpu_count_logical"]
        assert artifact["config"]["text_bytes"] > 0
        assert artifact["config"]["cache_bytes"] > 0
