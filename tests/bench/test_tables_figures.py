"""Unit tests for table/figure regeneration (on small subsets for speed).

The full-scale assertions about *shapes* (who wins, by what factor) live
in benchmarks/; here we verify the machinery itself: row structure, OOM
gating, series alignment.
"""

import pytest

from repro.bench import (
    FigureData,
    ablation_decay,
    ablation_locality,
    fig3_lambda_sweep,
    format_markdown,
    format_series,
    format_table,
    paper_scale_oom,
    table2_datasets,
    table3_streaming,
    table4_memory,
    table5_offline,
)


class TestOOMGate:
    def test_paper_failure_pattern(self):
        """Exactly the paper's Table V 'F' entries."""
        assert not paper_scale_oom("web2001", "METIS")
        assert paper_scale_oom("sk2005", "METIS")
        assert paper_scale_oom("uk2007", "METIS")
        assert not paper_scale_oom("sk2005", "XtraPuLP")
        assert paper_scale_oom("uk2007", "XtraPuLP")

    def test_small_graphs_never_oom(self):
        for name in ("stanford", "uk2005", "eu2015", "indo2004",
                     "uk2002"):
            assert not paper_scale_oom(name, "METIS"), name
            assert not paper_scale_oom(name, "XtraPuLP"), name


class TestTable2:
    def test_rows_for_all_datasets(self):
        rows = table2_datasets(names=["uk2005"])
        assert len(rows) == 1
        assert rows[0]["paper |V|"] == 100_000
        assert rows[0]["standin |V|"] > 0


class TestTable3:
    def test_subset_structure(self):
        records = table3_streaming(k=8, names=["uk2005"])
        assert [r.partitioner for r in records] == [
            "LDG", "FENNEL", "SPN", "SPNL"]
        assert all(not r.failed for r in records)

    def test_spnl_wins_on_subset(self):
        records = table3_streaming(k=8, names=["uk2005"])
        by_name = {r.partitioner: r for r in records}
        assert by_name["SPNL"].ecr < by_name["LDG"].ecr


class TestTable4:
    def test_structure(self):
        rows = table4_memory(dataset="uk2005", k=8)
        methods = [r["method"] for r in rows]
        assert methods[0] == "LDG"
        assert any("SPNL" in m for m in methods)
        for row in rows:
            assert row["measured MC(MB)"] > 0

    def test_windowed_model_below_full(self):
        rows = table4_memory(dataset="uk2005", k=8)
        spnl_rows = [r for r in rows if "SPNL" in r["method"]]
        full, windowed = spnl_rows[0], spnl_rows[1]
        assert windowed["model MC(MB)"] < full["model MC(MB)"]
        assert windowed["paper-scale MC(GB)"] < full["paper-scale MC(GB)"]


class TestTable5:
    def test_oom_rows_marked_failed(self):
        records = table5_offline(k=8, names=["uk2007"])
        failed = {r.partitioner for r in records if r.failed}
        assert "METIS-like" in failed
        assert any("XtraPuLP" in name for name in failed)
        spnl = [r for r in records if r.partitioner.startswith("SPNL")]
        assert all(not r.failed for r in spnl)

    def test_all_methods_present(self):
        records = table5_offline(k=8, names=["uk2005"])
        assert len(records) == 5
        assert all(not r.failed for r in records)


class TestFigures:
    def test_fig3_shape(self):
        fig = fig3_lambda_sweep(datasets=["uk2005"],
                                lambdas=(0.0, 0.5, 1.0), k=8)
        assert fig.x_values == [0.0, 0.5, 1.0]
        assert len(fig.series["ECR(uk2005)"]) == 3

    def test_figure_data_validates_length(self):
        fig = FigureData("f", "x", [1, 2, 3])
        with pytest.raises(ValueError, match="points"):
            fig.add("bad", [1, 2])

    def test_figure_as_rows(self):
        fig = FigureData("f", "x", [1, 2])
        fig.add("y", [0.5, 0.25])
        rows = fig.as_rows()
        assert rows[0] == {"x": 1, "y": 0.5}

    def test_ablation_locality_rows(self):
        rows = ablation_locality(dataset="uk2005", k=8)
        assert {r["ids"] for r in rows} == {"bfs-ordered", "shuffled"}
        assert len(rows) == 6

    def test_ablation_decay_rows(self):
        rows = ablation_decay(dataset="uk2005", k=8)
        assert {"paper", "frozen", "linear"} <= {r["schedule"]
                                                 for r in rows}


class TestReportFormatting:
    def test_format_table_alignment(self):
        text = format_table([{"a": 1, "b": "xy"}, {"a": 22, "b": "z"}],
                            title="t")
        lines = text.splitlines()
        assert lines[0] == "t"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([], title="empty")

    def test_format_markdown(self):
        text = format_markdown([{"a": 1}], title="T")
        assert "| a |" in text
        assert "|---|" in text

    def test_format_series(self):
        text = format_series("x", [1, 2], {"y": [3, 4]})
        assert "x" in text and "y" in text

    def test_heterogeneous_rows_merge_columns(self):
        text = format_table([{"a": 1}, {"b": 2}])
        assert "a" in text and "b" in text
