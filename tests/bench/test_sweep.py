"""Unit tests for the parameter-sweep utility."""

import pytest

from repro.bench import SweepResult, sweep
from repro.bench.harness import BenchRecord
from repro.offline import MultilevelPartitioner
from repro.partitioning import LDGPartitioner, SPNLPartitioner


class TestSweep:
    def test_grid_enumeration(self, web_graph):
        result = sweep(lambda **kw: LDGPartitioner(4, **kw), web_graph,
                       {"slack": [1.0, 1.1, 1.2]})
        assert len(result) == 3
        assert [p["slack"] for p, _ in result.records] == [1.0, 1.1, 1.2]

    def test_multi_axis_product(self, web_graph):
        result = sweep(lambda **kw: SPNLPartitioner(4, **kw), web_graph,
                       {"lam": [0.25, 0.75],
                        "eta_schedule": ["paper", "frozen"]})
        assert len(result) == 4
        combos = {(p["lam"], p["eta_schedule"])
                  for p, _ in result.records}
        assert combos == {(0.25, "paper"), (0.25, "frozen"),
                          (0.75, "paper"), (0.75, "frozen")}

    def test_best_minimizes(self, web_graph):
        result = sweep(lambda **kw: LDGPartitioner(4, **kw), web_graph,
                       {"slack": [1.0, 1.3]})
        best = result.best("ecr")
        ecrs = {p["slack"]: r.ecr for p, r in result.records}
        assert ecrs[best["slack"]] == min(ecrs.values())

    def test_best_maximize_mode(self, web_graph):
        result = sweep(lambda **kw: LDGPartitioner(4, **kw), web_graph,
                       {"slack": [1.0, 1.3]})
        worst = result.best("ecr", minimize=False)
        ecrs = {p["slack"]: r.ecr for p, r in result.records}
        assert ecrs[worst["slack"]] == max(ecrs.values())

    def test_works_with_offline(self, web_graph):
        result = sweep(lambda **kw: MultilevelPartitioner(4, **kw),
                       web_graph, {"refine_passes": [1, 4]})
        assert len(result) == 2
        assert all(not r.failed for _, r in result.records)
        # more refinement never hurts quality
        by_passes = {p["refine_passes"]: r.ecr
                     for p, r in result.records}
        assert by_passes[4] <= by_passes[1] + 1e-9

    def test_as_rows_shape(self, web_graph):
        result = sweep(lambda **kw: LDGPartitioner(4, **kw), web_graph,
                       {"slack": [1.1]})
        rows = result.as_rows()
        assert rows[0]["slack"] == 1.1
        assert "ecr" in rows[0]

    def test_failed_runs_skipped_by_best(self):
        result = SweepResult(parameter_names=["x"])
        result.records.append(
            ({"x": 1}, BenchRecord(graph="g", partitioner="p",
                                   num_partitions=2, failed=True)))
        with pytest.raises(ValueError, match="no successful run"):
            result.best("ecr")

    def test_failed_rows_marked(self):
        result = SweepResult(parameter_names=["x"])
        result.records.append(
            ({"x": 1}, BenchRecord(graph="g", partitioner="p",
                                   num_partitions=2, failed=True)))
        assert result.as_rows()[0]["ecr"] == "F"
