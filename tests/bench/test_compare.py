"""Tests for the statistical benchmark comparator (the regression gate).

The acceptance bar from the issue: identical artifacts compare as
``no-change`` on every metric, and a synthetic 30% slowdown is flagged
``regressed``.  Beyond that, the statistics themselves are pinned:
exact Mann–Whitney p-values against hand-computed values, bootstrap CI
behavior on degenerate inputs, and the noise-floor / min-effect /
attainability rules that keep tiny noisy deltas from gating a PR.
"""

import copy

import numpy as np
import pytest

from repro.bench.compare import (
    CompareError,
    VERDICT_IMPROVED,
    VERDICT_NO_CHANGE,
    VERDICT_REGRESSED,
    bootstrap_ratio_ci,
    compare_artifacts,
    compare_samples,
    extract_identity_flags,
    extract_metrics,
    mann_whitney_u,
    smallest_attainable_p,
)


def _summary(runs):
    runs = list(runs)
    return {"median_s": float(np.median(runs)), "stdev_s": 0.0,
            "min_s": min(runs), "max_s": max(runs), "runs_s": runs}


def make_streaming_artifact(scale=1.0, *, identical=True, methods=("ldg",),
                            repeats=5, machine=None):
    """A minimal but schema-complete streaming-hot-path artifact.

    Samples are tightly clustered around ``0.2*scale`` (fast) and
    ``0.4*scale`` (seed) so a scaled copy separates cleanly.
    """
    results = []
    for method in methods:
        fast = [0.2 * scale * (1 + 0.01 * i) for i in range(repeats)]
        seed = [0.4 * scale * (1 + 0.01 * i) for i in range(repeats)]
        results.append({"method": method, "kwargs": {},
                        "fast": _summary(fast), "seed": _summary(seed),
                        "speedup_median": 2.0, "identical": identical,
                        "records_per_s_fast": 1.0,
                        "records_per_s_seed": 1.0})
    return {
        "benchmark": "streaming-hot-path",
        "created_unix": 1700000000.0,
        "machine": machine or {"platform": "test", "machine": "x86_64",
                               "processor": "", "python": "3.11.7",
                               "numpy": "2.4.6", "cpu_count": 1,
                               "cpu_count_logical": 1,
                               "commit": "abc1234", "dirty": False},
        "config": {"graph": "community_web", "num_vertices": 100,
                   "num_edges": 400, "k": 4, "warmup": 0,
                   "repeats": repeats, "seed": 11},
        "results": results,
    }


def make_ingest_artifact():
    return {
        "benchmark": "ingest-pipeline",
        "created_unix": 1700000000.0,
        "machine": {"platform": "test", "machine": "x86_64",
                    "python": "3.11.7", "numpy": "2.4.6", "cpu_count": 1},
        "config": {"k": 4},
        "results": [{"stage": "parse",
                     "baseline": _summary([0.2, 0.21, 0.22]),
                     "optimized": _summary([0.1, 0.11, 0.12]),
                     "speedup_median": 2.0, "identical": True}],
        "identity": {"ldg": {"fast_path": True, "record_path": False}},
    }


class TestMannWhitney:
    def test_exact_p_fully_separated_5v5(self):
        # U = 0; two-sided exact p = 2 / C(10,5) = 2/252.
        _, p = mann_whitney_u([1, 2, 3, 4, 5], [6, 7, 8, 9, 10])
        assert p == pytest.approx(2 / 252)

    def test_symmetry(self):
        a, b = [1.0, 2.0, 3.0], [2.5, 3.5, 4.5]
        assert mann_whitney_u(a, b)[1] == pytest.approx(
            mann_whitney_u(b, a)[1])

    def test_identical_samples_p_is_one(self):
        _, p = mann_whitney_u([1.0, 1.0, 1.0], [1.0, 1.0, 1.0])
        assert p == 1.0

    def test_interleaved_samples_not_significant(self):
        _, p = mann_whitney_u([1, 3, 5, 7, 9], [2, 4, 6, 8, 10])
        assert p > 0.2

    def test_empty_side_degenerates(self):
        assert mann_whitney_u([], [1.0])[1] == 1.0

    def test_large_samples_use_normal_approximation(self):
        rng = np.random.default_rng(0)
        a = rng.normal(0.0, 1.0, 40)
        b = rng.normal(2.0, 1.0, 40)
        _, p = mann_whitney_u(a, b)
        assert p < 1e-6

    def test_attainability_floor(self):
        assert smallest_attainable_p(3, 3) == pytest.approx(0.1)
        assert smallest_attainable_p(5, 5) == pytest.approx(2 / 252)
        assert smallest_attainable_p(2, 2) == pytest.approx(1 / 3)


class TestBootstrap:
    def test_identical_samples_collapse_to_unit_ci(self):
        lo, hi = bootstrap_ratio_ci([1.0] * 5, [1.0] * 5)
        assert lo == hi == 1.0

    def test_separated_samples_exclude_one(self):
        base = [1.0, 1.01, 1.02, 0.99, 0.98]
        cand = [1.5, 1.51, 1.52, 1.49, 1.48]
        lo, hi = bootstrap_ratio_ci(base, cand,
                                    rng=np.random.default_rng(7))
        assert lo > 1.0
        assert lo < 1.5 < hi * 1.1

    def test_deterministic_given_rng_seed(self):
        base, cand = [1.0, 1.1, 0.9], [1.2, 1.3, 1.25]
        one = bootstrap_ratio_ci(base, cand, rng=np.random.default_rng(3))
        two = bootstrap_ratio_ci(base, cand, rng=np.random.default_rng(3))
        assert one == two


class TestVerdicts:
    def test_identical_is_no_change(self):
        d = compare_samples("m", [1.0, 1.01, 0.99], [1.0, 1.01, 0.99])
        assert d.verdict == VERDICT_NO_CHANGE

    def test_large_separated_slowdown_regresses(self):
        base = [1.0 + 0.01 * i for i in range(5)]
        cand = [1.3 * t for t in base]
        d = compare_samples("m", base, cand)
        assert d.verdict == VERDICT_REGRESSED
        assert d.ratio == pytest.approx(1.3)

    def test_large_separated_speedup_improves(self):
        base = [1.0 + 0.01 * i for i in range(5)]
        cand = [0.5 * t for t in base]
        assert compare_samples("m", base, cand).verdict == VERDICT_IMPROVED

    def test_delta_below_noise_floor_never_flagged(self):
        # 3% clean shift, perfectly significant — still under the floor.
        base = [1.0, 1.001, 1.002, 1.003, 1.004]
        cand = [1.03 * t for t in base]
        d = compare_samples("m", base, cand, noise_floor=0.05)
        assert d.verdict == VERDICT_NO_CHANGE

    def test_large_but_noisy_delta_not_flagged(self):
        # medians differ 30% but samples interleave: no rank evidence.
        base = [1.0, 2.0, 0.5, 1.8, 0.7]
        cand = [1.3, 0.6, 2.2, 0.9, 1.9]
        d = compare_samples("m", base, cand)
        assert d.verdict == VERDICT_NO_CHANGE

    def test_tiny_samples_rely_on_ci(self):
        # 2 repeats: exact MW can never clear 0.05, CI must carry it.
        d = compare_samples("m", [1.0, 1.01], [1.4, 1.41])
        assert d.verdict == VERDICT_REGRESSED


class TestExtraction:
    def test_streaming_metrics_and_flags(self):
        art = make_streaming_artifact(methods=("ldg", "spnl"))
        metrics = extract_metrics(art)
        assert set(metrics) == {"ldg/fast", "ldg/seed",
                                "spnl/fast", "spnl/seed"}
        assert len(metrics["ldg/fast"]) == 5
        flags = extract_identity_flags(art)
        assert flags == {"ldg/identical": True, "spnl/identical": True}

    def test_ingest_metrics_and_nested_identity(self):
        art = make_ingest_artifact()
        metrics = extract_metrics(art)
        assert set(metrics) == {"parse/baseline", "parse/optimized"}
        flags = extract_identity_flags(art)
        assert flags["identity/ldg/fast_path"] is True
        assert flags["identity/ldg/record_path"] is False

    def test_unknown_benchmark_kind_raises(self):
        with pytest.raises(CompareError, match="unknown benchmark kind"):
            extract_metrics({"benchmark": "mystery", "results": [{}]})


class TestCompareArtifacts:
    def test_identical_artifacts_all_no_change(self):
        art = make_streaming_artifact(methods=("ldg", "fennel"))
        result = compare_artifacts(art, art)
        assert result.verdict == VERDICT_NO_CHANGE
        assert all(m.verdict == VERDICT_NO_CHANGE for m in result.metrics)
        assert result.gate_exit_code() == 0

    def test_thirty_percent_slowdown_regresses_and_gates(self):
        base = make_streaming_artifact()
        slow = copy.deepcopy(base)
        for rec in slow["results"]:
            rec["fast"]["runs_s"] = [t * 1.3 for t in
                                     rec["fast"]["runs_s"]]
        result = compare_artifacts(base, slow)
        assert result.verdict == VERDICT_REGRESSED
        assert "ldg/fast" in [m.metric for m in result.regressions]
        assert result.gate_exit_code() == 1

    def test_lost_identity_regresses_even_with_equal_timings(self):
        base = make_streaming_artifact()
        broken = make_streaming_artifact(identical=False)
        result = compare_artifacts(base, broken)
        assert result.verdict == VERDICT_REGRESSED
        (delta,) = [m for m in result.metrics
                    if m.metric == "ldg/identical"]
        assert delta.verdict == VERDICT_REGRESSED
        assert "identity" in delta.note

    def test_mismatched_benchmark_kinds_raise(self):
        with pytest.raises(CompareError, match="kinds differ"):
            compare_artifacts(make_streaming_artifact(),
                              make_ingest_artifact())

    def test_config_mismatch_warns(self):
        base = make_streaming_artifact()
        cand = copy.deepcopy(base)
        cand["config"]["k"] = 8
        result = compare_artifacts(base, cand)
        assert any("config mismatch on 'k'" in w for w in result.warnings)

    def test_fingerprint_mismatch_warns(self):
        base = make_streaming_artifact()
        cand = copy.deepcopy(base)
        cand["machine"]["cpu_count"] = 64
        result = compare_artifacts(base, cand)
        assert any("fingerprints differ" in w for w in result.warnings)
        assert result.params["fingerprint_match"] is False

    def test_metric_present_on_one_side_warns_and_skips(self):
        base = make_streaming_artifact(methods=("ldg", "spnl"))
        cand = make_streaming_artifact(methods=("ldg",))
        result = compare_artifacts(base, cand)
        assert any("only in baseline" in w for w in result.warnings)
        assert "spnl/fast" not in [m.metric for m in result.metrics]

    def test_to_dict_round_trips_through_json(self):
        import json
        art = make_streaming_artifact()
        payload = compare_artifacts(art, art).to_dict()
        restored = json.loads(json.dumps(payload))
        assert restored["verdict"] == VERDICT_NO_CHANGE
        assert restored["counts"]["no-change"] == len(payload["metrics"])

    def test_emits_schema_valid_bench_compare_record(self):
        from repro.observability import Instrumentation, MemorySink
        from repro.observability.schema import validate_record

        art = make_streaming_artifact()
        sink = MemorySink()
        hub = Instrumentation([sink])
        compare_artifacts(art, art, baseline_path="a.json",
                          candidate_path="b.json", instrumentation=hub)
        hub.close()
        (record,) = [r for r in sink.records
                     if r["type"] == "bench_compare"]
        validate_record(record)
        assert record["verdict"] == VERDICT_NO_CHANGE
        assert record["unchanged"] == 3  # ldg fast + seed + identity


class TestCrossAffinityWarnings:
    """Regression: a runner throttled to fewer cores resolves (or falls
    back to) a baseline recorded under a different core budget, and the
    gate silently compared apples to oranges.  The comparator must call
    out CPU-affinity drift explicitly, not just 'fingerprints differ'."""

    def test_cpu_count_drift_warns_loudly(self):
        base = make_streaming_artifact()
        throttled = make_streaming_artifact(
            machine={"platform": "test", "machine": "x86_64",
                     "processor": "", "python": "3.11.7",
                     "numpy": "2.4.6", "cpu_count": 4,
                     "cpu_count_logical": 8, "commit": "abc1234",
                     "dirty": False})
        result = compare_artifacts(base, throttled)
        assert any("CROSS-AFFINITY COMPARISON" in w
                   for w in result.warnings)
        assert any("cpu_count=1" in w and "cpu_count=4" in w
                   for w in result.warnings)

    def test_cross_host_without_cpu_drift_stays_generic(self):
        base = make_streaming_artifact()
        other = make_streaming_artifact(
            machine={"platform": "test", "machine": "aarch64",
                     "processor": "", "python": "3.11.7",
                     "numpy": "2.4.6", "cpu_count": 1,
                     "cpu_count_logical": 1, "commit": "abc1234",
                     "dirty": False})
        result = compare_artifacts(base, other)
        assert any("fingerprints differ" in w for w in result.warnings)
        assert not any("CROSS-AFFINITY" in w for w in result.warnings)

    def test_matching_fingerprints_warn_nothing(self):
        art = make_streaming_artifact()
        assert compare_artifacts(art, art).warnings == []


class TestRegimeBoundaryWarnings:
    """A sharded service bench recorded on a 1-CPU host
    (scaling_expected=false) must not gate silently against a multicore
    baseline: the delta measures the host's core budget, not the code."""

    def test_scaling_expected_flip_warns_loudly(self):
        base = make_streaming_artifact()
        base["config"]["scaling_expected"] = True
        cand = copy.deepcopy(base)
        cand["config"]["scaling_expected"] = False
        result = compare_artifacts(base, cand)
        assert any("REGIME BOUNDARY" in w for w in result.warnings)

    def test_matching_regime_stays_silent(self):
        art = make_streaming_artifact()
        art["config"]["scaling_expected"] = False
        result = compare_artifacts(art, copy.deepcopy(art))
        assert not any("REGIME BOUNDARY" in w for w in result.warnings)

    def test_absent_flag_is_not_a_boundary(self):
        # Pre-multicore artifacts have no scaling_expected at all;
        # comparing two of them must not invent a regime crossing.
        art = make_streaming_artifact()
        result = compare_artifacts(art, copy.deepcopy(art))
        assert not any("REGIME BOUNDARY" in w for w in result.warnings)


class TestReportRendering:
    def test_report_header_carries_commit_and_dirty(self):
        from repro.bench.report import format_compare_report

        art = make_streaming_artifact()
        dirty = copy.deepcopy(art)
        dirty["machine"]["commit"] = "def5678"
        dirty["machine"]["dirty"] = True
        result = compare_artifacts(art, dirty, baseline_path="base.json",
                                   candidate_path="cand.json")
        text = format_compare_report(result)
        assert "abc1234" in text
        assert "def5678+dirty" in text
        assert "base.json" in text and "cand.json" in text
        assert "verdict: no-change" in text

    def test_markdown_report_is_a_pipe_table(self):
        from repro.bench.report import format_compare_report

        art = make_streaming_artifact()
        text = format_compare_report(compare_artifacts(art, art),
                                     markdown=True)
        assert text.startswith("# bench compare")
        assert "| metric |" in text
