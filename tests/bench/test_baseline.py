"""Tests for the versioned baseline store under ``benchmarks/baselines``."""

import copy
import json

import pytest

from repro.bench.baseline import (
    BASELINE_FORMAT,
    BASELINE_VERSION,
    BaselineError,
    baseline_path,
    fingerprint_key,
    load_baseline,
    make_baseline,
    promote,
    resolve_baseline,
    save_baseline,
    validate_baseline,
)
from tests.bench.test_compare import make_streaming_artifact


def make_service_artifact():
    """A minimal valid ``service-bench`` artifact (endpoint records)."""
    return {
        "benchmark": "service-bench",
        "created_unix": 1700000000.0,
        "machine": make_streaming_artifact()["machine"],
        "config": {"clients": 2, "batch_size": 64},
        "results": [
            {"endpoint": "place_batch",
             "p50": {"runs_s": [0.013, 0.014]},
             "p95": {"runs_s": [0.016, 0.017]},
             "p99": {"runs_s": [0.018, 0.019]},
             "identical": True},
            {"endpoint": "lookup",
             "p50": {"runs_s": [0.0001, 0.0001]},
             "p99": {"runs_s": [0.0003, 0.0003]}},
        ],
    }


class TestFingerprintKey:
    def test_stable_and_short(self):
        machine = make_streaming_artifact()["machine"]
        key = fingerprint_key(machine)
        assert key == fingerprint_key(dict(machine))
        assert len(key) == 12
        int(key, 16)  # hex

    def test_commit_and_dirty_do_not_change_the_key(self):
        machine = make_streaming_artifact()["machine"]
        other = dict(machine, commit="ffffff", dirty=True)
        assert fingerprint_key(machine) == fingerprint_key(other)

    def test_kernel_build_does_not_change_the_key(self):
        machine = make_streaming_artifact()["machine"]
        other = dict(machine, platform="Linux-9.99.9-custom")
        assert fingerprint_key(machine) == fingerprint_key(other)

    def test_patch_versions_do_not_change_the_key(self):
        machine = make_streaming_artifact()["machine"]
        other = dict(machine, python="3.11.99", numpy="2.4.99")
        assert fingerprint_key(machine) == fingerprint_key(other)

    def test_cpu_count_changes_the_key(self):
        machine = make_streaming_artifact()["machine"]
        other = dict(machine, cpu_count=64)
        assert fingerprint_key(machine) != fingerprint_key(other)


class TestEnvelope:
    def test_make_save_load_round_trip(self, tmp_path):
        artifact = make_streaming_artifact()
        envelope = make_baseline(artifact, promoted_unix=1700000001.0)
        assert envelope["format"] == BASELINE_FORMAT
        assert envelope["version"] == BASELINE_VERSION
        assert envelope["bench"] == "streaming-hot-path"
        path = save_baseline(envelope, tmp_path / "b.json")
        assert load_baseline(path) == envelope

    def test_validate_rejects_wrong_format(self):
        with pytest.raises(BaselineError, match="not a baseline"):
            validate_baseline({"format": "something-else"})

    def test_validate_rejects_future_version(self):
        envelope = make_baseline(make_streaming_artifact(),
                                 promoted_unix=0.0)
        envelope["version"] = BASELINE_VERSION + 1
        with pytest.raises(BaselineError, match="newer than this code"):
            validate_baseline(envelope)

    def test_validate_rejects_missing_samples(self):
        envelope = make_baseline(make_streaming_artifact(),
                                 promoted_unix=0.0)
        bad = copy.deepcopy(envelope)
        del bad["artifact"]["results"][0]["fast"]["runs_s"]
        with pytest.raises(BaselineError, match="runs_s"):
            validate_baseline(bad)

    def test_validate_rejects_tampered_fingerprint(self):
        envelope = make_baseline(make_streaming_artifact(),
                                 promoted_unix=0.0)
        bad = copy.deepcopy(envelope)
        bad["artifact"]["machine"]["cpu_count"] = 512
        with pytest.raises(BaselineError, match="does not match"):
            validate_baseline(bad)

    def test_validate_accepts_service_endpoint_records(self):
        envelope = make_baseline(make_service_artifact(),
                                 promoted_unix=0.0)
        assert envelope["bench"] == "service-bench"
        assert validate_baseline(envelope) is None

    def test_validate_rejects_endpoint_without_percentiles(self):
        envelope = make_baseline(make_service_artifact(),
                                 promoted_unix=0.0)
        bad = copy.deepcopy(envelope)
        rec = bad["artifact"]["results"][1]
        del rec["p50"], rec["p99"]
        with pytest.raises(BaselineError, match="percentile"):
            validate_baseline(bad)

    def test_validate_rejects_anonymous_record(self):
        envelope = make_baseline(make_service_artifact(),
                                 promoted_unix=0.0)
        bad = copy.deepcopy(envelope)
        del bad["artifact"]["results"][0]["endpoint"]
        with pytest.raises(BaselineError, match="method, stage, or"):
            validate_baseline(bad)

    def test_load_rejects_torn_json(self, tmp_path):
        path = tmp_path / "torn.json"
        envelope = make_baseline(make_streaming_artifact(),
                                 promoted_unix=0.0)
        text = json.dumps(envelope)
        path.write_text(text[: len(text) // 2], encoding="utf-8")
        with pytest.raises(BaselineError, match="not valid JSON"):
            load_baseline(path)

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(BaselineError, match="no baseline"):
            load_baseline(tmp_path / "absent.json")


class TestPromote:
    def test_promote_places_by_bench_and_key(self, tmp_path):
        artifact = make_streaming_artifact()
        path = promote(artifact, tmp_path)
        expected = baseline_path(
            tmp_path, "streaming-hot-path",
            fingerprint_key(artifact["machine"]))
        assert path == expected
        assert validate_baseline(load_baseline(path)) is None

    def test_promote_atomically_replaces_existing(self, tmp_path):
        first = make_streaming_artifact()
        promote(first, tmp_path, promoted_unix=1.0)
        second = make_streaming_artifact(scale=0.5)
        path = promote(second, tmp_path, promoted_unix=2.0)
        envelope = load_baseline(path)
        assert envelope["promoted_unix"] == 2.0
        assert envelope["artifact"]["results"][0]["fast"]["runs_s"][0] \
            == pytest.approx(0.1)
        # no stray tmp siblings left behind
        assert list(tmp_path.glob(".*tmp*")) == []

    def test_promote_rejects_artifact_without_fingerprint(self, tmp_path):
        artifact = make_streaming_artifact()
        del artifact["machine"]
        with pytest.raises(BaselineError, match="machine fingerprint"):
            promote(artifact, tmp_path)


class TestResolve:
    def test_resolves_exact_fingerprint_match(self, tmp_path):
        artifact = make_streaming_artifact()
        promoted = promote(artifact, tmp_path)
        envelope, path, exact = resolve_baseline(tmp_path, artifact)
        assert path == promoted
        assert exact is True
        assert envelope["bench"] == "streaming-hot-path"

    def test_falls_back_to_other_host_baseline(self, tmp_path):
        artifact = make_streaming_artifact()
        promote(artifact, tmp_path)
        foreign = make_streaming_artifact()
        foreign["machine"]["cpu_count"] = 64
        envelope, _path, exact = resolve_baseline(tmp_path, foreign)
        assert exact is False
        assert envelope["bench"] == "streaming-hot-path"

    def test_missing_bench_raises_with_expected_name(self, tmp_path):
        with pytest.raises(BaselineError, match="streaming-hot-path-"):
            resolve_baseline(tmp_path, make_streaming_artifact())

    def test_plain_artifact_file_accepted(self, tmp_path):
        artifact = make_streaming_artifact()
        path = tmp_path / "BENCH_streaming.json"
        path.write_text(json.dumps(artifact), encoding="utf-8")
        obj, got_path, exact = resolve_baseline(path, artifact)
        assert got_path == path
        assert exact is True
        assert obj["benchmark"] == "streaming-hot-path"
