"""CLI tests for ``bench compare`` / ``bench promote`` and the CI gate.

These drive the exact command lines the CI job runs: promote a
candidate into a baseline store, self-compare under ``--gate`` (exit
0, every metric ``no-change``), then gate a doctored 30%-slower
candidate (exit 1).
"""

import copy
import json

import pytest

from repro.cli import main
from tests.bench.test_compare import make_streaming_artifact


@pytest.fixture
def store(tmp_path):
    """A baseline dir holding a promoted copy of a synthetic artifact."""
    artifact = make_streaming_artifact(methods=("ldg", "spnl"))
    candidate = tmp_path / "BENCH_streaming.json"
    candidate.write_text(json.dumps(artifact), encoding="utf-8")
    baselines = tmp_path / "baselines"
    code = main(["bench", "promote", "--candidate", str(candidate),
                 "--baselines-dir", str(baselines)])
    assert code == 0
    return artifact, candidate, baselines


class TestPromoteCLI:
    def test_promote_writes_validated_baseline(self, store):
        from repro.bench.baseline import load_baseline

        _artifact, _candidate, baselines = store
        (path,) = sorted(baselines.glob("streaming-hot-path-*.json"))
        envelope = load_baseline(path)
        assert envelope["bench"] == "streaming-hot-path"

    def test_promote_without_candidate_errors(self, tmp_path):
        with pytest.raises(SystemExit, match="requires --candidate"):
            main(["bench", "promote",
                  "--baselines-dir", str(tmp_path / "b")])

    def test_promote_rejects_garbage_artifact(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{\"benchmark\": null}", encoding="utf-8")
        with pytest.raises(SystemExit, match="error"):
            main(["bench", "promote", "--candidate", str(bad),
                  "--baselines-dir", str(tmp_path / "b")])


class TestCompareCLI:
    def test_self_compare_is_no_change_and_gates_green(self, store,
                                                       capsys):
        _artifact, candidate, baselines = store
        code = main(["bench", "compare", "--candidate", str(candidate),
                     "--baselines-dir", str(baselines), "--gate"])
        assert code == 0
        printed = capsys.readouterr().out
        assert "verdict: no-change" in printed
        assert "regressed" in printed  # the counts line
        assert "improved" in printed

    def test_injected_slowdown_fails_the_gate(self, store, tmp_path,
                                              capsys):
        artifact, _candidate, baselines = store
        slow = copy.deepcopy(artifact)
        for rec in slow["results"]:
            rec["fast"]["runs_s"] = [t * 1.3 for t in
                                     rec["fast"]["runs_s"]]
        slow_path = tmp_path / "BENCH_slow.json"
        slow_path.write_text(json.dumps(slow), encoding="utf-8")
        code = main(["bench", "compare", "--candidate", str(slow_path),
                     "--baselines-dir", str(baselines), "--gate"])
        assert code == 1
        out = capsys.readouterr()
        assert "gate: FAIL" in out.err
        assert "ldg/fast" in out.err

    def test_slowdown_without_gate_still_exits_zero(self, store,
                                                    tmp_path, capsys):
        artifact, _candidate, baselines = store
        slow = copy.deepcopy(artifact)
        for rec in slow["results"]:
            rec["fast"]["runs_s"] = [t * 1.3 for t in
                                     rec["fast"]["runs_s"]]
        slow_path = tmp_path / "BENCH_slow.json"
        slow_path.write_text(json.dumps(slow), encoding="utf-8")
        code = main(["bench", "compare", "--candidate", str(slow_path),
                     "--baselines-dir", str(baselines)])
        assert code == 0
        assert "verdict: regressed" in capsys.readouterr().out

    def test_generous_noise_floor_suppresses_the_regression(
            self, store, tmp_path, capsys):
        artifact, _candidate, baselines = store
        slow = copy.deepcopy(artifact)
        for rec in slow["results"]:
            rec["fast"]["runs_s"] = [t * 1.3 for t in
                                     rec["fast"]["runs_s"]]
        slow_path = tmp_path / "BENCH_slow.json"
        slow_path.write_text(json.dumps(slow), encoding="utf-8")
        code = main(["bench", "compare", "--candidate", str(slow_path),
                     "--baselines-dir", str(baselines), "--gate",
                     "--noise-floor", "0.75"])
        assert code == 0
        assert "verdict: no-change" in capsys.readouterr().out

    def test_report_json_and_trace_outputs(self, store, tmp_path,
                                           capsys):
        from repro.observability.schema import validate_record

        _artifact, candidate, baselines = store
        report = tmp_path / "report.md"
        verdict = tmp_path / "verdict.json"
        trace = tmp_path / "trace.jsonl"
        code = main(["bench", "compare", "--candidate", str(candidate),
                     "--baselines-dir", str(baselines),
                     "--report", str(report), "--json", str(verdict),
                     "--trace", str(trace)])
        assert code == 0
        assert report.read_text(encoding="utf-8") \
            .startswith("# bench compare")
        payload = json.loads(verdict.read_text(encoding="utf-8"))
        assert payload["verdict"] == "no-change"
        (record,) = [json.loads(line) for line in
                     trace.read_text(encoding="utf-8").splitlines()]
        validate_record(record)
        assert record["type"] == "bench_compare"

    def test_explicit_baseline_file_and_envelope_unwrap(self, store,
                                                        tmp_path):
        _artifact, candidate, baselines = store
        (envelope_path,) = sorted(
            baselines.glob("streaming-hot-path-*.json"))
        # envelope as --baseline, raw artifact as candidate
        code = main(["bench", "compare", "--candidate", str(candidate),
                     "--baseline", str(envelope_path), "--gate"])
        assert code == 0
        # envelope as --candidate too (unwrapped transparently)
        code = main(["bench", "compare",
                     "--candidate", str(envelope_path),
                     "--baseline", str(envelope_path), "--gate"])
        assert code == 0

    def test_affinity_fallback_warns_on_stderr(self, store, tmp_path,
                                               capsys):
        """Regression: an affinity-throttled runner fingerprints
        differently, silently falls back to another host's baseline,
        and the gate passes vacuously.  The fallback must shout about
        the CPU-count mismatch on stderr."""
        artifact, _candidate, baselines = store
        throttled = copy.deepcopy(artifact)
        throttled["machine"]["cpu_count"] = 8
        cand_path = tmp_path / "BENCH_affinity.json"
        cand_path.write_text(json.dumps(throttled), encoding="utf-8")
        code = main(["bench", "compare", "--candidate", str(cand_path),
                     "--baselines-dir", str(baselines)])
        assert code == 0
        err = capsys.readouterr().err
        assert "CROSS-AFFINITY FALLBACK" in err
        assert "cpu_count=1" in err and "cpu_count=8" in err

    def test_cross_host_fallback_without_cpu_drift_is_generic(
            self, store, tmp_path, capsys):
        artifact, _candidate, baselines = store
        foreign = copy.deepcopy(artifact)
        foreign["machine"]["machine"] = "aarch64"
        cand_path = tmp_path / "BENCH_foreign.json"
        cand_path.write_text(json.dumps(foreign), encoding="utf-8")
        code = main(["bench", "compare", "--candidate", str(cand_path),
                     "--baselines-dir", str(baselines)])
        assert code == 0
        err = capsys.readouterr().err
        assert "no baseline for this machine fingerprint" in err
        assert "CROSS-AFFINITY" not in err

    def test_missing_candidate_errors(self, store):
        _artifact, _candidate, baselines = store
        with pytest.raises(SystemExit, match="requires --candidate"):
            main(["bench", "compare",
                  "--baselines-dir", str(baselines)])

    def test_empty_baseline_store_errors(self, tmp_path):
        artifact = make_streaming_artifact()
        candidate = tmp_path / "c.json"
        candidate.write_text(json.dumps(artifact), encoding="utf-8")
        empty = tmp_path / "empty"
        empty.mkdir()
        with pytest.raises(SystemExit, match="no baseline for bench"):
            main(["bench", "compare", "--candidate", str(candidate),
                  "--baseline", str(empty)])


@pytest.mark.benchsmoke
class TestGateSmoke:
    """The exact promote → compare → gate loop the CI job runs."""

    def test_quick_bench_promote_compare_round_trip(self, tmp_path,
                                                    capsys):
        out = tmp_path / "BENCH_streaming.json"
        code = main(["bench", "streaming", "--quick", "-k", "4",
                     "--bench-out", str(out)])
        assert code == 0
        baselines = tmp_path / "baselines"
        assert main(["bench", "promote", "--candidate", str(out),
                     "--baselines-dir", str(baselines)]) == 0
        assert main(["bench", "compare", "--candidate", str(out),
                     "--baselines-dir", str(baselines), "--gate",
                     "--report", str(tmp_path / "report.md")]) == 0
        printed = capsys.readouterr().out
        assert "verdict: no-change" in printed
        artifact = json.loads(out.read_text(encoding="utf-8"))
        # The bugfix: artifacts now record which code produced them.
        assert "commit" in artifact["machine"]
        assert "dirty" in artifact["machine"]
