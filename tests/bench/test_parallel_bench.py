"""Tests for the parallel-scaling benchmark and its gate plumbing.

The synthetic-artifact tests pin the ``parallel-scaling`` layout into
``extract_metrics`` / ``validate_baseline`` / ``compare_artifacts``;
the benchsmoke class runs the real harness end to end (tiny graph) and
drives the promote → compare → gate loop the CI job uses.
"""

import copy
import json

import numpy as np
import pytest

from repro.bench.baseline import make_baseline, validate_baseline
from repro.bench.compare import (CompareError, compare_artifacts,
                                 extract_identity_flags, extract_metrics)
from tests.bench.test_compare import _summary


def make_parallel_artifact(scale=1.0, *, identical=True,
                           methods=("spnl",), repeats=5, machine=None):
    """A minimal but schema-complete parallel-scaling artifact."""
    results = []
    for method in methods:
        seq = [0.2 * scale * (1 + 0.01 * i) for i in range(repeats)]
        par = [0.5 * scale * (1 + 0.01 * i) for i in range(repeats)]
        results.append({"method": method, "kwargs": {},
                        "parallelism": 4, "num_workers": 1,
                        "sequential": _summary(seq),
                        "parallel": _summary(par),
                        "speedup_median": 0.4, "identical": identical,
                        "ecr_sequential": 0.20, "ecr_parallel": 0.21,
                        "ecr_delta_pct": 5.0,
                        "records_per_s_sequential": 1.0,
                        "records_per_s_parallel": 1.0})
    return {
        "benchmark": "parallel-scaling",
        "created_unix": 1700000000.0,
        "machine": machine or {"platform": "test", "machine": "x86_64",
                               "processor": "", "python": "3.11.7",
                               "numpy": "2.4.6", "cpu_count": 1,
                               "cpu_count_logical": 1,
                               "commit": "abc1234", "dirty": False},
        "config": {"graph": "community_web", "num_vertices": 100,
                   "num_edges": 400, "k": 4, "parallelism": 4,
                   "num_workers": 1, "warmup": 0, "repeats": repeats,
                   "seed": 11, "scaling_expected": False},
        "results": results,
    }


class TestExtraction:
    def test_metrics_expose_both_sides(self):
        metrics = extract_metrics(
            make_parallel_artifact(methods=("spnl", "ldg")))
        assert set(metrics) == {"spnl/sequential", "spnl/parallel",
                                "ldg/sequential", "ldg/parallel"}
        assert len(metrics["spnl/parallel"]) == 5

    def test_identity_flags_cover_methods(self):
        flags = extract_identity_flags(
            make_parallel_artifact(identical=False))
        assert flags == {"spnl/identical": False}

    def test_unknown_kind_error_names_parallel_scaling(self):
        with pytest.raises(CompareError, match="parallel-scaling"):
            extract_metrics({"benchmark": "no-such-bench"})


class TestBaselineEnvelope:
    def test_round_trip_validates(self):
        envelope = make_baseline(make_parallel_artifact())
        validate_baseline(envelope)  # must not raise
        assert envelope["bench"] == "parallel-scaling"

    def test_single_sided_record_rejected(self):
        artifact = make_parallel_artifact()
        del artifact["results"][0]["parallel"]
        with pytest.raises(Exception, match="two timed sides"):
            validate_baseline(make_baseline(artifact))


class TestCompareVerdicts:
    def test_self_compare_is_no_change(self):
        artifact = make_parallel_artifact()
        result = compare_artifacts(artifact, artifact)
        assert result.verdict == "no-change"

    def test_parallel_side_slowdown_regresses(self):
        baseline = make_parallel_artifact()
        slow = copy.deepcopy(baseline)
        for rec in slow["results"]:
            rec["parallel"]["runs_s"] = \
                [t * 1.4 for t in rec["parallel"]["runs_s"]]
        result = compare_artifacts(baseline, slow)
        assert result.verdict == "regressed"
        assert any(d.metric == "spnl/parallel" and d.verdict == "regressed"
                   for d in result.metrics)

    def test_identity_loss_regresses_even_with_equal_timings(self):
        baseline = make_parallel_artifact()
        broken = make_parallel_artifact(identical=False)
        result = compare_artifacts(baseline, broken)
        assert result.verdict == "regressed"
        assert any(d.metric == "spnl/identical"
                   and "byte-identity" in d.note
                   for d in result.metrics)


@pytest.mark.benchsmoke
class TestParallelBenchSmoke:
    """Real harness on a tiny graph + the CI promote/compare loop."""

    def test_harness_invariants_and_gate_round_trip(self, tmp_path,
                                                    capsys):
        from repro.cli import main

        from repro.bench.parallel import run_parallel_scaling_bench

        out = tmp_path / "BENCH_parallel.json"
        artifact = run_parallel_scaling_bench(
            n=600, k=4, repeats=2, warmup=0, out_path=out)
        (rec,) = artifact["results"]
        # Machine-independent invariants: byte-parity with the simulated
        # executor and bounded ECR drift.  Wall-clock speedup is never
        # asserted here — this may be a single-core container.
        assert rec["identical"] is True
        assert abs(rec["ecr_delta_pct"]) < 15.0  # tiny-graph slack
        assert artifact["config"]["scaling_expected"] in (True, False)
        on_disk = json.loads(out.read_text(encoding="utf-8"))
        assert on_disk["benchmark"] == "parallel-scaling"

        baselines = tmp_path / "baselines"
        assert main(["bench", "promote", "--candidate", str(out),
                     "--baselines-dir", str(baselines)]) == 0
        assert main(["bench", "compare", "--candidate", str(out),
                     "--baselines-dir", str(baselines), "--gate"]) == 0
        assert "verdict: no-change" in capsys.readouterr().out

    def test_multi_method_sweep_reports_each(self, tmp_path):
        from repro.bench.parallel import run_parallel_scaling_bench

        artifact = run_parallel_scaling_bench(
            n=400, k=4, repeats=1, warmup=0, methods=("hash", "ldg"),
            out_path=None)
        names = [r["method"] for r in artifact["results"]]
        assert names == ["hash", "ldg"]
        assert all(r["identical"] for r in artifact["results"])
        assert all(np.isfinite(r["speedup_median"])
                   for r in artifact["results"])
