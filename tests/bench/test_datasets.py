"""Unit tests for the benchmark dataset registry."""

import pytest

from repro.bench import DATASETS, clear_cache, load, load_all
from repro.graph import locality_score


class TestRegistry:
    def test_all_eight_paper_graphs_present(self):
        assert list(DATASETS) == [
            "stanford", "uk2005", "eu2015", "indo2004", "uk2002",
            "web2001", "sk2005", "uk2007"]

    def test_paper_sizes_recorded(self):
        assert DATASETS["uk2007"].paper_edges == 3_929_837_236
        assert DATASETS["stanford"].paper_vertices == 685_230

    def test_unknown_dataset_rejected(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            load("facebook")


class TestLoading:
    def test_load_caches(self):
        clear_cache()
        a = load("uk2005")
        b = load("uk2005")
        assert a is b

    def test_clear_cache(self):
        a = load("uk2005")
        clear_cache()
        b = load("uk2005")
        assert a is not b
        assert a == b  # still deterministic

    def test_deterministic_build(self):
        spec = DATASETS["stanford"]
        assert spec.build() == spec.build()

    def test_graph_names_match_keys(self):
        g = load("uk2005")
        assert g.name == "uk2005"


class TestRegimes:
    """The stand-ins must land in their originals' qualitative regimes."""

    def test_locality_ordering(self):
        """uk2007 (BFS-crawled giant) is the most local; uk2005 least."""
        weakest = locality_score(load("uk2005"))
        strongest = locality_score(load("uk2007"))
        assert strongest > weakest + 0.15

    def test_high_locality_graphs(self):
        for name in ("uk2002", "web2001", "sk2005", "uk2007"):
            assert locality_score(load(name)) > 0.85, name

    def test_skewed_graphs_have_dense_regions(self):
        """eu2015/indo2004 carry the paper's δ_e-driving density skew."""
        from repro.graph import describe
        eu = describe(load("eu2015"))
        uk = describe(load("uk2002"))
        assert eu.degree_gini > uk.degree_gini
