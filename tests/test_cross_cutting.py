"""Cross-cutting matrix tests: every partitioner × every mode/edge case.

Single-behavior tests live next to their modules; this file sweeps the
combinations that are easy to break one-sidedly — balance modes, K
extremes, degenerate graphs — across the whole partitioner roster at
once.
"""

import numpy as np
import pytest

from repro.graph import DiGraph, GraphStream, from_edges
from repro.offline import (
    LabelPropagationPartitioner,
    MultilevelPartitioner,
)
from repro.partitioning import (
    BalanceMode,
    ChunkedPartitioner,
    FennelPartitioner,
    HashPartitioner,
    LDGPartitioner,
    RandomPartitioner,
    RangePartitioner,
    SPNLPartitioner,
    SPNPartitioner,
    evaluate,
)

STREAMING = [
    HashPartitioner,
    RandomPartitioner,
    RangePartitioner,
    ChunkedPartitioner,
    LDGPartitioner,
    FennelPartitioner,
    SPNPartitioner,
    SPNLPartitioner,
]


@pytest.mark.parametrize("cls", STREAMING)
class TestEveryStreamingPartitioner:
    def test_k_equals_one(self, cls, web_graph):
        result = cls(1).partition(GraphStream(web_graph))
        q = evaluate(web_graph, result.assignment)
        assert q.ecr == 0.0
        assert q.delta_v == 1.0

    def test_k_equals_vertices(self, cls):
        g = from_edges([(0, 1), (1, 2), (2, 3)], num_vertices=4)
        result = cls(4, slack=1.0).partition(GraphStream(g))
        result.assignment.validate(4)
        # with K == |V| and δ = 1 every vertex sits alone
        assert result.assignment.vertex_counts().max() == 1

    def test_edgeless_graph(self, cls):
        g = DiGraph.empty(32)
        result = cls(4).partition(GraphStream(g))
        result.assignment.validate(32)
        assert evaluate(g, result.assignment).ecr == 0.0

    def test_single_vertex(self, cls):
        g = DiGraph.empty(1)
        result = cls(2).partition(GraphStream(g))
        result.assignment.validate(1)

    def test_edge_balance_mode(self, cls, web_graph):
        partitioner = cls(8, balance=BalanceMode.EDGE, slack=1.1)
        result = partitioner.partition(GraphStream(web_graph))
        q = evaluate(web_graph, result.assignment)
        # the edge-capacity rule must bind δ_e (+ rounding headroom)
        assert q.delta_e <= 1.15, cls.__name__

    def test_star_graph(self, cls):
        """A hub pointing at everyone — the degenerate skew case."""
        n = 64
        g = from_edges([(0, i) for i in range(1, n)], num_vertices=n)
        result = cls(4).partition(GraphStream(g))
        result.assignment.validate(n)


@pytest.mark.parametrize("cls", [MultilevelPartitioner,
                                 LabelPropagationPartitioner])
class TestEveryOfflinePartitioner:
    def test_k_equals_one(self, cls, web_graph):
        result = cls(1).partition(web_graph)
        assert evaluate(web_graph, result.assignment).ecr == 0.0

    def test_edgeless_graph(self, cls):
        g = DiGraph.empty(16)
        result = cls(4).partition(g)
        result.assignment.validate(16)

    def test_two_vertices(self, cls):
        g = from_edges([(0, 1)], num_vertices=2)
        result = cls(2).partition(g)
        result.assignment.validate(2)


class TestSelfConsistencyAcrossModes:
    def test_vertex_and_edge_mode_same_domain(self, web_graph):
        """Both balance modes produce complete assignments over the
        same vertex set — only the capacity measure differs."""
        v_mode = LDGPartitioner(8, balance="vertex").partition(
            GraphStream(web_graph))
        e_mode = LDGPartitioner(8, balance="edge").partition(
            GraphStream(web_graph))
        v_mode.assignment.validate(web_graph.num_vertices)
        e_mode.assignment.validate(web_graph.num_vertices)

    def test_all_partitioners_nonempty_partitions_when_k_small(
            self, web_graph):
        for cls in STREAMING:
            result = cls(2).partition(GraphStream(web_graph))
            counts = result.assignment.vertex_counts()
            assert (counts > 0).all(), cls.__name__
