"""Unit tests for the instrumentation hub, its instruments, and sinks."""

import json
import time

import pytest

from repro.observability import (
    Instrumentation,
    JsonlSink,
    MemorySink,
    ProgressSink,
    Timer,
    TraceSink,
)


class TestCounters:
    def test_count_accumulates_and_returns_total(self):
        hub = Instrumentation()
        assert hub.count("placements") == 1
        assert hub.count("placements", 4) == 5
        assert hub.counters["placements"] == 5

    def test_independent_names(self):
        hub = Instrumentation()
        hub.count("a")
        hub.count("b", 3)
        assert hub.counters == {"a": 1, "b": 3}


class TestGauges:
    def test_gauge_keeps_latest(self):
        hub = Instrumentation()
        hub.gauge("bytes", 10)
        hub.gauge("bytes", 7)
        assert hub.gauges["bytes"] == 7


class TestTimers:
    def test_timer_accumulates(self):
        hub = Instrumentation()
        with hub.timer("region"):
            time.sleep(0.001)
        with hub.timer("region"):
            pass
        t = hub.timers["region"]
        assert t.count == 2
        assert t.total_seconds > 0.0

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Timer("x").stop()

    def test_timer_accumulates_on_exception(self):
        hub = Instrumentation()
        with pytest.raises(ValueError):
            with hub.timer("r"):
                raise ValueError("boom")
        assert hub.timers["r"].count == 1


class TestEmit:
    def test_emit_assigns_sequence_numbers(self):
        sink = MemorySink()
        hub = Instrumentation([sink])
        hub.emit({"type": "parallel_batch", "batch": 1})
        hub.emit({"type": "parallel_batch", "batch": 2})
        assert [r["seq"] for r in sink.records] == [1, 2]

    def test_failing_sink_is_detached_not_fatal(self):
        class Broken:
            def emit(self, record):
                raise RuntimeError("disk full")

            def close(self):
                pass

        good = MemorySink()
        broken = Broken()
        hub = Instrumentation([broken, good])
        hub.emit({"type": "x"})
        hub.emit({"type": "y"})
        assert len(good.records) == 2  # good sink unaffected
        assert broken not in hub.sinks
        assert len(hub.sink_errors) == 1
        assert isinstance(hub.sink_errors[0][1], RuntimeError)

    def test_snapshot_flattens_everything(self):
        hub = Instrumentation()
        hub.count("c", 2)
        hub.gauge("g", 1.5)
        with hub.timer("t"):
            pass
        snap = hub.snapshot()
        assert snap["counter.c"] == 2
        assert snap["gauge.g"] == 1.5
        assert snap["timer.t.count"] == 1
        assert snap["timer.t.seconds"] >= 0.0

    def test_context_manager_closes_sinks(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with Instrumentation([JsonlSink(path)]) as hub:
            hub.emit({"type": "x"})
        assert path.exists()


class TestMemorySink:
    def test_ring_buffer_drops_oldest(self):
        sink = MemorySink(capacity=2)
        for i in range(5):
            sink.emit({"i": i})
        assert [r["i"] for r in sink.records] == [3, 4]

    def test_satisfies_protocol(self):
        assert isinstance(MemorySink(), TraceSink)
        assert isinstance(ProgressSink(), TraceSink)


class TestJsonlSink:
    def test_lazy_open_and_valid_json_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(path)
        assert not path.exists()  # nothing written until first emit
        sink.emit({"type": "a", "n": 1})
        sink.emit({"type": "b", "xs": [1, 2]})
        sink.close()
        lines = path.read_text().splitlines()
        assert [json.loads(line)["type"] for line in lines] == ["a", "b"]
        assert sink.records_written == 2

    def test_numpy_values_serialized(self, tmp_path):
        np = pytest.importorskip("numpy")
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(path)
        sink.emit({"type": "a", "arr": np.arange(3), "x": np.float64(1.5)})
        sink.close()
        rec = json.loads(path.read_text())
        assert rec["arr"] == [0, 1, 2]
        assert rec["x"] == 1.5

    def test_close_idempotent(self, tmp_path):
        sink = JsonlSink(tmp_path / "t.jsonl")
        sink.emit({"type": "a"})
        sink.close()
        sink.close()


class TestProgressSink:
    def test_probe_line_format(self):
        lines = []

        class Stream:
            def write(self, text):
                lines.append(text)

            def flush(self):
                pass

        sink = ProgressSink(stream=Stream())
        sink.emit({"type": "stream_probe", "partitioner": "SPNL",
                   "placements": 1000, "ecr_estimate": 0.25,
                   "load_skew": 1.1, "score_margin_mean": 0.5})
        sink.emit({"type": "stream_summary", "partitioner": "SPNL",
                   "placements": 2000, "elapsed_seconds": 0.5})
        text = "".join(lines)
        assert "SPNL" in text
        assert "1000 placed" in text
        assert "ecr~0.2500" in text
        assert "done: 2000 placed" in text
