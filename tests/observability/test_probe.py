"""StreamProbe correctness: hand-computed trajectories, schema, identity."""

import numpy as np
import pytest

from repro.graph import GraphStream, community_web_graph, from_edges
from repro.observability import (
    Instrumentation,
    MemorySink,
    validate_record,
)
from repro.partitioning import make_partitioner
from repro.partitioning.base import PartitionState


@pytest.fixture
def back_edge_graph():
    """4 vertices whose out-edges all point at earlier ids.

    Edges: 1→0, 2→0, 2→1, 3→1 — so in id-order streaming every edge is
    *resolved* the moment its source arrives, making the running ECR
    estimate exactly hand-computable.
    """
    return from_edges([(1, 0), (2, 0), (2, 1), (3, 1)],
                      num_vertices=4, name="back-edges")


class TestHandComputedTrajectory:
    def test_ecr_estimate_trajectory(self, back_edge_graph):
        """Drive the probe with a fixed placement and check every window.

        Placements: v0→0, v1→1, v2→0, v3→1.  Resolved/cut after each:
        v0 (no out-edges) 0/0; v1 (1→0 crosses) 1/1; v2 (2→0 local,
        2→1 crosses) 3/2; v3 (3→1 local) 4/2.  ECR trajectory:
        None, 1.0, 2/3, 0.5.
        """
        sink = MemorySink()
        hub = Instrumentation([sink], probe_every=1)
        state = PartitionState(2, 4, 4)
        probe = hub.stream_probe(None, state)
        placement = {0: 0, 1: 1, 2: 0, 3: 1}
        for record in GraphStream(back_edge_graph):
            pid = placement[record.vertex]
            state.commit(record, pid)
            probe.observe(record, pid)
        probe.finish(0.01)

        probes = [r for r in sink.records if r["type"] == "stream_probe"]
        assert [r["ecr_estimate"] for r in probes] == \
            [None, 1.0, pytest.approx(2 / 3), 0.5]
        assert [r["resolved_edges"] for r in probes] == [0, 1, 3, 4]
        assert [r["cut_edges"] for r in probes] == [0, 1, 2, 2]
        assert [r["placements"] for r in probes] == [1, 2, 3, 4]
        assert [r["window"] for r in probes] == [1, 2, 3, 4]
        # Final loads: two vertices per partition → skew exactly 1.0.
        assert probes[-1]["loads"] == [2, 2]
        assert probes[-1]["load_skew"] == 1.0

        summary = sink.records[-1]
        assert summary["type"] == "stream_summary"
        assert summary["placements"] == 4
        assert summary["ecr_estimate"] == 0.5
        assert summary["capacity_overflows"] == 0

    def test_memoized_and_fallback_paths_agree(self, back_edge_graph):
        """Pre-tallied neighbor counts give the same resolved/cut tally."""
        tallies = []
        for use_memo in (False, True):
            sink = MemorySink()
            hub = Instrumentation([sink], probe_every=1)
            state = PartitionState(2, 4, 4)
            probe = hub.stream_probe(None, state)
            placement = {0: 0, 1: 1, 2: 0, 3: 1}
            for record in GraphStream(back_edge_graph):
                if use_memo:  # what the scoring loop does before choose()
                    state.neighbor_partition_counts(record.neighbors)
                pid = placement[record.vertex]
                state.commit(record, pid)
                probe.observe(record, pid)
            tallies.append((probe.resolved_edges, probe.cut_edges))
        assert tallies[0] == tallies[1] == (4, 2)

    def test_window_size_respected(self, web_graph):
        sink = MemorySink()
        hub = Instrumentation([sink], probe_every=256)
        partitioner = make_partitioner("spnl", 8)
        partitioner.partition(GraphStream(web_graph), instrumentation=hub)
        probes = [r for r in sink.records if r["type"] == "stream_probe"]
        assert len(probes) == web_graph.num_vertices // 256
        assert [r["placements"] for r in probes] == \
            [256 * (i + 1) for i in range(len(probes))]

    def test_margin_window_statistics(self):
        """A window's margin stats come from that window only."""
        sink = MemorySink()
        hub = Instrumentation([sink], probe_every=2)
        state = PartitionState(2, 4, 0)
        probe = hub.stream_probe(None, state)

        class Rec:
            vertex = 0
            neighbors = np.empty(0, dtype=np.int64)

        for margin in (1.0, 3.0):  # window 1: mean 2.0, min 1.0
            probe.observe(Rec(), 0, margin)
        for margin in (0.5, None):  # window 2: one sample
            probe.observe(Rec(), 0, margin)
        w1, w2 = sink.records
        assert w1["score_margin_mean"] == 2.0
        assert w1["score_margin_min"] == 1.0
        assert w2["score_margin_mean"] == 0.5
        assert w2["score_margin_min"] == 0.5


class TestSchemaConformance:
    @pytest.mark.parametrize("method", ["spnl", "spn", "ldg", "fennel",
                                        "hash"])
    def test_every_emitted_record_validates(self, web_graph, method):
        sink = MemorySink()
        hub = Instrumentation([sink], probe_every=300)
        partitioner = make_partitioner(method, 8, ignore_unknown=True)
        partitioner.partition(GraphStream(web_graph), instrumentation=hub)
        assert sink.records  # probes plus the summary
        for record in sink.records:
            validate_record(record)
        assert sink.records[-1]["type"] == "stream_summary"

    def test_spnl_gauges_present(self, web_graph):
        sink = MemorySink()
        hub = Instrumentation([sink], probe_every=500)
        make_partitioner("spnl", 8).partition(GraphStream(web_graph),
                                              instrumentation=hub)
        probe = next(r for r in sink.records
                     if r["type"] == "stream_probe")
        assert probe["expectation_table_entries"] > 0
        assert probe["expectation_table_bytes"] > 0
        assert 0.0 < probe["eta_mean"] <= 1.0
        summary = sink.records[-1]
        assert summary["expectation_table_entries"] > 0

    def test_hub_counters_after_run(self, web_graph):
        hub = Instrumentation(probe_every=500)
        make_partitioner("ldg", 8).partition(GraphStream(web_graph),
                                             instrumentation=hub)
        assert hub.counters["stream.placements"] == web_graph.num_vertices
        assert hub.counters["stream.windows"] == \
            web_graph.num_vertices // 500
        assert 0.0 <= hub.gauges["stream.ecr_estimate"] <= 1.0


class TestByteIdentity:
    @pytest.mark.parametrize("method", ["spnl", "spn", "ldg", "fennel",
                                        "hash"])
    def test_instrumented_assignment_identical(self, web_graph, method):
        """Tracing must never change a single placement decision."""
        plain = make_partitioner(method, 8, ignore_unknown=True).partition(
            GraphStream(web_graph))
        hub = Instrumentation([MemorySink()], probe_every=100)
        traced = make_partitioner(method, 8, ignore_unknown=True).partition(
            GraphStream(web_graph), instrumentation=hub)
        np.testing.assert_array_equal(plain.assignment.route,
                                      traced.assignment.route)

    def test_normalized_stats_keys(self, web_graph):
        for method in ("spnl", "spn", "ldg", "fennel", "hash"):
            result = make_partitioner(
                method, 8, ignore_unknown=True).partition(
                GraphStream(web_graph))
            for key in ("placements", "capacity_overflows",
                        "expectation_table_entries"):
                assert key in result.stats, (method, key)
            assert result.stats["placements"] == web_graph.num_vertices


class TestParallelAndBSPTraces:
    def test_simulated_parallel_emits_batches(self, web_graph):
        from repro.parallel import SimulatedParallelPartitioner

        sink = MemorySink()
        hub = Instrumentation([sink], probe_every=300)
        par = SimulatedParallelPartitioner(make_partitioner("spnl", 8),
                                           parallelism=4)
        result = par.partition(GraphStream(web_graph), instrumentation=hub)
        for record in sink.records:
            validate_record(record)
        batches = [r for r in sink.records if r["type"] == "parallel_batch"]
        assert batches
        assert batches[-1]["placements"] == web_graph.num_vertices
        assert result.stats["placements"] == web_graph.num_vertices

    def test_threaded_parallel_traces_and_matches_placements(
            self, web_graph):
        from repro.parallel import ThreadedParallelPartitioner

        sink = MemorySink()
        hub = Instrumentation([sink], probe_every=300)
        par = ThreadedParallelPartitioner(make_partitioner("spnl", 8),
                                          parallelism=2)
        result = par.partition(GraphStream(web_graph), instrumentation=hub)
        for record in sink.records:
            validate_record(record)
        assert sink.records[-1]["type"] == "stream_summary"
        assert sink.records[-1]["placements"] == web_graph.num_vertices
        assert result.stats["placements"] == web_graph.num_vertices

    def test_bsp_supersteps_traced(self, web_graph):
        from repro.runtime import BSPEngine
        from repro.runtime.algorithms import PageRankProgram

        assignment = make_partitioner("hash", 4).partition(
            GraphStream(web_graph)).assignment
        sink = MemorySink()
        hub = Instrumentation([sink])
        run = BSPEngine(web_graph, assignment).run(
            PageRankProgram(iterations=3), instrumentation=hub)
        steps = [r for r in sink.records if r["type"] == "bsp_superstep"]
        for record in steps:
            validate_record(record)
        assert len(steps) == run.supersteps
        assert hub.counters["bsp.supersteps"] == run.supersteps
        assert hub.counters["bsp.remote_messages"] == \
            run.comm.remote_messages
