"""Shared fixtures: small deterministic graphs used across the suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import (
    DiGraph,
    GraphStream,
    community_web_graph,
    from_edges,
    grid_graph,
    ring_of_cliques,
)


@pytest.fixture
def tiny_graph() -> DiGraph:
    """5 vertices, hand-checkable structure.

    Edges: 0→1, 0→2, 1→2, 2→3, 3→4, 4→0.
    """
    return from_edges(
        [(0, 1), (0, 2), (1, 2), (2, 3), (3, 4), (4, 0)],
        num_vertices=5, name="tiny")


@pytest.fixture
def paper_fig1_state():
    """The exact local view of the paper's Figure 1 worked example.

    Vertices 1..6 (1-indexed as in the figure) already placed:
    V1 = {3, 5}, V2 = {1, 2}, V3 = {4, 6}; adjacency lists as drawn.
    Vertex 7 with N_out = {6, 9, 10} is about to arrive.  Ids run to 15
    (the figure's largest referenced id).
    """
    adjacency = {
        3: [4, 5, 11],
        5: [2, 3, 14],
        1: [6, 8, 9],
        2: [4, 7, 8],
        4: [11, 12, 15],
        6: [4, 7, 13],
        7: [6, 9, 10],
    }
    placement = {3: 0, 5: 0, 1: 1, 2: 1, 4: 2, 6: 2}
    return adjacency, placement


@pytest.fixture(scope="session")
def web_graph() -> DiGraph:
    """A mid-size locality-rich web stand-in shared by slow tests."""
    return community_web_graph(4000, avg_community_size=50, seed=42,
                               name="web4k")


@pytest.fixture(scope="session")
def web_stream_factory(web_graph):
    """Factory producing fresh id-ordered streams of the shared graph."""
    def _make():
        return GraphStream(web_graph)
    return _make


@pytest.fixture
def cliques_graph() -> DiGraph:
    """8 cliques of 6 vertices in a ring — known optimal partitioning."""
    return ring_of_cliques(8, 6)


@pytest.fixture
def grid() -> DiGraph:
    return grid_graph(12, 12)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)
