"""Unit tests for initial partitioning and boundary refinement."""

import numpy as np
import pytest

from repro.graph import community_web_graph, grid_graph, ring_of_cliques
from repro.offline import (
    WeightedGraph,
    partition_edge_cut,
    refine,
    region_growing_partition,
)


def _wg(digraph):
    return WeightedGraph.from_digraph(digraph)


class TestRegionGrowing:
    def test_complete_cover(self):
        wg = _wg(community_web_graph(500, seed=1))
        part = region_growing_partition(wg, 4, seed=0)
        assert (part >= 0).all()
        assert part.max() <= 3

    def test_balance_within_slack(self):
        wg = _wg(community_web_graph(800, seed=1))
        part = region_growing_partition(wg, 4, slack=1.1, seed=0)
        counts = np.bincount(part, weights=wg.vertex_weights, minlength=4)
        assert counts.max() <= 1.1 * 800 / 4 + 1

    def test_regions_are_cohesive_on_grid(self, grid):
        wg = _wg(grid)
        part = region_growing_partition(wg, 4, seed=0)
        # region growing on a grid must beat random scatter decisively
        rng = np.random.default_rng(0)
        random_part = rng.integers(0, 4, wg.num_vertices).astype(np.int32)
        assert partition_edge_cut(wg, part) < 0.7 * partition_edge_cut(
            wg, random_part)

    def test_single_partition(self):
        wg = _wg(community_web_graph(100, seed=1))
        part = region_growing_partition(wg, 1, seed=0)
        assert (part == 0).all()

    def test_invalid_k(self):
        wg = _wg(community_web_graph(100, seed=1))
        with pytest.raises(ValueError):
            region_growing_partition(wg, 0)


class TestPartitionEdgeCut:
    def test_hand_computed(self, tiny_graph):
        wg = _wg(tiny_graph)
        part = np.array([0, 0, 1, 1, 1], dtype=np.int32)
        # undirected cut edges: {0,2},{1,2},{0,4} each weight 1 → 3
        assert partition_edge_cut(wg, part) == 3

    def test_single_block_zero(self, tiny_graph):
        wg = _wg(tiny_graph)
        assert partition_edge_cut(wg, np.zeros(5, dtype=np.int32)) == 0


class TestRefine:
    def test_never_worsens_cut(self):
        wg = _wg(community_web_graph(600, seed=2))
        rng = np.random.default_rng(3)
        part = rng.integers(0, 4, wg.num_vertices).astype(np.int32)
        before = partition_edge_cut(wg, part)
        after_part = refine(wg, part, 4, slack=1.2)
        assert partition_edge_cut(wg, after_part) <= before

    def test_improves_bad_partition_substantially(self, cliques_graph):
        wg = _wg(cliques_graph)
        rng = np.random.default_rng(3)
        part = rng.integers(0, 8, wg.num_vertices).astype(np.int32)
        before = partition_edge_cut(wg, part)
        after = partition_edge_cut(wg, refine(wg, part, 8, slack=1.5), )
        assert after < 0.8 * before

    def test_respects_balance_quota(self):
        wg = _wg(community_web_graph(600, seed=2))
        rng = np.random.default_rng(3)
        part = rng.integers(0, 4, wg.num_vertices).astype(np.int32)
        refined = refine(wg, part, 4, slack=1.05)
        counts = np.bincount(refined, weights=wg.vertex_weights,
                             minlength=4)
        assert counts.max() <= 1.05 * 600 / 4 + 1

    def test_input_not_mutated(self):
        wg = _wg(community_web_graph(300, seed=2))
        part = np.zeros(wg.num_vertices, dtype=np.int32)
        part[:150] = 1
        snapshot = part.copy()
        refine(wg, part, 2)
        assert np.array_equal(part, snapshot)

    def test_no_movement_when_optimal(self, cliques_graph):
        wg = _wg(cliques_graph)
        # perfect partitioning: one clique per partition
        part = (np.arange(wg.num_vertices) // 6).astype(np.int32)
        refined = refine(wg, part, 8, slack=1.1)
        assert partition_edge_cut(wg, refined) == partition_edge_cut(
            wg, part)
