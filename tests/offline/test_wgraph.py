"""Unit tests for the weighted undirected graph substrate."""

import numpy as np
import pytest

from repro.graph import from_edges
from repro.offline import WeightedGraph


class TestFromDigraph:
    def test_symmetrization(self, tiny_graph):
        wg = WeightedGraph.from_digraph(tiny_graph)
        # every undirected edge appears in both rows
        src = np.repeat(np.arange(wg.num_vertices), np.diff(wg.indptr))
        pairs = set(zip(src.tolist(), wg.indices.tolist()))
        assert all((b, a) in pairs for a, b in pairs)

    def test_antiparallel_pair_weight_two(self):
        g = from_edges([(0, 1), (1, 0)], num_vertices=2)
        wg = WeightedGraph.from_digraph(g)
        assert wg.num_adjacency_entries == 2
        assert list(wg.edge_weights) == [2, 2]

    def test_one_way_edge_weight_one(self):
        g = from_edges([(0, 1)], num_vertices=2)
        wg = WeightedGraph.from_digraph(g)
        assert list(wg.edge_weights) == [1, 1]

    def test_unit_vertex_weights(self, tiny_graph):
        wg = WeightedGraph.from_digraph(tiny_graph)
        assert wg.total_vertex_weight == 5

    def test_edgeless_graph(self):
        g = from_edges([], num_vertices=3)
        wg = WeightedGraph.from_digraph(g)
        assert wg.num_vertices == 3
        assert wg.num_adjacency_entries == 0

    def test_neighbors_access(self, tiny_graph):
        wg = WeightedGraph.from_digraph(tiny_graph)
        nbrs, weights = wg.neighbors(0)
        assert set(nbrs.tolist()) == {1, 2, 4}
        assert len(weights) == 3


class TestValidation:
    def test_weight_alignment_enforced(self):
        with pytest.raises(ValueError, match="edge_weights"):
            WeightedGraph(np.array([0, 1]), np.array([0]),
                          np.array([1, 2]), np.array([1]))

    def test_vertex_weight_coverage_enforced(self):
        with pytest.raises(ValueError, match="vertex_weights"):
            WeightedGraph(np.array([0, 0]), np.array([], dtype=int),
                          np.array([], dtype=int), np.array([1, 1]))

    def test_nbytes(self, tiny_graph):
        assert WeightedGraph.from_digraph(tiny_graph).nbytes() > 0
