"""Unit tests for the XtraPuLP-like label-propagation partitioner."""

import numpy as np
import pytest

from repro.graph import GraphStream, community_web_graph
from repro.offline import (
    LabelPropagationPartitioner,
    MultilevelPartitioner,
    OutOfMemoryError,
)
from repro.partitioning import HashPartitioner, evaluate


class TestBasics:
    def test_complete_assignment(self, web_graph):
        result = LabelPropagationPartitioner(8).partition(web_graph)
        result.assignment.validate(web_graph.num_vertices)

    def test_balance_ceiling(self, web_graph):
        result = LabelPropagationPartitioner(8, slack=1.05).partition(
            web_graph)
        q = evaluate(web_graph, result.assignment)
        assert q.delta_v <= 1.06

    def test_beats_random(self, web_graph):
        lp = LabelPropagationPartitioner(8).partition(web_graph)
        hsh = HashPartitioner(8).partition(GraphStream(web_graph))
        assert evaluate(web_graph, lp.assignment).ecr < evaluate(
            web_graph, hsh.assignment).ecr

    def test_worse_than_multilevel(self, web_graph):
        """Table V's ordering: XtraPuLP trades quality for speed."""
        lp = LabelPropagationPartitioner(8).partition(web_graph)
        ml = MultilevelPartitioner(8).partition(web_graph)
        assert evaluate(web_graph, lp.assignment).ecr >= evaluate(
            web_graph, ml.assignment).ecr

    def test_rounds_recorded(self, web_graph):
        result = LabelPropagationPartitioner(8, rounds=5).partition(
            web_graph)
        assert 1 <= result.stats["rounds"] <= 5

    def test_deterministic(self, web_graph):
        a = LabelPropagationPartitioner(4, seed=3).partition(web_graph)
        b = LabelPropagationPartitioner(4, seed=3).partition(web_graph)
        assert a.assignment == b.assignment

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            LabelPropagationPartitioner(0)

    def test_invalid_init(self):
        with pytest.raises(ValueError, match="init"):
            LabelPropagationPartitioner(4, init="spiral")


class TestInitModes:
    def test_block_init_wins_on_local_graph(self, web_graph):
        """Block init inherits id locality; random init loses it — the
        ablation behind our choice of random as the faithful default."""
        block = LabelPropagationPartitioner(8, init="block").partition(
            web_graph)
        random = LabelPropagationPartitioner(8, init="random").partition(
            web_graph)
        assert evaluate(web_graph, block.assignment).ecr < evaluate(
            web_graph, random.assignment).ecr


class TestParallelMode:
    def test_parallel_complete(self, web_graph):
        result = LabelPropagationPartitioner(8, parallel=True).partition(
            web_graph)
        result.assignment.validate(web_graph.num_vertices)

    def test_parallel_name(self):
        assert "(par)" in LabelPropagationPartitioner(
            4, parallel=True).name

    def test_parallel_balance_held(self, web_graph):
        result = LabelPropagationPartitioner(
            8, parallel=True, slack=1.05).partition(web_graph)
        q = evaluate(web_graph, result.assignment)
        assert q.delta_v <= 1.06


class TestOOM:
    def test_budget_exceeded(self, web_graph):
        with pytest.raises(OutOfMemoryError):
            LabelPropagationPartitioner(
                4, memory_budget_bytes=100).partition(web_graph)
