"""Unit tests for refinement with frozen (anchor) vertices."""

import numpy as np
import pytest

from repro.graph import from_edges
from repro.offline import WeightedGraph, partition_edge_cut, refine


def _wg(edges, n):
    return WeightedGraph.from_digraph(from_edges(edges, num_vertices=n))


class TestFrozenRefine:
    def test_frozen_vertex_never_moves(self):
        # vertex 0 would gain by moving to partition 1, but is frozen
        edges = [(0, 1), (1, 0), (0, 2), (2, 0)]
        wg = _wg(edges, 3)
        part = np.array([0, 1, 1], dtype=np.int32)
        frozen = np.array([True, False, False])
        refined = refine(wg, part, 2, slack=2.0, frozen=frozen)
        assert refined[0] == 0

    def test_unfrozen_counterpart_moves(self):
        edges = [(0, 1), (1, 0), (0, 2), (2, 0)]
        wg = _wg(edges, 3)
        part = np.array([0, 1, 1], dtype=np.int32)
        refined = refine(wg, part, 2, slack=2.0)
        # without freezing, someone closes the cut entirely
        assert partition_edge_cut(wg, refined) < partition_edge_cut(
            wg, part)

    def test_all_frozen_is_identity(self):
        edges = [(0, 1), (1, 2), (2, 0)]
        wg = _wg(edges, 3)
        part = np.array([0, 1, 0], dtype=np.int32)
        frozen = np.ones(3, dtype=bool)
        refined = refine(wg, part, 2, slack=3.0, frozen=frozen)
        assert np.array_equal(refined, part)

    def test_movable_vertices_still_improve_around_anchors(self):
        """A batch vertex wedged between two anchors must join the
        anchor it is more connected to."""
        # anchors: 0 (partition 0), 1 (partition 1); batch vertex 2
        # heavily tied to anchor 1.
        edges = [(2, 1), (1, 2), (2, 0)]
        wg = _wg(edges, 3)
        part = np.array([0, 1, 0], dtype=np.int32)
        frozen = np.array([True, True, False])
        refined = refine(wg, part, 2, slack=3.0, frozen=frozen)
        assert refined[2] == 1
        assert refined[0] == 0 and refined[1] == 1

    def test_frozen_weights_count_toward_balance(self):
        """Anchors carry partition weight: moves that would overflow the
        quota including anchor weight must be refused."""
        edges = [(2, 1), (1, 2)]
        wg = _wg(edges, 3)
        wg.vertex_weights[1] = 100  # anchor for a full partition
        part = np.array([0, 1, 0], dtype=np.int32)
        frozen = np.array([True, True, False])
        # quota ≈ 1.05 * 102 / 2 ≈ 53 < 101 → vertex 2 cannot join 1
        refined = refine(wg, part, 2, slack=1.05, frozen=frozen)
        assert refined[2] == 0
