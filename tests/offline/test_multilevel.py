"""Unit tests for the METIS-like multilevel partitioner."""

import numpy as np
import pytest

from repro.graph import GraphStream, community_web_graph
from repro.offline import MultilevelPartitioner, OutOfMemoryError
from repro.partitioning import LDGPartitioner, evaluate


class TestPipeline:
    def test_complete_assignment(self, web_graph):
        result = MultilevelPartitioner(8).partition(web_graph)
        result.assignment.validate(web_graph.num_vertices)

    def test_balance_respected(self, web_graph):
        result = MultilevelPartitioner(8, slack=1.05).partition(web_graph)
        q = evaluate(web_graph, result.assignment)
        assert q.delta_v <= 1.06

    def test_near_optimal_on_cliques(self, cliques_graph):
        result = MultilevelPartitioner(8, slack=1.1).partition(
            cliques_graph)
        q = evaluate(cliques_graph, result.assignment)
        # 8 cliques / 8 partitions: only ring bridges (8 of 488 edges)
        # plus a little noise should be cut.
        assert q.ecr < 0.15

    def test_beats_streaming_quality(self, web_graph):
        """The paper's premise: offline multilevel is the quality bar."""
        metis = MultilevelPartitioner(8).partition(web_graph)
        ldg = LDGPartitioner(8).partition(GraphStream(web_graph))
        assert evaluate(web_graph, metis.assignment).ecr < evaluate(
            web_graph, ldg.assignment).ecr

    def test_deterministic_given_seed(self, web_graph):
        a = MultilevelPartitioner(4, seed=7).partition(web_graph)
        b = MultilevelPartitioner(4, seed=7).partition(web_graph)
        assert a.assignment == b.assignment

    def test_stats_expose_hierarchy(self, web_graph):
        result = MultilevelPartitioner(4).partition(web_graph)
        assert result.stats["levels"] >= 2
        assert result.stats["hierarchy_bytes"] > 0
        assert result.stats["coarsest_vertices"] <= web_graph.num_vertices

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            MultilevelPartitioner(0)

    def test_name(self):
        assert MultilevelPartitioner(2).name == "METIS-like"


class TestOOMSimulation:
    def test_budget_exceeded_raises(self, web_graph):
        partitioner = MultilevelPartitioner(4, memory_budget_bytes=1024)
        with pytest.raises(OutOfMemoryError) as excinfo:
            partitioner.partition(web_graph)
        assert excinfo.value.needed_bytes > excinfo.value.budget_bytes

    def test_generous_budget_passes(self, web_graph):
        partitioner = MultilevelPartitioner(
            4, memory_budget_bytes=10**10)
        result = partitioner.partition(web_graph)
        result.assignment.validate(web_graph.num_vertices)

    def test_error_message_mentions_sizes(self, web_graph):
        with pytest.raises(OutOfMemoryError, match="MB"):
            MultilevelPartitioner(
                4, memory_budget_bytes=1).partition(web_graph)
