"""Unit tests for heavy-edge matching and graph contraction."""

import numpy as np
import pytest

from repro.graph import community_web_graph, from_edges, ring_of_cliques
from repro.offline import (
    WeightedGraph,
    coarsen,
    contract,
    heavy_edge_matching,
)


def _wg(digraph):
    return WeightedGraph.from_digraph(digraph)


class TestMatching:
    def test_matching_is_symmetric(self, rng):
        wg = _wg(community_web_graph(500, seed=3))
        match = heavy_edge_matching(wg, rng=np.random.default_rng(0))
        for v, partner in enumerate(match.tolist()):
            assert match[partner] == v  # involution

    def test_matched_pairs_are_adjacent(self):
        wg = _wg(ring_of_cliques(4, 4))
        match = heavy_edge_matching(wg, rng=np.random.default_rng(0))
        src = np.repeat(np.arange(wg.num_vertices), np.diff(wg.indptr))
        edges = set(zip(src.tolist(), wg.indices.tolist()))
        for v, partner in enumerate(match.tolist()):
            if partner != v:
                assert (v, partner) in edges

    def test_isolated_vertices_self_match(self):
        wg = _wg(from_edges([(0, 1)], num_vertices=4))
        match = heavy_edge_matching(wg, rng=np.random.default_rng(0))
        assert match[2] == 2 and match[3] == 3

    def test_prefers_heavy_edges(self):
        # 0-1 weight 2 (anti-parallel), 1-2 weight 1: 1 must pair with 0.
        g = from_edges([(0, 1), (1, 0), (1, 2)], num_vertices=3)
        match = heavy_edge_matching(_wg(g), rng=np.random.default_rng(0))
        assert match[1] == 0 and match[0] == 1

    def test_max_weight_cap_respected(self):
        g = from_edges([(0, 1), (1, 0)], num_vertices=2)
        wg = _wg(g)
        wg.vertex_weights[:] = 10
        match = heavy_edge_matching(wg, rng=np.random.default_rng(0),
                                    max_weight=15)
        assert match[0] == 0 and match[1] == 1  # pair would weigh 20


class TestContract:
    def test_total_vertex_weight_preserved(self):
        wg = _wg(community_web_graph(400, seed=2))
        match = heavy_edge_matching(wg, rng=np.random.default_rng(1))
        coarse, coarse_of = contract(wg, match)
        assert coarse.total_vertex_weight == wg.total_vertex_weight

    def test_mapping_covers_all(self):
        wg = _wg(community_web_graph(400, seed=2))
        match = heavy_edge_matching(wg, rng=np.random.default_rng(1))
        coarse, coarse_of = contract(wg, match)
        assert len(coarse_of) == wg.num_vertices
        assert coarse_of.max() == coarse.num_vertices - 1

    def test_matched_pairs_merge(self):
        g = from_edges([(0, 1), (1, 0), (2, 3), (3, 2)], num_vertices=4)
        wg = _wg(g)
        match = np.array([1, 0, 3, 2])
        coarse, coarse_of = contract(wg, match)
        assert coarse.num_vertices == 2
        assert coarse_of[0] == coarse_of[1]
        assert coarse_of[2] == coarse_of[3]

    def test_cross_pair_weights_aggregate(self):
        # two pairs joined by two parallel-ish edges → one weight-2 edge
        g = from_edges([(0, 1), (1, 0), (2, 3), (3, 2), (0, 2), (1, 3)],
                       num_vertices=4)
        wg = _wg(g)
        coarse, _ = contract(wg, np.array([1, 0, 3, 2]))
        assert coarse.num_adjacency_entries == 2
        assert list(coarse.edge_weights) == [2, 2]

    def test_intra_pair_edges_vanish(self):
        g = from_edges([(0, 1), (1, 0)], num_vertices=2)
        coarse, _ = contract(_wg(g), np.array([1, 0]))
        assert coarse.num_adjacency_entries == 0


class TestCoarsenHierarchy:
    def test_reaches_target(self):
        wg = _wg(community_web_graph(2000, seed=4))
        levels = coarsen(wg, target_vertices=100, seed=0)
        assert levels[-1].graph.num_vertices <= 2 * 100  # near target

    def test_monotone_shrinking(self):
        wg = _wg(community_web_graph(2000, seed=4))
        levels = coarsen(wg, target_vertices=100, seed=0)
        sizes = [lvl.graph.num_vertices for lvl in levels]
        assert all(a > b for a, b in zip(sizes, sizes[1:]))

    def test_weight_preserved_through_hierarchy(self):
        wg = _wg(community_web_graph(1000, seed=4))
        levels = coarsen(wg, target_vertices=50, seed=0)
        for lvl in levels:
            assert lvl.graph.total_vertex_weight == 1000

    def test_small_graph_single_level(self):
        wg = _wg(from_edges([(0, 1)], num_vertices=4))
        levels = coarsen(wg, target_vertices=100, seed=0)
        assert len(levels) == 1
        assert levels[0].graph is wg

    def test_projection_maps_compose(self):
        wg = _wg(community_web_graph(1000, seed=4))
        levels = coarsen(wg, target_vertices=50, seed=0)
        # projecting a coarsest-level labeling down never fails
        labels = np.arange(levels[-1].graph.num_vertices)
        for lvl in reversed(levels[:-1]):
            labels = labels[lvl.coarse_of]
        assert len(labels) == 1000
