"""Unit tests for the recursive spectral bisection baseline."""

import numpy as np
import pytest

pytest.importorskip("scipy")

from repro.graph import GraphStream, grid_graph, ring_of_cliques
from repro.offline import MultilevelPartitioner, SpectralPartitioner
from repro.partitioning import HashPartitioner, evaluate


class TestSpectral:
    def test_complete_assignment(self, web_graph):
        result = SpectralPartitioner(8).partition(web_graph)
        result.assignment.validate(web_graph.num_vertices)

    def test_near_perfect_balance(self, web_graph):
        """Weighted-median splits keep δ_v essentially at 1."""
        result = SpectralPartitioner(8).partition(web_graph)
        q = evaluate(web_graph, result.assignment)
        assert q.delta_v <= 1.05

    def test_non_power_of_two_k(self, web_graph):
        result = SpectralPartitioner(5).partition(web_graph)
        counts = result.assignment.vertex_counts()
        assert (counts > 0).all()
        assert counts.max() <= 1.25 * web_graph.num_vertices / 5

    def test_wins_on_mesh(self):
        """The textbook result: spectral beats multilevel on grids."""
        grid = grid_graph(24, 24)
        spectral = SpectralPartitioner(8).partition(grid)
        multilevel = MultilevelPartitioner(8).partition(grid)
        assert evaluate(grid, spectral.assignment).ecr <= \
            evaluate(grid, multilevel.assignment).ecr * 1.1

    def test_finds_clique_structure(self, cliques_graph):
        result = SpectralPartitioner(8).partition(cliques_graph)
        q = evaluate(cliques_graph, result.assignment)
        hash_q = evaluate(
            cliques_graph,
            HashPartitioner(8).partition(
                GraphStream(cliques_graph)).assignment)
        assert q.ecr < 0.4 * hash_q.ecr

    def test_k1_trivial(self, web_graph):
        result = SpectralPartitioner(1).partition(web_graph)
        assert evaluate(web_graph, result.assignment).ecr == 0.0

    def test_deterministic(self, web_graph):
        a = SpectralPartitioner(4, seed=2).partition(web_graph)
        b = SpectralPartitioner(4, seed=2).partition(web_graph)
        assert a.assignment == b.assignment

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            SpectralPartitioner(0)

    def test_tiny_graph(self):
        from repro.graph import from_edges
        g = from_edges([(0, 1)], num_vertices=2)
        result = SpectralPartitioner(2).partition(g)
        result.assignment.validate(2)
