"""Benchmark harness: run any partitioner, collect every paper metric.

One :class:`BenchRecord` per (graph, partitioner) run carries the full
metric set of the paper's evaluation — ECR, δ_v, δ_e, PT, MC — plus
heuristic-specific stats.  ``run_partitioner`` dispatches on the
partitioner's interface (streaming partitioners take a stream, offline
ones take the graph) and turns simulated OOM into the paper's ``F``
entries instead of propagating.

Because wall-clock PT in Python inverts some of the paper's C++/Java
ratios (our offline baselines are NumPy-vectorized while streaming is
per-record), every record also carries ``work_units`` — the number of
edge traversals the method performs — which is the machine- and
language-independent efficiency measure EXPERIMENTS.md compares against
the paper's PT ratios.
"""

from __future__ import annotations

import inspect
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Protocol

from ..graph.digraph import DiGraph
from ..graph.stream import GraphStream
from ..memory.tracker import measure_peak
from ..offline.multilevel import OutOfMemoryError
from ..partitioning.metrics import evaluate
from ..partitioning.registry import make_partitioner

__all__ = ["BenchRecord", "run_partitioner", "run_named", "run_many"]


class _Partitioner(Protocol):
    name: str
    num_partitions: int


@dataclass
class BenchRecord:
    """All metrics of one partitioning run (one row of a paper table)."""

    graph: str
    partitioner: str
    num_partitions: int
    failed: bool = False
    ecr: float | None = None
    delta_v: float | None = None
    delta_e: float | None = None
    pt_seconds: float | None = None
    mc_bytes: int | None = None
    work_units: int | None = None
    stats: dict[str, Any] = field(default_factory=dict)
    trace_path: str | None = None

    def as_row(self) -> dict:
        """Flat dict for the report tables ('F' marks simulated OOM)."""
        if self.failed:
            return {"graph": self.graph, "method": self.partitioner,
                    "K": self.num_partitions, "ECR": "F", "delta_v": "F",
                    "delta_e": "F", "PT(s)": "F",
                    "MC(MB)": "F" if self.mc_bytes is None
                    else round(self.mc_bytes / 1e6, 2)}
        row = {
            "graph": self.graph,
            "method": self.partitioner,
            "K": self.num_partitions,
            "ECR": round(self.ecr, 4),
            "delta_v": round(self.delta_v, 2),
            "delta_e": round(self.delta_e, 2),
            "PT(s)": round(self.pt_seconds, 3),
        }
        if self.mc_bytes is not None:
            row["MC(MB)"] = round(self.mc_bytes / 1e6, 2)
        if self.work_units is not None:
            row["work(|E|)"] = round(self.work_units, 1)
        return row


def _estimate_work_units(partitioner: Any, graph: DiGraph,
                         stats: dict[str, Any]) -> int:
    """Edge traversals performed, in multiples of |E|.

    Streaming methods scan each adjacency list once (LDG/FENNEL) or twice
    (SPN/SPNL also traverse it for the Γ update).  The multilevel baseline
    touches every remaining edge at each level for matching, contraction
    and its refinement passes; label propagation touches all edges every
    round.  Restreaming multiplies by passes.
    """
    name = getattr(partitioner, "name", type(partitioner).__name__)
    if "METIS" in name:
        levels = stats.get("levels", 1)
        passes = getattr(partitioner, "refine_passes", 8)
        # Level ℓ has roughly |E|/2^ℓ edges; matching+contract+refine
        # visit each ~(2 + passes) times.
        return int(2 * (2 + passes))  # Σ 1/2^ℓ ≈ 2
    if "XtraPuLP" in name:
        return int(2 * stats.get("rounds", getattr(partitioner, "rounds", 1)))
    if name.startswith("Re"):
        return 2 * getattr(partitioner, "num_passes", 1)
    if "SPN" in name:
        return 2  # score traversal + Γ update traversal
    return 1  # LDG/FENNEL/Hash/Range: one scan


def _supports_instrumentation(partitioner: Any) -> bool:
    """Whether ``partitioner.partition`` accepts ``instrumentation=``."""
    try:
        sig = inspect.signature(partitioner.partition)
    except (TypeError, ValueError, AttributeError):
        return False
    return "instrumentation" in sig.parameters


def run_partitioner(partitioner: Any, graph: DiGraph, *,
                    measure_memory: bool = False,
                    order=None, instrumentation: Any = None,
                    trace_path: str | Path | None = None,
                    profile: Any = None) -> BenchRecord:
    """Run one partitioner on one graph and evaluate every metric.

    Streaming partitioners receive a fresh :class:`GraphStream` (id order
    unless ``order`` is given); offline partitioners receive the graph.
    A simulated :class:`OutOfMemoryError` produces a failed record (the
    paper's 'F'), not an exception.

    ``measure_memory=True`` wraps the run in tracemalloc: the recorded
    ``pt_seconds`` then carries tracing overhead, so tables measuring
    both PT and MC issue two separate runs.

    ``trace_path`` makes the run a traced one: a fresh
    :class:`~repro.observability.Instrumentation` hub with a
    :class:`~repro.observability.JsonlSink` is wired through the
    partitioner, and the resulting JSONL trace is recorded on the
    returned record (``trace_path``) as a first-class bench artifact
    alongside the metric row.  Alternatively pass an existing hub via
    ``instrumentation`` to aggregate several runs into shared sinks.
    Either is silently skipped for partitioners whose ``partition`` does
    not take the hook (the offline baselines).

    ``profile`` (a :class:`repro.bench.profile.BenchProfiler`) runs the
    pass under the profiler as stage ``<graph>/<partitioner>``.  Like
    ``measure_memory``, this instruments *this* run: the recorded
    ``pt_seconds`` then carries profiler overhead, so don't feed a
    profiled record into a timing table.  (The microbench runners
    instead replay stages in extra passes; this hook is for one-shot
    table/figure sections where the run is the only pass there is.)
    """
    owned_hub = None
    if trace_path is not None and instrumentation is None:
        from ..observability import Instrumentation, JsonlSink
        owned_hub = instrumentation = Instrumentation(
            [JsonlSink(trace_path)])
    instrumented = (instrumentation is not None
                    and _supports_instrumentation(partitioner))

    def _run():
        if hasattr(partitioner, "make_state") or hasattr(
                getattr(partitioner, "base", None), "make_state") or hasattr(
                partitioner, "base_factory"):
            stream = GraphStream(graph, order=order)
            if instrumented:
                return partitioner.partition(
                    stream, instrumentation=instrumentation)
            return partitioner.partition(stream)
        return partitioner.partition(graph)

    record = BenchRecord(graph=graph.name, partitioner=partitioner.name,
                         num_partitions=partitioner.num_partitions)
    try:
        if measure_memory:
            result, peak = measure_peak(_run)
            record.mc_bytes = peak
        elif profile is not None:
            result = profile.profile_stage(
                f"{graph.name}/{partitioner.name}", _run)
        else:
            result = _run()
    except OutOfMemoryError as exc:
        record.failed = True
        record.mc_bytes = exc.needed_bytes
        return record
    finally:
        if owned_hub is not None:
            owned_hub.close()

    quality = evaluate(graph, result.assignment)
    record.ecr = quality.ecr
    record.delta_v = quality.delta_v
    record.delta_e = quality.delta_e
    record.pt_seconds = result.elapsed_seconds
    record.stats = dict(result.stats)
    record.work_units = _estimate_work_units(partitioner, graph,
                                             record.stats)
    if trace_path is not None and instrumented:
        record.trace_path = str(trace_path)
    return record


def run_named(name: str, graph: DiGraph, num_partitions: int, *,
              measure_memory: bool = False, order=None,
              instrumentation: Any = None,
              trace_path: str | Path | None = None,
              **kwargs: Any) -> BenchRecord:
    """Registry-driven :func:`run_partitioner`: build by name, then run.

    ``kwargs`` are heuristic parameters (``slack``, ``lam``,
    ``num_shards``, …); unknown ones are dropped per factory so one
    sweep loop can drive heterogeneous methods.  Unknown *names* raise
    with the registered list.
    """
    partitioner = make_partitioner(name, num_partitions,
                                   ignore_unknown=True, **kwargs)
    return run_partitioner(partitioner, graph,
                           measure_memory=measure_memory, order=order,
                           instrumentation=instrumentation,
                           trace_path=trace_path)


def run_many(partitioners: list[Any], graphs: list[DiGraph],
             **kwargs) -> list[BenchRecord]:
    """Cross product of partitioners × graphs, in graph-major order."""
    records = []
    for graph in graphs:
        for partitioner in partitioners:
            records.append(run_partitioner(partitioner, graph, **kwargs))
    return records
