"""Benchmark harness: datasets, runners, table/figure regeneration, the
baseline-store / statistical-compare regression gate, and the perf
history pipeline (per-stage profiling, tidy export, static dashboard)."""

from .baseline import (
    BaselineError,
    fingerprint_key,
    load_baseline,
    make_baseline,
    promote,
    resolve_baseline,
    save_baseline,
    validate_baseline,
)
from .compare import (
    CompareError,
    ComparisonResult,
    MetricDelta,
    compare_artifacts,
    compare_samples,
)
from .dashboard import build_dashboard, render_dashboard
from .datasets import DATASETS, DatasetSpec, clear_cache, load, load_all
from .export import (
    CSV_COLUMNS,
    HISTORY_FORMAT,
    HISTORY_VERSION,
    export_history,
    rows_to_csv,
)
from .figures import (
    FigureData,
    ablation_decay,
    ablation_locality,
    ablation_rct,
    ablation_restreaming,
    fig3_lambda_sweep,
    fig7_window_sweep,
    fig8_9_k_sweep_streaming,
    fig10_11_k_sweep_offline,
    fig12_thread_sweep,
)
from .harness import BenchRecord, run_many, run_partitioner
from .micro import (
    DEFAULT_METHODS,
    bench_method,
    git_revision,
    machine_fingerprint,
    run_streaming_microbench,
)
from .parallel import bench_parallel_method, run_parallel_scaling_bench
from .profile import PROFILE_MODES, BenchProfiler, default_profile_dir
from .report import (
    format_compare_report,
    format_markdown,
    format_series,
    format_table,
)
from .suite import run_full_suite
from .sweep import SweepResult, sweep
from .tables import (
    PAPER_MEMORY_BUDGET_BYTES,
    paper_scale_oom,
    table2_datasets,
    table3_streaming,
    table4_memory,
    table5_offline,
)

__all__ = [
    "BaselineError",
    "BenchProfiler",
    "BenchRecord",
    "CSV_COLUMNS",
    "CompareError",
    "ComparisonResult",
    "DATASETS",
    "DEFAULT_METHODS",
    "HISTORY_FORMAT",
    "HISTORY_VERSION",
    "MetricDelta",
    "PROFILE_MODES",
    "build_dashboard",
    "default_profile_dir",
    "export_history",
    "render_dashboard",
    "rows_to_csv",
    "bench_method",
    "bench_parallel_method",
    "compare_artifacts",
    "compare_samples",
    "fingerprint_key",
    "git_revision",
    "load_baseline",
    "machine_fingerprint",
    "make_baseline",
    "promote",
    "resolve_baseline",
    "run_parallel_scaling_bench",
    "run_streaming_microbench",
    "save_baseline",
    "validate_baseline",
    "format_compare_report",
    "DatasetSpec",
    "FigureData",
    "PAPER_MEMORY_BUDGET_BYTES",
    "SweepResult",
    "ablation_decay",
    "ablation_locality",
    "ablation_rct",
    "ablation_restreaming",
    "clear_cache",
    "fig3_lambda_sweep",
    "fig7_window_sweep",
    "fig8_9_k_sweep_streaming",
    "fig10_11_k_sweep_offline",
    "fig12_thread_sweep",
    "format_markdown",
    "format_series",
    "format_table",
    "load",
    "load_all",
    "paper_scale_oom",
    "run_full_suite",
    "run_many",
    "run_partitioner",
    "sweep",
    "table2_datasets",
    "table3_streaming",
    "table4_memory",
    "table5_offline",
]
