"""Benchmark harness: datasets, runners, and table/figure regeneration."""

from .datasets import DATASETS, DatasetSpec, clear_cache, load, load_all
from .figures import (
    FigureData,
    ablation_decay,
    ablation_locality,
    ablation_rct,
    ablation_restreaming,
    fig3_lambda_sweep,
    fig7_window_sweep,
    fig8_9_k_sweep_streaming,
    fig10_11_k_sweep_offline,
    fig12_thread_sweep,
)
from .harness import BenchRecord, run_many, run_partitioner
from .micro import (
    DEFAULT_METHODS,
    bench_method,
    machine_fingerprint,
    run_streaming_microbench,
)
from .report import format_markdown, format_series, format_table
from .suite import run_full_suite
from .sweep import SweepResult, sweep
from .tables import (
    PAPER_MEMORY_BUDGET_BYTES,
    paper_scale_oom,
    table2_datasets,
    table3_streaming,
    table4_memory,
    table5_offline,
)

__all__ = [
    "BenchRecord",
    "DATASETS",
    "DEFAULT_METHODS",
    "bench_method",
    "machine_fingerprint",
    "run_streaming_microbench",
    "DatasetSpec",
    "FigureData",
    "PAPER_MEMORY_BUDGET_BYTES",
    "SweepResult",
    "ablation_decay",
    "ablation_locality",
    "ablation_rct",
    "ablation_restreaming",
    "clear_cache",
    "fig3_lambda_sweep",
    "fig7_window_sweep",
    "fig8_9_k_sweep_streaming",
    "fig10_11_k_sweep_offline",
    "fig12_thread_sweep",
    "format_markdown",
    "format_series",
    "format_table",
    "load",
    "load_all",
    "paper_scale_oom",
    "run_full_suite",
    "run_many",
    "run_partitioner",
    "sweep",
    "table2_datasets",
    "table3_streaming",
    "table4_memory",
    "table5_offline",
]
