"""Regeneration of every table in the paper's evaluation (Sec. VI).

* :func:`table2_datasets` — dataset inventory (paper Table II), original
  sizes next to stand-in sizes;
* :func:`table3_streaming` — LDG / FENNEL / SPN / SPNL at K=32 on all
  eight stand-ins (paper Table III);
* :func:`table4_memory` — measured + analytic memory vs. quality for
  LDG/FENNEL/offline/SPNL(X=1)/SPNL(X=auto) (paper Table IV);
* :func:`table5_offline` — METIS-like / XtraPuLP-like / SPNL in
  centralized and parallel variants (paper Table V), including the 'F'
  out-of-memory entries.

**How 'F' entries are reproduced.**  Our stand-ins are thousands of times
smaller than the originals, so nothing actually OOMs.  The Table V gate
therefore evaluates each offline method's analytic memory model *at the
original graph's size* (Table II's |V|, |E|) against the paper's 64 GB
server: METIS-like (whole graph + coarsening hierarchy, ~2.5×|E| words)
exceeds it on sk2005/uk2007; XtraPuLP-like (graph + label arrays,
~1.3×|E| words) only on uk2007 — exactly the paper's failure pattern.
The quality/PT columns still come from real runs on the stand-ins.
"""

from __future__ import annotations

from typing import Iterable

from ..graph.stats import describe
from ..memory.model import (
    offline_bytes,
    spn_bytes,
    spnl_bytes,
    streaming_baseline_bytes,
)
from ..offline.label_propagation import LabelPropagationPartitioner
from ..offline.multilevel import MultilevelPartitioner
from ..parallel.executor import SimulatedParallelPartitioner
from ..partitioning.fennel import FennelPartitioner
from ..partitioning.ldg import LDGPartitioner
from ..partitioning.spn import SPNPartitioner
from ..partitioning.spnl import SPNLPartitioner
from ..partitioning.window import default_num_shards
from .datasets import DATASETS, load
from .harness import BenchRecord, run_partitioner

__all__ = [
    "PAPER_MEMORY_BUDGET_BYTES",
    "METIS_HIERARCHY_FACTOR",
    "XTRAPULP_WORKING_FACTOR",
    "paper_scale_oom",
    "table2_datasets",
    "table3_streaming",
    "table4_memory",
    "table5_offline",
]

PAPER_MEMORY_BUDGET_BYTES = int(64e9)  # the paper's 64 GB server
METIS_HIERARCHY_FACTOR = 2.5           # graph + coarsening hierarchy
XTRAPULP_WORKING_FACTOR = 1.3          # graph + label/score arrays


def paper_scale_oom(dataset: str, method: str) -> bool:
    """Would ``method`` OOM on the *original* (paper-sized) dataset?"""
    spec = DATASETS[dataset]
    factor = (METIS_HIERARCHY_FACTOR if method == "METIS"
              else XTRAPULP_WORKING_FACTOR)
    estimate = offline_bytes(spec.paper_vertices, spec.paper_edges,
                             method=method, hierarchy_factor=factor)
    return estimate.total_bytes > PAPER_MEMORY_BUDGET_BYTES


def _dataset_names(names: Iterable[str] | None) -> list[str]:
    return list(names) if names is not None else list(DATASETS)


# ----------------------------------------------------------------------
# Table II
# ----------------------------------------------------------------------
def table2_datasets(names: Iterable[str] | None = None) -> list[dict]:
    """Dataset inventory: paper originals next to the built stand-ins."""
    rows = []
    for name in _dataset_names(names):
        spec = DATASETS[name]
        graph = load(name)
        stats = describe(graph)
        rows.append({
            "graph": name,
            "paper |V|": spec.paper_vertices,
            "paper |E|": spec.paper_edges,
            "paper size": spec.paper_size,
            "standin |V|": stats.num_vertices,
            "standin |E|": stats.num_edges,
            "locality": round(stats.locality, 3),
            "in-deg gini": round(stats.degree_gini, 3),
        })
    return rows


# ----------------------------------------------------------------------
# Table III
# ----------------------------------------------------------------------
def table3_streaming(k: int = 32, *, names: Iterable[str] | None = None,
                     slack: float = 1.1) -> list[BenchRecord]:
    """LDG / FENNEL / SPN / SPNL on every stand-in (paper Table III)."""
    records = []
    for name in _dataset_names(names):
        graph = load(name)
        partitioners = [
            LDGPartitioner(k, slack=slack),
            FennelPartitioner(k, slack=slack),
            SPNPartitioner(k, slack=slack, num_shards="auto"),
            SPNLPartitioner(k, slack=slack, num_shards="auto"),
        ]
        for partitioner in partitioners:
            records.append(run_partitioner(partitioner, graph))
    return records


# ----------------------------------------------------------------------
# Table IV
# ----------------------------------------------------------------------
def table4_memory(dataset: str = "web2001", k: int = 32) -> list[dict]:
    """Memory-vs-quality comparison on one graph (paper Table IV).

    Each row reports the measured tracemalloc peak of a real run on the
    stand-in, the analytic model evaluated at stand-in scale, and the
    same model at the original's scale (the paper's regime), plus ECR.
    """
    graph = load(dataset)
    spec = DATASETS[dataset]
    n, maxd = graph.num_vertices, graph.max_out_degree()
    auto_x = default_num_shards(n, k)
    rows: list[dict] = []

    def _row(partitioner, estimate, paper_estimate, complexity,
             label=None):
        record = run_partitioner(partitioner, graph, measure_memory=True)
        name = label or record.partitioner
        rows.append({
            "method": name if not record.failed else f"{name} (F)",
            "measured MC(MB)": round((record.mc_bytes or 0) / 1e6, 2),
            "model MC(MB)": round(estimate.total_bytes / 1e6, 3),
            "paper-scale MC(GB)": round(paper_estimate.total_bytes / 1e9, 4),
            "ECR": "F" if record.failed else round(record.ecr, 4),
            "space complexity": complexity,
        })

    pv, pe = spec.paper_vertices, spec.paper_edges
    pmaxd = 10_000  # typical web-crawl max out-degree
    _row(LDGPartitioner(k),
         streaming_baseline_bytes(n, k, maxd, "LDG"),
         streaming_baseline_bytes(pv, k, pmaxd, "LDG"),
         "O(|V| + K + maxd)")
    _row(FennelPartitioner(k),
         streaming_baseline_bytes(n, k, maxd, "FENNEL"),
         streaming_baseline_bytes(pv, k, pmaxd, "FENNEL"),
         "O(|V| + K + maxd)")
    _row(MultilevelPartitioner(k),
         offline_bytes(n, graph.num_edges, "METIS",
                       METIS_HIERARCHY_FACTOR),
         offline_bytes(pv, pe, "METIS", METIS_HIERARCHY_FACTOR),
         ">= O(|E|)")
    _row(LabelPropagationPartitioner(k),
         offline_bytes(n, graph.num_edges, "XtraPuLP",
                       XTRAPULP_WORKING_FACTOR),
         offline_bytes(pv, pe, "XtraPuLP", XTRAPULP_WORKING_FACTOR),
         ">= O(|E|)")
    _row(SPNLPartitioner(k, num_shards=1),
         spnl_bytes(n, k, maxd, 1),
         spnl_bytes(pv, k, pmaxd, 1),
         "O(|V| + 3K + K|V| + maxd)", label="SPNL(X=1)")
    _row(SPNLPartitioner(k, num_shards=auto_x),
         spnl_bytes(n, k, maxd, auto_x),
         spnl_bytes(pv, k, pmaxd, 128),
         "O(|V| + 3K + K|V|/X + maxd)", label=f"SPNL(X={auto_x})")
    return rows


# ----------------------------------------------------------------------
# Table V
# ----------------------------------------------------------------------
def table5_offline(k: int = 32, *, names: Iterable[str] | None = None,
                   parallelism: int = 4,
                   slack: float = 1.1) -> list[BenchRecord]:
    """Offline vs SPNL, centralized and parallel (paper Table V)."""
    records: list[BenchRecord] = []
    for name in _dataset_names(names):
        graph = load(name)
        runs: list[tuple[object, str | None]] = [
            (MultilevelPartitioner(k), "METIS"),
            (LabelPropagationPartitioner(k), "XtraPuLP"),
            (LabelPropagationPartitioner(k, parallel=True), "XtraPuLP"),
            (SPNLPartitioner(k, slack=slack, num_shards="auto"), None),
            (SimulatedParallelPartitioner(
                SPNLPartitioner(k, slack=slack, num_shards="auto"),
                parallelism=parallelism), None),
        ]
        for partitioner, oom_family in runs:
            if oom_family is not None and paper_scale_oom(name, oom_family):
                records.append(BenchRecord(
                    graph=name, partitioner=partitioner.name,
                    num_partitions=k, failed=True))
                continue
            records.append(run_partitioner(partitioner, graph))
    return records
