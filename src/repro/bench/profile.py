"""Opt-in stage profiling for the benchmark fleet.

The compare/promote gate (PR 5) makes a regression *detectable*; this
module makes it *diagnosable*.  A :class:`BenchProfiler` is threaded
through the microbench runners (``--profile {cprofile,pyspy}`` on the
CLI) and wraps each timed stage in a profiler pass, writing per-stage
artifacts next to the ``BENCH_*.json`` they explain — the
redisbench-admin shape named in ROADMAP.

Two disciplines keep the numbers honest:

* **Profiled passes are extra passes.**  The timed repeats that land in
  the artifact run exactly as they do unprofiled; the profiler then
  replays the stage once more under instrumentation.  Timings, sample
  lists, and route tables in the artifact are byte-identical whether or
  not ``--profile`` was given, and the profiled pass's own route table
  is checked against an unprofiled reference (the ``identical`` field)
  so a profiler that perturbs results is flagged, not trusted.
* **Overhead is measured, not assumed.**  Every stage records
  ``overhead_pct`` — the profiled pass's wall time relative to the
  median of the unprofiled repeats — so a flamegraph whose collection
  cost dwarfed the workload reads as suspect on its face.

Modes:

``cprofile``
    The stdlib deterministic profiler.  Always available; writes a
    binary pstats dump (:meth:`cProfile.Profile.dump_stats`) plus a
    human-readable top-N cumulative listing per stage.
``pyspy``
    Sampling via the external ``py-spy`` binary, which additionally
    writes a collapsed-stack file (flamegraph input) per stage.  The
    pstats dump is still collected — the deterministic profile is the
    contract; sampling rides along.  When ``py-spy`` is not on PATH the
    profiler falls back to ``cprofile`` with a recorded warning rather
    than failing the bench: profile artifacts are diagnostics, and a
    bench run must never die on a missing diagnostic tool.

Each profiled stage also emits one ``bench_profile`` trace record
(see :mod:`repro.observability.schema`) when an instrumentation hub is
attached, so profile provenance lands in the same JSONL stream as the
rest of the run.
"""

from __future__ import annotations

import cProfile
import io
import os
import pstats
import re
import shutil
import signal
import subprocess
import time
from pathlib import Path
from typing import Any, Callable

from ..recovery.atomic import atomic_write_text

__all__ = ["PROFILE_MODES", "BenchProfiler", "default_profile_dir"]

#: CLI-selectable profiler modes.
PROFILE_MODES = ("cprofile", "pyspy")

_SLUG_RE = re.compile(r"[^A-Za-z0-9._-]+")


def _slug(name: str) -> str:
    """Filesystem-safe stage name (``parse/optimized`` -> ``parse-optimized``)."""
    return _SLUG_RE.sub("-", name).strip("-") or "stage"


def default_profile_dir(bench_out: str | Path) -> Path:
    """Where a bench's profile artifacts live: next to its BENCH json.

    ``BENCH_streaming.json`` -> ``BENCH_streaming.profile/`` in the same
    directory, so the dashboard (and a human) can find the profiles from
    the artifact path alone.
    """
    bench_out = Path(bench_out)
    return bench_out.parent / (bench_out.stem + ".profile")


def _top_functions(stats: pstats.Stats, top_n: int) -> list[dict[str, Any]]:
    """Top-N entries by cumulative time from a loaded pstats object."""
    rows = []
    for (filename, lineno, funcname), (cc, nc, tt, ct, _callers) \
            in stats.stats.items():  # type: ignore[attr-defined]
        rows.append({
            "function": f"{filename}:{lineno}({funcname})",
            "ncalls": int(nc),
            "tottime_s": float(tt),
            "cumtime_s": float(ct),
        })
    rows.sort(key=lambda r: (-r["cumtime_s"], r["function"]))
    return rows[:top_n]


class BenchProfiler:
    """Wraps bench stages in profiler passes and collects the artifacts.

    Parameters
    ----------
    mode:
        ``"cprofile"`` or ``"pyspy"`` (see module docstring).
    out_dir:
        Directory receiving per-stage files; created on first use.
    bench:
        Bench name recorded in trace records and the summary index.
    top_n:
        Cumulative-time entries kept per stage in the artifact entry.
    instrumentation:
        Optional :class:`repro.observability.Instrumentation` hub; one
        ``bench_profile`` record is emitted per profiled stage.
    """

    def __init__(self, mode: str, out_dir: str | Path, *,
                 bench: str = "bench", top_n: int = 10,
                 instrumentation=None) -> None:
        if mode not in PROFILE_MODES:
            raise ValueError(
                f"unknown profile mode {mode!r}; expected one of "
                f"{PROFILE_MODES}")
        self.requested_mode = mode
        self.bench = bench
        self.top_n = top_n
        self.out_dir = Path(out_dir)
        self.instrumentation = instrumentation
        self.stages: list[dict[str, Any]] = []
        self.warnings: list[str] = []
        self._pyspy = shutil.which("py-spy") if mode == "pyspy" else None
        if mode == "pyspy" and self._pyspy is None:
            # Hard constraint: a missing sampler must degrade, not fail.
            self.mode = "cprofile"
            self.warnings.append(
                "py-spy not found on PATH; falling back to cProfile "
                "(pstats dump only, no collapsed stacks)")
        else:
            self.mode = mode

    # -- sampling sidecar ------------------------------------------------
    def _start_sampler(self, collapsed_path: Path):
        """Attach ``py-spy record`` to this process; None on failure."""
        try:
            proc = subprocess.Popen(
                [self._pyspy, "record", "--pid", str(os.getpid()),
                 "--format", "raw", "--output", str(collapsed_path)],
                stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        except OSError as exc:
            self.warnings.append(f"py-spy failed to start: {exc!r}")
            return None
        return proc

    def _stop_sampler(self, proc) -> bool:
        """SIGINT makes py-spy flush its collapsed stacks and exit."""
        try:
            proc.send_signal(signal.SIGINT)
            proc.wait(timeout=30)
            return proc.returncode == 0
        except Exception as exc:
            self.warnings.append(f"py-spy did not stop cleanly: {exc!r}")
            try:
                proc.kill()
            except Exception:
                pass
            return False

    # -- the stage wrapper -----------------------------------------------
    def profile_stage(self, stage: str, fn: Callable[[], Any], *,
                      reference_s: float | None = None,
                      check: Callable[[Any], bool] | None = None) -> Any:
        """Run ``fn`` once under the profiler; returns ``fn()``'s result.

        ``reference_s`` is the median wall time of the *unprofiled*
        repeats of the same stage; when given, the stage entry records
        ``overhead_pct`` — how much slower the profiled pass ran.
        ``check`` receives the stage's return value and its boolean
        lands in the entry as ``identical`` (the profiled pass produced
        the same output as the unprofiled reference).
        """
        self.out_dir.mkdir(parents=True, exist_ok=True)
        slug = _slug(stage)
        pstats_path = self.out_dir / f"{slug}.pstats"
        top_path = self.out_dir / f"{slug}.top.txt"
        collapsed_path: Path | None = None
        sampler = None
        if self.mode == "pyspy":
            collapsed_path = self.out_dir / f"{slug}.collapsed"
            sampler = self._start_sampler(collapsed_path)

        profiler = cProfile.Profile()
        t0 = time.perf_counter()
        profiler.enable()
        try:
            result = fn()
        finally:
            profiler.disable()
            elapsed = time.perf_counter() - t0
            if sampler is not None and not self._stop_sampler(sampler):
                collapsed_path = None

        profiler.dump_stats(str(pstats_path))
        stats = pstats.Stats(str(pstats_path), stream=io.StringIO())
        top = _top_functions(stats, self.top_n)
        listing = io.StringIO()
        pstats.Stats(str(pstats_path), stream=listing) \
            .sort_stats("cumulative").print_stats(self.top_n)
        atomic_write_text(top_path, listing.getvalue())

        overhead_pct = None
        if reference_s is not None and reference_s > 0:
            overhead_pct = (elapsed - reference_s) / reference_s * 100.0
        entry: dict[str, Any] = {
            "stage": stage,
            "mode": self.mode,
            "pstats_path": str(pstats_path),
            "top_path": str(top_path),
            "collapsed_path": (str(collapsed_path)
                               if collapsed_path is not None else None),
            "profiled_s": elapsed,
            "reference_median_s": reference_s,
            "overhead_pct": overhead_pct,
            "top_functions": top,
        }
        if check is not None:
            entry["identical"] = bool(check(result))
        self.stages.append(entry)
        if self.instrumentation is not None:
            self.instrumentation.emit({
                "type": "bench_profile",
                "bench": self.bench,
                "stage": stage,
                "mode": self.mode,
                "pstats_path": str(pstats_path),
                "profiled_seconds": elapsed,
                "overhead_pct": overhead_pct,
                "top_function": (top[0]["function"] if top else None),
                "identical": entry.get("identical"),
            })
        return result

    # -- artifact plumbing -----------------------------------------------
    def entry(self) -> dict[str, Any]:
        """The ``profile`` section embedded in the bench artifact."""
        return {
            "mode": self.mode,
            "requested_mode": self.requested_mode,
            "out_dir": str(self.out_dir),
            "top_n": self.top_n,
            "warnings": list(self.warnings),
            "stages": list(self.stages),
        }

    def finalize(self, echo: Callable[[str], None] | None = None) -> Path:
        """Write the ``profile.json`` index into ``out_dir``; return it.

        The index duplicates the artifact's ``profile`` entry so a
        profile directory is self-describing even for bench targets that
        write no JSON artifact (the table/figure regenerations).
        """
        import json

        self.out_dir.mkdir(parents=True, exist_ok=True)
        index = self.out_dir / "profile.json"
        atomic_write_text(
            index, json.dumps(self.entry(), indent=2) + "\n")
        if echo is not None:
            for warning in self.warnings:
                echo(f"warning: {warning}")
            for stage in self.stages:
                note = ""
                if stage["overhead_pct"] is not None:
                    note = f" (overhead {stage['overhead_pct']:+.0f}%)"
                echo(f"profile [{stage['mode']}] {stage['stage']}: "
                     f"{stage['profiled_s']:.4f}s{note} -> "
                     f"{stage['pstats_path']}")
            echo(f"profile index -> {index}")
        return index
