"""Microbenchmark harness for the vectorized streaming hot path.

Measures the fused CSR fast loop against the seed record-at-a-time loop
(``partition(..., fast=False)``) for every heuristic that ships a fused
kernel, in the style of redisbench-admin: explicit warmup runs, a fixed
number of timed repeats, median + stdev reporting, and a machine
fingerprint embedded in the artifact so numbers from different hosts are
never compared blindly.

The artifact (``BENCH_streaming.json`` at the repo root by default)
records per-run times for both paths, the median speedup, and whether
the two paths produced byte-identical assignments on every repeat — a
benchmark run that loses identity is a correctness bug, not a perf win,
and is flagged in the artifact.

Timing uses each run's ``elapsed_seconds`` — the paper's ``PT`` window
(first record consumed → route table complete) — so stream construction
and result assembly are excluded from both sides equally.
"""

from __future__ import annotations

import json
import platform
import statistics
import time
from pathlib import Path
from typing import Any

import numpy as np

from ..recovery.atomic import atomic_write_text

__all__ = ["DEFAULT_METHODS", "git_revision", "machine_fingerprint",
           "bench_method", "run_streaming_microbench"]

#: Heuristics with fused kernels, benched fast-vs-seed by default.
DEFAULT_METHODS = ("ldg", "fennel", "spn", "spnl")


def _available_cpu_count() -> int:
    """CPUs this process may actually run on.

    ``os.cpu_count()`` reports the host's logical CPUs even when the
    process is pinned to a subset (containers, ``taskset``, cgroups) —
    an honest benchmark fingerprint must report the usable count.
    """
    import os
    getter = getattr(os, "process_cpu_count", None)  # Python >= 3.13
    if getter is not None:
        count = getter()
        if count:
            return int(count)
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # non-Linux fallbacks
        return int(os.cpu_count() or 1)


def git_revision() -> tuple[str | None, bool | None]:
    """``(short_commit, dirty)`` of the checkout the bench code runs from.

    Bench artifacts used to be written with no record of *which code*
    produced the numbers, so two ``BENCH_*.json`` files could not be
    attributed to commits when compared.  Resolution is best-effort:
    the repository containing this module is asked first (an editable
    install), then the process working directory; without git or a
    checkout both values are ``None`` — never a guess.
    """
    import subprocess

    for where in (Path(__file__).resolve().parent, Path.cwd()):
        try:
            commit = subprocess.run(
                ["git", "-C", str(where), "rev-parse", "--short", "HEAD"],
                capture_output=True, text=True, timeout=10, check=True,
            ).stdout.strip()
            status = subprocess.run(
                ["git", "-C", str(where), "status", "--porcelain"],
                capture_output=True, text=True, timeout=10, check=True,
            ).stdout
        except Exception:
            continue
        if commit:
            return commit, bool(status.strip())
    return None, None


def machine_fingerprint() -> dict[str, Any]:
    """Host + code description embedded in every benchmark artifact."""
    import os
    commit, dirty = git_revision()
    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "processor": platform.processor(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        # Affinity-aware: what this process can use, not what the host
        # has.  The raw host count is kept alongside for context.
        "cpu_count": _available_cpu_count(),
        "cpu_count_logical": os.cpu_count(),
        # Which code produced the numbers (None outside a git checkout).
        # Excluded from the baseline fingerprint *key* on purpose.
        "commit": commit,
        "dirty": dirty,
    }


def _paired_runs(factory, stream_factory, *, warmup: int, repeats: int
                 ) -> tuple[list[float], list[float], bool]:
    """Interleaved fast/seed passes: warmup each, then paired repeats.

    Pairing the two paths inside every repeat makes the speedup ratio
    robust against slow machine drift (frequency scaling, cache state)
    that would bias an all-fast-then-all-seed schedule.  Returns
    ``(fast_times, seed_times, identical, parse_times)`` where
    ``identical`` is True iff every pair produced byte-equal route
    tables and ``parse_times`` holds every stream-construction (parse
    phase) duration, two per repeat.
    """
    for _ in range(warmup):
        factory().partition(stream_factory(), fast=True)
        factory().partition(stream_factory(), fast=False)
    fast_times: list[float] = []
    seed_times: list[float] = []
    parse_times: list[float] = []
    identical = True
    for _ in range(repeats):
        # Phase split: stream construction (parse/setup) is timed apart
        # from the scoring pass (``elapsed_seconds`` — the paper's PT
        # window), so artifacts separate ingest cost from kernel cost.
        t0 = time.perf_counter()
        fast_stream = stream_factory()
        parse_times.append(time.perf_counter() - t0)
        fast_result = factory().partition(fast_stream, fast=True)
        t0 = time.perf_counter()
        seed_stream = stream_factory()
        parse_times.append(time.perf_counter() - t0)
        seed_result = factory().partition(seed_stream, fast=False)
        fast_times.append(fast_result.elapsed_seconds)
        seed_times.append(seed_result.elapsed_seconds)
        identical = identical and np.array_equal(
            fast_result.assignment.route, seed_result.assignment.route)
    return fast_times, seed_times, identical, parse_times


def _summary(times: list[float]) -> dict[str, Any]:
    return {
        "median_s": statistics.median(times),
        "stdev_s": statistics.stdev(times) if len(times) > 1 else 0.0,
        "min_s": min(times),
        "max_s": max(times),
        "runs_s": times,
    }


def bench_method(method: str, graph, k: int, *, warmup: int = 1,
                 repeats: int = 5, **kwargs) -> dict[str, Any]:
    """Bench one heuristic fast-vs-seed on ``graph``; returns a record.

    ``kwargs`` are forwarded to the partitioner factory (e.g.
    ``num_shards=1`` to pin SPN/SPNL to the dense Γ store).
    """
    from ..graph.stream import GraphStream
    from ..partitioning.registry import make_partitioner

    def factory():
        return make_partitioner(method, k, **kwargs)

    def stream_factory():
        return GraphStream(graph)

    fast_times, seed_times, identical, parse_times = _paired_runs(
        factory, stream_factory, warmup=warmup, repeats=repeats)
    fast = _summary(fast_times)
    seed = _summary(seed_times)
    return {
        "method": method,
        "kwargs": {key: val for key, val in kwargs.items()},
        "fast": fast,
        "seed": seed,
        "parse_phase": _summary(parse_times),
        "speedup_median": seed["median_s"] / fast["median_s"],
        "identical": identical,
        "records_per_s_fast": graph.num_vertices / fast["median_s"],
        "records_per_s_seed": graph.num_vertices / seed["median_s"],
    }


def run_streaming_microbench(
        *, n: int = 20000, k: int = 32, warmup: int = 1, repeats: int = 5,
        seed: int = 11, methods: tuple[str, ...] = DEFAULT_METHODS,
        out_path: str | Path | None = "BENCH_streaming.json",
        profile=None) -> dict[str, Any]:
    """Full fast-vs-seed sweep on a synthetic web graph; optional JSON.

    Returns the artifact dict; when ``out_path`` is given it is also
    written there (UTF-8 JSON, trailing newline).  ``profile`` (a
    :class:`repro.bench.profile.BenchProfiler`) adds one *extra*
    profiled fast-path pass per method after the timed repeats — the
    timed samples above are untouched, and each profiled pass's route
    table is checked byte-identical against an unprofiled reference.
    """
    from ..graph.generators import community_web_graph

    graph = community_web_graph(n, seed=seed)
    results = []
    for method in methods:
        kwargs = {"num_shards": 1} if method in ("spn", "spnl") else {}
        results.append(bench_method(method, graph, k, warmup=warmup,
                                    repeats=repeats, **kwargs))
    if profile is not None:
        from ..graph.stream import GraphStream
        from ..partitioning.registry import make_partitioner
        for rec in results:
            method, kwargs = rec["method"], rec["kwargs"]
            reference = make_partitioner(method, k, **kwargs).partition(
                GraphStream(graph), fast=True).assignment.route
            profile.profile_stage(
                f"{method}/fast",
                lambda m=method, kw=kwargs: make_partitioner(
                    m, k, **kw).partition(GraphStream(graph), fast=True),
                reference_s=rec["fast"]["median_s"],
                check=lambda res, ref=reference: bool(np.array_equal(
                    res.assignment.route, ref)))
    artifact = {
        "benchmark": "streaming-hot-path",
        "created_unix": time.time(),
        "machine": machine_fingerprint(),
        "config": {
            "graph": "community_web",
            "num_vertices": graph.num_vertices,
            "num_edges": graph.num_edges,
            "k": k,
            "warmup": warmup,
            "repeats": repeats,
            "seed": seed,
        },
        "results": results,
    }
    if profile is not None:
        artifact["profile"] = profile.entry()
    if out_path is not None:
        # Atomic write: never leave a truncated artifact where a prior
        # complete one stood (CI diffs these files across runs).
        atomic_write_text(
            Path(out_path),
            json.dumps(artifact, indent=2, sort_keys=False) + "\n")
    return artifact
