"""Regeneration of every figure in the paper's evaluation (Sec. VI).

Each function returns the figure's data as ``{series name: values}`` over
an explicit x-axis, ready for :func:`repro.bench.report.format_series`.
Assertable *shape* expectations (who wins, where the curve bends) live in
``benchmarks/``; this module only produces the numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..graph.relabel import random_relabel
from ..graph.stream import GraphStream
from ..offline.label_propagation import LabelPropagationPartitioner
from ..offline.multilevel import MultilevelPartitioner
from ..parallel.executor import (
    SimulatedParallelPartitioner,
    ThreadedParallelPartitioner,
)
from ..partitioning.fennel import FennelPartitioner
from ..partitioning.ldg import LDGPartitioner
from ..partitioning.metrics import evaluate
from ..partitioning.restreaming import RestreamingPartitioner
from ..partitioning.spn import SPNPartitioner
from ..partitioning.spnl import SPNLPartitioner
from .datasets import load
from .harness import run_partitioner

__all__ = [
    "FigureData",
    "fig3_lambda_sweep",
    "fig7_window_sweep",
    "fig8_9_k_sweep_streaming",
    "fig10_11_k_sweep_offline",
    "fig12_thread_sweep",
    "ablation_rct",
    "ablation_locality",
    "ablation_decay",
    "ablation_restreaming",
]


@dataclass
class FigureData:
    """One figure: an x-axis plus named series (all equal length)."""

    name: str
    x_label: str
    x_values: list
    series: dict[str, list] = field(default_factory=dict)

    def add(self, series_name: str, values: Sequence) -> None:
        values = list(values)
        if len(values) != len(self.x_values):
            raise ValueError(
                f"series {series_name!r} has {len(values)} points, "
                f"x-axis has {len(self.x_values)}")
        self.series[series_name] = values

    def as_rows(self) -> list[dict]:
        rows = []
        for i, x in enumerate(self.x_values):
            row = {self.x_label: x}
            for name, values in self.series.items():
                value = values[i]
                row[name] = round(value, 4) if isinstance(value, float) \
                    else value
            rows.append(row)
        return rows


# ----------------------------------------------------------------------
# Fig. 3 — ECR vs λ
# ----------------------------------------------------------------------
def fig3_lambda_sweep(datasets: Iterable[str] = ("eu2015", "indo2004"),
                      lambdas: Sequence[float] = (
                          0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0),
                      k: int = 32) -> FigureData:
    """SPN's ECR as a function of λ (paper Fig. 3).

    The paper finds both extremes suboptimal: λ=1 ignores in-neighbors
    (degrading to LDG), λ=0 ignores out-neighbors; the default 0.5 sits
    in the flat interior of the curve.

    The sweep runs with ``in_estimator="self"`` — the paper's λ weighs
    *pure* in-knowledge against *pure* out-knowledge, and only the
    ``Γ_i(v)`` estimator keeps the two ends of the dial pure (the
    default "combined" estimator folds out-neighborhood expectations
    into the in-term, which flattens the λ=0 end of the curve).
    """
    fig = FigureData("fig3", "lambda", list(lambdas))
    for name in datasets:
        graph = load(name)
        values = []
        for lam in lambdas:
            result = SPNPartitioner(k, lam=lam,
                                    in_estimator="self").partition(
                GraphStream(graph))
            values.append(evaluate(graph, result.assignment).ecr)
        fig.add(f"ECR({name})", values)
    return fig


# ----------------------------------------------------------------------
# Fig. 7 — sliding window sweep
# ----------------------------------------------------------------------
def fig7_window_sweep(dataset: str = "web2001",
                      shards: Sequence[int] = (1, 4, 16, 64, 256, 1024),
                      ks: Sequence[int] = (8, 16, 32)) -> dict[int,
                                                               FigureData]:
    """MC / ECR / δ_v / PT as functions of X for several K (paper Fig. 7).

    Returns one :class:`FigureData` per K with four series each.  MC is
    the measured tracemalloc peak (tracing overhead applies equally to
    every X, so the *trend* is clean); PT comes from a separate untraced
    run.
    """
    graph = load(dataset)
    figures: dict[int, FigureData] = {}
    for k in ks:
        fig = FigureData(f"fig7_k{k}", "X", list(shards))
        mc, ecr, dv, pt = [], [], [], []
        for x in shards:
            timed = run_partitioner(
                SPNLPartitioner(k, num_shards=int(x)), graph)
            measured = run_partitioner(
                SPNLPartitioner(k, num_shards=int(x)), graph,
                measure_memory=True)
            mc.append((measured.mc_bytes or 0) / 1e6)
            ecr.append(timed.ecr)
            dv.append(timed.delta_v)
            pt.append(timed.pt_seconds)
        fig.add("MC(MB)", mc)
        fig.add("ECR", ecr)
        fig.add("delta_v", dv)
        fig.add("PT(s)", pt)
        figures[k] = fig
    return figures


# ----------------------------------------------------------------------
# Figs. 8/9 — K sweep vs streaming partitioners
# ----------------------------------------------------------------------
def fig8_9_k_sweep_streaming(dataset: str,
                             ks: Sequence[int] = (2, 4, 8, 16, 32)
                             ) -> dict[str, FigureData]:
    """All metrics vs K for LDG/FENNEL/SPN/SPNL (paper Figs. 8 & 9).

    ``dataset='uk2002'`` reproduces Fig. 8, ``'indo2004'`` Fig. 9.
    Returns one FigureData per metric with one series per partitioner.
    """
    graph = load(dataset)
    metrics = {m: FigureData(f"fig8_9_{m}", "K", list(ks))
               for m in ("ECR", "delta_v", "delta_e", "PT")}
    factories = {
        "LDG": lambda k: LDGPartitioner(k),
        "FENNEL": lambda k: FennelPartitioner(k),
        "SPN": lambda k: SPNPartitioner(k, num_shards="auto"),
        "SPNL": lambda k: SPNLPartitioner(k, num_shards="auto"),
    }
    for name, factory in factories.items():
        rows = [run_partitioner(factory(k), graph) for k in ks]
        metrics["ECR"].add(name, [r.ecr for r in rows])
        metrics["delta_v"].add(name, [r.delta_v for r in rows])
        metrics["delta_e"].add(name, [r.delta_e for r in rows])
        metrics["PT"].add(name, [r.pt_seconds for r in rows])
    return metrics


# ----------------------------------------------------------------------
# Figs. 10/11 — K sweep vs offline partitioners
# ----------------------------------------------------------------------
def fig10_11_k_sweep_offline(dataset: str,
                             ks: Sequence[int] = (2, 4, 8, 16, 32)
                             ) -> dict[str, FigureData]:
    """All metrics vs K for METIS-like/XtraPuLP-like/SPNL (Figs. 10 & 11).

    ``dataset='indo2004'`` reproduces Fig. 10, ``'eu2015'`` Fig. 11.
    """
    graph = load(dataset)
    metrics = {m: FigureData(f"fig10_11_{m}", "K", list(ks))
               for m in ("ECR", "delta_v", "delta_e", "PT")}
    factories = {
        "METIS-like": lambda k: MultilevelPartitioner(k),
        "XtraPuLP-like": lambda k: LabelPropagationPartitioner(k),
        "SPNL": lambda k: SPNLPartitioner(k, num_shards="auto"),
    }
    for name, factory in factories.items():
        rows = [run_partitioner(factory(k), graph) for k in ks]
        metrics["ECR"].add(name, [r.ecr for r in rows])
        metrics["delta_v"].add(name, [r.delta_v for r in rows])
        metrics["delta_e"].add(name, [r.delta_e for r in rows])
        metrics["PT"].add(name, [r.pt_seconds for r in rows])
    return metrics


# ----------------------------------------------------------------------
# Fig. 12 — parallel granularity sweet spot
# ----------------------------------------------------------------------
def fig12_thread_sweep(datasets: Iterable[str] = ("uk2002", "sk2005"),
                       threads: Sequence[int] = (1, 2, 4, 8, 16),
                       k: int = 32) -> FigureData:
    """SPNL wall-clock PT vs worker count (paper Fig. 12).

    Runs the *real threaded* executor.  On a single-core GIL interpreter
    the descending (speedup) side of the paper's U-curve cannot appear —
    only the ascending (scheduling/synchronization overhead) side will;
    EXPERIMENTS.md discusses this expected deviation.  The quality column
    of the same sweep (ECR vs M) is reproduced faithfully by the
    deterministic simulated executor in :func:`ablation_rct`.
    """
    fig = FigureData("fig12", "threads", list(threads))
    for name in datasets:
        graph = load(name)
        pts = []
        for m in threads:
            partitioner = ThreadedParallelPartitioner(
                SPNLPartitioner(k, num_shards="auto"), parallelism=m)
            record = run_partitioner(partitioner, graph)
            pts.append(record.pt_seconds)
        fig.add(f"PT({name})", pts)
    return fig


# ----------------------------------------------------------------------
# Ablations (design choices called out in DESIGN.md)
# ----------------------------------------------------------------------
def ablation_rct(dataset: str = "uk2002",
                 parallelisms: Sequence[int] = (1, 2, 4, 8, 16),
                 k: int = 32) -> FigureData:
    """Parallel ECR degradation with and without the RCT (paper's ≤6% vs
    XtraPuLP's up to 47% claim, on the deterministic simulated executor).
    """
    graph = load(dataset)
    serial = run_partitioner(SPNLPartitioner(k, num_shards="auto"), graph)
    fig = FigureData("ablation_rct", "M", list(parallelisms))
    for use_rct in (True, False):
        values = []
        for m in parallelisms:
            if m == 1:
                values.append(serial.ecr)
                continue
            partitioner = SimulatedParallelPartitioner(
                SPNLPartitioner(k, num_shards="auto"),
                parallelism=m, use_rct=use_rct)
            values.append(run_partitioner(partitioner, graph).ecr)
        fig.add("ECR(with RCT)" if use_rct else "ECR(no RCT)", values)
    fig.series["ECR(serial)"] = [serial.ecr] * len(fig.x_values)
    return fig


def ablation_locality(dataset: str = "uk2002", k: int = 32) -> list[dict]:
    """SPNL on BFS-ordered vs randomly relabeled ids.

    Destroying id locality should collapse the SPNL-over-SPN advantage
    (the Range pre-assignment becomes noise) while LDG barely moves —
    direct evidence for the paper's topology-locality premise.
    """
    graph = load(dataset)
    shuffled_graph = random_relabel(graph, seed=13)
    rows = []
    for label, g in [("bfs-ordered", graph), ("shuffled", shuffled_graph)]:
        for partitioner in [LDGPartitioner(k),
                            SPNPartitioner(k),
                            SPNLPartitioner(k)]:
            record = run_partitioner(partitioner, g)
            rows.append({"ids": label, "method": record.partitioner,
                         "ECR": round(record.ecr, 4)})
    return rows


def ablation_decay(dataset: str = "indo2004", k: int = 32) -> list[dict]:
    """η-schedule sweep for SPNL's Eq. 6 — the paper's declared future
    work, explored.

    Besides the paper's formula and the frozen η=1 extreme, the sweep
    covers the ``linear``/``sqrt`` schedules (decay over the *whole*
    range instead of its first half) and a constant mid-point.  Column
    ``decay`` keeps the original boolean semantics for the first two
    rows so older readers of the output stay valid.
    """
    graph = load(dataset)
    rows = []
    for schedule, decay_flag in [("paper", True), ("frozen", False),
                                 ("linear", None), ("sqrt", None),
                                 (0.5, None)]:
        record = run_partitioner(
            SPNLPartitioner(k, eta_schedule=schedule), graph)
        rows.append({
            "schedule": str(schedule),
            "decay": decay_flag if decay_flag is not None else "-",
            "ECR": round(record.ecr, 4),
            "delta_v": round(record.delta_v, 2),
        })
    return rows


def ablation_restreaming(dataset: str = "uk2005", k: int = 32,
                         passes: Sequence[int] = (1, 2, 3, 4)) -> FigureData:
    """Quality-vs-passes for restreamed LDG against single-pass SPNL.

    The related-work tradeoff: restreaming buys LDG quality linearly in
    scans; SPNL reaches comparable territory in one scan.
    """
    graph = load(dataset)
    fig = FigureData("ablation_restreaming", "passes", list(passes))
    ldg_values = []
    for p in passes:
        partitioner = RestreamingPartitioner(
            lambda: LDGPartitioner(k), num_passes=p)
        ldg_values.append(run_partitioner(partitioner, graph).ecr)
    fig.add("ECR(ReLDG)", ldg_values)
    spnl = run_partitioner(SPNLPartitioner(k, num_shards="auto"), graph)
    fig.series["ECR(SPNL, 1 pass)"] = [spnl.ecr] * len(fig.x_values)
    return fig
