"""Perf-history export: bench artifacts + baselines -> tidy time series.

``repro-partition bench export`` walks the repo's ``BENCH_*.json``
artifacts and the promoted baseline store and flattens them into one
tidy table — a row per ``(bench kind, metric, source file)`` carrying
the median, sample count, commit provenance, and the machine
fingerprint key.  The dashboard (:mod:`repro.bench.dashboard`) renders
that table; anything else (pandas, a spreadsheet) can consume the CSV.

Two disciplines are inherited from the compare module rather than
reinvented:

* **Fingerprint keys are never merged.**  Every row carries the
  ``fingerprint_key`` digest (:func:`repro.bench.baseline
  .fingerprint_key`); consumers group by ``(bench, metric,
  fingerprint_key)``, so numbers from a 1-CPU CI container and an
  8-core workstation land in *separate* series the same way
  ``compare.py`` refuses to gate across hosts silently.
* **Malformed inputs are quarantined, not fatal.**  A pre-PR-5 layout,
  a partially-written artifact, or a hand-edited baseline is skipped
  with a recorded reason (the lenient-ingest quarantine pattern from
  :mod:`repro.recovery.lenient`), so one torn file can never crash the
  dashboard build in CI.  The skip list rides in the export payload and
  is rendered by the dashboard.

The export itself is deterministic: rows are fully sorted and no
timestamp is stamped into the payload, so exporting the same inputs
twice yields byte-identical JSON/CSV.
"""

from __future__ import annotations

import csv
import io
import json
import statistics
from pathlib import Path
from typing import Any, Callable, Iterable, Mapping

from .baseline import (
    BASELINE_FORMAT,
    BaselineError,
    DEFAULT_BASELINE_DIR,
    fingerprint_key,
    validate_baseline,
)
from .compare import CompareError, extract_identity_flags, extract_metrics

__all__ = [
    "CSV_COLUMNS",
    "HISTORY_FORMAT",
    "HISTORY_VERSION",
    "default_artifact_paths",
    "export_history",
    "rows_to_csv",
]

HISTORY_FORMAT = "repro-bench-history"
HISTORY_VERSION = 1

#: Fixed CSV column order; the JSON rows carry exactly these keys.
CSV_COLUMNS = (
    "bench", "metric", "unit", "value", "n", "min", "max", "commit",
    "dirty", "fingerprint_key", "created_unix", "scaling_expected",
    "source", "path",
)

#: Everything a half-written or pre-PR-5 artifact can throw while its
#: metrics are pulled out.  Deliberately broad: the export must survive
#: any malformed input, and the reason string keeps the skip debuggable.
_QUARANTINE_ERRORS = (CompareError, BaselineError, KeyError, TypeError,
                      ValueError, AttributeError, statistics.StatisticsError)


def default_artifact_paths(root: str | Path = ".") -> list[Path]:
    """The conventional inputs: every ``BENCH_*.json`` under ``root``."""
    return sorted(Path(root).glob("BENCH_*.json"))


def _artifact_rows(artifact: Mapping[str, Any], *, path: str,
                   source: str) -> list[dict[str, Any]]:
    """Tidy rows for one parsed artifact (raises on malformed layouts)."""
    bench = artifact.get("benchmark")
    machine = artifact.get("machine")
    if not isinstance(machine, dict):
        raise CompareError("artifact carries no machine fingerprint")
    key = fingerprint_key(machine)
    config = artifact.get("config") or {}
    scaling = config.get("scaling_expected")
    created = artifact.get("created_unix")
    if not isinstance(created, (int, float)) or isinstance(created, bool):
        raise CompareError("artifact carries no created_unix timestamp")

    common = {
        "bench": bench,
        "commit": machine.get("commit"),
        "dirty": machine.get("dirty"),
        "fingerprint_key": key,
        "created_unix": float(created),
        "scaling_expected": (bool(scaling) if scaling is not None
                             else None),
        "source": source,
        "path": path,
    }
    rows: list[dict[str, Any]] = []
    metrics = extract_metrics(artifact)
    for name in sorted(metrics):
        samples = [float(x) for x in metrics[name]]
        if not samples:
            raise CompareError(f"metric {name!r} has no samples")
        rows.append({
            "metric": name, "unit": "s",
            "value": statistics.median(samples),
            "n": len(samples),
            "min": min(samples), "max": max(samples),
            **common,
        })
    for flag, ok in sorted(extract_identity_flags(artifact).items()):
        value = 1.0 if ok else 0.0
        rows.append({
            "metric": flag, "unit": "bool",
            "value": value, "n": 1, "min": value, "max": value,
            **common,
        })
    return rows


def _profile_entry(artifact: Mapping[str, Any], *, path: str
                   ) -> dict[str, Any] | None:
    """Profile provenance for the dashboard's artifact links."""
    profile = artifact.get("profile")
    if not isinstance(profile, dict) or not profile.get("stages"):
        return None
    stages = []
    for stage in profile["stages"]:
        if not isinstance(stage, dict) or "stage" not in stage:
            continue
        stages.append({
            "stage": stage.get("stage"),
            "mode": stage.get("mode"),
            "pstats_path": stage.get("pstats_path"),
            "top_path": stage.get("top_path"),
            "collapsed_path": stage.get("collapsed_path"),
            "overhead_pct": stage.get("overhead_pct"),
        })
    if not stages:
        return None
    return {
        "bench": artifact.get("benchmark"),
        "artifact_path": path,
        "mode": profile.get("mode"),
        "out_dir": profile.get("out_dir"),
        "stages": stages,
    }


def export_history(artifact_paths: Iterable[str | Path] | None = None,
                   baselines_dir: str | Path | None = DEFAULT_BASELINE_DIR,
                   *, root: str | Path = ".",
                   warn: Callable[[str], None] | None = None
                   ) -> dict[str, Any]:
    """Walk artifacts + baselines; return the tidy history payload.

    ``artifact_paths`` defaults to every ``BENCH_*.json`` under ``root``;
    ``baselines_dir`` (when it exists) contributes every promoted
    envelope as a ``source: "baseline"`` row set.  Unreadable or
    unrecognizable inputs are skipped with a recorded reason (and a
    ``warn`` callback, when given) — never an exception.
    """
    skipped: list[dict[str, str]] = []

    def _skip(path: str, reason: str) -> None:
        skipped.append({"path": path, "reason": reason})
        if warn is not None:
            warn(f"skipped {path}: {reason}")

    sources: list[tuple[str, str]] = []  # (path, kind)
    if artifact_paths is None:
        artifact_paths = default_artifact_paths(root)
    for p in artifact_paths:
        sources.append((str(p), "artifact"))
    if baselines_dir is not None:
        bdir = Path(baselines_dir)
        if bdir.is_dir():
            for p in sorted(bdir.glob("*.json")):
                sources.append((str(p), "baseline"))

    rows: list[dict[str, Any]] = []
    profiles: list[dict[str, Any]] = []
    for path, kind in sources:
        try:
            text = Path(path).read_text(encoding="utf-8")
        except OSError as exc:
            _skip(path, f"unreadable: {exc}")
            continue
        try:
            obj = json.loads(text)
        except json.JSONDecodeError as exc:
            _skip(path, f"not valid JSON (torn or partial write): {exc}")
            continue
        if not isinstance(obj, dict):
            _skip(path, "not a JSON object")
            continue
        source = kind
        if obj.get("format") == BASELINE_FORMAT:
            # An envelope can appear in either input set; it is always a
            # baseline row, and a hand-edited one is quarantined.
            try:
                validate_baseline(obj)
            except BaselineError as exc:
                _skip(path, f"invalid baseline envelope: {exc}")
                continue
            artifact = obj["artifact"]
            source = "baseline"
        else:
            artifact = obj
        try:
            rows.extend(_artifact_rows(artifact, path=path, source=source))
        except _QUARANTINE_ERRORS as exc:
            _skip(path, f"unrecognized or partial artifact layout "
                        f"({type(exc).__name__}: {exc})")
            continue
        entry = _profile_entry(artifact, path=path)
        if entry is not None:
            profiles.append(entry)

    rows.sort(key=lambda r: (r["bench"], r["metric"], r["fingerprint_key"],
                             r["created_unix"], r["source"], r["path"]))
    profiles.sort(key=lambda p: (str(p["bench"]), p["artifact_path"]))
    skipped.sort(key=lambda s: s["path"])
    return {
        "format": HISTORY_FORMAT,
        "version": HISTORY_VERSION,
        "rows": rows,
        "profiles": profiles,
        "skipped": skipped,
    }


def rows_to_csv(rows: Iterable[Mapping[str, Any]]) -> str:
    """Render history rows as CSV (fixed :data:`CSV_COLUMNS` order).

    ``None`` fields serialize as empty cells; booleans as
    ``true``/``false`` so the CSV round-trips losslessly against the
    JSON payload (pinned by the export tests).
    """
    buf = io.StringIO()
    writer = csv.writer(buf, lineterminator="\n")
    writer.writerow(CSV_COLUMNS)
    for row in rows:
        cells = []
        for col in CSV_COLUMNS:
            value = row.get(col)
            if value is None:
                cells.append("")
            elif isinstance(value, bool):
                cells.append("true" if value else "false")
            elif isinstance(value, float):
                cells.append(repr(value))
            else:
                cells.append(str(value))
        writer.writerow(cells)
    return buf.getvalue()
