"""Microbenchmark harness for the ingest pipeline (parse/cache/end-to-end).

Companion to :mod:`repro.bench.micro`, but aimed at everything *before*
the scoring loop: the chunked tokenizer against the seed line-by-line
parser, a ``.reprocsr`` cache hit against a cold text parse, and the
full file→route-table pipeline with and without the cache.  Same
redisbench-admin conventions — warmup runs, paired timed repeats,
median + stdev, machine fingerprint — and the same identity discipline:
every timed pair also checks that both sides produced byte-identical
output (CSR arrays for parse stages, route tables end-to-end), so a
"speedup" that changes results is flagged in the artifact rather than
celebrated.

Beyond the timed stages the artifact carries an ``identity`` section:
for every registered heuristic, the cached-graph fast path, the
record-at-a-time path, and a checkpoint/resume run over the prefetch
reader are each compared against the seed parse + record-path route
table.  The acceptance bar for the ingest work is that all of these are
``True`` while the cache-hit end-to-end stage clears 2x.
"""

from __future__ import annotations

import json
import shutil
import tempfile
import time
from pathlib import Path
from typing import Any, Callable

import numpy as np

from ..recovery.atomic import atomic_write_text
from .micro import _summary, machine_fingerprint

__all__ = ["bench_stage", "run_ingest_microbench"]


def bench_stage(stage: str, baseline: Callable[[], Any],
                optimized: Callable[[], Any], *, warmup: int = 1,
                repeats: int = 5,
                same: Callable[[Any, Any], bool] | None = None
                ) -> dict[str, Any]:
    """Time ``baseline`` vs ``optimized`` in interleaved pairs.

    Pairing inside each repeat (as in :func:`repro.bench.micro._paired_runs`)
    keeps the ratio honest under machine drift.  ``same`` compares the
    two return values each repeat; ``identical`` is True iff every pair
    matched (vacuously True when no comparator is given).
    """
    for _ in range(warmup):
        baseline()
        optimized()
    base_times: list[float] = []
    opt_times: list[float] = []
    identical = True
    for _ in range(repeats):
        t0 = time.perf_counter()
        base_out = baseline()
        base_times.append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        opt_out = optimized()
        opt_times.append(time.perf_counter() - t0)
        if same is not None:
            identical = identical and bool(same(base_out, opt_out))
    base = _summary(base_times)
    opt = _summary(opt_times)
    return {
        "stage": stage,
        "baseline": base,
        "optimized": opt,
        "speedup_median": base["median_s"] / opt["median_s"],
        "identical": identical,
    }


def _same_graph(a, b) -> bool:
    return (np.array_equal(a.indptr, b.indptr)
            and np.array_equal(a.indices, b.indices))


def _same_route(a, b) -> bool:
    return np.array_equal(a.assignment.route, b.assignment.route)


def _identity_checks(path: Path, seed_graph, k: int,
                     methods: tuple[str, ...],
                     workdir: Path) -> dict[str, Any]:
    """Seed-vs-optimized route-table identity across the registry.

    The reference for each heuristic is the seed pipeline end to end:
    line-by-line parse, record-at-a-time scoring.  Against it we pin the
    cached-graph fast path, the cached-graph record path, and a
    checkpoint + resume run over the prefetch reader.
    """
    from ..graph.stream import GraphStream
    from ..ingest.cache import load_or_parse
    from ..ingest.prefetch import PrefetchStream
    from ..partitioning.registry import make_partitioner
    from ..recovery.checkpoint import (latest_snapshot,
                                       partition_with_checkpoints,
                                       resume_partition)

    cached = load_or_parse(path)
    every = max(1, seed_graph.num_vertices // 3)
    out: dict[str, Any] = {}
    for method in methods:
        ref = make_partitioner(method, k).partition(
            GraphStream(seed_graph), fast=False).assignment.route
        fast = make_partitioner(method, k).partition(
            GraphStream(cached), fast=True).assignment.route
        record = make_partitioner(method, k).partition(
            GraphStream(cached), fast=False).assignment.route
        ckpt_dir = workdir / f"ckpt-{method}"
        full = partition_with_checkpoints(
            make_partitioner(method, k), PrefetchStream(path),
            ckpt_dir, every=every).assignment.route
        snap = latest_snapshot(ckpt_dir)
        resumed = resume_partition(
            make_partitioner(method, k), PrefetchStream(path),
            snap).assignment.route if snap is not None else None
        out[method] = {
            "fast_path": bool(np.array_equal(ref, fast)),
            "record_path": bool(np.array_equal(ref, record)),
            "prefetch_checkpointed": bool(np.array_equal(ref, full)),
            "prefetch_resumed": (bool(np.array_equal(ref, resumed))
                                 if resumed is not None else False),
        }
    return out


def run_ingest_microbench(
        *, n: int = 20000, k: int = 32, warmup: int = 1, repeats: int = 5,
        seed: int = 11, method: str = "spn",
        methods: tuple[str, ...] = ("ldg", "fennel", "spn", "spnl"),
        out_path: str | Path | None = "BENCH_ingest.json",
        profile=None) -> dict[str, Any]:
    """Full ingest sweep on a synthetic web graph; optional JSON artifact.

    Stages benched (baseline -> optimized):

    * ``parse`` — seed line-by-line parser -> chunked tokenizer, both
      producing a full CSR graph from the same adjacency text;
    * ``cache_hit`` — cold chunked text parse -> warm ``.reprocsr``
      mmap load;
    * ``end_to_end`` — the whole file→route-table pipeline as the seed
      shipped it (line-by-line parse + record-at-a-time loop) -> as it
      ships now (cache hit + fused kernel), ``method`` heuristic; the
      identity check still requires byte-equal route tables.

    Returns the artifact dict; ``out_path`` also writes it as UTF-8
    JSON with a trailing newline.  ``profile`` (a
    :class:`repro.bench.profile.BenchProfiler`) replays each stage's
    optimized side once more under the profiler *after* the timed
    repeats, output-checked against an unprofiled reference.
    """
    from ..graph.generators import community_web_graph
    from ..graph.io import read_adjacency, write_adjacency
    from ..graph.stream import GraphStream
    from ..ingest.cache import cache_path_for, load_or_parse
    from ..partitioning.registry import make_partitioner

    graph = community_web_graph(n, seed=seed)
    workdir = Path(tempfile.mkdtemp(prefix="repro-bench-ingest-"))
    try:
        path = workdir / "graph.adj"
        write_adjacency(graph, path)
        results = []

        results.append(bench_stage(
            "parse",
            lambda: read_adjacency(path, engine="python"),
            lambda: read_adjacency(path, engine="chunked"),
            warmup=warmup, repeats=repeats, same=_same_graph))

        load_or_parse(path)  # warm the sidecar cache for the hit stages
        results.append(bench_stage(
            "cache_hit",
            lambda: read_adjacency(path, engine="chunked"),
            lambda: load_or_parse(path),
            warmup=warmup, repeats=repeats, same=_same_graph))

        def _pipeline(graph_loader, fast):
            def run():
                return make_partitioner(method, k).partition(
                    GraphStream(graph_loader()), fast=fast)
            return run

        # Whole-pipeline comparison: the seed stack end to end
        # (line-by-line parse + record-at-a-time loop) against the
        # optimized stack end to end (cache hit + fused kernel).
        results.append(bench_stage(
            "end_to_end",
            _pipeline(lambda: read_adjacency(path, engine="python"),
                      False),
            _pipeline(lambda: load_or_parse(path), True),
            warmup=warmup, repeats=repeats, same=_same_route))

        seed_graph = read_adjacency(path, engine="python")
        identity = _identity_checks(path, seed_graph, k, methods, workdir)
        cache_bytes = cache_path_for(path).stat().st_size
        text_bytes = path.stat().st_size

        if profile is not None:
            # Extra profiled passes while the workdir is still alive;
            # the timed samples above are already locked in.
            medians = {r["stage"]: r["optimized"]["median_s"]
                       for r in results}
            ref_graph = load_or_parse(path)
            profile.profile_stage(
                "parse/optimized",
                lambda: read_adjacency(path, engine="chunked"),
                reference_s=medians["parse"],
                check=lambda g: _same_graph(g, ref_graph))
            profile.profile_stage(
                "cache_hit/optimized",
                lambda: load_or_parse(path),
                reference_s=medians["cache_hit"],
                check=lambda g: _same_graph(g, ref_graph))
            ref_route = _pipeline(lambda: load_or_parse(path), True)()
            profile.profile_stage(
                "end_to_end/optimized",
                _pipeline(lambda: load_or_parse(path), True),
                reference_s=medians["end_to_end"],
                check=lambda r: _same_route(r, ref_route))
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    artifact = {
        "benchmark": "ingest-pipeline",
        "created_unix": time.time(),
        "machine": machine_fingerprint(),
        "config": {
            "graph": "community_web",
            "num_vertices": graph.num_vertices,
            "num_edges": graph.num_edges,
            "k": k,
            "method": method,
            "warmup": warmup,
            "repeats": repeats,
            "seed": seed,
            "text_bytes": text_bytes,
            "cache_bytes": cache_bytes,
        },
        "results": results,
        "identity": identity,
    }
    if profile is not None:
        artifact["profile"] = profile.entry()
    if out_path is not None:
        atomic_write_text(
            Path(out_path),
            json.dumps(artifact, indent=2, sort_keys=False) + "\n")
    return artifact
