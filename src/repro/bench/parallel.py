"""Parallel-scaling benchmark: sequential vs process-sharded wall clock.

Measures the paper's Fig. 12 question on real cores: how does the
process-sharded executor's ``PT`` compare to the sequential pass at a
given ``parallelism`` (M) and worker count (N)?  The artifact
(``BENCH_parallel.json`` by default) records per-repeat times for both
sides plus the two correctness invariants that hold on *any* machine:

* ``identical`` — the process-sharded route table is byte-identical to
  the deterministic :class:`~repro.parallel.executor
  .SimulatedParallelPartitioner` at the same M (the executor's parity
  contract), and stable across repeats;
* ``ecr_delta_pct`` — the relative ECR drift of the RCT-delayed
  parallel placement versus the sequential one (the paper caps this
  at ~6%).

The *speedup* side is honest by construction: the machine fingerprint
embeds the usable CPU count, so a single-core container's numbers are
gated only against a single-core baseline (``bench compare`` refuses to
trust cross-affinity baselines silently), and the artifact carries a
``scaling_expected`` flag stating whether the host could have sped up
at all.  The ≥2.5x acceptance bar applies on hosts with ≥4 usable
cores, never here.
"""

from __future__ import annotations

import json
import statistics
import time
from pathlib import Path
from typing import Any

import numpy as np

from ..recovery.atomic import atomic_write_text
from .micro import machine_fingerprint

__all__ = ["bench_parallel_method", "run_parallel_scaling_bench"]


def _summary(times: list[float]) -> dict[str, Any]:
    return {
        "median_s": statistics.median(times),
        "stdev_s": statistics.stdev(times) if len(times) > 1 else 0.0,
        "min_s": min(times),
        "max_s": max(times),
        "runs_s": times,
    }


def bench_parallel_method(method: str, graph, k: int, *,
                          parallelism: int = 4,
                          num_workers: int | None = None,
                          warmup: int = 1, repeats: int = 5,
                          **kwargs) -> dict[str, Any]:
    """Bench one heuristic sequential-vs-process-sharded; returns a record.

    ``kwargs`` go to the partitioner factory (e.g. ``num_shards=1`` to
    pin SPN/SPNL to the dense Γ store, which the sharded executor
    requires anyway).
    """
    from ..graph.stream import GraphStream
    from ..parallel import (ProcessShardedPartitioner,
                            SimulatedParallelPartitioner)
    from ..partitioning.metrics import evaluate
    from ..partitioning.registry import make_partitioner

    def seq_factory():
        return make_partitioner(method, k, **kwargs)

    def par_factory():
        return ProcessShardedPartitioner(
            make_partitioner(method, k, **kwargs),
            parallelism=parallelism, num_workers=num_workers)

    for _ in range(warmup):
        seq_factory().partition(GraphStream(graph))
        par_factory().partition(GraphStream(graph))

    seq_times: list[float] = []
    par_times: list[float] = []
    seq_result = par_result = None
    identical = True
    for _ in range(repeats):
        # Interleaved pairs: frequency/cache drift hits both sides alike.
        prev_route = (None if par_result is None
                      else par_result.assignment.route)
        seq_result = seq_factory().partition(GraphStream(graph))
        par_result = par_factory().partition(GraphStream(graph))
        seq_times.append(seq_result.elapsed_seconds)
        par_times.append(par_result.elapsed_seconds)
        if prev_route is not None:
            # Determinism across repeats is part of the identity claim.
            identical = identical and np.array_equal(
                prev_route, par_result.assignment.route)

    # The parity contract: byte-identical to the simulated executor at
    # the same M.  One untimed reference run settles it.
    sim = SimulatedParallelPartitioner(
        make_partitioner(method, k, **kwargs),
        parallelism=parallelism).partition(GraphStream(graph))
    identical = identical and np.array_equal(
        par_result.assignment.route, sim.assignment.route)

    ecr_seq = evaluate(graph, seq_result.assignment).ecr
    ecr_par = evaluate(graph, par_result.assignment).ecr
    seq = _summary(seq_times)
    par = _summary(par_times)
    return {
        "method": method,
        "kwargs": {key: val for key, val in kwargs.items()},
        "parallelism": parallelism,
        "num_workers": num_workers,
        "sequential": seq,
        "parallel": par,
        "speedup_median": seq["median_s"] / par["median_s"],
        "identical": identical,
        "ecr_sequential": ecr_seq,
        "ecr_parallel": ecr_par,
        "ecr_delta_pct": ((ecr_par - ecr_seq) / ecr_seq * 100.0
                          if ecr_seq else 0.0),
        "records_per_s_sequential": graph.num_vertices / seq["median_s"],
        "records_per_s_parallel": graph.num_vertices / par["median_s"],
    }


def run_parallel_scaling_bench(
        *, n: int = 20000, k: int = 32, parallelism: int = 4,
        num_workers: int | None = None, warmup: int = 1, repeats: int = 5,
        seed: int = 11, methods: tuple[str, ...] = ("spnl",),
        out_path: str | Path | None = "BENCH_parallel.json",
        profile=None) -> dict[str, Any]:
    """Sequential-vs-sharded sweep on a synthetic web graph.

    Returns the artifact dict; when ``out_path`` is given it is also
    written there atomically (UTF-8 JSON, trailing newline).
    ``profile`` adds one extra profiled pass per timed side after the
    repeats.  The sharded side's profile covers the *coordinator*
    (dispatch, group assembly, merge) — cProfile cannot see into the
    worker processes — and its route is checked against the simulated
    executor, the same parity reference the timed runs use.
    """
    import os

    from ..graph.generators import community_web_graph

    if num_workers is None:
        cpus = os.cpu_count() or 1
        num_workers = max(1, min(parallelism, cpus))
    machine = machine_fingerprint()
    graph = community_web_graph(n, seed=seed)
    results = []
    for method in methods:
        kwargs = {"num_shards": 1} if method in ("spn", "spnl") else {}
        results.append(bench_parallel_method(
            method, graph, k, parallelism=parallelism,
            num_workers=num_workers, warmup=warmup, repeats=repeats,
            **kwargs))
    if profile is not None:
        from ..graph.stream import GraphStream
        from ..parallel import (ProcessShardedPartitioner,
                                SimulatedParallelPartitioner)
        from ..partitioning.registry import make_partitioner
        for rec in results:
            method, kwargs = rec["method"], rec["kwargs"]
            seq_ref = make_partitioner(method, k, **kwargs).partition(
                GraphStream(graph)).assignment.route
            profile.profile_stage(
                f"{method}/sequential",
                lambda m=method, kw=kwargs: make_partitioner(
                    m, k, **kw).partition(GraphStream(graph)),
                reference_s=rec["sequential"]["median_s"],
                check=lambda res, ref=seq_ref: bool(np.array_equal(
                    res.assignment.route, ref)))
            par_ref = SimulatedParallelPartitioner(
                make_partitioner(method, k, **kwargs),
                parallelism=parallelism).partition(
                    GraphStream(graph)).assignment.route
            profile.profile_stage(
                f"{method}/parallel",
                lambda m=method, kw=kwargs: ProcessShardedPartitioner(
                    make_partitioner(m, k, **kw),
                    parallelism=parallelism,
                    num_workers=num_workers).partition(
                        GraphStream(graph)),
                reference_s=rec["parallel"]["median_s"],
                check=lambda res, ref=par_ref: bool(np.array_equal(
                    res.assignment.route, ref)))
    artifact = {
        "benchmark": "parallel-scaling",
        "created_unix": time.time(),
        "machine": machine,
        "config": {
            "graph": "community_web",
            "num_vertices": graph.num_vertices,
            "num_edges": graph.num_edges,
            "k": k,
            "parallelism": parallelism,
            "num_workers": num_workers,
            "warmup": warmup,
            "repeats": repeats,
            "seed": seed,
            # Honesty marker: workers can only overlap on real cores.
            # On a 1-CPU container the parallel side *cannot* beat the
            # sequential one; the gate compares against a same-
            # fingerprint baseline, never against a multicore bar.
            "scaling_expected": machine["cpu_count"] >= num_workers > 1,
        },
        "results": results,
    }
    if profile is not None:
        artifact["profile"] = profile.entry()
    if out_path is not None:
        atomic_write_text(
            Path(out_path),
            json.dumps(artifact, indent=2, sort_keys=False) + "\n")
    return artifact
