"""Static perf dashboard: the history export rendered as one HTML page.

``repro-partition bench dashboard`` turns the tidy time series from
:mod:`repro.bench.export` into a single self-contained HTML file —
inline CSS, inline SVG sparklines, zero JavaScript, zero network
fetches — suitable for uploading as a CI artifact and opening from a
``file://`` URL.

Layout rules mirror the compare module's discipline:

* one **series** per ``(bench, metric, fingerprint key)`` — rows from
  different machine fingerprints are never drawn on the same sparkline
  (cross-host timings are not one trajectory);
* **baseline markers**: points sourced from the promoted baseline store
  are drawn as rings around the trajectory dot, so "where the gate's
  reference sits" is visible at a glance;
* **regime boundaries**: a flip of ``scaling_expected`` between
  consecutive points is drawn as a dashed vertical rule and called out
  in the notes column — the same "REGIME BOUNDARY" shout
  ``compare.py`` prints, because a latency step across that line
  measures the host's core budget, not the code;
* **profile links**: artifacts that embedded a ``profile`` entry get a
  per-stage link list (pstats dump, top-N text, collapsed stacks) so a
  regression spotted on a sparkline is one click from its flamegraph
  input;
* **skipped inputs** are listed verbatim — a quarantined artifact must
  be visible in the dashboard, not silently absent from it.
"""

from __future__ import annotations

import html
from pathlib import Path
from typing import Any, Iterable, Mapping

from ..recovery.atomic import atomic_write_text

__all__ = ["build_dashboard", "render_dashboard"]

_SPARK_W = 260
_SPARK_H = 48
_PAD = 6

_CSS = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2rem auto; max-width: 72rem; color: #1c2733;
       background: #fcfdfe; }
h1 { font-size: 1.5rem; } h2 { font-size: 1.15rem; margin-top: 2rem;
     border-bottom: 1px solid #d7dee6; padding-bottom: .25rem; }
table { border-collapse: collapse; width: 100%; font-size: .85rem; }
th, td { text-align: left; padding: .3rem .55rem;
         border-bottom: 1px solid #e4e9ef; vertical-align: middle; }
th { background: #f0f4f8; }
code { background: #f0f4f8; padding: 0 .25rem; border-radius: 3px; }
.spark { display: block; }
.trend-line { fill: none; stroke: #2267b5; stroke-width: 1.5; }
.pt { fill: #2267b5; }
.pt-baseline { fill: #fff; stroke: #d07c1f; stroke-width: 2; }
.regime { stroke: #b03030; stroke-width: 1; stroke-dasharray: 3 3; }
.flag-ok { color: #1d7a3d; } .flag-bad { color: #b03030;
                                         font-weight: 600; }
.note-regime { color: #b03030; }
.muted { color: #66727f; }
.skip { color: #8a5a1a; }
footer { margin-top: 2.5rem; font-size: .75rem; color: #66727f; }
"""


def _fmt_value(row: Mapping[str, Any]) -> str:
    if row.get("unit") == "bool":
        return ("<span class='flag-ok'>&#10003;</span>"
                if row.get("value") else
                "<span class='flag-bad'>&#10007;</span>")
    value = float(row["value"])
    if value >= 1.0:
        return f"{value:.3f}s"
    return f"{value * 1e3:.3f}ms"


def _sparkline(points: list[Mapping[str, Any]]) -> str:
    """Inline SVG trajectory for one series, oldest to newest."""
    values = [float(p["value"]) for p in points]
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0

    def x(i: int) -> float:
        if len(points) == 1:
            return _SPARK_W / 2.0
        return _PAD + i * (_SPARK_W - 2 * _PAD) / (len(points) - 1)

    def y(v: float) -> float:
        return _SPARK_H - _PAD - (v - lo) / span * (_SPARK_H - 2 * _PAD)

    parts = [f"<svg class='spark' width='{_SPARK_W}' "
             f"height='{_SPARK_H}' viewBox='0 0 {_SPARK_W} {_SPARK_H}' "
             f"role='img'>"]
    if len(points) > 1:
        coords = " ".join(f"{x(i):.1f},{y(v):.1f}"
                          for i, v in enumerate(values))
        parts.append(f"<polyline class='trend-line' points='{coords}'/>")
    for i in range(1, len(points)):
        prev, cur = points[i - 1], points[i]
        if prev.get("scaling_expected") is None \
                or cur.get("scaling_expected") is None:
            continue
        if bool(prev["scaling_expected"]) != bool(cur["scaling_expected"]):
            mid = (x(i - 1) + x(i)) / 2.0
            parts.append(f"<line class='regime' x1='{mid:.1f}' y1='2' "
                         f"x2='{mid:.1f}' y2='{_SPARK_H - 2}'/>")
    for i, point in enumerate(points):
        cls = ("pt-baseline" if point.get("source") == "baseline"
               else "pt")
        title = html.escape(
            f"{point.get('commit') or 'no-commit'} "
            f"({point.get('source')}): {point['value']!r}")
        parts.append(
            f"<circle class='{cls}' cx='{x(i):.1f}' "
            f"cy='{y(values[i]):.1f}' r='3'><title>{title}</title>"
            f"</circle>")
    parts.append("</svg>")
    return "".join(parts)


def _series(rows: Iterable[Mapping[str, Any]]
            ) -> dict[tuple[str, str, str], list[Mapping[str, Any]]]:
    """Group rows into (bench, metric, fingerprint_key) trajectories.

    Grouping *includes* the fingerprint key on purpose: merging hosts
    into one line is exactly the cross-fingerprint comparison the rest
    of the bench stack refuses to make.
    """
    out: dict[tuple[str, str, str], list[Mapping[str, Any]]] = {}
    for row in rows:
        key = (str(row["bench"]), str(row["metric"]),
               str(row["fingerprint_key"]))
        out.setdefault(key, []).append(row)
    for points in out.values():
        points.sort(key=lambda r: (r["created_unix"], r["path"]))
    return out


def _notes(points: list[Mapping[str, Any]]) -> str:
    notes = []
    flips = 0
    for i in range(1, len(points)):
        a = points[i - 1].get("scaling_expected")
        b = points[i].get("scaling_expected")
        if a is not None and b is not None and bool(a) != bool(b):
            flips += 1
    if flips:
        notes.append(f"<span class='note-regime'>REGIME BOUNDARY "
                     f"(&times;{flips}): scaling_expected flipped "
                     f"mid-series</span>")
    if points and points[0].get("unit") == "bool" \
            and any(not p["value"] for p in points):
        notes.append("<span class='flag-bad'>identity lost in at least "
                     "one run</span>")
    return "; ".join(notes) or "<span class='muted'>&mdash;</span>"


def _relative(target: str | None, base: Path) -> str | None:
    if not target:
        return None
    t = Path(target)
    try:
        return t.resolve().relative_to(base.resolve()).as_posix()
    except (ValueError, OSError):
        return t.as_posix()


def render_dashboard(history: Mapping[str, Any], *,
                     title: str = "repro bench — perf history",
                     out_dir: str | Path = ".") -> str:
    """Render a history export (see :mod:`repro.bench.export`) to HTML."""
    rows = list(history.get("rows", []))
    series = _series(rows)
    benches = sorted({key[0] for key in series})
    out_dir = Path(out_dir)

    doc = [
        "<!DOCTYPE html>",
        "<html lang='en'><head><meta charset='utf-8'>",
        f"<title>{html.escape(title)}</title>",
        f"<style>{_CSS}</style>",
        "</head><body>",
        f"<h1>{html.escape(title)}</h1>",
        f"<p class='muted'>{len(series)} series over {len(rows)} rows; "
        "one series per (bench, metric, machine-fingerprint key) — "
        "hosts are never merged. Ringed points are promoted baselines; "
        "dashed red rules mark <code>scaling_expected</code> regime "
        "boundaries.</p>",
    ]

    for bench in benches:
        doc.append(f"<h2 id='{html.escape(bench)}'>"
                   f"{html.escape(bench)}</h2>")
        doc.append("<table><tr><th>metric</th><th>fingerprint</th>"
                   "<th>trajectory</th><th>latest</th><th>points</th>"
                   "<th>notes</th></tr>")
        for (b, metric, key), points in sorted(series.items()):
            if b != bench:
                continue
            latest = points[-1]
            doc.append(
                "<tr>"
                f"<td><code>{html.escape(metric)}</code></td>"
                f"<td><code>{html.escape(key)}</code></td>"
                f"<td>{_sparkline(points)}</td>"
                f"<td>{_fmt_value(latest)} <span class='muted'>"
                f"@{html.escape(str(latest.get('commit') or '?'))}"
                f"</span></td>"
                f"<td>{len(points)}</td>"
                f"<td>{_notes(points)}</td>"
                "</tr>")
        doc.append("</table>")

    profiles = history.get("profiles") or []
    doc.append("<h2>Profile artifacts</h2>")
    if profiles:
        doc.append("<table><tr><th>bench</th><th>stage</th><th>mode</th>"
                   "<th>overhead</th><th>artifacts</th></tr>")
        for prof in profiles:
            for stage in prof.get("stages", []):
                links = []
                for label, field in (("pstats", "pstats_path"),
                                     ("top-N", "top_path"),
                                     ("stacks", "collapsed_path")):
                    rel = _relative(stage.get(field), out_dir)
                    if rel:
                        links.append(f"<a href='{html.escape(rel)}'>"
                                     f"{label}</a>")
                overhead = stage.get("overhead_pct")
                doc.append(
                    "<tr>"
                    f"<td>{html.escape(str(prof.get('bench')))}</td>"
                    f"<td><code>{html.escape(str(stage.get('stage')))}"
                    "</code></td>"
                    f"<td>{html.escape(str(stage.get('mode')))}</td>"
                    f"<td>{'&mdash;' if overhead is None else f'{overhead:+.0f}%'}</td>"
                    f"<td>{' &middot; '.join(links) or '&mdash;'}</td>"
                    "</tr>")
        doc.append("</table>")
    else:
        doc.append("<p class='muted'>No profiled runs in this export — "
                   "rerun a bench with <code>--profile cprofile</code> "
                   "to populate this section.</p>")

    skipped = history.get("skipped") or []
    doc.append("<h2>Skipped inputs</h2>")
    if skipped:
        doc.append("<table><tr><th>path</th><th>reason</th></tr>")
        for skip in skipped:
            doc.append(
                f"<tr><td><code>{html.escape(str(skip.get('path')))}"
                f"</code></td><td class='skip'>"
                f"{html.escape(str(skip.get('reason')))}</td></tr>")
        doc.append("</table>")
    else:
        doc.append("<p class='muted'>Every input parsed cleanly.</p>")

    doc.append("<footer>Generated by <code>repro-partition bench "
               "dashboard</code> — self-contained, no network. "
               "Workflow: <code>docs/profiling.md</code>.</footer>")
    doc.append("</body></html>")
    return "\n".join(doc) + "\n"


def build_dashboard(history: Mapping[str, Any], out_path: str | Path, *,
                    title: str = "repro bench — perf history") -> Path:
    """Render and atomically write the dashboard; returns its path."""
    out_path = Path(out_path)
    out_path.parent.mkdir(parents=True, exist_ok=True)
    html_text = render_dashboard(history, title=title,
                                 out_dir=out_path.parent)
    atomic_write_text(out_path, html_text)
    return out_path
