"""Versioned baseline store for benchmark artifacts.

A *baseline* is a previously blessed bench artifact, wrapped in a small
schema-validated envelope and committed under ``benchmarks/baselines/``
so CI can compare every fresh run against it.  Files are keyed by
``<bench-name>-<fingerprint-key>.json``: the fingerprint key is a short
digest of the **stable** machine-fingerprint fields (architecture,
usable CPU count, Python/NumPy feature versions), so one repository can
hold baselines for several hosts side by side, and a baseline is never
silently trusted on hardware it was not recorded on.  Volatile
fingerprint fields — kernel build, patch versions, and especially the
``commit``/``dirty`` provenance added by the bench bugfix — are
deliberately excluded: promoting a new baseline every commit would
defeat the point of having one.

Writes go through :mod:`repro.recovery.atomic` (tmp + fsync + rename),
and every load re-validates the envelope: a torn, hand-edited, or
future-versioned baseline is rejected with a precise
:class:`BaselineError` instead of feeding garbage into a gate decision.
"""

from __future__ import annotations

import hashlib
import json
import time
from pathlib import Path
from typing import Any, Mapping

from ..recovery.atomic import atomic_write_text

__all__ = [
    "BASELINE_FORMAT",
    "BASELINE_VERSION",
    "DEFAULT_BASELINE_DIR",
    "BaselineError",
    "baseline_path",
    "fingerprint_key",
    "load_baseline",
    "make_baseline",
    "promote",
    "resolve_baseline",
    "save_baseline",
    "validate_baseline",
]

BASELINE_FORMAT = "repro-bench-baseline"
BASELINE_VERSION = 1

#: Repo-relative directory where promoted baselines are committed.
DEFAULT_BASELINE_DIR = Path("benchmarks") / "baselines"

#: Stable fingerprint fields that key a baseline file.  ``platform`` is
#: excluded (it embeds the kernel build), as are ``commit``/``dirty``
#: (provenance of one run, not of the host).
_KEY_FIELDS = ("machine", "cpu_count", "python", "numpy")


class BaselineError(ValueError):
    """A baseline file is malformed, torn, or from an unknown version."""


def fingerprint_key(machine: Mapping[str, Any]) -> str:
    """Short stable digest of a machine fingerprint dict.

    Only :data:`_KEY_FIELDS` participate; version strings are truncated
    to ``major.minor`` so a NumPy patch release does not orphan every
    baseline.  Returns 12 hex chars — enough to never collide across
    the handful of hosts a repo realistically benches on.
    """
    def _feature_version(value: Any) -> Any:
        if isinstance(value, str):
            return ".".join(value.split(".")[:2])
        return value

    subset = {field: _feature_version(machine.get(field))
              for field in _KEY_FIELDS}
    canonical = json.dumps(subset, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:12]


def baseline_path(root: str | Path, bench: str, key: str) -> Path:
    """Where a baseline for ``(bench, fingerprint key)`` lives."""
    return Path(root) / f"{bench}-{key}.json"


# ----------------------------------------------------------------------
# Schema
# ----------------------------------------------------------------------
def _require(cond: bool, message: str) -> None:
    if not cond:
        raise BaselineError(message)


def validate_baseline(obj: Any) -> None:
    """Validate a baseline envelope; raise :class:`BaselineError` if bad.

    Checks the envelope fields (format marker, version, bench name,
    fingerprint key) and the artifact payload's load-bearing structure:
    a machine fingerprint, a config, and a non-empty ``results`` list
    whose entries carry per-repeat ``runs_s`` number lists — the samples
    the statistical comparator consumes.
    """
    _require(isinstance(obj, dict), "baseline must be a JSON object")
    _require(obj.get("format") == BASELINE_FORMAT,
             f"not a baseline file (format={obj.get('format')!r}, "
             f"expected {BASELINE_FORMAT!r})")
    version = obj.get("version")
    _require(isinstance(version, int) and not isinstance(version, bool),
             "baseline version must be an integer")
    _require(version <= BASELINE_VERSION,
             f"baseline version {version} is newer than this code "
             f"understands ({BASELINE_VERSION}); refusing to guess")
    _require(isinstance(obj.get("bench"), str) and obj["bench"],
             "baseline must name its bench")
    _require(isinstance(obj.get("fingerprint_key"), str)
             and len(obj["fingerprint_key"]) >= 8,
             "baseline must carry a fingerprint key")
    _require(isinstance(obj.get("promoted_unix"), (int, float)),
             "baseline must record its promotion time")
    artifact = obj.get("artifact")
    _require(isinstance(artifact, dict), "baseline must embed an artifact")
    _require(artifact.get("benchmark") == obj["bench"],
             f"envelope bench {obj['bench']!r} does not match artifact "
             f"benchmark {artifact.get('benchmark')!r}")
    _require(isinstance(artifact.get("machine"), dict),
             "artifact must carry a machine fingerprint")
    _require(isinstance(artifact.get("config"), dict),
             "artifact must carry its config")
    results = artifact.get("results")
    _require(isinstance(results, list) and results,
             "artifact must carry a non-empty results list")
    for i, rec in enumerate(results):
        _require(isinstance(rec, dict), f"results[{i}] must be an object")
        _require(("method" in rec) or ("stage" in rec)
                 or ("endpoint" in rec),
                 f"results[{i}] must name a method, stage, or endpoint")
        if "endpoint" in rec:
            # Service-bench records: per-repeat latency percentiles.
            sides = [key for key in ("p50", "p95", "p99") if key in rec]
            _require(len(sides) >= 1,
                     f"results[{i}] must carry at least one percentile")
        else:
            sides = [key for key in ("fast", "seed", "baseline",
                                     "optimized", "sequential",
                                     "parallel") if key in rec]
            _require(len(sides) >= 2,
                     f"results[{i}] must carry two timed sides")
        for side in sides:
            runs = rec[side].get("runs_s") \
                if isinstance(rec[side], dict) else None
            _require(isinstance(runs, list) and runs
                     and all(isinstance(x, (int, float))
                             and not isinstance(x, bool) for x in runs),
                     f"results[{i}].{side}.runs_s must be a non-empty "
                     "list of numbers")
    expected = fingerprint_key(artifact["machine"])
    _require(obj["fingerprint_key"] == expected,
             f"fingerprint key {obj['fingerprint_key']!r} does not match "
             f"the embedded machine fingerprint ({expected!r}); the "
             "baseline was edited or assembled inconsistently")


# ----------------------------------------------------------------------
# Envelope construction and I/O
# ----------------------------------------------------------------------
def make_baseline(artifact: Mapping[str, Any], *,
                  promoted_unix: float | None = None) -> dict[str, Any]:
    """Wrap a bench artifact in a validated baseline envelope."""
    bench = artifact.get("benchmark")
    if not isinstance(bench, str) or not bench:
        raise BaselineError("artifact carries no 'benchmark' name")
    machine = artifact.get("machine")
    if not isinstance(machine, dict):
        raise BaselineError("artifact carries no machine fingerprint")
    envelope = {
        "format": BASELINE_FORMAT,
        "version": BASELINE_VERSION,
        "bench": bench,
        "fingerprint_key": fingerprint_key(machine),
        "promoted_unix": (time.time() if promoted_unix is None
                          else float(promoted_unix)),
        "artifact": dict(artifact),
    }
    validate_baseline(envelope)
    return envelope


def save_baseline(envelope: Mapping[str, Any], path: str | Path) -> Path:
    """Atomically write a validated envelope; returns the path."""
    validate_baseline(dict(envelope))
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    atomic_write_text(
        path, json.dumps(envelope, indent=2, sort_keys=False) + "\n")
    return path


def load_baseline(path: str | Path) -> dict[str, Any]:
    """Load and validate a baseline envelope."""
    path = Path(path)
    try:
        obj = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise BaselineError(f"no baseline at {path}") from None
    except json.JSONDecodeError as exc:
        raise BaselineError(f"baseline {path} is not valid JSON: {exc}") \
            from None
    validate_baseline(obj)
    return obj


def promote(artifact: Mapping[str, Any], root: str | Path, *,
            promoted_unix: float | None = None) -> Path:
    """Snapshot ``artifact`` as the new baseline for its bench + host.

    The target filename is derived from the artifact itself
    (:func:`baseline_path`); an existing baseline for the same key is
    atomically replaced — a crash mid-promote leaves the previous
    baseline intact.
    """
    envelope = make_baseline(artifact, promoted_unix=promoted_unix)
    path = baseline_path(root, envelope["bench"],
                         envelope["fingerprint_key"])
    return save_baseline(envelope, path)


def resolve_baseline(spec: str | Path, candidate: Mapping[str, Any]
                     ) -> tuple[dict[str, Any], Path, bool]:
    """Find the baseline to compare ``candidate`` against.

    ``spec`` is either a baseline/artifact *file* (used as-is) or a
    baseline *directory*: there the candidate's bench name and
    fingerprint key select the file, falling back — with the returned
    ``exact`` flag False — to the lexicographically first baseline of
    the same bench when no same-host baseline exists (CI runners rarely
    fingerprint like the promoting host; the comparator separately
    warns on the mismatch).

    Returns ``(envelope_or_artifact, path, exact_fingerprint_match)``.
    """
    spec = Path(spec)
    if spec.is_file():
        obj = json.loads(spec.read_text(encoding="utf-8"))
        if obj.get("format") == BASELINE_FORMAT:
            validate_baseline(obj)
        exact = True
        machine = (obj.get("artifact", obj)).get("machine")
        if isinstance(machine, dict):
            exact = (fingerprint_key(machine)
                     == fingerprint_key(candidate.get("machine", {})))
        return obj, spec, exact
    if not spec.is_dir():
        raise BaselineError(
            f"{spec} is neither a baseline file nor a baseline directory")
    bench = candidate.get("benchmark")
    if not isinstance(bench, str):
        raise BaselineError("candidate artifact carries no benchmark name")
    key = fingerprint_key(candidate.get("machine", {}))
    exact_path = baseline_path(spec, bench, key)
    if exact_path.is_file():
        return load_baseline(exact_path), exact_path, True
    fallbacks = sorted(spec.glob(f"{bench}-*.json"))
    if not fallbacks:
        raise BaselineError(
            f"no baseline for bench {bench!r} under {spec} "
            f"(looked for {exact_path.name} and {bench}-*.json)")
    return load_baseline(fallbacks[0]), fallbacks[0], False
