"""One-command full reproduction: every table, figure, and ablation.

``run_full_suite`` executes the entire evaluation of the paper (plus the
extensions) and writes a self-contained markdown report; it is what
``repro-partition bench all`` runs.  ``quick=True`` shrinks K-sweeps and
dataset lists for smoke-testing the pipeline in ~1 minute.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Any, Callable

from . import figures, tables
from .report import format_markdown

__all__ = ["run_full_suite"]


def _figure_sections(quick: bool) -> list[tuple[str, Callable[[], Any]]]:
    ks = (2, 8, 32) if quick else (2, 4, 8, 16, 32)
    shards = (1, 16, 256) if quick else (1, 4, 16, 64, 256)
    return [
        ("Fig. 3 — ECR vs λ (SPN)",
         lambda: figures.fig3_lambda_sweep(
             lambdas=(0.0, 0.5, 1.0) if quick
             else (0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0))),
        ("Fig. 7 — sliding-window X sweep (SPNL, web2001)",
         lambda: figures.fig7_window_sweep(
             shards=shards, ks=(32,) if quick else (8, 32))),
        ("Fig. 8 — metrics vs K, streaming (uk2002)",
         lambda: figures.fig8_9_k_sweep_streaming("uk2002", ks=ks)),
        ("Fig. 9 — metrics vs K, streaming (indo2004)",
         lambda: figures.fig8_9_k_sweep_streaming("indo2004", ks=ks)),
        ("Fig. 10 — metrics vs K, offline (indo2004)",
         lambda: figures.fig10_11_k_sweep_offline("indo2004", ks=ks)),
        ("Fig. 11 — metrics vs K, offline (eu2015)",
         lambda: figures.fig10_11_k_sweep_offline("eu2015", ks=ks)),
        ("Fig. 12 — PT vs threads (SPNL)",
         lambda: figures.fig12_thread_sweep(
             threads=(1, 4) if quick else (1, 2, 4, 8))),
        ("Ablation — RCT", lambda: figures.ablation_rct(
            parallelisms=(1, 4) if quick else (1, 2, 4, 8, 16))),
        ("Ablation — locality", figures.ablation_locality),
        ("Ablation — η decay", figures.ablation_decay),
        ("Ablation — restreaming", figures.ablation_restreaming),
        ("Extension — edge partitioning (Sec. VII future work)",
         lambda: _edge_partitioning_rows(
             ("uk2005",) if quick else ("uk2005", "stanford"))),
        ("Extension — buffered hybrid framework",
         lambda: _hybrid_rows("uk2005" if quick else "uk2002")),
    ]


def _edge_partitioning_rows(datasets) -> list[dict]:
    from ..edgepart import evaluate_edges
    from ..partitioning.registry import (
        available_partitioners,
        make_partitioner,
    )
    from .datasets import load

    rows = []
    for name in datasets:
        graph = load(name)
        # Every registered edge heuristic, baselines first (registration
        # order is definition order in the modules, which already runs
        # random → dbh → greedy → hdrf → spnl-e).
        for method in ("random", "dbh", "greedy", "hdrf", "spnl-e"):
            assert method in available_partitioners("edge")
            partitioner = make_partitioner(method, 32, kind="edge")
            result = partitioner.partition(graph)
            report = evaluate_edges(graph, result.assignment)
            rows.append({"graph": name, "method": result.partitioner,
                         "RF": round(report.replication_factor, 3),
                         "balance": round(report.load_balance, 3)})
    return rows


def _hybrid_rows(dataset: str) -> list[dict]:
    from ..partitioning import BufferedHybridPartitioner, make_partitioner
    from .datasets import load
    from .harness import run_partitioner

    graph = load(dataset)
    rows = []
    for partitioner in [
        make_partitioner("ldg", 32),
        BufferedHybridPartitioner(lambda: make_partitioner("ldg", 32),
                                  buffer_size=2048),
        make_partitioner("spnl", 32, num_shards="auto"),
        BufferedHybridPartitioner(
            lambda: make_partitioner("spnl", 32, num_shards="auto"),
            buffer_size=2048),
    ]:
        record = run_partitioner(partitioner, graph)
        rows.append({"method": record.partitioner,
                     "ECR": round(record.ecr, 4),
                     "delta_v": round(record.delta_v, 2)})
    return rows


def _render(result: Any) -> str:
    """Render whatever a section function returned as markdown."""
    if isinstance(result, figures.FigureData):
        return format_markdown(result.as_rows())
    if isinstance(result, dict):  # metric/K keyed FigureData bundles
        parts = []
        for key, fig in result.items():
            parts.append(f"*{key}*\n\n" + format_markdown(fig.as_rows()))
        return "\n\n".join(parts)
    if isinstance(result, list):
        rows = [r.as_row() if hasattr(r, "as_row") else r for r in result]
        return format_markdown(rows)
    return str(result)


def run_full_suite(output_dir: str | Path, *, k: int = 32,
                   quick: bool = False,
                   echo: Callable[[str], None] = print,
                   profile=None) -> Path:
    """Run everything; returns the path of the written REPORT.md.

    ``profile`` (a :class:`repro.bench.profile.BenchProfiler`) wraps
    each suite section in a profiler pass — sections run once, so here
    the profiled pass *is* the run and no overhead reference exists.
    """
    output_dir = Path(output_dir)
    output_dir.mkdir(parents=True, exist_ok=True)
    sections: list[tuple[str, str, float]] = []

    table_sections: list[tuple[str, Callable[[], Any]]] = [
        ("Table II — datasets", tables.table2_datasets),
        ("Table III — vs streaming partitioners",
         lambda: tables.table3_streaming(k)),
        ("Table IV — memory", lambda: tables.table4_memory(k=k)),
        ("Table V — vs offline partitioners",
         lambda: tables.table5_offline(k)),
    ]
    for title, fn in table_sections + _figure_sections(quick):
        echo(f"[suite] {title} ...")
        start = time.perf_counter()
        if profile is not None:
            body = _render(profile.profile_stage(title, fn))
        else:
            body = _render(fn())
        elapsed = time.perf_counter() - start
        sections.append((title, body, elapsed))
        echo(f"[suite]   done in {elapsed:.1f}s")

    lines = [
        "# SPNL reproduction — full evaluation report",
        "",
        f"Generated by `repro.bench.suite.run_full_suite` "
        f"(K={k}, quick={quick}).",
        "Shape expectations and paper-vs-measured commentary: "
        "see EXPERIMENTS.md.",
        "",
    ]
    for title, body, elapsed in sections:
        lines.append(f"## {title}")
        lines.append("")
        lines.append(body)
        lines.append("")
        lines.append(f"_({elapsed:.1f}s)_")
        lines.append("")
    report = output_dir / "REPORT.md"
    report.write_text("\n".join(lines))
    echo(f"[suite] report -> {report}")
    return report
