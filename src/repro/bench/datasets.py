"""Scaled synthetic stand-ins for the paper's eight evaluation graphs.

The paper's Table II datasets are real web crawls (58 MB – 34 GB) that we
can neither ship nor process at full size; each stand-in below is a
:func:`~repro.graph.generators.community_web_graph` whose knobs are tuned
to land the stand-in in the same *regime* as its original:

* **id-order locality** (intra/near fractions, community size) drives the
  LDG-vs-SPNL ECR gap — the paper's high-locality crawls (indo2004,
  uk2002, web2001, sk2005, uk2007) are where SPNL reaches ECR ≤ 0.10;
* **degree skew** (degree exponent / max factor) drives δ_e — eu2015 and
  indo2004 show δ_e ≈ 19 and 8.6 at K=32 in Table III;
* **|E|/|V| ratio** is kept within a factor ~2 of the original (full
  ratios would blow the laptop runtime budget at the larger sizes).

Sizes are scaled to 5k–32k vertices; all *relative* paper results
(orderings, ratios, crossovers) are preserved, absolute PT/MC are not —
see EXPERIMENTS.md for the per-experiment comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..graph.digraph import DiGraph
from ..graph.generators import community_web_graph

__all__ = ["DatasetSpec", "DATASETS", "load", "load_all", "clear_cache"]


@dataclass(frozen=True)
class DatasetSpec:
    """One stand-in: its paper original plus the generator recipe."""

    name: str
    paper_vertices: int
    paper_edges: int
    paper_size: str
    description: str
    generator_kwargs: dict = field(default_factory=dict)

    def build(self) -> DiGraph:
        """Generate the stand-in graph (deterministic)."""
        return community_web_graph(name=self.name, **self.generator_kwargs)


def _spec(name: str, pv: int, pe: int, size: str, desc: str,
          **kwargs) -> DatasetSpec:
    kwargs.setdefault("seed", abs(hash(name)) % 2**31)
    return DatasetSpec(name, pv, pe, size, desc, generator_kwargs=kwargs)


#: Registry mirroring the paper's Table II, in the paper's row order.
DATASETS: dict[str, DatasetSpec] = {
    spec.name: spec for spec in [
        _spec("stanford", 685_230, 7_605_339, "58.0MB",
              "moderate-locality university web graph",
              n=8_000, avg_degree=11.0, avg_community_size=80,
              intra_fraction=0.66, near_fraction=0.18, reciprocity=0.35,
              degree_max_factor=14.0, seed=101),
        _spec("uk2005", 100_000, 3_050_615, "17.0MB",
              "small dense crawl slice, weakest locality of the set",
              n=5_000, avg_degree=14.0, avg_community_size=90,
              intra_fraction=0.55, near_fraction=0.20, reciprocity=0.30,
              degree_max_factor=14.0, seed=102),
        _spec("eu2015", 6_650_532, 171_736_545, "1.4GB",
              "high locality with extreme degree skew (paper δ_e ≈ 18)",
              n=16_000, avg_degree=6.0, avg_community_size=70,
              intra_fraction=0.78, near_fraction=0.14, reciprocity=0.35,
              degree_exponent=1.9, degree_max_factor=20.0,
              density_skew=18.0, seed=103),
        _spec("indo2004", 7_414_866, 195_418_438, "1.5GB",
              "very high locality, skewed degrees (paper δ_e ≈ 8.6)",
              n=16_000, avg_degree=6.0, avg_community_size=60,
              intra_fraction=0.87, near_fraction=0.09, reciprocity=0.40,
              degree_exponent=1.9, degree_max_factor=12.0,
              density_skew=8.0, seed=104),
        _spec("uk2002", 18_520_486, 298_113_762, "2.5GB",
              "very high locality, mild skew — SPNL's showcase graph",
              n=24_000, avg_degree=12.0, avg_community_size=55,
              intra_fraction=0.85, near_fraction=0.11, reciprocity=0.40,
              degree_max_factor=10.0, seed=105),
        _spec("web2001", 118_142_155, 1_019_903_190, "9.6GB",
              "the paper's sliding-window test graph; high locality",
              n=32_000, avg_degree=9.0, avg_community_size=60,
              intra_fraction=0.84, near_fraction=0.12, reciprocity=0.40,
              degree_max_factor=10.0, seed=106),
        _spec("sk2005", 50_636_154, 1_949_412_601, "16.0GB",
              "dense high-locality crawl (METIS OOMs here in the paper)",
              n=24_000, avg_degree=16.0, avg_community_size=60,
              intra_fraction=0.82, near_fraction=0.12, reciprocity=0.35,
              degree_max_factor=12.0, seed=107),
        _spec("uk2007", 108_563_230, 3_929_837_236, "34.0GB",
              "largest, highest locality (every offline method OOMs)",
              n=32_000, avg_degree=14.0, avg_community_size=50,
              intra_fraction=0.88, near_fraction=0.09, reciprocity=0.40,
              degree_max_factor=10.0, seed=108),
    ]
}

_CACHE: dict[str, DiGraph] = {}


def load(name: str) -> DiGraph:
    """Build (or fetch from the in-process cache) one stand-in graph."""
    if name not in DATASETS:
        raise KeyError(
            f"unknown dataset {name!r}; choose from {sorted(DATASETS)}")
    if name not in _CACHE:
        _CACHE[name] = DATASETS[name].build()
    return _CACHE[name]


def load_all() -> dict[str, DiGraph]:
    """All eight stand-ins, in the paper's Table II order."""
    return {name: load(name) for name in DATASETS}


def clear_cache() -> None:
    """Drop cached graphs (tests use this to bound memory)."""
    _CACHE.clear()
