"""Statistical comparison of two benchmark artifacts.

``BENCH_streaming.json`` / ``BENCH_ingest.json`` / ``BENCH_service.json``
record *per-repeat* samples (``runs_s``), not just medians — this module is the consumer
those samples were kept for.  Given a baseline artifact and a candidate
artifact of the same benchmark it decides, per metric, whether the
candidate **improved**, **regressed**, or is statistically
indistinguishable (**no-change**) from the baseline, in the spirit of
redisbench-admin's ``compare`` subcommand.

Two independent pieces of evidence must agree before a delta counts:

* a **Mann–Whitney U** rank test over the two sample sets (exact
  two-sided p-value for the small sample counts benches actually
  produce, normal approximation with tie correction beyond that), and
* a **bootstrap confidence interval** on the ratio of medians
  (candidate / baseline), resampling each side with replacement.

Even then, the effect has to clear two configurable thresholds: a
``noise_floor`` (relative deltas below it are never reported, however
significant — container timers jitter) and a ``min_effect`` (the
smallest relative change worth acting on).  Identical inputs therefore
always compare as ``no-change`` for every metric; that degenerate case
is pinned by tests and by the CI self-compare job.

Every metric here is a duration in seconds, so **lower is better**.
Byte-identity flags recorded by the harnesses ride along as boolean
pseudo-metrics: a candidate that lost ``identical: true`` is flagged
``regressed`` regardless of its timings — a speedup that changes
results is a correctness bug, not a perf win.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

import numpy as np

__all__ = [
    "CompareError",
    "ComparisonResult",
    "MetricDelta",
    "bootstrap_ratio_ci",
    "compare_artifacts",
    "compare_samples",
    "extract_identity_flags",
    "extract_metrics",
    "mann_whitney_u",
    "smallest_attainable_p",
]

#: Fingerprint fields whose mismatch only warns (timings still compare);
#: anything else differing in ``config`` fails the comparison outright.
_VOLATILE_CONFIG_KEYS = frozenset({"text_bytes", "cache_bytes"})

VERDICT_IMPROVED = "improved"
VERDICT_NO_CHANGE = "no-change"
VERDICT_REGRESSED = "regressed"


class CompareError(ValueError):
    """The two artifacts cannot be meaningfully compared."""


# ----------------------------------------------------------------------
# Statistics
# ----------------------------------------------------------------------
def _exact_mw_p(n: int, m: int, u: float) -> float:
    """Exact two-sided p-value of Mann–Whitney U for tie-free samples.

    Builds the null distribution of U by the Mann & Whitney (1947)
    recurrence ``c[i][j](U) = c[i-1][j](U - j) + c[i][j-1](U)``: the
    largest of the pooled values comes either from the first sample
    (beating all ``j`` present values of the second) or from the second
    (beating none of the first, for this U convention).  Feasible
    because bench repeats are small (2–10 per side).
    """
    total = n * m
    # prev[j][k]: arrangements of (i, j) samples with U == k, for the
    # current i; i=0 has probability mass only at U=0.
    prev = [np.zeros(total + 1) for _ in range(m + 1)]
    for j in range(m + 1):
        prev[j][0] = 1.0
    for _i in range(1, n + 1):
        cur = [np.zeros(total + 1) for _ in range(m + 1)]
        cur[0][0] = 1.0
        for j in range(1, m + 1):
            shifted = np.zeros(total + 1)
            shifted[j:] = prev[j][:total + 1 - j]
            cur[j] = shifted + cur[j - 1]
        prev = cur
    dist = prev[m]
    dist = dist / dist.sum()
    lo = min(u, total - u)
    p = 2.0 * dist[: int(math.floor(lo)) + 1].sum()
    return float(min(1.0, p))


def smallest_attainable_p(n: int, m: int) -> float:
    """The minimum two-sided p the exact U test can produce at (n, m).

    With 3-vs-3 samples the most extreme arrangement still has
    ``p = 2/C(6,3) = 0.1`` — no 3-repeat bench can ever clear a 0.05
    bar on rank evidence alone.  The verdict logic uses this to decide
    whether the rank test is informative at the given sample sizes.
    """
    return 2.0 / math.comb(n + m, n)


def mann_whitney_u(a: Sequence[float], b: Sequence[float]
                   ) -> tuple[float, float]:
    """Two-sided Mann–Whitney U test; returns ``(U_a, p_value)``.

    ``U_a`` counts, over all cross pairs, how often a sample of ``a``
    beats (ranks above) one of ``b``, ties counting half.  The p-value
    is exact (DP over the rank-sum distribution) when both samples are
    small and tie-free; otherwise the normal approximation with tie
    correction and continuity correction is used.  Degenerate inputs
    (all values tied, or an empty side) return ``p = 1.0``.
    """
    a = np.asarray(list(a), dtype=float)
    b = np.asarray(list(b), dtype=float)
    n, m = len(a), len(b)
    if n == 0 or m == 0:
        return 0.0, 1.0
    combined = np.concatenate([a, b])
    order = np.argsort(combined, kind="mergesort")
    ranks = np.empty(n + m, dtype=float)
    ranks[order] = np.arange(1, n + m + 1, dtype=float)
    # average ranks over tie groups
    sorted_vals = combined[order]
    i = 0
    while i < n + m:
        j = i
        while j + 1 < n + m and sorted_vals[j + 1] == sorted_vals[i]:
            j += 1
        if j > i:
            ranks[order[i:j + 1]] = ranks[order[i:j + 1]].mean()
        i = j + 1
    rank_sum_a = float(ranks[:n].sum())
    u_a = rank_sum_a - n * (n + 1) / 2.0
    has_ties = len(np.unique(combined)) < n + m
    if not has_ties and n * m <= 400:
        return u_a, _exact_mw_p(n, m, u_a)
    # normal approximation with tie correction
    mu = n * m / 2.0
    tie_term = 0.0
    _, tie_counts = np.unique(combined, return_counts=True)
    tie_term = float(((tie_counts ** 3 - tie_counts)).sum())
    total = n + m
    var = (n * m / 12.0) * ((total + 1) - tie_term / (total * (total - 1)))
    if var <= 0.0:  # every value tied: no evidence of any difference
        return u_a, 1.0
    z = (abs(u_a - mu) - 0.5) / math.sqrt(var)
    p = math.erfc(max(z, 0.0) / math.sqrt(2.0))
    return u_a, float(min(1.0, p))


def bootstrap_ratio_ci(baseline: Sequence[float],
                       candidate: Sequence[float], *,
                       confidence: float = 0.95, n_boot: int = 4000,
                       rng: np.random.Generator | None = None
                       ) -> tuple[float, float]:
    """Percentile bootstrap CI of ``median(candidate)/median(baseline)``.

    Each side is resampled with replacement independently; the interval
    is the ``(1-confidence)/2`` percentile pair of the resampled ratio.
    Deterministic for a given ``rng`` seed.  Degenerate identical
    samples collapse to ``(1.0, 1.0)``.
    """
    base = np.asarray(list(baseline), dtype=float)
    cand = np.asarray(list(candidate), dtype=float)
    if rng is None:
        rng = np.random.default_rng(0)
    b_idx = rng.integers(0, len(base), size=(n_boot, len(base)))
    c_idx = rng.integers(0, len(cand), size=(n_boot, len(cand)))
    b_med = np.median(base[b_idx], axis=1)
    c_med = np.median(cand[c_idx], axis=1)
    with np.errstate(divide="ignore", invalid="ignore"):
        ratios = c_med / b_med
    ratios = ratios[np.isfinite(ratios)]
    if len(ratios) == 0:
        return float("nan"), float("nan")
    alpha = (1.0 - confidence) / 2.0
    lo, hi = np.quantile(ratios, [alpha, 1.0 - alpha])
    return float(lo), float(hi)


# ----------------------------------------------------------------------
# Metric extraction
# ----------------------------------------------------------------------
def extract_metrics(artifact: Mapping[str, Any]) -> dict[str, list[float]]:
    """Per-metric time samples (``runs_s``) from a bench artifact.

    * ``streaming-hot-path`` → ``<method>/fast`` and ``<method>/seed``;
    * ``ingest-pipeline`` → ``<stage>/optimized`` and
      ``<stage>/baseline``;
    * ``service-bench`` / ``service-bench-sharded`` →
      ``<endpoint>/p50`` / ``/p95`` / ``/p99`` (per-repeat latency
      percentiles of the placement service; throughput fields are
      informational and not gated — the sharded engine is a distinct
      kind so it gates against its own baseline, never across the
      sequential/sharded regime boundary);
    * ``parallel-scaling`` → ``<method>/sequential`` and
      ``<method>/parallel`` (speedup/ECR fields are informational —
      the gate compares wall clock against a same-fingerprint
      baseline, never against a multicore speedup bar).

    All metrics are durations in seconds: lower is better.  Unknown
    benchmark layouts raise :class:`CompareError` rather than guessing.
    """
    kind = artifact.get("benchmark")
    metrics: dict[str, list[float]] = {}
    if kind == "streaming-hot-path":
        for rec in artifact.get("results", []):
            name = rec["method"]
            metrics[f"{name}/fast"] = list(rec["fast"]["runs_s"])
            metrics[f"{name}/seed"] = list(rec["seed"]["runs_s"])
    elif kind == "ingest-pipeline":
        for rec in artifact.get("results", []):
            name = rec["stage"]
            metrics[f"{name}/optimized"] = list(rec["optimized"]["runs_s"])
            metrics[f"{name}/baseline"] = list(rec["baseline"]["runs_s"])
    elif kind in ("service-bench", "service-bench-sharded"):
        for rec in artifact.get("results", []):
            name = rec["endpoint"]
            for quantile in ("p50", "p95", "p99"):
                if quantile in rec:
                    metrics[f"{name}/{quantile}"] = \
                        list(rec[quantile]["runs_s"])
    elif kind == "parallel-scaling":
        for rec in artifact.get("results", []):
            name = rec["method"]
            metrics[f"{name}/sequential"] = \
                list(rec["sequential"]["runs_s"])
            metrics[f"{name}/parallel"] = list(rec["parallel"]["runs_s"])
    else:
        raise CompareError(
            f"unknown benchmark kind {kind!r}; expected "
            "'streaming-hot-path', 'ingest-pipeline', "
            "'service-bench', or 'parallel-scaling'")
    if not metrics:
        raise CompareError(f"artifact {kind!r} contains no results")
    return metrics


def extract_identity_flags(artifact: Mapping[str, Any]) -> dict[str, bool]:
    """Byte-identity booleans from an artifact, flattened to one level."""
    flags: dict[str, bool] = {}
    for rec in artifact.get("results", []):
        name = rec.get("method") or rec.get("stage") or rec.get("endpoint")
        if name is not None and "identical" in rec:
            flags[f"{name}/identical"] = bool(rec["identical"])
    for method, checks in (artifact.get("identity") or {}).items():
        for check, ok in checks.items():
            flags[f"identity/{method}/{check}"] = bool(ok)
    return flags


# ----------------------------------------------------------------------
# Verdicts
# ----------------------------------------------------------------------
@dataclass
class MetricDelta:
    """One metric's baseline-vs-candidate comparison."""

    metric: str
    verdict: str
    baseline_median: float | None = None
    candidate_median: float | None = None
    ratio: float | None = None
    ci_low: float | None = None
    ci_high: float | None = None
    p_value: float | None = None
    note: str = ""

    def as_row(self) -> dict[str, Any]:
        if self.ratio is None:  # boolean pseudo-metric
            return {"metric": self.metric, "baseline": "-",
                    "candidate": "-", "delta": "-", "CI95": "-",
                    "p": "-", "verdict": self.verdict}
        delta_pct = (self.ratio - 1.0) * 100.0
        return {
            "metric": self.metric,
            "baseline": f"{self.baseline_median:.4f}s",
            "candidate": f"{self.candidate_median:.4f}s",
            "delta": f"{delta_pct:+.1f}%",
            "CI95": f"[{self.ci_low:.3f}, {self.ci_high:.3f}]",
            "p": f"{self.p_value:.3g}",
            "verdict": self.verdict,
        }

    def to_dict(self) -> dict[str, Any]:
        out = {"metric": self.metric, "verdict": self.verdict}
        for key in ("baseline_median", "candidate_median", "ratio",
                    "ci_low", "ci_high", "p_value"):
            value = getattr(self, key)
            if value is not None:
                out[key] = value
        if self.note:
            out["note"] = self.note
        return out


def compare_samples(metric: str, baseline: Sequence[float],
                    candidate: Sequence[float], *,
                    noise_floor: float = 0.05, min_effect: float = 0.10,
                    confidence: float = 0.95, n_boot: int = 4000,
                    rng: np.random.Generator | None = None) -> MetricDelta:
    """Verdict for one lower-is-better duration metric.

    A delta is reported only when **all** hold:

    1. ``|ratio - 1| > max(noise_floor, min_effect)``,
    2. the bootstrap CI of the median ratio excludes 1.0,
    3. the Mann–Whitney two-sided p-value is below ``1 - confidence`` —
       required only when the sample sizes make that attainable at all
       (:func:`smallest_attainable_p`; a 2- or 3-repeat quick bench
       cannot produce rank evidence below 0.05, so there the CI and the
       effect thresholds carry the decision alone).

    Anything else — including identical inputs, tiny-but-significant
    deltas, and large-but-noisy deltas — is ``no-change``.
    """
    base = list(baseline)
    cand = list(candidate)
    base_med = float(np.median(np.asarray(base, dtype=float)))
    cand_med = float(np.median(np.asarray(cand, dtype=float)))
    ratio = cand_med / base_med if base_med else float("nan")
    _, p = mann_whitney_u(base, cand)
    ci_low, ci_high = bootstrap_ratio_ci(
        base, cand, confidence=confidence, n_boot=n_boot, rng=rng)
    verdict = VERDICT_NO_CHANGE
    threshold = max(noise_floor, min_effect)
    alpha = 1.0 - confidence
    rank_evidence = (p < alpha
                     or smallest_attainable_p(len(base), len(cand)) >= alpha)
    if math.isfinite(ratio) and abs(ratio - 1.0) > threshold \
            and rank_evidence and (ci_low > 1.0 or ci_high < 1.0):
        verdict = VERDICT_REGRESSED if ratio > 1.0 else VERDICT_IMPROVED
    return MetricDelta(metric=metric, verdict=verdict,
                       baseline_median=base_med, candidate_median=cand_med,
                       ratio=ratio, ci_low=ci_low, ci_high=ci_high,
                       p_value=p)


def _provenance(artifact: Mapping[str, Any], path: str | None
                ) -> dict[str, Any]:
    machine = artifact.get("machine", {}) or {}
    return {
        "path": path,
        "created_unix": artifact.get("created_unix"),
        "commit": machine.get("commit"),
        "dirty": machine.get("dirty"),
        "platform": machine.get("platform"),
        "python": machine.get("python"),
        "cpu_count": machine.get("cpu_count"),
    }


@dataclass
class ComparisonResult:
    """The full baseline-vs-candidate comparison, ready to render/gate."""

    bench: str
    metrics: list[MetricDelta]
    baseline: dict[str, Any] = field(default_factory=dict)
    candidate: dict[str, Any] = field(default_factory=dict)
    warnings: list[str] = field(default_factory=list)
    params: dict[str, Any] = field(default_factory=dict)

    @property
    def verdict(self) -> str:
        verdicts = {m.verdict for m in self.metrics}
        if VERDICT_REGRESSED in verdicts:
            return VERDICT_REGRESSED
        if VERDICT_IMPROVED in verdicts:
            return VERDICT_IMPROVED
        return VERDICT_NO_CHANGE

    def counts(self) -> dict[str, int]:
        out = {VERDICT_IMPROVED: 0, VERDICT_NO_CHANGE: 0,
               VERDICT_REGRESSED: 0}
        for m in self.metrics:
            out[m.verdict] += 1
        return out

    @property
    def regressions(self) -> list[MetricDelta]:
        return [m for m in self.metrics if m.verdict == VERDICT_REGRESSED]

    def gate_exit_code(self) -> int:
        """0 when nothing regressed, 1 otherwise (the ``--gate`` code)."""
        return 1 if self.regressions else 0

    def to_dict(self) -> dict[str, Any]:
        return {
            "bench": self.bench,
            "verdict": self.verdict,
            "counts": self.counts(),
            "metrics": [m.to_dict() for m in self.metrics],
            "baseline": self.baseline,
            "candidate": self.candidate,
            "warnings": list(self.warnings),
            "params": dict(self.params),
        }


def compare_artifacts(baseline: Mapping[str, Any],
                      candidate: Mapping[str, Any], *,
                      noise_floor: float = 0.05, min_effect: float = 0.10,
                      confidence: float = 0.95, n_boot: int = 4000,
                      seed: int = 0,
                      baseline_path: str | None = None,
                      candidate_path: str | None = None,
                      instrumentation=None) -> ComparisonResult:
    """Compare two artifacts of the same benchmark, metric by metric.

    ``baseline``/``candidate`` are artifact dicts as written by
    :func:`repro.bench.micro.run_streaming_microbench` or
    :func:`repro.bench.ingest.run_ingest_microbench` (a baseline-store
    envelope's ``artifact`` payload also works — see
    :mod:`repro.bench.baseline`).  Mismatched benchmark kinds raise
    :class:`CompareError`; differing configs and metrics present on only
    one side are recorded as warnings.  When ``instrumentation`` is
    given, one ``bench_compare`` trace record is emitted through it.
    """
    bench = baseline.get("benchmark")
    if bench != candidate.get("benchmark"):
        raise CompareError(
            f"benchmark kinds differ: baseline is {bench!r}, candidate "
            f"is {candidate.get('benchmark')!r}")
    warnings: list[str] = []
    base_cfg = baseline.get("config", {}) or {}
    cand_cfg = candidate.get("config", {}) or {}
    for key in sorted(set(base_cfg) | set(cand_cfg)):
        if key in _VOLATILE_CONFIG_KEYS:
            continue
        if base_cfg.get(key) != cand_cfg.get(key):
            warnings.append(
                f"config mismatch on {key!r}: baseline "
                f"{base_cfg.get(key)!r} vs candidate {cand_cfg.get(key)!r}")
    base_machine = baseline.get("machine", {}) or {}
    cand_machine = candidate.get("machine", {}) or {}
    from .baseline import fingerprint_key
    base_key = fingerprint_key(base_machine)
    cand_key = fingerprint_key(cand_machine)
    fingerprint_match = base_key == cand_key
    if not fingerprint_match:
        warnings.append(
            f"machine fingerprints differ (baseline {base_key}, candidate "
            f"{cand_key}): absolute timings are not comparable across "
            "hosts; interpret deltas with care")
        base_cpus = base_machine.get("cpu_count")
        cand_cpus = cand_machine.get("cpu_count")
        if base_cpus != cand_cpus and cand_cpus is not None \
                and base_cpus is not None:
            # CPU affinity drift is the silent gate-killer: the
            # fingerprint key includes the *usable* CPU count, so a
            # runner throttled to fewer cores resolves a different
            # baseline file entirely and the gate compares against
            # whatever fell back — loudly call it out.
            warnings.append(
                f"CROSS-AFFINITY COMPARISON: baseline ran with "
                f"cpu_count={base_cpus} but candidate with "
                f"cpu_count={cand_cpus} (affinity-restricted runner?). "
                "The fingerprint key includes the usable CPU count, so "
                "this baseline was recorded under a different core "
                "budget — timing verdicts may be vacuous. Promote a "
                "baseline from a matching-affinity run, or pin the "
                "runner's affinity to match.")
    base_scaling = base_cfg.get("scaling_expected")
    cand_scaling = cand_cfg.get("scaling_expected")
    if (base_scaling is not None or cand_scaling is not None) \
            and bool(base_scaling) != bool(cand_scaling):
        # A sharded service bench recorded on a single-core host
        # (scaling_expected=false) and one from a multicore host live
        # in different performance regimes: comparing them measures the
        # host, not the change.  The generic config-mismatch warning
        # above already fires, but this boundary deserves a shout — a
        # silent compare here is exactly how a real regression on the
        # multicore path would slip past a 1-CPU CI runner.
        warnings.append(
            f"REGIME BOUNDARY: baseline scaling_expected="
            f"{base_scaling!r} vs candidate {cand_scaling!r} — one side "
            "ran where multicore scaling is attainable and the other "
            "did not. Latency/throughput deltas across this boundary "
            "reflect the host's core budget, not the code; promote a "
            "baseline recorded in the matching regime before trusting "
            "the gate.")

    base_metrics = extract_metrics(baseline)
    cand_metrics = extract_metrics(candidate)
    for name in sorted(set(base_metrics) - set(cand_metrics)):
        warnings.append(f"metric {name!r} only in baseline; skipped")
    for name in sorted(set(cand_metrics) - set(base_metrics)):
        warnings.append(f"metric {name!r} only in candidate; skipped")

    rng = np.random.default_rng(seed)
    deltas: list[MetricDelta] = []
    for name in sorted(set(base_metrics) & set(cand_metrics)):
        deltas.append(compare_samples(
            name, base_metrics[name], cand_metrics[name],
            noise_floor=noise_floor, min_effect=min_effect,
            confidence=confidence, n_boot=n_boot, rng=rng))

    # Byte-identity pseudo-metrics: a candidate that lost identity
    # regressed, whatever its timings say.
    cand_flags = extract_identity_flags(candidate)
    for name in sorted(cand_flags):
        ok = cand_flags[name]
        deltas.append(MetricDelta(
            metric=name,
            verdict=VERDICT_NO_CHANGE if ok else VERDICT_REGRESSED,
            note="" if ok else "candidate lost byte-identity"))

    result = ComparisonResult(
        bench=bench,
        metrics=deltas,
        baseline=_provenance(baseline, baseline_path),
        candidate=_provenance(candidate, candidate_path),
        warnings=warnings,
        params={"noise_floor": noise_floor, "min_effect": min_effect,
                "confidence": confidence, "n_boot": n_boot, "seed": seed,
                "fingerprint_match": fingerprint_match},
    )
    if instrumentation is not None:
        counts = result.counts()
        instrumentation.emit({
            "type": "bench_compare",
            "bench": bench,
            "baseline": baseline_path or "<memory>",
            "candidate": candidate_path or "<memory>",
            "improved": counts[VERDICT_IMPROVED],
            "unchanged": counts[VERDICT_NO_CHANGE],
            "regressed": counts[VERDICT_REGRESSED],
            "verdict": result.verdict,
            "fingerprint_match": fingerprint_match,
        })
    return result
