"""Grid sweeps over partitioner parameters.

The paper tunes λ (Fig. 3) and X (Fig. 7) by manual enumeration; this
utility generalizes that workflow for any partitioner-constructor
keyword — a downstream user's first question is usually "what λ/slack/X
should *my* graph use", and this answers it in three lines:

    >>> from repro.bench.sweep import sweep
    >>> result = sweep(lambda **kw: SPNLPartitioner(32, **kw),
    ...                graph, {"lam": [0.25, 0.5, 0.75],
    ...                        "eta_schedule": ["paper", "linear"]})
    >>> result.best("ecr")
    {'lam': 0.5, 'eta_schedule': 'linear'}
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping

from ..graph.digraph import DiGraph
from .harness import BenchRecord, run_partitioner

__all__ = ["SweepResult", "sweep"]


@dataclass
class SweepResult:
    """All records of one grid sweep, with selection helpers."""

    parameter_names: list[str]
    records: list[tuple[dict, BenchRecord]] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.records)

    def best(self, metric: str = "ecr", *,
             minimize: bool = True) -> dict:
        """Parameter combination optimizing ``metric``.

        ``metric`` is any numeric :class:`BenchRecord` attribute
        (``ecr``, ``delta_v``, ``delta_e``, ``pt_seconds``).  Failed
        runs are skipped.
        """
        viable = [(params, getattr(record, metric))
                  for params, record in self.records
                  if not record.failed
                  and getattr(record, metric) is not None]
        if not viable:
            raise ValueError(f"no successful run exposes {metric!r}")
        chooser = min if minimize else max
        return chooser(viable, key=lambda pair: pair[1])[0]

    def as_rows(self, *, metrics: Iterable[str] = ("ecr", "delta_v",
                                                   "delta_e",
                                                   "pt_seconds")
                ) -> list[dict]:
        """Flat rows for :func:`repro.bench.report.format_table`."""
        rows = []
        for params, record in self.records:
            row = dict(params)
            if record.failed:
                row.update({m: "F" for m in metrics})
            else:
                for m in metrics:
                    value = getattr(record, m)
                    row[m] = round(value, 4) if isinstance(value, float) \
                        else value
            rows.append(row)
        return rows


def sweep(factory: Callable[..., Any], graph: DiGraph,
          grid: Mapping[str, Iterable[Any]], *,
          measure_memory: bool = False) -> SweepResult:
    """Run ``factory(**combination)`` for every grid combination.

    ``factory`` receives one keyword per grid axis and returns a
    partitioner (streaming or offline — the harness dispatches).
    Combinations are enumerated in deterministic (sorted-key, given
    order per axis) sequence.
    """
    names = list(grid)
    result = SweepResult(parameter_names=names)
    for values in itertools.product(*(grid[name] for name in names)):
        params = dict(zip(names, values))
        partitioner = factory(**params)
        record = run_partitioner(partitioner, graph,
                                 measure_memory=measure_memory)
        result.records.append((params, record))
    return result
