"""Plain-text and markdown rendering for benchmark output.

The benches print the same rows the paper's tables report; these helpers
keep that presentation consistent (fixed column order, aligned ASCII for
terminals, pipe tables for EXPERIMENTS.md).  The compare subsystem
(:mod:`repro.bench.compare`) renders its delta tables and provenance
header through the same primitives, so a terminal run and the CI
artifact read identically.
"""

from __future__ import annotations

import time
from typing import Any, Iterable, Sequence

__all__ = ["format_table", "format_markdown", "format_series",
           "format_compare_report"]


def _columns(rows: Sequence[dict]) -> list[str]:
    columns: list[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    return columns


def _cell(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def format_table(rows: Sequence[dict], *, title: str | None = None) -> str:
    """Render dict rows as an aligned ASCII table."""
    if not rows:
        return f"{title or 'table'}: (no rows)"
    columns = _columns(rows)
    grid = [[_cell(row.get(col, "")) for col in columns] for row in rows]
    widths = [max(len(col), *(len(line[i]) for line in grid))
              for i, col in enumerate(columns)]
    parts = []
    if title:
        parts.append(title)
    header = "  ".join(col.ljust(w) for col, w in zip(columns, widths))
    parts.append(header)
    parts.append("-" * len(header))
    for line in grid:
        parts.append("  ".join(cell.ljust(w)
                               for cell, w in zip(line, widths)))
    return "\n".join(parts)


def format_markdown(rows: Sequence[dict], *, title: str | None = None
                    ) -> str:
    """Render dict rows as a GitHub-flavored markdown table."""
    if not rows:
        return f"**{title}**: (no rows)" if title else "(no rows)"
    columns = _columns(rows)
    parts = []
    if title:
        parts.append(f"**{title}**\n")
    parts.append("| " + " | ".join(columns) + " |")
    parts.append("|" + "|".join("---" for _ in columns) + "|")
    for row in rows:
        parts.append("| " + " | ".join(_cell(row.get(col, ""))
                                       for col in columns) + " |")
    return "\n".join(parts)


def _provenance_line(label: str, side: dict) -> str:
    """One header line describing where a compared artifact came from."""
    commit = side.get("commit") or "unknown-commit"
    if side.get("dirty"):
        commit += "+dirty"
    created = side.get("created_unix")
    when = (time.strftime("%Y-%m-%d %H:%M:%SZ", time.gmtime(created))
            if isinstance(created, (int, float)) else "unknown-time")
    host = side.get("platform") or "unknown-host"
    cpus = side.get("cpu_count")
    path = side.get("path") or "<memory>"
    return (f"{label:<10} {path}  [{commit} @ {when}, {host}, "
            f"cpus={cpus}]")


def format_compare_report(result, *, markdown: bool = False) -> str:
    """Render a :class:`repro.bench.compare.ComparisonResult`.

    Header (bench, provenance of both sides incl. the run's git commit
    and dirty flag, thresholds), any warnings, the per-metric delta
    table, and a one-line overall verdict.  ``markdown=True`` emits a
    pipe table for CI artifacts; the default is aligned ASCII.
    """
    params = result.params
    counts = result.counts()
    header = [
        f"bench compare — {result.bench}",
        _provenance_line("baseline:", result.baseline),
        _provenance_line("candidate:", result.candidate),
        (f"thresholds: noise_floor={params.get('noise_floor')} "
         f"min_effect={params.get('min_effect')} "
         f"confidence={params.get('confidence')}"),
    ]
    if markdown:
        header = [f"# bench compare — {result.bench}", ""] \
            + [f"- {line}" for line in header[1:]] + [""]
    lines = list(header)
    for warning in result.warnings:
        lines.append(f"warning: {warning}")
    if result.warnings:
        lines.append("")
    rows = [m.as_row() for m in result.metrics]
    renderer = format_markdown if markdown else format_table
    lines.append(renderer(rows, title=None if markdown else "metrics"))
    lines.append("")
    lines.append(
        f"verdict: {result.verdict} "
        f"({counts['improved']} improved, {counts['no-change']} unchanged, "
        f"{counts['regressed']} regressed)")
    return "\n".join(lines)


def format_series(x_label: str, xs: Iterable[Any],
                  series: dict[str, Sequence[Any]], *,
                  title: str | None = None) -> str:
    """Render figure-style data (one x column, one column per series)."""
    rows = []
    xs = list(xs)
    for i, x in enumerate(xs):
        row = {x_label: x}
        for name, values in series.items():
            row[name] = values[i]
        rows.append(row)
    return format_table(rows, title=title)
