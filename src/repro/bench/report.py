"""Plain-text and markdown table rendering for benchmark output.

The benches print the same rows the paper's tables report; these helpers
keep that presentation consistent (fixed column order, aligned ASCII for
terminals, pipe tables for EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

__all__ = ["format_table", "format_markdown", "format_series"]


def _columns(rows: Sequence[dict]) -> list[str]:
    columns: list[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    return columns


def _cell(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def format_table(rows: Sequence[dict], *, title: str | None = None) -> str:
    """Render dict rows as an aligned ASCII table."""
    if not rows:
        return f"{title or 'table'}: (no rows)"
    columns = _columns(rows)
    grid = [[_cell(row.get(col, "")) for col in columns] for row in rows]
    widths = [max(len(col), *(len(line[i]) for line in grid))
              for i, col in enumerate(columns)]
    parts = []
    if title:
        parts.append(title)
    header = "  ".join(col.ljust(w) for col, w in zip(columns, widths))
    parts.append(header)
    parts.append("-" * len(header))
    for line in grid:
        parts.append("  ".join(cell.ljust(w)
                               for cell, w in zip(line, widths)))
    return "\n".join(parts)


def format_markdown(rows: Sequence[dict], *, title: str | None = None
                    ) -> str:
    """Render dict rows as a GitHub-flavored markdown table."""
    if not rows:
        return f"**{title}**: (no rows)" if title else "(no rows)"
    columns = _columns(rows)
    parts = []
    if title:
        parts.append(f"**{title}**\n")
    parts.append("| " + " | ".join(columns) + " |")
    parts.append("|" + "|".join("---" for _ in columns) + "|")
    for row in rows:
        parts.append("| " + " | ".join(_cell(row.get(col, ""))
                                       for col in columns) + " |")
    return "\n".join(parts)


def format_series(x_label: str, xs: Iterable[Any],
                  series: dict[str, Sequence[Any]], *,
                  title: str | None = None) -> str:
    """Render figure-style data (one x column, one column per series)."""
    rows = []
    xs = list(xs)
    for i, x in enumerate(xs):
        row = {x_label: x}
        for name, values in series.items():
            row[name] = values[i]
        rows.append(row)
    return format_table(rows, title=title)
