"""The checkpointing run driver: periodic snapshots + byte-identical resume.

A streaming pass is a fold over the arrival order, so its full state at
record ``t`` is (shared :class:`~repro.partitioning.base.PartitionState`,
heuristic-private state, ``t`` itself).  :func:`partition_with_checkpoints`
snapshots that triple every ``every`` records through
:mod:`repro.recovery.snapshot`; :func:`resume_partition` rebuilds the
triple in a fresh process, seeks the stream, and finishes the pass.  The
resumed run places every remaining vertex **byte-identically** to the
uninterrupted run — the registry-wide resume test suite enforces this for
both the record-at-a-time and the vectorized fast path.

Two properties make byte-identity cheap to guarantee:

* every fused kernel builds its maintained images (shifted route counter,
  penalty weights, η lanes, SPNL's combined bincount image) from the live
  state at construction time, so a kernel built over restored state is
  exactly the kernel the original run would have carried at that point;
* :meth:`StreamingPartitioner._run_fast` accepts ``start``/``stop``
  bounds, so the checkpointing driver runs one long-lived kernel over
  consecutive segments — identical arithmetic to a single full call, with
  snapshot writes between segments (excluded from the reported ``PT``).

Snapshots are named ``ckpt-<position>.snap``; :func:`latest_snapshot`
finds the furthest-along one in a directory, and pruning keeps the newest
``keep`` so a crashed run's directory never grows without bound.
"""

from __future__ import annotations

import re
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from ..graph.stream import VertexStream, as_array_stream
from ..partitioning.base import (
    PartitionState,
    StreamingPartitioner,
    StreamingResult,
)
from .snapshot import read_snapshot, write_snapshot

__all__ = ["CheckpointConfig", "Checkpointer", "latest_snapshot",
           "partition_with_checkpoints", "resume_partition",
           "snapshot_path"]

_SNAP_RE = re.compile(r"^ckpt-(\d+)\.snap$")


@dataclass
class CheckpointConfig:
    """Where and how often to snapshot a streaming pass.

    Parameters
    ----------
    directory:
        Snapshot directory (created on first write).
    every:
        Records between snapshots.
    keep:
        Newest snapshots retained; older ones are pruned after each
        successful write (never before — a failed write must not eat
        the last good snapshot).
    """

    directory: Path
    every: int = 100_000
    keep: int = 3

    def __post_init__(self) -> None:
        self.directory = Path(self.directory)
        if self.every < 1:
            raise ValueError("checkpoint interval must be >= 1 record")
        if self.keep < 1:
            raise ValueError("must keep at least one snapshot")


def snapshot_path(directory: str | Path, position: int) -> Path:
    """Canonical snapshot filename for stream position ``position``."""
    return Path(directory) / f"ckpt-{position:012d}.snap"


def latest_snapshot(directory: str | Path) -> Path | None:
    """The furthest-along ``ckpt-*.snap`` in ``directory``, or ``None``."""
    directory = Path(directory)
    if not directory.is_dir():
        return None
    best: Path | None = None
    best_pos = -1
    for entry in directory.iterdir():
        match = _SNAP_RE.match(entry.name)
        if match and int(match.group(1)) > best_pos:
            best_pos = int(match.group(1))
            best = entry
    return best


class Checkpointer:
    """Periodic snapshot writer for one partitioner's running pass."""

    def __init__(self, partitioner: StreamingPartitioner,
                 config: CheckpointConfig, *, instrumentation=None) -> None:
        self.partitioner = partitioner
        self.config = config
        self.instrumentation = instrumentation
        self.snapshots_written = 0
        self.config.directory.mkdir(parents=True, exist_ok=True)

    def save(self, state: PartitionState, position: int,
             elapsed: float) -> Path:
        """Snapshot ``state`` as of stream position ``position``."""
        payload = self.partitioner.state_dict(state)
        payload["position"] = int(position)
        payload["elapsed_seconds"] = float(elapsed)
        path = snapshot_path(self.config.directory, position)
        write_snapshot(path, payload)
        self.snapshots_written += 1
        self._prune()
        if self.instrumentation is not None:
            self.instrumentation.count("checkpoints")
            self.instrumentation.emit({
                "type": "checkpoint",
                "position": int(position),
                "placements": int(state.placed_vertices),
                "path": str(path),
                "elapsed_seconds": float(elapsed),
                "partitioner": self.partitioner.name,
            })
        return path

    def _prune(self) -> None:
        """Drop all but the newest ``keep`` snapshots in the directory.

        Scans the directory (rather than a private list) so snapshots
        inherited from the pre-crash run are pruned too once the resumed
        run writes past them.
        """
        snaps = sorted(
            (entry for entry in self.config.directory.iterdir()
             if _SNAP_RE.match(entry.name)),
            key=lambda p: int(_SNAP_RE.match(p.name).group(1)))
        for stale in snaps[:-self.config.keep]:
            try:
                stale.unlink()
            except OSError:
                pass  # pruning is best-effort; never abort the run


def _finish(partitioner: StreamingPartitioner, stream: VertexStream,
            state: PartitionState, config: CheckpointConfig, *,
            instrumentation=None, base_elapsed: float = 0.0,
            resumed_from: str | None = None) -> StreamingResult:
    """Run the (remainder of the) pass with periodic snapshots.

    ``stream`` must already be seeked to the position matching ``state``.
    Fast-path eligibility follows :meth:`StreamingPartitioner.partition`
    exactly: CSR-backed stream + fused kernel + no instrumentation.
    """
    ckpt = Checkpointer(partitioner, config,
                        instrumentation=instrumentation)
    every = config.every
    total = stream.num_vertices
    position = stream.tell()
    elapsed = base_elapsed
    fast = False

    arrays = kernel = None
    if instrumentation is None:
        arrays = as_array_stream(stream)
        if arrays is not None:
            kernel = partitioner._fast_kernel(state, arrays)

    if kernel is not None:
        # Segmented fast path: one kernel, snapshot between segments.
        fast = True
        while position < total:
            stop = min(total, position + every)
            elapsed += partitioner._run_fast(arrays, state, kernel,
                                             start=position, stop=stop)
            position = stop
            if position < total:
                ckpt.save(state, position, elapsed)
    elif instrumentation is None:
        since = 0
        start_t = time.perf_counter()
        for record in stream:
            partitioner.place(record, state)
            position += 1
            since += 1
            if since >= every and position < total:
                elapsed += time.perf_counter() - start_t
                ckpt.save(state, position, elapsed)
                since = 0
                start_t = time.perf_counter()
        elapsed += time.perf_counter() - start_t
    else:
        probe = instrumentation.stream_probe(partitioner, state)
        observe = probe.observe
        since = 0
        start_t = time.perf_counter()
        for record in stream:
            scores = partitioner._score(record, state)
            pid, margin = partitioner.choose_with_margin(scores, state)
            state.commit(record, pid)
            partitioner._after_commit(record, pid, state)
            observe(record, pid, margin)
            position += 1
            since += 1
            if since >= every and position < total:
                elapsed += time.perf_counter() - start_t
                ckpt.save(state, position, elapsed)
                since = 0
                start_t = time.perf_counter()
        elapsed += time.perf_counter() - start_t
        probe.finish(elapsed)

    stats = partitioner.result_stats(state)
    stats["fast_path"] = fast
    stats["checkpoints_written"] = ckpt.snapshots_written
    if resumed_from is not None:
        stats["resumed_from"] = resumed_from
    ingest_stats = getattr(stream, "ingest_stats", None)
    if callable(ingest_stats):
        stats["ingest"] = ingest_stats()
    return StreamingResult(
        assignment=state.to_assignment(),
        partitioner=partitioner.name,
        elapsed_seconds=elapsed,
        num_partitions=partitioner.num_partitions,
        stats=stats,
    )


def partition_with_checkpoints(
        partitioner: StreamingPartitioner, stream: VertexStream,
        config: CheckpointConfig | str | Path, *, every: int | None = None,
        keep: int | None = None, instrumentation=None) -> StreamingResult:
    """One streaming pass with a snapshot every ``config.every`` records.

    Accepts a ready :class:`CheckpointConfig` or a bare directory (with
    ``every``/``keep`` overrides).  The reported ``elapsed_seconds``
    covers only partitioning work — snapshot serialization happens
    between timed segments, mirroring how the paper's ``PT`` excludes
    I/O.  Produces a byte-identical assignment to
    :meth:`StreamingPartitioner.partition` on the same stream.
    """
    if not isinstance(config, CheckpointConfig):
        kwargs: dict[str, Any] = {}
        if every is not None:
            kwargs["every"] = every
        if keep is not None:
            kwargs["keep"] = keep
        config = CheckpointConfig(Path(config), **kwargs)
    state = partitioner.make_state(stream)
    partitioner._setup(stream, state)
    return _finish(partitioner, stream, state, config,
                   instrumentation=instrumentation)


def resume_partition(
        partitioner: StreamingPartitioner, stream: VertexStream,
        snapshot: str | Path, *,
        config: CheckpointConfig | str | Path | None = None,
        every: int | None = None, keep: int | None = None,
        instrumentation=None) -> StreamingResult:
    """Finish a crashed pass from ``snapshot`` (a file or its directory).

    Restores the partitioner + shared state, seeks ``stream`` to the
    captured position, and completes the pass — continuing to checkpoint
    into ``config`` (default: the snapshot's own directory).  The final
    assignment is byte-identical to the run that never crashed.
    """
    snapshot = Path(snapshot)
    if snapshot.is_dir():
        found = latest_snapshot(snapshot)
        if found is None:
            raise FileNotFoundError(
                f"no ckpt-*.snap snapshots in {snapshot}")
        snapshot = found
    payload = read_snapshot(snapshot)
    position = int(payload["position"])
    if not hasattr(stream, "seek"):
        raise TypeError(
            f"cannot resume on a non-seekable stream "
            f"({type(stream).__name__})")
    state = partitioner.load_state(stream, payload)
    stream.seek(position)
    if config is None:
        config = snapshot.parent
    if not isinstance(config, CheckpointConfig):
        kwargs: dict[str, Any] = {}
        if every is not None:
            kwargs["every"] = every
        if keep is not None:
            kwargs["keep"] = keep
        config = CheckpointConfig(Path(config), **kwargs)
    if instrumentation is not None:
        instrumentation.count("resumes")
        instrumentation.emit({
            "type": "resume",
            "position": position,
            "placements": int(state.placed_vertices),
            "path": str(snapshot),
            "partitioner": partitioner.name,
        })
    return _finish(partitioner, stream, state, config,
                   instrumentation=instrumentation,
                   base_elapsed=float(payload.get("elapsed_seconds", 0.0)),
                   resumed_from=str(snapshot))
