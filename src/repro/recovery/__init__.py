"""Fault tolerance for streaming partitioning runs.

The paper's one-pass setting makes a crash maximally expensive: the
route table, the Γ expectation tables, and SPNL's logical bookkeeping
are all in-memory only, so dying at vertex 19M of a 20M-vertex stream
loses everything.  This package makes single-pass runs recoverable
without replaying the stream:

* :mod:`repro.recovery.atomic` — crash-safe file writes
  (tmp + fsync + rename), shared by snapshots, route tables, and bench
  artifacts;
* :mod:`repro.recovery.snapshot` — the versioned, CRC32-checked on-disk
  snapshot format for partitioner state;
* :mod:`repro.recovery.checkpoint` — the checkpointing run driver:
  periodic snapshots during a pass, and byte-identical resume from the
  latest snapshot;
* :mod:`repro.recovery.lenient` — graceful ingestion: quarantine
  malformed records into a side file under an error budget instead of
  aborting on the first bad line;
* :mod:`repro.recovery.chaos` — seeded fault-injection wrappers
  (crash-at-record-N, torn snapshots, flaky readers, dying workers)
  backing the ``pytest -m chaos`` suite.
"""

from .atomic import atomic_writer, atomic_write_bytes, atomic_write_text
from .checkpoint import (
    CheckpointConfig,
    Checkpointer,
    latest_snapshot,
    partition_with_checkpoints,
    resume_partition,
    snapshot_path,
)
from .lenient import ErrorBudgetExceeded, IngestionPolicy, QuarantineLog
from .snapshot import (
    SNAPSHOT_FORMAT,
    SNAPSHOT_VERSION,
    SnapshotError,
    read_snapshot,
    write_snapshot,
)

__all__ = [
    "CheckpointConfig",
    "Checkpointer",
    "ErrorBudgetExceeded",
    "IngestionPolicy",
    "QuarantineLog",
    "SNAPSHOT_FORMAT",
    "SNAPSHOT_VERSION",
    "SnapshotError",
    "atomic_write_bytes",
    "atomic_write_text",
    "atomic_writer",
    "latest_snapshot",
    "partition_with_checkpoints",
    "read_snapshot",
    "resume_partition",
    "snapshot_path",
    "write_snapshot",
]
