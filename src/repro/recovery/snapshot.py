"""The versioned on-disk snapshot format (CRC32-checked, atomic).

A snapshot captures everything a streaming run needs to resume: the
shared :class:`~repro.partitioning.base.PartitionState` arrays, the
heuristic's private state (Γ tables, η bookkeeping, FENNEL's effective
α), and the stream position.  The file layout is::

    MAGIC (10 bytes)  b"REPROSNAP\\x01"
    4-byte big-endian header length
    header JSON   {"format": "repro-snapshot", "version": 1,
                   "crc32": <crc of body>, "body_len": <bytes>,
                   "meta": {... every non-array payload field ...}}
    body          an ``.npz`` archive holding every array field

Integrity is layered: a truncated file fails the ``body_len`` check, a
corrupted one fails the CRC32 check, and a file from a different format
or future version is rejected by name — all as :class:`SnapshotError`
*before* any array is handed to the partitioner.  Writes go through
:func:`repro.recovery.atomic.atomic_write_bytes`, so a crash mid-write
can never tear an existing snapshot.

The payload is a JSON-safe dict whose leaves are scalars, strings, or
``numpy`` arrays; nested dicts are flattened with ``/``-joined keys.
``numpy.load`` runs with ``allow_pickle=False`` — snapshots never
execute code on load.
"""

from __future__ import annotations

import io
import json
import struct
import zlib
from pathlib import Path
from typing import Any

import numpy as np

from .atomic import atomic_write_bytes

__all__ = ["SNAPSHOT_FORMAT", "SNAPSHOT_VERSION", "SnapshotError",
           "read_snapshot", "write_snapshot"]

SNAPSHOT_FORMAT = "repro-snapshot"
SNAPSHOT_VERSION = 1
_MAGIC = b"REPROSNAP\x01"
_LEN = struct.Struct(">I")


class SnapshotError(ValueError):
    """A snapshot file is torn, corrupted, or from an unknown format."""


def _flatten(payload: dict[str, Any], prefix: str,
             meta: dict[str, Any], arrays: dict[str, np.ndarray]) -> None:
    for key, value in payload.items():
        if "/" in key:
            raise ValueError(f"payload key {key!r} may not contain '/'")
        path = f"{prefix}{key}"
        if isinstance(value, dict):
            _flatten(value, path + "/", meta, arrays)
        elif isinstance(value, np.ndarray):
            arrays[path] = value
        elif isinstance(value, (np.integer, np.floating, np.bool_)):
            meta[path] = value.item()
        else:
            meta[path] = value  # JSON-serializable scalar/str/None/list
    # Mark empty dicts so they round-trip (a heuristic with no state).
    if not payload:
        meta[prefix + "\x00empty"] = True


def _assign(tree: dict[str, Any], path: str, value: Any) -> None:
    parts = path.split("/")
    node = tree
    for part in parts[:-1]:
        node = node.setdefault(part, {})
    if parts[-1] == "\x00empty":
        return
    node[parts[-1]] = value


def write_snapshot(path: str | Path, payload: dict[str, Any]) -> None:
    """Serialize ``payload`` to ``path`` atomically.

    ``payload`` maps string keys to scalars, strings, lists, nested
    dicts, or ``numpy`` arrays.
    """
    meta: dict[str, Any] = {}
    arrays: dict[str, np.ndarray] = {}
    _flatten(payload, "", meta, arrays)
    buf = io.BytesIO()
    np.savez(buf, **arrays)
    body = buf.getvalue()
    header = json.dumps({
        "format": SNAPSHOT_FORMAT,
        "version": SNAPSHOT_VERSION,
        "crc32": zlib.crc32(body),
        "body_len": len(body),
        "meta": meta,
    }, sort_keys=True).encode("utf-8")
    atomic_write_bytes(path, _MAGIC + _LEN.pack(len(header)) + header + body)


def read_snapshot(path: str | Path) -> dict[str, Any]:
    """Load and verify a snapshot; returns the original payload dict.

    Raises :class:`SnapshotError` on any integrity violation: bad magic,
    unparseable or wrong-format header, unsupported version, truncated
    body, or CRC mismatch.
    """
    path = Path(path)
    blob = path.read_bytes()
    if len(blob) < len(_MAGIC) + _LEN.size or not blob.startswith(_MAGIC):
        raise SnapshotError(f"{path}: not a repro snapshot (bad magic)")
    offset = len(_MAGIC)
    (header_len,) = _LEN.unpack_from(blob, offset)
    offset += _LEN.size
    raw_header = blob[offset:offset + header_len]
    if len(raw_header) < header_len:
        raise SnapshotError(f"{path}: truncated snapshot header")
    try:
        header = json.loads(raw_header.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SnapshotError(f"{path}: unreadable snapshot header: {exc}") \
            from exc
    if header.get("format") != SNAPSHOT_FORMAT:
        raise SnapshotError(
            f"{path}: format {header.get('format')!r} is not "
            f"{SNAPSHOT_FORMAT!r}")
    if header.get("version") != SNAPSHOT_VERSION:
        raise SnapshotError(
            f"{path}: snapshot version {header.get('version')!r} is not "
            f"supported (expected {SNAPSHOT_VERSION})")
    body = blob[offset + header_len:]
    if len(body) != header.get("body_len"):
        raise SnapshotError(
            f"{path}: truncated snapshot body ({len(body)} bytes, header "
            f"declares {header.get('body_len')})")
    if zlib.crc32(body) != header.get("crc32"):
        raise SnapshotError(f"{path}: snapshot body fails its CRC32 check")
    tree: dict[str, Any] = {}
    for key, value in header.get("meta", {}).items():
        _assign(tree, key, value)
    with np.load(io.BytesIO(body), allow_pickle=False) as npz:
        for key in npz.files:
            _assign(tree, key, npz[key])
    return tree
