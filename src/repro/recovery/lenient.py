"""Graceful ingestion: quarantine bad records under an error budget.

The graph readers in :mod:`repro.graph.io` are all-or-nothing by
default: the first malformed line raises and the whole run dies — the
right behavior for curated benchmark files, the wrong one for
production feeds where a handful of torn lines should not cost a
20M-vertex pass.  An :class:`IngestionPolicy` in ``lenient`` mode makes
the readers *quarantine* such records instead: the offending line goes
to a side file (with its source path, 1-based line number, and reason,
so it can be replayed or audited), and streaming continues — until a
configurable error budget is exceeded, at which point the run fails
loudly with :class:`ErrorBudgetExceeded`.  A file that is mostly
garbage is a systemic problem, not noise.

The budget is counted per scan (a stream may be iterated more than
once — e.g. a pre-scan for totals followed by the real pass — and a
re-scan of the same bad lines must not double-charge); the quarantine
log dedupes on ``(path, line)`` for the same reason.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, TextIO

__all__ = ["ErrorBudgetExceeded", "IngestionPolicy", "QuarantineLog"]


class ErrorBudgetExceeded(ValueError):
    """More malformed records than the lenient error budget allows."""


class QuarantineLog:
    """Append-only side file of quarantined records.

    One tab-separated line per record: ``path``, 1-based ``line``
    number, ``reason``, and the raw offending text (newlines stripped).
    Duplicate ``(path, line)`` pairs are written once, so re-scans of
    the same file do not bloat the log.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._fh: TextIO | None = None
        self._seen: set[tuple[str, int]] = set()
        self.records = 0

    def write(self, source: str | Path, line_number: int, reason: str,
              raw: str) -> None:
        key = (str(source), line_number)
        if key in self._seen:
            return
        self._seen.add(key)
        if self._fh is None:
            self._fh = open(self.path, "a", encoding="utf-8")
        raw = raw.rstrip("\n").replace("\t", " ")
        self._fh.write(f"{source}\t{line_number}\t{reason}\t{raw}\n")
        self._fh.flush()
        self.records += 1

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "QuarantineLog":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class IngestionPolicy:
    """How readers treat malformed/out-of-range records.

    Parameters
    ----------
    mode:
        ``"strict"`` (default) re-raises immediately — the historical
        fail-loud behavior.  ``"lenient"`` quarantines and continues.
    quarantine:
        Side-file path (or an existing :class:`QuarantineLog`) for
        quarantined records; optional — lenient mode without a log
        still counts errors against the budget.
    max_errors:
        The error budget per scan.  Exceeding it raises
        :class:`ErrorBudgetExceeded` even in lenient mode.
    instrumentation:
        Optional :class:`~repro.observability.Instrumentation` hub;
        every quarantined record is emitted as a ``quarantine`` trace
        record and counted under ``quarantined``.
    """

    def __init__(self, mode: str = "strict", *,
                 quarantine: str | Path | QuarantineLog | None = None,
                 max_errors: int = 100, instrumentation=None) -> None:
        if mode not in ("strict", "lenient"):
            raise ValueError(f"mode must be 'strict' or 'lenient', "
                             f"got {mode!r}")
        if max_errors < 0:
            raise ValueError("max_errors must be >= 0")
        self.mode = mode
        self.max_errors = max_errors
        if quarantine is not None and not isinstance(quarantine,
                                                     QuarantineLog):
            quarantine = QuarantineLog(quarantine)
        self.quarantine = quarantine
        self.instrumentation = instrumentation
        self.errors_this_scan = 0
        self.errors_total = 0

    @property
    def lenient(self) -> bool:
        return self.mode == "lenient"

    def begin_scan(self, source: str | Path) -> None:
        """Reset the per-scan budget (called by readers per iteration)."""
        self.errors_this_scan = 0

    def handle(self, source: str | Path, line_number: int, raw: str,
               exc: Exception) -> None:
        """Account one bad record; raise unless lenient and in budget.

        In strict mode re-raises ``exc`` annotated with its location.
        In lenient mode records the quarantine entry and returns — or
        raises :class:`ErrorBudgetExceeded` once the per-scan budget is
        blown.
        """
        if not self.lenient:
            raise type(exc)(
                f"{source}, line {line_number}: {exc}") from exc
        self.errors_this_scan += 1
        self.errors_total += 1
        if self.quarantine is not None:
            self.quarantine.write(source, line_number, str(exc), raw)
        if self.instrumentation is not None:
            self.instrumentation.count("quarantined")
            self.instrumentation.emit({
                "type": "quarantine",
                "source": str(source),
                "line": int(line_number),
                "reason": str(exc),
            })
        if self.errors_this_scan > self.max_errors:
            raise ErrorBudgetExceeded(
                f"{source}: {self.errors_this_scan} malformed records "
                f"exceed the error budget of {self.max_errors} "
                f"(last at line {line_number}: {exc})") from exc

    def close(self) -> None:
        if self.quarantine is not None:
            self.quarantine.close()

    def __enter__(self) -> "IngestionPolicy":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
