"""Seeded fault injection for the ``pytest -m chaos`` suite.

Every wrapper here injects a failure mode the recovery layer claims to
survive, deterministically (seeded or positional — never wall-clock), so
chaos tests are exactly reproducible:

* :class:`CrashingStream` — the process "dies" at record ``N`` of a
  pass (raises :class:`InjectedCrash` mid-iteration);
* :class:`FlakyFileStream` — a :class:`~repro.graph.stream.FileStream`
  whose reads raise transient ``OSError`` s on a seeded schedule,
  exercising the retry-with-backoff path;
* :func:`tear_snapshot` / :func:`corrupt_snapshot` — truncate or
  bit-flip a snapshot file, exercising the integrity checks;
* :class:`FlakyScorer` — a partitioner wrapper whose scoring dies on
  chosen vertices a bounded number of times, exercising the threaded
  executor's supervised worker restarts;
* :class:`FlakyWAL` — a :class:`~repro.service.wal.PlacementLog` whose
  ``append_batch`` raises ``OSError`` while armed (or once per listed
  sequence number), exercising the placement service's WAL-failure →
  read-only degradation and recovery-flush path;
* :class:`SlowEngine` — throttles a live service's engine loop,
  exercising admission control's lag watermark and deadline shedding.

Wrappers subclass or delegate rather than monkeypatch, so they compose
with any stream/partitioner — and, being distinct types, they are never
eligible for the vectorized fast path (``as_array_stream`` converts
exact types only), which is precisely what makes mid-iteration
injection observable.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator

import numpy as np

from ..graph.digraph import AdjacencyRecord
from ..graph.stream import FileStream, VertexStream
from ..service.wal import PlacementLog, WalEntry

__all__ = ["InjectedCrash", "CrashingStream", "FlakyFileStream",
           "FlakyScorer", "FlakyWAL", "SlowEngine", "corrupt_snapshot",
           "tear_snapshot"]


class InjectedCrash(RuntimeError):
    """The simulated process death raised by chaos wrappers."""


class CrashingStream:
    """Wrap a stream so iteration dies just before arrival index ``N``.

    ``crash_at`` counts in absolute arrival order (matching
    ``tell()``/``seek()`` units), so a stream resumed past the crash
    point sails through.  The crash fires ``crashes`` times (default
    once), modelling a process that dies, restarts, and survives.
    """

    def __init__(self, inner: VertexStream, crash_at: int, *,
                 crashes: int = 1) -> None:
        if crash_at < 0:
            raise ValueError("crash_at must be >= 0")
        self._inner = inner
        self.crash_at = crash_at
        self.crashes_left = crashes

    @property
    def num_vertices(self) -> int:
        return self._inner.num_vertices

    @property
    def num_edges(self) -> int:
        return self._inner.num_edges

    @property
    def is_id_ordered(self) -> bool:
        return getattr(self._inner, "is_id_ordered", False)

    def tell(self) -> int:
        return self._inner.tell()

    def seek(self, position: int) -> None:
        self._inner.seek(position)

    def __iter__(self) -> Iterator[AdjacencyRecord]:
        position = self._inner.tell()
        for record in self._inner:
            if position == self.crash_at and self.crashes_left > 0:
                self.crashes_left -= 1
                raise InjectedCrash(
                    f"injected crash at stream position {position}")
            position += 1
            yield record


class FlakyFileStream(FileStream):
    """A :class:`FileStream` whose reads fail transiently, on a seed.

    Each yielded row flips a seeded coin; heads (probability
    ``failure_rate``) raises ``OSError`` as if the disk hiccuped, up to
    ``max_failures`` times total.  Injection is disarmed during the
    constructor's pre-scan so totals discovery always succeeds — the
    interesting path is the partitioning pass, where
    :meth:`FileStream.__iter__`'s retry loop must deliver every record
    exactly once despite the failures.
    """

    def __init__(self, path: str | Path, *, failure_rate: float = 0.01,
                 max_failures: int = 5, seed: int = 0, **kwargs) -> None:
        if not 0.0 <= failure_rate <= 1.0:
            raise ValueError("failure_rate must be in [0, 1]")
        self._rng = np.random.default_rng(seed)
        self.failure_rate = failure_rate
        self.failures_left = max_failures
        self.failures_injected = 0
        self._armed = False
        super().__init__(path, **kwargs)
        self._armed = True

    def _lines(self):
        for item in super()._lines():
            if (self._armed and self.failures_left > 0
                    and self._rng.random() < self.failure_rate):
                self.failures_left -= 1
                self.failures_injected += 1
                raise OSError("injected transient read failure")
            yield item


class FlakyScorer:
    """Partitioner wrapper whose ``_score`` dies on chosen vertices.

    ``die_on`` maps vertex id → how many times scoring that vertex
    raises before succeeding.  With a finite count the failure is
    *transient* (a supervised restart retries the record and wins); an
    effectively infinite count models a poison record that must exhaust
    the restart budget and surface.  Everything else delegates to the
    wrapped partitioner, so this drops into
    :class:`~repro.parallel.executor.ThreadedParallelPartitioner`
    unchanged.
    """

    def __init__(self, base, die_on: dict[int, int], *,
                 error: type[Exception] = InjectedCrash) -> None:
        self._base = base
        self._die_on = dict(die_on)
        self._error = error
        self.deaths = 0

    def __getattr__(self, attr):
        return getattr(self._base, attr)

    def _score(self, record, state):
        remaining = self._die_on.get(record.vertex, 0)
        if remaining > 0:
            self._die_on[record.vertex] = remaining - 1
            self.deaths += 1
            raise self._error(
                f"injected worker death scoring vertex {record.vertex}")
        return self._base._score(record, state)


class FlakyWAL(PlacementLog):
    """A placement WAL whose group commits fail on command.

    Two injection modes, composable:

    * ``fail_at`` — a set of global sequence numbers; a batch containing
      any of them raises once (the matched seqs are then forgotten, so a
      post-recovery flush of the same entries succeeds).  This is the
      declarative "fail the commit carrying seq 120" a chaos schedule
      scripts.
    * :meth:`fail` / :meth:`restore` — arm/disarm a persistent outage
      (every append fails while armed), modelling a disk that stops
      accepting writes and later comes back.

    The failure fires *before* any bytes are written, which is the
    honest model for a failed ``fsync``: the ack contract says nothing
    reached durable storage, and the server must treat the whole batch
    as non-durable.  Plug it into :class:`~repro.service.PlacementService`
    via ``wal_factory=``.
    """

    def __init__(self, directory: str | Path, *, start: int = 0,
                 fsync: bool = True,
                 fail_at: "set[int] | frozenset[int] | tuple[int, ...]" = ()
                 ) -> None:
        self.fail_at = set(fail_at)
        self._armed = False
        self.injected_failures = 0
        super().__init__(directory, start=start, fsync=fsync)

    def fail(self) -> None:
        """Arm the persistent outage: every append now raises."""
        self._armed = True

    def restore(self) -> None:
        """Disarm the outage; appends succeed again."""
        self._armed = False

    @property
    def armed(self) -> bool:
        return self._armed

    def append_batch(self, entries: list[WalEntry]) -> None:
        if entries:
            matched = {e.seq for e in entries} & self.fail_at
            if self._armed or matched:
                self.fail_at -= matched
                self.injected_failures += 1
                raise OSError(
                    "injected WAL append failure"
                    + (f" at seq {sorted(matched)}" if matched else ""))
        super().append_batch(entries)


class SlowEngine:
    """Throttle a live service's engine loop (and restore it).

    Raising ``throttle_seconds`` on a running
    :class:`~repro.service.PlacementService` makes every engine group
    pay an extra sleep — the deterministic stand-in for a degraded
    disk or an overloaded partitioner that drives the admission
    controller's lag watermark and queue-depth shedding without any
    load-generator races.
    """

    def __init__(self, service, throttle_seconds: float) -> None:
        if throttle_seconds < 0:
            raise ValueError("throttle_seconds must be >= 0")
        self._service = service
        self.throttle_seconds = float(throttle_seconds)
        self._saved: float | None = None

    def apply(self) -> None:
        if self._saved is None:
            self._saved = self._service.throttle_seconds
        self._service.throttle_seconds = self.throttle_seconds

    def restore(self) -> None:
        if self._saved is not None:
            self._service.throttle_seconds = self._saved
            self._saved = None

    def __enter__(self) -> "SlowEngine":
        self.apply()
        return self

    def __exit__(self, *exc_info) -> None:
        self.restore()


def tear_snapshot(path: str | Path, *, keep_fraction: float = 0.5) -> None:
    """Truncate a snapshot mid-body, as a crash during write would.

    (The atomic writer makes this state unreachable for real snapshots —
    this simulates a non-atomic copy or a torn filesystem.)
    """
    path = Path(path)
    blob = path.read_bytes()
    cut = max(1, int(len(blob) * keep_fraction))
    path.write_bytes(blob[:cut])


def corrupt_snapshot(path: str | Path, *, seed: int = 0) -> None:
    """Flip one random byte in a snapshot's body (CRC must catch it)."""
    path = Path(path)
    blob = bytearray(path.read_bytes())
    rng = np.random.default_rng(seed)
    # Skip the magic + header-length prefix so the flip lands in content
    # the CRC/body checks are responsible for.
    offset = int(rng.integers(16, len(blob)))
    blob[offset] ^= 0xFF
    path.write_bytes(bytes(blob))
