"""Crash-safe file writes: tmp + fsync + rename.

A writer that dies mid-``write()`` leaves a torn file at the target
path; every durable artifact in this project (snapshots, route tables,
bench JSON) therefore goes through this helper instead.  The write goes
to a temporary sibling in the *same directory* (so the final ``rename``
is atomic on POSIX), the temporary is flushed and fsynced before the
rename, and a failure at any point unlinks the temporary — the target
path only ever holds a complete previous version or a complete new one.
"""

from __future__ import annotations

import gzip
import os
from contextlib import contextmanager
from pathlib import Path
from typing import IO, Iterator

__all__ = ["atomic_writer", "atomic_write_bytes", "atomic_write_text"]


def _tmp_path(path: Path) -> Path:
    """A temporary sibling of ``path`` (same dir ⇒ same filesystem)."""
    return path.with_name(f".{path.name}.tmp.{os.getpid()}")


@contextmanager
def atomic_writer(path: str | Path, mode: str = "w", *,
                  encoding: str | None = "utf-8") -> Iterator[IO]:
    """Context manager yielding a handle whose contents replace ``path``.

    ``mode`` is ``"w"`` (text) or ``"wb"`` (binary).  Paths ending in
    ``.gz`` are gzip-compressed transparently, matching the readers in
    :mod:`repro.graph.io` and :mod:`repro.partitioning.persistence`.
    On a clean exit the temporary is fsynced and renamed over ``path``;
    on an exception it is removed and ``path`` is left untouched.
    """
    path = Path(path)
    if mode not in ("w", "wb"):
        raise ValueError(f"mode must be 'w' or 'wb', got {mode!r}")
    tmp = _tmp_path(path)
    binary = mode == "wb"
    if path.suffix == ".gz":
        fh: IO = gzip.open(tmp, mode if binary else mode + "t",
                           encoding=None if binary else encoding)
    else:
        fh = open(tmp, mode, encoding=None if binary else encoding)
    try:
        yield fh
    except BaseException:
        fh.close()
        tmp.unlink(missing_ok=True)
        raise
    # Close before fsync: gzip writes its trailer at close time, and a
    # rename of un-fsynced data can surface as a torn file after a crash.
    fh.close()
    fd = os.open(tmp, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)
    os.replace(tmp, path)


def atomic_write_bytes(path: str | Path, data: bytes) -> None:
    """Atomically replace ``path`` with ``data`` (no gzip wrapping)."""
    path = Path(path)
    tmp = _tmp_path(path)
    try:
        with open(tmp, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    os.replace(tmp, path)


def atomic_write_text(path: str | Path, text: str, *,
                      encoding: str = "utf-8") -> None:
    """Atomically replace ``path`` with ``text`` (gzip-transparent)."""
    with atomic_writer(path, "w", encoding=encoding) as fh:
        fh.write(text)
