"""repro — reproduction of "Lightweight Streaming Graph Partitioning by
Fully Utilizing Knowledge from Local View" (ICDCS 2023).

Public API tour
---------------
Graphs (substrate)::

    from repro.graph import community_web_graph, GraphStream
    graph = community_web_graph(10_000, seed=7)
    stream = GraphStream(graph)

Partitioners (the paper's contribution + baselines), via the stable
three-call facade (:mod:`repro.api`)::

    from repro import make_partitioner, partition_stream, evaluate
    result = partition_stream(graph, method="spnl", num_partitions=32,
                              num_shards="auto")
    print(evaluate(graph, result.assignment))

or explicitly (deep import paths keep working)::

    from repro.partitioning import SPNLPartitioner, evaluate
    result = SPNLPartitioner(num_partitions=32, num_shards="auto")\
        .partition(stream)

Observability (:mod:`repro.observability`) traces a pass mid-stream::

    from repro.observability import Instrumentation, JsonlSink
    hub = Instrumentation([JsonlSink("trace.jsonl")], probe_every=1000)
    result = partition_stream(graph, "spnl", 32, instrumentation=hub)
    hub.close()

Offline baselines (METIS-like multilevel, XtraPuLP-like label propagation)
live in :mod:`repro.offline`; the parallel streaming technique with RCT
dependency detection in :mod:`repro.parallel`; a Pregel-style BSP runtime
that shows what the cut actually costs in :mod:`repro.runtime`; and the
benchmark harness regenerating every table/figure in :mod:`repro.bench`.
"""

from . import graph, partitioning

__version__ = "1.0.0"

# Re-export the headline API at package top level for quickstart ergonomics.
from .graph import DiGraph, GraphStream, community_web_graph  # noqa: E402
from .partitioning import (  # noqa: E402
    FennelPartitioner,
    LDGPartitioner,
    PartitionAssignment,
    PartitionConfig,
    SPNLPartitioner,
    SPNPartitioner,
    evaluate,
)

# The stable facade (documented in repro.api): build by name, partition in
# one call, evaluate — plus the online pair serve/connect (the placement
# service, docs/service.md).  Old deep-module import paths stay valid
# aliases.
from .api import (  # noqa: E402
    available_partitioners,
    connect,
    make_partitioner,
    partition_stream,
    serve,
)

__all__ = [
    "DiGraph",
    "FennelPartitioner",
    "GraphStream",
    "LDGPartitioner",
    "PartitionAssignment",
    "PartitionConfig",
    "SPNLPartitioner",
    "SPNPartitioner",
    "available_partitioners",
    "community_web_graph",
    "connect",
    "evaluate",
    "graph",
    "make_partitioner",
    "partition_stream",
    "partitioning",
    "serve",
    "__version__",
]
