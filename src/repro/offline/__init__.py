"""Offline baselines: METIS-like multilevel and XtraPuLP-like label
propagation, plus the weighted-graph substrate they share."""

from .coarsen import CoarseningLevel, coarsen, contract, heavy_edge_matching
from .initial import region_growing_partition
from .label_propagation import LabelPropagationPartitioner
from .multilevel import MultilevelPartitioner, OfflineResult, OutOfMemoryError
from .refine import partition_edge_cut, refine
from .spectral import SpectralPartitioner
from .wgraph import WeightedGraph

__all__ = [
    "CoarseningLevel",
    "LabelPropagationPartitioner",
    "MultilevelPartitioner",
    "OfflineResult",
    "OutOfMemoryError",
    "SpectralPartitioner",
    "WeightedGraph",
    "coarsen",
    "contract",
    "heavy_edge_matching",
    "partition_edge_cut",
    "refine",
    "region_growing_partition",
]
