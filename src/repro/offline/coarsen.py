"""Heavy-edge-matching coarsening (the METIS family's first phase).

Each level matches vertices with their heaviest-weight unmatched neighbor
and contracts matched pairs into super-vertices, roughly halving the graph
while preserving its cut structure.  The hierarchy of coarse graphs — the
"large amount of intermediate data" that makes real METIS run out of
memory on sk2005/uk2007 (paper Table V) — is retained for the uncoarsening
phase, and its total byte count is what our OOM simulation charges.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .wgraph import WeightedGraph

__all__ = ["CoarseningLevel", "heavy_edge_matching", "contract", "coarsen"]


@dataclass
class CoarseningLevel:
    """One step of the hierarchy: the finer graph + its projection map."""

    graph: WeightedGraph
    coarse_of: np.ndarray  # fine vertex id -> coarse vertex id


def heavy_edge_matching(graph: WeightedGraph, *, rng: np.random.Generator,
                        rounds: int = 4,
                        max_weight: int | None = None) -> np.ndarray:
    """Mutual heavy-edge matching, fully vectorized.

    Each round, every unmatched vertex nominates its heaviest still-
    unmatched neighbor (ties broken by a per-round random jitter); pairs
    that nominate *each other* are matched.  This is the handshaking
    scheme parallel multilevel partitioners use, converging to a maximal
    matching in a few rounds with quality equivalent to sequential
    heavy-edge matching.  Returns ``match`` with ``match[v]`` = partner,
    or ``v`` itself when the vertex stays unmatched.

    ``max_weight`` rejects pairs whose combined vertex weight exceeds it
    (METIS's maxvwgt rule) — without this cap, super-vertices grow too
    heavy to balance at initial-partitioning time.
    """
    n = graph.num_vertices
    match = np.full(n, -1, dtype=np.int64)
    src = np.repeat(np.arange(n, dtype=np.int64), np.diff(graph.indptr))
    dst = graph.indices
    base_w = graph.edge_weights.astype(np.float64)
    vw = graph.vertex_weights
    for _ in range(rounds):
        live = (match[src] == -1) & (match[dst] == -1) & (src != dst)
        if max_weight is not None:
            live &= (vw[src] + vw[dst]) <= max_weight
        if not live.any():
            break
        ls, ld = src[live], dst[live]
        # Random jitter < 1 makes tie-breaks symmetric ((u,v) and (v,u)
        # must see the same jitter, hence the id-pair hash, not raw rng).
        lo_id = np.minimum(ls, ld)
        hi_id = np.maximum(ls, ld)
        jitter = ((lo_id * 2654435761 + hi_id * 40503) % 1024) / 1025.0
        w = base_w[live] + jitter
        order = np.lexsort((w, ls))
        ls_sorted, ld_sorted = ls[order], ld[order]
        # Last entry per src segment = heaviest nomination.
        last = np.empty(len(ls_sorted), dtype=bool)
        last[-1] = True
        np.not_equal(ls_sorted[1:], ls_sorted[:-1], out=last[:-1])
        candidate = np.full(n, -1, dtype=np.int64)
        candidate[ls_sorted[last]] = ld_sorted[last]
        has = candidate != -1
        mutual = has.copy()
        mutual[has] = candidate[candidate[has]] == np.arange(n)[has]
        # Avoid double-writing: only the lower endpoint applies the pair.
        pick = mutual & (np.arange(n) < candidate)
        a = np.arange(n)[pick]
        b = candidate[pick]
        match[a] = b
        match[b] = a
    unmatched = match == -1
    match[unmatched] = np.arange(n)[unmatched]
    return match


def contract(graph: WeightedGraph,
             match: np.ndarray) -> tuple[WeightedGraph, np.ndarray]:
    """Contract matched pairs into a coarse graph.

    Returns ``(coarse_graph, coarse_of)`` where ``coarse_of[v]`` maps each
    fine vertex to its super-vertex.  Vertex weights add; parallel edges
    between super-vertices merge with summed weights; intra-pair edges
    vanish (they can never be cut again at coarser levels).
    """
    n = graph.num_vertices
    # Number super-vertices: the lower id of each pair is the representative.
    representative = np.minimum(np.arange(n), match)
    uniq, coarse_of = np.unique(representative, return_inverse=True)
    nc = len(uniq)

    src = np.repeat(np.arange(n), np.diff(graph.indptr))
    csrc = coarse_of[src]
    cdst = coarse_of[graph.indices]
    keep = csrc != cdst
    csrc, cdst, w = csrc[keep], cdst[keep], graph.edge_weights[keep]
    if len(csrc):
        key = csrc * nc + cdst
        order = np.argsort(key, kind="stable")
        key, csrc, cdst, w = key[order], csrc[order], cdst[order], w[order]
        boundary = np.empty(len(key), dtype=bool)
        boundary[0] = True
        np.not_equal(key[1:], key[:-1], out=boundary[1:])
        group = np.cumsum(boundary) - 1
        merged_w = np.bincount(group, weights=w).astype(np.int64)
        csrc, cdst = csrc[boundary], cdst[boundary]
    else:
        merged_w = np.empty(0, dtype=np.int64)
    indptr = np.zeros(nc + 1, dtype=np.int64)
    if len(csrc):
        np.cumsum(np.bincount(csrc, minlength=nc), out=indptr[1:])
    vertex_weights = np.bincount(coarse_of, weights=graph.vertex_weights,
                                 minlength=nc).astype(np.int64)
    coarse = WeightedGraph(indptr, cdst, merged_w, vertex_weights,
                           name=f"{graph.name}/c")
    return coarse, coarse_of


def coarsen(graph: WeightedGraph, *, target_vertices: int,
            max_levels: int = 40, min_shrink: float = 0.95,
            seed: int = 0) -> list[CoarseningLevel]:
    """Build the full coarsening hierarchy.

    Stops when the coarse graph is below ``target_vertices``, the shrink
    factor stalls (matching saturated), or ``max_levels`` is hit.  The
    returned list is ordered fine → coarse; ``levels[-1].graph`` is the
    coarsest graph handed to initial partitioning.
    """
    rng = np.random.default_rng(seed)
    levels: list[CoarseningLevel] = []
    current = graph
    # METIS's maxvwgt: no super-vertex may exceed 1.5× the average weight
    # of a coarsest-level vertex, so initial partitioning stays balanceable.
    max_weight = max(1, int(1.5 * graph.total_vertex_weight
                            / max(1, target_vertices)))
    for _ in range(max_levels):
        if current.num_vertices <= target_vertices:
            break
        match = heavy_edge_matching(current, rng=rng, max_weight=max_weight)
        coarse, coarse_of = contract(current, match)
        levels.append(CoarseningLevel(graph=current, coarse_of=coarse_of))
        if coarse.num_vertices >= current.num_vertices * min_shrink:
            current = coarse
            break  # matching stalled; stop rather than loop forever
        current = coarse
    levels.append(CoarseningLevel(
        graph=current, coarse_of=np.arange(current.num_vertices)))
    return levels
