"""METIS-like multilevel K-way partitioner (offline quality baseline).

Coarsen (heavy-edge matching) → initial partition (region growing) →
uncoarsen with boundary refinement at every level.  This is the same
algorithmic family as METIS, which the paper treats as the quality
benchmark, and it inherits the family's costs: the full graph plus the
entire coarsening hierarchy live in memory at once, which is exactly why
METIS records ``F`` (out of memory) on sk2005/uk2007 in Table V.  The
``memory_budget_bytes`` option reproduces that failure mode: the run
aborts with :class:`OutOfMemoryError` when the hierarchy estimate exceeds
the budget.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

from ..graph.digraph import DiGraph
from ..partitioning.assignment import PartitionAssignment
from ..partitioning.registry import register
from .coarsen import coarsen
from .initial import region_growing_partition
from .refine import partition_edge_cut, refine
from .wgraph import WeightedGraph

__all__ = ["MultilevelPartitioner", "OfflineResult", "OutOfMemoryError"]


class OutOfMemoryError(RuntimeError):
    """Raised when an offline run exceeds its simulated memory budget.

    Stands in for the paper's 'F' entries: METIS/XtraPuLP exhausting 64 GB
    on the largest graphs while SPNL streams through them.
    """

    def __init__(self, needed_bytes: int, budget_bytes: int) -> None:
        super().__init__(
            f"simulated OOM: needs ~{needed_bytes / 1e6:.1f} MB, "
            f"budget {budget_bytes / 1e6:.1f} MB")
        self.needed_bytes = needed_bytes
        self.budget_bytes = budget_bytes


@dataclass
class OfflineResult:
    """Outcome of one offline partitioning run."""

    assignment: PartitionAssignment
    partitioner: str
    elapsed_seconds: float
    num_partitions: int
    stats: dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        return (f"{self.partitioner}: K={self.num_partitions} in "
                f"{self.elapsed_seconds:.3f}s")


@register("metis", kind="offline",
          summary="METIS-like multilevel baseline")
class MultilevelPartitioner:
    """The METIS-like offline baseline.

    Parameters
    ----------
    num_partitions:
        ``K``.
    slack:
        Balance tolerance for refinement quotas (METIS default ufactor
        corresponds to ~1.03; we default 1.05).
    coarsest_vertices:
        Stop coarsening below this many super-vertices
        (``None`` → ``max(120, 25·K)``).
    refine_passes:
        Boundary-refinement passes per level.
    memory_budget_bytes:
        Simulated RAM budget; ``None`` disables the OOM check.
    seed:
        Determinism for matching order and seed selection.
    """

    def __init__(self, num_partitions: int, *, slack: float = 1.05,
                 coarsest_vertices: int | None = None,
                 refine_passes: int = 8,
                 memory_budget_bytes: int | None = None,
                 seed: int = 0) -> None:
        if num_partitions < 1:
            raise ValueError("num_partitions must be >= 1")
        self.num_partitions = num_partitions
        self.slack = slack
        self.coarsest_vertices = coarsest_vertices
        self.refine_passes = refine_passes
        self.memory_budget_bytes = memory_budget_bytes
        self.seed = seed

    @property
    def name(self) -> str:
        return "METIS-like"

    def __repr__(self) -> str:
        return f"{self.name}(K={self.num_partitions})"

    # ------------------------------------------------------------------
    def partition(self, graph: DiGraph) -> OfflineResult:
        """Run the full multilevel pipeline on ``graph``."""
        start = time.perf_counter()
        wgraph = WeightedGraph.from_digraph(graph)
        target = self.coarsest_vertices or max(120, 25 * self.num_partitions)
        levels = coarsen(wgraph, target_vertices=target, seed=self.seed)

        hierarchy_bytes = sum(level.graph.nbytes() for level in levels)
        if (self.memory_budget_bytes is not None
                and hierarchy_bytes > self.memory_budget_bytes):
            raise OutOfMemoryError(hierarchy_bytes, self.memory_budget_bytes)

        coarsest = levels[-1].graph
        part = region_growing_partition(
            coarsest, self.num_partitions, slack=self.slack, seed=self.seed)
        part = refine(coarsest, part, self.num_partitions,
                      slack=self.slack, max_passes=self.refine_passes)

        # Uncoarsen: project through each level's map, then refine.
        for level in reversed(levels[:-1]):
            part = part[level.coarse_of]
            part = refine(level.graph, part, self.num_partitions,
                          slack=self.slack, max_passes=self.refine_passes)

        elapsed = time.perf_counter() - start
        assignment = PartitionAssignment(part, self.num_partitions)
        return OfflineResult(
            assignment=assignment,
            partitioner=self.name,
            elapsed_seconds=elapsed,
            num_partitions=self.num_partitions,
            stats={
                "levels": len(levels),
                "coarsest_vertices": coarsest.num_vertices,
                "hierarchy_bytes": hierarchy_bytes,
                "final_weighted_cut": partition_edge_cut(wgraph, part),
            },
        )
