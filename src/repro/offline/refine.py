"""Greedy K-way boundary refinement (multilevel phase 3).

After projecting a partition from a coarser level, boundary vertices are
moved to the neighboring partition with the largest positive gain (external
connection minus internal connection) as long as the balance constraint
holds — the K-way FM/KL variant used by multilevel partitioners.  Each pass
recomputes connectivity vectorized over all edges, then applies moves in
descending-gain order with live balance accounting.
"""

from __future__ import annotations

import numpy as np

from .wgraph import WeightedGraph

__all__ = ["partition_edge_cut", "refine"]


def partition_edge_cut(graph: WeightedGraph, part: np.ndarray) -> int:
    """Weighted cut of a partition on a weighted graph (each undirected
    edge counted once)."""
    src = np.repeat(np.arange(graph.num_vertices), np.diff(graph.indptr))
    crossing = part[src] != part[graph.indices]
    return int(graph.edge_weights[crossing].sum() // 2)


def _connectivity(graph: WeightedGraph, part: np.ndarray,
                  num_partitions: int) -> np.ndarray:
    """``conn[v, j]`` = total edge weight from ``v`` into partition ``j``."""
    n = graph.num_vertices
    src = np.repeat(np.arange(n, dtype=np.int64), np.diff(graph.indptr))
    flat = src * num_partitions + part[graph.indices]
    conn = np.bincount(flat, weights=graph.edge_weights,
                       minlength=n * num_partitions)
    return conn.reshape(n, num_partitions)


def refine(graph: WeightedGraph, part: np.ndarray, num_partitions: int, *,
           slack: float = 1.05, max_passes: int = 8,
           min_gain_fraction: float = 0.001,
           frozen: np.ndarray | None = None) -> np.ndarray:
    """Refine ``part`` in place-style (returns a new array).

    Stops early when a pass improves the cut by less than
    ``min_gain_fraction`` of the current cut, mirroring the diminishing-
    returns cutoff real refiners use.

    ``frozen`` (boolean mask) pins vertices that may never move — the
    buffered hybrid partitioner uses this for its per-partition anchor
    super-vertices, which represent the already-streamed portion of the
    graph.
    """
    part = part.astype(np.int32).copy()
    n = graph.num_vertices
    weights = graph.vertex_weights
    total = int(weights.sum())
    quota = max(1.0, slack * total / num_partitions)
    part_weight = np.bincount(part, weights=weights,
                              minlength=num_partitions).astype(np.int64)
    previous_cut = partition_edge_cut(graph, part)

    for _ in range(max_passes):
        before_pass = part.copy()
        before_weights = part_weight.copy()
        conn = _connectivity(graph, part, num_partitions)
        internal = conn[np.arange(n), part]
        ext = conn.copy()
        ext[np.arange(n), part] = -1
        best_target = np.argmax(ext, axis=1).astype(np.int32)
        best_ext = ext[np.arange(n), best_target]
        gain = best_ext - internal
        if frozen is not None:
            gain = np.where(frozen, -1.0, gain)
        movers = np.nonzero(gain > 0)[0]
        if len(movers) == 0:
            break
        # Highest gains first; moves applied greedily with live balance
        # but connectivity frozen for the pass (recomputed next pass).
        movers = movers[np.argsort(-gain[movers], kind="stable")]
        moved = 0
        for v in movers.tolist():
            src_pid = part[v]
            dst_pid = best_target[v]
            wv = weights[v]
            if part_weight[dst_pid] + wv > quota:
                continue
            # Keep the source partition from emptying out entirely.
            if part_weight[src_pid] - wv <= 0:
                continue
            part[v] = dst_pid
            part_weight[src_pid] -= wv
            part_weight[dst_pid] += wv
            moved += 1
        if moved == 0:
            break
        cut = partition_edge_cut(graph, part)
        if cut > previous_cut:
            # Stale-gain thrash made this pass a net loss: revert it.
            part = before_pass
            part_weight = before_weights
            break
        if previous_cut - cut < min_gain_fraction * max(previous_cut, 1):
            previous_cut = cut
            break
        previous_cut = cut
    return part
