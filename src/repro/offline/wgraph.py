"""Weighted undirected graphs for the offline baselines.

METIS-style multilevel partitioning contracts vertices, so it needs vertex
weights (how many original vertices a super-vertex represents) and edge
weights (how many original edges a super-edge aggregates).  The streaming
side of the library never needs this, so it lives here with the offline
code rather than in the core graph substrate.
"""

from __future__ import annotations

import numpy as np

from ..graph.digraph import DiGraph

__all__ = ["WeightedGraph"]


class WeightedGraph:
    """Symmetric CSR graph with integer vertex and edge weights.

    The adjacency is stored in both directions (like METIS's internal
    format): edge ``{u, v}`` appears in ``u``'s row and in ``v``'s row,
    with equal weights.
    """

    __slots__ = ("indptr", "indices", "edge_weights", "vertex_weights",
                 "name")

    def __init__(self, indptr: np.ndarray, indices: np.ndarray,
                 edge_weights: np.ndarray, vertex_weights: np.ndarray,
                 name: str = "wgraph") -> None:
        self.indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        self.indices = np.ascontiguousarray(indices, dtype=np.int64)
        self.edge_weights = np.ascontiguousarray(edge_weights,
                                                 dtype=np.int64)
        self.vertex_weights = np.ascontiguousarray(vertex_weights,
                                                   dtype=np.int64)
        if len(self.indices) != len(self.edge_weights):
            raise ValueError("edge_weights must align with indices")
        if len(self.vertex_weights) != self.num_vertices:
            raise ValueError("vertex_weights must cover every vertex")
        self.name = name

    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return len(self.indptr) - 1

    @property
    def num_adjacency_entries(self) -> int:
        """Directed adjacency entries (2× the undirected edge count)."""
        return len(self.indices)

    @property
    def total_vertex_weight(self) -> int:
        return int(self.vertex_weights.sum())

    def neighbors(self, v: int) -> tuple[np.ndarray, np.ndarray]:
        """``(neighbor ids, edge weights)`` of vertex ``v``."""
        lo, hi = self.indptr[v], self.indptr[v + 1]
        return self.indices[lo:hi], self.edge_weights[lo:hi]

    def degree(self, v: int) -> int:
        return int(self.indptr[v + 1] - self.indptr[v])

    def nbytes(self) -> int:
        """Bytes of the four arrays (drives the OOM simulation)."""
        return int(self.indptr.nbytes + self.indices.nbytes
                   + self.edge_weights.nbytes + self.vertex_weights.nbytes)

    def __repr__(self) -> str:
        return (f"WeightedGraph(|V|={self.num_vertices}, "
                f"entries={self.num_adjacency_entries})")

    # ------------------------------------------------------------------
    @staticmethod
    def from_digraph(graph: DiGraph) -> "WeightedGraph":
        """Symmetrize a directed graph into unit-weight undirected form.

        Anti-parallel edge pairs ``(u,v)`` and ``(v,u)`` collapse into one
        undirected edge of weight 2, so refinement gains measure the true
        number of directed edges saved.
        """
        src, dst = graph.edge_array()
        all_src = np.concatenate([src, dst])
        all_dst = np.concatenate([dst, src])
        keep = all_src != all_dst
        all_src, all_dst = all_src[keep], all_dst[keep]
        n = graph.num_vertices
        vertex_weights = np.ones(n, dtype=np.int64)
        if len(all_src) == 0:
            return WeightedGraph(np.zeros(n + 1, dtype=np.int64),
                                 np.empty(0, dtype=np.int64),
                                 np.empty(0, dtype=np.int64),
                                 vertex_weights, name=graph.name)
        key = all_src * n + all_dst
        order = np.argsort(key, kind="stable")
        key = key[order]
        # Aggregate duplicate pairs into weights.
        boundary = np.empty(len(key), dtype=bool)
        boundary[0] = True
        np.not_equal(key[1:], key[:-1], out=boundary[1:])
        group = np.cumsum(boundary) - 1
        weights = np.bincount(group).astype(np.int64)
        uniq_src = all_src[order][boundary]
        uniq_dst = all_dst[order][boundary]
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(np.bincount(uniq_src, minlength=n), out=indptr[1:])
        return WeightedGraph(indptr, uniq_dst, weights, vertex_weights,
                             name=graph.name)
