"""XtraPuLP-like constrained label-propagation partitioner.

XtraPuLP (Slota et al., TPDS 2020) partitions trillion-edge graphs with
iterative, balance-constrained label propagation instead of multilevel
coarsening.  The paper uses it as the scalable offline competitor: faster
and leaner than METIS, at the price of a visibly higher ECR (Table V).

This reproduction implements the same family faithfully at laptop scale:

* labels initialized randomly but balanced (XtraPuLP's default; a
  ``block`` mode is offered for the locality ablation);
* synchronous rounds: every vertex computes the label maximizing its
  weighted neighbor agreement (PuLP's "label balancing vs. edge
  balancing" phases collapse into one vertex-balance-constrained phase
  here, matching how the paper runs it: ``δ_v`` enforced, ``δ_e`` loose);
* per-round move quotas cap inflow so no label exceeds its size ceiling —
  the balance constraint propagation of PuLP;
* an optional ``parallel`` flag runs the update in asynchronous batches
  (stale labels within a batch), modelling XtraPuLP's shared-memory mode,
  which the paper shows degrades ECR by up to 47%.

Everything is vectorized over the edge arrays, so a round costs O(|E|).
"""

from __future__ import annotations

import time

import numpy as np

from ..graph.digraph import DiGraph
from ..partitioning.assignment import PartitionAssignment
from ..partitioning.registry import register
from .multilevel import OfflineResult, OutOfMemoryError
from .wgraph import WeightedGraph

__all__ = ["LabelPropagationPartitioner"]


@register("xtrapulp", kind="offline",
          summary="XtraPuLP-like label propagation baseline")
class LabelPropagationPartitioner:
    """The XtraPuLP-like offline baseline.

    Parameters
    ----------
    num_partitions:
        ``K``.
    rounds:
        Synchronous label-propagation rounds (PuLP uses a comparable
        small constant; quality saturates quickly).
    slack:
        Vertex-balance ceiling per label (the paper configures XtraPuLP
        with δ_v = 1.0, i.e. tight; we default 1.05 to avoid degenerate
        rejections at laptop scale).
    parallel:
        Simulate shared-memory asynchronous batches (stale reads inside a
        batch), reproducing the parallel quality degradation of Table V.
    batch_size:
        Vertices per asynchronous batch when ``parallel`` is set.
    init:
        ``"random"`` (XtraPuLP's default, used in the paper's tables) or
        ``"block"`` (contiguous id chunks, for the locality ablation).
    memory_budget_bytes:
        Simulated RAM budget covering the undirected working graph plus
        label arrays; ``None`` disables the check.
    """

    def __init__(self, num_partitions: int, *, rounds: int = 16,
                 slack: float = 1.05, parallel: bool = False,
                 batch_size: int = 4096, init: str = "random",
                 memory_budget_bytes: int | None = None,
                 seed: int = 0) -> None:
        if num_partitions < 1:
            raise ValueError("num_partitions must be >= 1")
        self.num_partitions = num_partitions
        self.rounds = rounds
        self.slack = slack
        self.parallel = parallel
        self.batch_size = batch_size
        if init not in ("random", "block"):
            raise ValueError("init must be 'random' or 'block'")
        self.init = init
        self.memory_budget_bytes = memory_budget_bytes
        self.seed = seed

    @property
    def name(self) -> str:
        return "XtraPuLP-like" + ("(par)" if self.parallel else "")

    def __repr__(self) -> str:
        return f"{self.name}(K={self.num_partitions})"

    # ------------------------------------------------------------------
    def _label_scores(self, src: np.ndarray, dst: np.ndarray,
                      weights: np.ndarray, labels: np.ndarray,
                      n: int) -> np.ndarray:
        """``scores[v, j]`` = edge weight from ``v`` into label ``j``."""
        k = self.num_partitions
        flat = src * k + labels[dst]
        return np.bincount(flat, weights=weights,
                           minlength=n * k).reshape(n, k)

    def _apply_moves(self, labels: np.ndarray, desired: np.ndarray,
                     gains: np.ndarray, counts: np.ndarray,
                     ceiling: float) -> int:
        """Apply desired moves best-gain-first under the size ceiling."""
        movers = np.nonzero((desired != labels) & (gains > 0))[0]
        if len(movers) == 0:
            return 0
        movers = movers[np.argsort(-gains[movers], kind="stable")]
        moved = 0
        for v in movers.tolist():
            target = desired[v]
            if counts[target] + 1 > ceiling:
                continue
            if counts[labels[v]] <= 1:
                continue
            counts[labels[v]] -= 1
            counts[target] += 1
            labels[v] = target
            moved += 1
        return moved

    def partition(self, graph: DiGraph) -> OfflineResult:
        """Run constrained label propagation on ``graph``."""
        start = time.perf_counter()
        wgraph = WeightedGraph.from_digraph(graph)
        n = wgraph.num_vertices
        k = self.num_partitions

        working_bytes = wgraph.nbytes() + n * (8 * k + 16)
        if (self.memory_budget_bytes is not None
                and working_bytes > self.memory_budget_bytes):
            raise OutOfMemoryError(working_bytes, self.memory_budget_bytes)

        src = np.repeat(np.arange(n, dtype=np.int64),
                        np.diff(wgraph.indptr))
        dst = wgraph.indices
        ew = wgraph.edge_weights.astype(np.float64)

        rng = np.random.default_rng(self.seed)
        if self.init == "block":
            # Contiguous chunks of the id space (strong on BFS-ordered
            # graphs; offered for the locality ablation).
            labels = (np.arange(n, dtype=np.int64) * k
                      // max(1, n)).astype(np.int32)
        else:
            # Balanced random init: XtraPuLP's default behaviour, whose
            # local optima explain its ECR gap to METIS in Table V.
            labels = np.tile(np.arange(k, dtype=np.int32),
                             n // k + 1)[:n]
            rng.shuffle(labels)
        counts = np.bincount(labels, minlength=k).astype(np.int64)
        ceiling = max(1.0, self.slack * n / k)
        rounds_run = 0

        for round_idx in range(self.rounds):
            rounds_run += 1
            if not self.parallel:
                scores = self._label_scores(src, dst, ew, labels, n)
                current = scores[np.arange(n), labels]
                masked = scores.copy()
                masked[np.arange(n), labels] = -1.0
                desired = np.argmax(masked, axis=1).astype(np.int32)
                gains = masked[np.arange(n), desired] - current
                moved = self._apply_moves(labels, desired, gains, counts,
                                          ceiling)
            else:
                # Asynchronous batches over a random vertex order: every
                # batch scores against labels stale by up to batch_size
                # updates — the shared-memory race XtraPuLP tolerates.
                moved = 0
                order = rng.permutation(n)
                for lo in range(0, n, self.batch_size):
                    batch = order[lo:lo + self.batch_size]
                    in_batch = np.zeros(n, dtype=bool)
                    in_batch[batch] = True
                    edge_sel = in_batch[src]
                    bsrc, bdst = src[edge_sel], dst[edge_sel]
                    bw = ew[edge_sel]
                    flat = bsrc * k + labels[bdst]
                    scores = np.bincount(
                        flat, weights=bw, minlength=n * k).reshape(n, k)
                    current = scores[batch, labels[batch]]
                    masked = scores[batch]
                    masked[np.arange(len(batch)), labels[batch]] = -1.0
                    desired_b = np.argmax(masked, axis=1).astype(np.int32)
                    gains_b = (masked[np.arange(len(batch)), desired_b]
                               - current)
                    desired = labels.copy()
                    desired[batch] = desired_b
                    gains = np.full(n, -1.0)
                    gains[batch] = gains_b
                    moved += self._apply_moves(labels, desired, gains,
                                               counts, ceiling)
            if moved == 0:
                break

        elapsed = time.perf_counter() - start
        assignment = PartitionAssignment(labels, k)
        return OfflineResult(
            assignment=assignment,
            partitioner=self.name,
            elapsed_seconds=elapsed,
            num_partitions=k,
            stats={"rounds": rounds_run,
                   "working_bytes": working_bytes},
        )
