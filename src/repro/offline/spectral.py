"""Recursive spectral bisection (optional offline baseline; needs scipy).

Not part of the paper's comparison, but the third classical offline
family next to multilevel and label propagation: split on the sign of
the Fiedler vector (the Laplacian's second eigenvector), recurse until K
parts.  Included because (a) it is the textbook quality reference on
mesh-like graphs, and (b) it shows where eigensolvers stop being
practical — exactly the scalability argument the paper makes against
offline methods in general.

Import requires :mod:`scipy`; the class raises a clear error otherwise.
"""

from __future__ import annotations

import time

import numpy as np

from ..graph.digraph import DiGraph
from ..partitioning.assignment import PartitionAssignment
from .multilevel import OfflineResult
from .wgraph import WeightedGraph

__all__ = ["SpectralPartitioner"]


def _require_scipy():
    try:
        import scipy.sparse  # noqa: F401
        import scipy.sparse.linalg  # noqa: F401
    except ImportError as exc:  # pragma: no cover - env without scipy
        raise ImportError(
            "SpectralPartitioner needs scipy; install repro[full]"
        ) from exc


class SpectralPartitioner:
    """Recursive spectral bisection into K parts.

    Parameters
    ----------
    num_partitions:
        ``K`` (any integer ≥ 1; non-powers-of-two split unevenly by
        weighted median, keeping balance).
    seed:
        Start vector seed for the iterative eigensolver.
    """

    def __init__(self, num_partitions: int, *, seed: int = 0) -> None:
        if num_partitions < 1:
            raise ValueError("num_partitions must be >= 1")
        _require_scipy()
        self.num_partitions = num_partitions
        self.seed = seed

    @property
    def name(self) -> str:
        return "Spectral"

    def __repr__(self) -> str:
        return f"{self.name}(K={self.num_partitions})"

    # ------------------------------------------------------------------
    def _fiedler_split(self, adjacency, weights: np.ndarray,
                       rng: np.random.Generator,
                       target_fraction: float) -> np.ndarray:
        """Boolean mask: True = right side of the bisection."""
        import scipy.sparse as sp
        import scipy.sparse.linalg as spla

        n = adjacency.shape[0]
        if n <= 2:
            mask = np.zeros(n, dtype=bool)
            mask[n // 2:] = True
            return mask
        degree = np.asarray(adjacency.sum(axis=1)).ravel()
        laplacian = sp.diags(degree) - adjacency
        try:
            # smallest two eigenpairs; Fiedler = second
            vals, vecs = spla.eigsh(
                laplacian.asfptype(), k=2, sigma=-1e-6, which="LM",
                v0=rng.random(n), maxiter=max(200, 10 * n), tol=1e-6)
            fiedler = vecs[:, np.argsort(vals)[1]]
        except Exception:
            # eigensolver failure (disconnected pieces etc.): fall back
            # to the id order, which at least preserves locality
            fiedler = np.arange(n, dtype=np.float64)
        # weighted split at the target fraction of total vertex weight
        order = np.argsort(fiedler, kind="stable")
        cumulative = np.cumsum(weights[order])
        threshold = target_fraction * cumulative[-1]
        split_at = int(np.searchsorted(cumulative, threshold)) + 1
        mask = np.zeros(n, dtype=bool)
        mask[order[min(split_at, n - 1):]] = True
        if mask.all() or not mask.any():  # degenerate; force a split
            mask[:] = False
            mask[order[n // 2:]] = True
        return mask

    def _recurse(self, adjacency, weights: np.ndarray,
                 vertex_ids: np.ndarray, k: int, next_pid: int,
                 out: np.ndarray, rng: np.random.Generator) -> int:
        if k <= 1 or len(vertex_ids) <= 1:
            out[vertex_ids] = next_pid
            return next_pid + 1
        left_k = k // 2
        mask = self._fiedler_split(adjacency, weights, rng,
                                   target_fraction=left_k / k)
        left_idx = np.nonzero(~mask)[0]
        right_idx = np.nonzero(mask)[0]
        sub_left = adjacency[left_idx][:, left_idx]
        sub_right = adjacency[right_idx][:, right_idx]
        next_pid = self._recurse(sub_left, weights[left_idx],
                                 vertex_ids[left_idx], left_k,
                                 next_pid, out, rng)
        next_pid = self._recurse(sub_right, weights[right_idx],
                                 vertex_ids[right_idx], k - left_k,
                                 next_pid, out, rng)
        return next_pid

    def partition(self, graph: DiGraph) -> OfflineResult:
        """Run recursive spectral bisection on ``graph``."""
        import scipy.sparse as sp

        start = time.perf_counter()
        wgraph = WeightedGraph.from_digraph(graph)
        n = wgraph.num_vertices
        src = np.repeat(np.arange(n, dtype=np.int64),
                        np.diff(wgraph.indptr))
        adjacency = sp.csr_matrix(
            (wgraph.edge_weights.astype(np.float64),
             (src, wgraph.indices)), shape=(n, n))
        out = np.zeros(n, dtype=np.int32)
        rng = np.random.default_rng(self.seed)
        self._recurse(adjacency, wgraph.vertex_weights.astype(np.float64),
                      np.arange(n), self.num_partitions, 0, out, rng)
        elapsed = time.perf_counter() - start
        return OfflineResult(
            assignment=PartitionAssignment(out, self.num_partitions),
            partitioner=self.name,
            elapsed_seconds=elapsed,
            num_partitions=self.num_partitions,
            stats={"eigensolver": "eigsh(shift-invert)"},
        )
