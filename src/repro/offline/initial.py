"""Initial partitioning of the coarsest graph (multilevel phase 2).

Greedy region growing, the classic METIS approach: grow each partition by
BFS from a fresh seed until it reaches its vertex-weight quota, preferring
frontier vertices with the strongest connection to the growing region.
The coarsest graph is tiny (a few hundred super-vertices), so the
quadratic-ish Python loop here is irrelevant to total runtime.
"""

from __future__ import annotations

import heapq

import numpy as np

from .wgraph import WeightedGraph

__all__ = ["region_growing_partition"]


def region_growing_partition(graph: WeightedGraph, num_partitions: int, *,
                             slack: float = 1.05,
                             seed: int = 0) -> np.ndarray:
    """Partition ``graph`` into K parts by greedy region growing.

    Returns a length-``|V|`` partition-id array.  Each region grows from
    the highest-degree unassigned seed, repeatedly absorbing the frontier
    vertex with maximal attachment weight (a max-heap of gain), until its
    share of the total vertex weight is reached.  Leftover vertices land
    on the lightest partitions.
    """
    n = graph.num_vertices
    if num_partitions < 1:
        raise ValueError("num_partitions must be >= 1")
    part = np.full(n, -1, dtype=np.int32)
    rng = np.random.default_rng(seed)
    weights = graph.vertex_weights
    total = int(weights.sum())
    quota = slack * total / num_partitions
    part_weight = np.zeros(num_partitions, dtype=np.int64)
    degrees = np.diff(graph.indptr)

    # Seeds: heaviest-degree vertices first, jittered for determinism
    # without pathological seed clustering.
    seed_order = np.lexsort((rng.random(n), -degrees))
    seed_cursor = 0

    for pid in range(num_partitions):
        # Find the next unassigned seed.
        while seed_cursor < n and part[seed_order[seed_cursor]] != -1:
            seed_cursor += 1
        if seed_cursor >= n:
            break
        root = int(seed_order[seed_cursor])
        # Max-heap of (-attachment, tiebreak, vertex).
        heap: list[tuple[float, int, int]] = [(0.0, root, root)]
        attached: set[int] = {root}
        target = total / num_partitions  # ideal share for this region
        while heap and part_weight[pid] + 1 <= quota:
            neg_gain, _, v = heapq.heappop(heap)
            if part[v] != -1:
                continue
            if part_weight[pid] + weights[v] > quota:
                continue
            part[v] = pid
            part_weight[pid] += weights[v]
            if part_weight[pid] >= target:
                break
            nbrs, ew = graph.neighbors(v)
            for u, w in zip(nbrs.tolist(), ew.tolist()):
                if part[u] == -1 and u not in attached:
                    attached.add(u)
                    heapq.heappush(heap, (-float(w), u, u))
                elif part[u] == -1:
                    # Re-push with improved priority; stale entries are
                    # skipped by the part[v] != -1 check above.
                    heapq.heappush(heap, (neg_gain - float(w), u, u))

    # Sweep leftovers onto the lightest partitions.
    for v in np.nonzero(part == -1)[0]:
        pid = int(np.argmin(part_weight))
        part[v] = pid
        part_weight[pid] += weights[v]
    return part
