"""Persisting partition assignments.

A partitioning is only useful if the job scheduler that consumes it can
read it later; this module defines the on-disk format:

* the route table as one partition id per line (loadable by ``numpy``
  and by every scripting language on earth), gzip-transparent;
* an optional JSON header line (``# {...}``) carrying provenance — the
  partitioner, K, the graph's name/size, and the quality metrics at
  save time — so a route file is self-describing.

``repro-partition partition``'s output is exactly this format.
"""

from __future__ import annotations

import gzip
import json
from pathlib import Path
from typing import IO, Any

import numpy as np

from ..graph.digraph import DiGraph
from ..recovery.atomic import atomic_writer
from .assignment import PartitionAssignment
from .metrics import evaluate

__all__ = ["save_assignment", "load_assignment"]

_FORMAT_NAME = "repro-route-table"
_FORMAT_VERSION = 1


def _open(path: Path, mode: str) -> IO[str]:
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t", encoding="utf-8")
    return open(path, mode, encoding="utf-8")


def save_assignment(assignment: PartitionAssignment, path: str | Path, *,
                    graph: DiGraph | None = None,
                    partitioner: str | None = None,
                    extra: dict[str, Any] | None = None) -> None:
    """Write an assignment with a self-describing JSON header.

    When ``graph`` is given, the header also records the quality metrics
    so the file documents what it achieved without re-evaluation.
    """
    path = Path(path)
    header: dict[str, Any] = {
        "format": "repro-route-table",
        "version": _FORMAT_VERSION,
        "num_partitions": assignment.num_partitions,
        "num_vertices": assignment.num_vertices,
    }
    if partitioner:
        header["partitioner"] = partitioner
    if graph is not None:
        header["graph"] = graph.name
        header["num_edges"] = graph.num_edges
        if assignment.is_complete():
            quality = evaluate(graph, assignment)
            header["ecr"] = round(quality.ecr, 6)
            header["delta_v"] = round(quality.delta_v, 4)
            header["delta_e"] = round(quality.delta_e, 4)
    if extra:
        header.update(extra)
    # Atomic replace: a crash mid-save leaves the previous route table
    # (or nothing), never a truncated one a scheduler could half-load.
    with atomic_writer(path, "w") as fh:
        fh.write("# " + json.dumps(header, sort_keys=True) + "\n")
        for pid in assignment.route:
            fh.write(f"{int(pid)}\n")


def load_assignment(path: str | Path
                    ) -> tuple[PartitionAssignment, dict[str, Any]]:
    """Read an assignment file; returns ``(assignment, header)``.

    Files without a JSON header (plain numpy dumps) load fine — the
    header comes back empty and K is inferred from the largest id.  A
    header that *does* declare ``format``/``version`` must declare ours:
    a different tool's file or a future version is rejected rather than
    silently misread.
    """
    path = Path(path)
    header: dict[str, Any] = {}
    pids: list[int] = []
    with _open(path, "r") as fh:
        for line in fh:
            stripped = line.strip()
            if not stripped:
                continue
            if stripped.startswith("#"):
                payload = stripped.lstrip("#").strip()
                if payload.startswith("{") and not header:
                    try:
                        header = json.loads(payload)
                    except json.JSONDecodeError:
                        pass
                continue
            pids.append(int(stripped))
    if "format" in header and header["format"] != _FORMAT_NAME:
        raise ValueError(
            f"{path}: header declares format {header['format']!r}, "
            f"expected {_FORMAT_NAME!r}")
    if "version" in header and header["version"] != _FORMAT_VERSION:
        raise ValueError(
            f"{path}: route-table version {header['version']!r} is not "
            f"supported (expected {_FORMAT_VERSION})")
    route = np.asarray(pids, dtype=np.int32)
    declared_n = header.get("num_vertices")
    if declared_n is not None and declared_n != len(route):
        raise ValueError(
            f"header declares {declared_n} vertices, file has "
            f"{len(route)} rows")
    k = header.get("num_partitions")
    if k is None:
        k = int(route.max()) + 1 if len(route) else 1
    return PartitionAssignment(route, int(k)), header
