"""SPN — Streaming Partitioner with in&out-Neighbor knowledge (Sec. IV-B).

SPN is the paper's first contribution: enrich LDG's local view with
*in-neighbor* knowledge without preprocessing the graph.  Since adjacency
lists only carry out-neighbors, each partition ``P_i`` maintains an
expectation table ``Γ_i`` (how often already-placed members of ``P_i``
point at each vertex), and the placement rule becomes Eq. 5:

    pid = argmax_i ( λ·|V_i^pt ∩ N_out(v)|
                     + (1-λ)·[in-neighbor expectation] ) · w^t(i, v)

``λ = 1`` recovers LDG exactly (verified by a property test); ``λ = 0``
uses expectation knowledge alone; the paper's sweep (Fig. 3) finds an
interior optimum and defaults to ``λ = 0.5``.

**A note on the in-neighbor term.**  The paper's Eq. 5 as typeset sums
expectations over the out-neighborhood, ``Σ_{u∈N_out(v)} Γ_i^t(u)``, but
its worked examples (Figs. 2 and 4) compute the term as ``Γ_i^t(v)`` —
the expectation of the arriving vertex itself, which is exactly
``|V_i^pt ∩ N_in(v)|`` (every placed in-neighbor of ``v`` bumped
``Γ_i(v)`` on arrival).  The two signals are complementary: ``Γ_i(v)``
is exact backward knowledge (it alone rescues one-way chains, where the
neighborhood sum sees nothing), while the Eq. 5 sum is forward-looking
smoothing (rewarding partitions that expect ``v``'s whole
out-neighborhood) and measures 30-40% better on web graphs.  All three
are implemented via ``in_estimator``: ``"combined"`` (default; the sum
of both — strictly dominates either alone in our ablation bench),
``"neighborhood"`` (Eq. 5 verbatim), and ``"self"`` (the worked
examples' simplified form).

The Γ store is pluggable: the dense ``O(K|V|)`` table, or the
``O(K|V|/X)`` sliding window of Sec. V-A (``num_shards > 1``).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..graph.digraph import AdjacencyRecord
from ..graph.stream import ArrayStream, VertexStream
from .base import (FastKernel, PartitionState, StreamingPartitioner,
                   make_shifted_counter, make_weight_updater)
from .expectation import (ExpectationStore, FullExpectationStore,
                          HashedExpectationStore)
from .registry import register
from .window import SlidingWindowStore, default_num_shards

__all__ = ["SPNPartitioner"]


@register("spn", summary="SPN — in&out-neighbor knowledge (Eq. 5)")
class SPNPartitioner(StreamingPartitioner):
    """The SPN heuristic (Eq. 5).

    Parameters
    ----------
    num_partitions:
        ``K``.
    lam:
        The paper's λ balancing out-neighbor intersection (weight ``λ``)
        against in-neighbor expectation (weight ``1-λ``); default 0.5.
    num_shards:
        The sliding-window ``X``.  ``1`` keeps the full Γ table;
        ``"auto"`` applies the paper's recommendation
        ``X = min(αK, |V|/(βK))`` at setup time.
    in_estimator:
        ``"combined"`` — in-term is ``Γ_i(v) + Σ_{u∈N_out(v)} Γ_i(u)``
        (default; see the module docstring);
        ``"neighborhood"`` — ``Σ_{u∈N_out(v)} Γ_i(u)`` (Eq. 5 verbatim);
        ``"self"`` — ``Γ_i(v)`` (the worked examples).
    gamma_store:
        Γ backend selection.  ``"auto"`` (default) keeps the historical
        behavior: dense table for ``num_shards <= 1``, sliding window
        otherwise.  ``"dense"`` / ``"window"`` force those backends;
        ``"hashed"`` uses the capped-width
        :class:`~repro.partitioning.expectation.HashedExpectationStore`
        (O(B·K) memory, arrival-order-free, approximate Γ).
    gamma_buckets:
        Bucket count for ``gamma_store="hashed"``
        (default ``max(1024, |V| // 16)``).
    """

    def __init__(self, num_partitions: int, *, lam: float = 0.5,
                 num_shards: int | str = 1,
                 in_estimator: str = "combined",
                 gamma_store: str = "auto",
                 gamma_buckets: int | None = None, **kwargs) -> None:
        super().__init__(num_partitions, **kwargs)
        if not 0.0 <= lam <= 1.0:
            raise ValueError("lam (λ) must lie in [0, 1]")
        if isinstance(num_shards, str) and num_shards != "auto":
            raise ValueError("num_shards must be an int >= 1 or 'auto'")
        if isinstance(num_shards, int) and num_shards < 1:
            raise ValueError("num_shards must be an int >= 1 or 'auto'")
        if in_estimator not in ("self", "neighborhood", "combined"):
            raise ValueError(
                "in_estimator must be 'self', 'neighborhood', or "
                "'combined'")
        if gamma_store not in ("auto", "dense", "window", "hashed"):
            raise ValueError(
                "gamma_store must be 'auto', 'dense', 'window', or "
                "'hashed'")
        if gamma_store in ("dense", "hashed") \
                and isinstance(num_shards, int) and num_shards > 1:
            raise ValueError(
                f"gamma_store={gamma_store!r} does not shard; leave "
                "num_shards at 1 (or 'auto')")
        if gamma_buckets is not None:
            if gamma_store != "hashed":
                raise ValueError(
                    "gamma_buckets only applies to gamma_store='hashed'")
            if gamma_buckets < 1:
                raise ValueError("gamma_buckets must be >= 1")
        self.lam = lam
        self.num_shards = num_shards
        self.in_estimator = in_estimator
        self.gamma_store = gamma_store
        self.gamma_buckets = gamma_buckets
        self._store: ExpectationStore | None = None

    @property
    def name(self) -> str:
        return "SPN"

    # ------------------------------------------------------------------
    def _resolve_shards(self, stream: VertexStream) -> int:
        if self.num_shards == "auto":
            return default_num_shards(stream.num_vertices,
                                      self.num_partitions)
        return int(self.num_shards)

    def _make_store(self, stream: VertexStream) -> ExpectationStore:
        if self.gamma_store == "hashed":
            buckets = self.gamma_buckets
            if buckets is None:
                buckets = max(1024, stream.num_vertices // 16)
            return HashedExpectationStore(
                self.num_partitions, stream.num_vertices,
                num_buckets=buckets)
        if self.gamma_store == "dense":
            return FullExpectationStore(self.num_partitions,
                                        stream.num_vertices)
        shards = self._resolve_shards(stream)
        if self.gamma_store == "auto" and shards <= 1:
            return FullExpectationStore(self.num_partitions,
                                        stream.num_vertices)
        if not getattr(stream, "is_id_ordered", False):
            raise ValueError(
                "the sliding window (num_shards > 1) requires an id-ordered "
                "stream; use num_shards=1 for arbitrary arrival orders")
        return SlidingWindowStore(self.num_partitions, stream.num_vertices,
                                  num_shards=max(shards, 1))

    def _setup(self, stream: VertexStream, state: PartitionState) -> None:
        self._store = self._make_store(stream)

    # ------------------------------------------------------------------
    @property
    def expectation_store(self) -> ExpectationStore:
        """The live Γ store (available during/after a run)."""
        if self._store is None:
            raise RuntimeError("partitioner has not been set up on a stream")
        return self._store

    def _heuristic_state_dict(self) -> dict[str, Any]:
        return {"store": self.expectation_store.state_dict()}

    def _load_heuristic_state(self, payload: dict[str, Any]) -> None:
        # _setup already built a store of the right shape for the
        # stream; restoring overwrites its counters (and window cursor).
        self.expectation_store.load_state(payload["store"])

    def score_lanes(self) -> dict[str, np.ndarray] | None:
        """SPN's extra mutable score state is the Γ store's counters.

        Stores without shared-lane support (the sliding window, whose
        rotation cursor is inherently sequential) return ``None`` —
        process sharding refuses them instead of silently scoring
        against stale windows.
        """
        store = self.expectation_store
        lanes = getattr(store, "shared_lanes", None)
        if lanes is None:
            return None
        return {f"gamma_{key}": arr for key, arr in lanes().items()}

    def attach_score_lanes(self, lanes: dict[str, np.ndarray]) -> None:
        mine = self.score_lanes()
        if mine is None:
            raise ValueError(
                f"{self.name}'s Γ store "
                f"({type(self.expectation_store).__name__}) has no "
                "shared-lane support; use gamma_store='dense' or "
                "'hashed' for process sharding")
        if set(lanes) != set(mine):
            raise ValueError(
                f"lane mismatch: expected {sorted(mine)}, "
                f"got {sorted(lanes)}")
        self.expectation_store.attach_shared_lanes(
            {key[len("gamma_"):]: arr for key, arr in lanes.items()
             if key.startswith("gamma_")})

    def _in_term(self, record: AdjacencyRecord) -> np.ndarray:
        """The (1-λ)-weighted in-neighbor knowledge vector."""
        store = self.expectation_store
        if self.in_estimator == "self":
            return store.expectation_of(record.vertex)
        if self.in_estimator == "neighborhood":
            return store.gather(record.neighbors)
        return (store.expectation_of(record.vertex)
                + store.gather(record.neighbors))

    def _score(self, record: AdjacencyRecord,
               state: PartitionState) -> np.ndarray:
        self.expectation_store.advance_to(record.vertex)
        out_term = state.neighbor_partition_counts(record.neighbors)
        in_term = self._in_term(record)
        combined = self.lam * out_term + (1.0 - self.lam) * in_term
        return combined * state.penalty_weights()

    def _after_commit(self, record: AdjacencyRecord, pid: int,
                      state: PartitionState) -> None:
        # Algorithm 1, lines 5-7: traversing N_out(v) bumps Γ_pid.
        self.expectation_store.record(pid, record.neighbors)

    # -- vectorized fast path ------------------------------------------
    def _make_in_term_into(self, scratch) -> Any:
        """Closure computing the in-neighbor term into ``scratch.i1``.

        Mirrors :meth:`_in_term` estimator-for-estimator with the Γ
        store's ``*_into`` kernels (integer sums — order-insensitive,
        bit-identical).
        """
        store = self.expectation_store
        in_buf = scratch.i1
        gather_into = store.gather_into
        expectation_of_into = store.expectation_of_into
        if self.in_estimator == "self":
            def in_term_into(v, neighbors):
                return expectation_of_into(v, in_buf)
        elif self.in_estimator == "neighborhood":
            def in_term_into(v, neighbors):
                return gather_into(neighbors, in_buf)
        else:  # combined: Γ(v) + Σ_{u∈N_out(v)} Γ(u)
            # One gather over neighbors+[v]: integer column sums are
            # exact and order-free, so folding Γ(v) into the reduction
            # is bit-identical to summing the two vectors.
            idx_buf = scratch.idx

            def in_term_into(v, neighbors):
                d = len(neighbors)
                idx = idx_buf[:d + 1]
                idx[:d] = neighbors
                idx[d] = v
                return gather_into(idx, in_buf)
        return in_term_into

    def _fast_kernel(self, state: PartitionState,
                     stream: ArrayStream) -> FastKernel:
        """Fused Eq. 5: λ·|V∩N| + (1−λ)·Γ-term, zero temporaries."""
        scratch = state.ensure_scratch(stream.max_degree)
        store = self.expectation_store
        in_term_into = self._make_in_term_into(scratch)
        scores, weights, f1 = scratch.scores, scratch.weights, scratch.f1
        counts_fast, note_counts = make_shifted_counter(state)
        update_weights = make_weight_updater(state, weights)
        lam = self.lam
        one_minus_lam = 1.0 - self.lam
        advance_to = store.advance_to if store.needs_advance else None
        record_gamma = store.record

        def score_into(v: int, neighbors: np.ndarray) -> np.ndarray:
            if advance_to is not None:
                advance_to(v)
            out_term = counts_fast(neighbors)
            in_term = in_term_into(v, neighbors)
            np.multiply(out_term, lam, out=scores)
            np.multiply(in_term, one_minus_lam, out=f1)
            np.add(scores, f1, out=scores)
            np.multiply(scores, weights, out=scores)
            return scores

        def after_commit(v: int, neighbors: np.ndarray, pid: int) -> None:
            record_gamma(pid, neighbors)
            note_counts(v, pid)
            update_weights(pid)

        return score_into, after_commit

    def _extra_stats(self) -> dict[str, Any]:
        store = self._store
        stats: dict[str, Any] = {"lambda": self.lam}
        if store is not None:
            nbytes = store.nbytes()
            stats["expectation_bytes"] = nbytes  # legacy key, kept stable
            stats["expectation_table_bytes"] = nbytes
            stats["expectation_table_entries"] = store.num_entries()
            if isinstance(store, SlidingWindowStore):
                stats.update(
                    num_shards=store.num_shards,
                    window_size=store.window_size,
                    skipped_future=store.skipped_future,
                    skipped_past=store.skipped_past,
                )
            elif isinstance(store, HashedExpectationStore):
                stats["gamma_store"] = "hashed"
                stats["gamma_buckets"] = store.num_buckets
        return stats

    def _probe_gauges(self) -> dict[str, Any]:
        """Γ-table footprint for :class:`StreamProbe` snapshots."""
        store = self._store
        if store is None:
            return {}
        return {
            "expectation_table_entries": store.num_entries(),
            "expectation_table_bytes": store.nbytes(),
        }
