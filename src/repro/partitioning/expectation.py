"""Per-partition expectation tables Γ (paper Sec. IV-B).

``Γ_i(x)`` counts how many vertices already placed in partition ``P_i``
have an out-edge to ``x`` — i.e., how much ``P_i`` *expects* ``x`` to join
it.  Eq. 5 estimates the in-neighbor closeness of a candidate vertex ``v``
as ``Σ_{u ∈ N_out(v)} Γ_i(u)``: rather than looking up ``Γ_i(v)`` alone
(which only reflects ``v``'s own in-edges), the paper sums expectations
over ``v``'s out-neighborhood, rewarding partitions that expect the whole
neighborhood.  This module implements the two Γ storage strategies the
paper compares:

* :class:`FullExpectationStore` — a dense K×|V| counter matrix, the
  straightforward O(K|V|) design (Table IV's ``SPNL(X=1)`` row);
* :class:`~repro.partitioning.window.SlidingWindowStore` (sibling module)
  — the O(K|V|/X) fine-grained sliding window;
* :class:`HashedExpectationStore` — a capped-width table of
  ``num_buckets`` hashed rows, bounding Γ memory at O(B·K) independent
  of |V| (an *approximation*: colliding ids share counters).

All satisfy :class:`ExpectationStore`, so SPN/SPNL are agnostic to which
one they run on; the property test suite asserts the full and windowed
stores are *bit-identical* in behaviour when the window spans all
vertices, and that the hashed store is bit-identical to the full one
whenever ``num_buckets >= num_vertices`` (it switches to the identity
mapping there, making the table collision-free by construction).
"""

from __future__ import annotations

from typing import Protocol

import numpy as np

__all__ = ["ExpectationStore", "FullExpectationStore",
           "HashedExpectationStore"]


class ExpectationStore(Protocol):
    """Interface shared by the full and windowed Γ implementations."""

    num_partitions: int
    num_vertices: int

    #: Whether :meth:`advance_to` does real work.  The fast path skips
    #: the per-record call entirely when ``False`` (the full store).
    needs_advance: bool

    def advance_to(self, vertex: int) -> None:
        """Inform the store that ``vertex`` is now being streamed.

        Lets windowed implementations rotate; a no-op for the full store.
        """

    def expectation_of(self, vertex: int) -> np.ndarray:
        """``Γ_i(vertex)`` for every partition (length-K vector)."""

    def expectation_of_into(self, vertex: int, out: np.ndarray) -> np.ndarray:
        """:meth:`expectation_of` written into the preallocated ``out``."""

    def gather(self, neighbors: np.ndarray) -> np.ndarray:
        """``Σ_{u ∈ neighbors} Γ_i(u)`` for every partition."""

    def gather_into(self, neighbors: np.ndarray,
                    out: np.ndarray) -> np.ndarray:
        """:meth:`gather` written into the preallocated ``out``.

        Bit-identical values to :meth:`gather` — same reduction, no
        fresh result vector.
        """

    def record(self, pid: int, neighbors: np.ndarray) -> None:
        """Count the just-placed vertex's out-edges into ``Γ_pid``."""

    def nbytes(self) -> int:
        """Bytes held by the counter storage (for the memory model)."""

    def num_entries(self) -> int:
        """Live counter cells (K × tracked-id-range), for observability."""

    def state_dict(self) -> dict:
        """Snapshot the mutable counter state (for checkpoint/restore)."""

    def load_state(self, payload: dict) -> None:
        """Restore :meth:`state_dict` output into this store."""


class FullExpectationStore:
    """Dense K×|V| expectation counters — maximal knowledge, O(K|V|) space.

    This is the un-optimized design whose memory footprint motivates the
    sliding window (paper Sec. V-A); it also serves as the ground truth the
    windowed store is verified against.
    """

    needs_advance = False

    def __init__(self, num_partitions: int, num_vertices: int) -> None:
        if num_partitions < 1 or num_vertices < 0:
            raise ValueError("invalid dimensions for expectation store")
        self.num_partitions = num_partitions
        self.num_vertices = num_vertices
        # Vertex-major layout: Γ(v) is one contiguous K-row, so the hot
        # gather (sum over a neighborhood's rows) touches d contiguous
        # chunks instead of K strided column picks.
        self._table = np.zeros((num_vertices, num_partitions),
                               dtype=np.int32)
        self._gather_buf: np.ndarray | None = None

    def advance_to(self, vertex: int) -> None:
        """No-op: every vertex is always tracked."""

    def expectation_of(self, vertex: int) -> np.ndarray:
        return self._table[vertex].astype(np.int64)

    def expectation_of_into(self, vertex: int, out: np.ndarray) -> np.ndarray:
        np.copyto(out, self._table[vertex])
        return out

    def gather(self, neighbors: np.ndarray) -> np.ndarray:
        if len(neighbors) == 0:
            return np.zeros(self.num_partitions, dtype=np.int64)
        return self._table[neighbors].sum(axis=0, dtype=np.int64)

    def gather_into(self, neighbors: np.ndarray,
                    out: np.ndarray) -> np.ndarray:
        d = len(neighbors)
        if d == 0:
            out[:] = 0
            return out
        # Row gather through a reusable buffer: ``take(out=)`` avoids
        # the fancy-index temporary; the reduction is the same integer
        # sum over the same rows, so the result is bit-identical.
        buf = self._gather_buf
        if buf is None or buf.shape[0] < d:
            buf = np.empty((max(d, 64), self.num_partitions),
                           dtype=self._table.dtype)
            self._gather_buf = buf
        rows = buf[:d]
        self._table.take(neighbors, axis=0, out=rows)
        rows.sum(axis=0, dtype=np.int64, out=out)
        return out

    def record(self, pid: int, neighbors: np.ndarray) -> None:
        if len(neighbors) == 0:
            return
        np.add.at(self._table[:, pid], neighbors, 1)

    def nbytes(self) -> int:
        return int(self._table.nbytes)

    def num_entries(self) -> int:
        return int(self._table.size)

    def shared_lanes(self) -> dict:
        """Mutable counter arrays the process-sharded executor shares."""
        return {"table": self._table}

    def attach_shared_lanes(self, lanes: dict) -> None:
        """Rebind the counter table onto a shared-memory view."""
        table = lanes["table"]
        if table.shape != self._table.shape \
                or table.dtype != self._table.dtype:
            raise ValueError(
                f"shared Γ lane {table.shape}/{table.dtype} does not "
                f"match {self._table.shape}/{self._table.dtype}")
        self._table = table
        self._gather_buf = None

    def state_dict(self) -> dict:
        return {"kind": "full", "table": self._table.copy()}

    def load_state(self, payload: dict) -> None:
        if payload.get("kind") != "full":
            raise ValueError(
                f"snapshot holds a {payload.get('kind')!r} Γ store, this "
                "run uses the full table (different num_shards?)")
        table = payload["table"]
        if table.shape != self._table.shape:
            raise ValueError(
                f"snapshot Γ table shape {table.shape} does not match "
                f"{self._table.shape}")
        np.copyto(self._table, table)

    @property
    def window_size(self) -> int:
        """For API parity with the windowed store: the full id range."""
        return self.num_vertices


#: Knuth's multiplicative constant (2^32 / φ) for the bucket hash.
_HASH_MULT = np.uint64(2654435761)


class HashedExpectationStore:
    """Capped-width Γ: ``num_buckets`` hashed rows, O(B·K) space.

    The dense table's O(|V|·K) footprint is the memory wall for large
    ``V·K`` (paper Table IV); the sliding window cuts it but demands an
    id-ordered stream.  This store instead folds the id space onto a
    fixed number of buckets with a multiplicative hash, so memory is
    chosen up front and arrival order is unconstrained.  The price is
    *aliasing*: ids that share a bucket share counters, so Γ becomes an
    over-estimate (in the style of a one-row count-min sketch) and
    partition quality degrades gracefully as buckets shrink — measured
    in the ingest bench rather than assumed.

    When ``num_buckets >= num_vertices`` the hash is replaced by the
    identity mapping, making the store bit-identical to
    :class:`FullExpectationStore` (the property tests pin this).
    """

    needs_advance = False

    def __init__(self, num_partitions: int, num_vertices: int, *,
                 num_buckets: int) -> None:
        if num_partitions < 1 or num_vertices < 0:
            raise ValueError("invalid dimensions for expectation store")
        if num_buckets < 1:
            raise ValueError("num_buckets must be >= 1")
        self.num_partitions = num_partitions
        self.num_vertices = num_vertices
        self.num_buckets = min(num_buckets, max(num_vertices, 1))
        self._identity = self.num_buckets >= num_vertices
        # Bucket-major layout, same rationale as the dense store: one
        # gather touches d contiguous K-rows.
        self._table = np.zeros((self.num_buckets, num_partitions),
                               dtype=np.int32)
        self._gather_buf: np.ndarray | None = None
        self._idx_buf: np.ndarray | None = None

    # -- hashing -------------------------------------------------------
    def _bucket_of(self, vertex: int) -> int:
        if self._identity:
            return vertex
        # Emulate uint64 wraparound so the scalar and vector paths agree.
        return ((vertex * 2654435761) & 0xFFFFFFFFFFFFFFFF) \
            % self.num_buckets

    def _buckets(self, ids: np.ndarray) -> np.ndarray:
        if self._identity:
            return ids
        n = len(ids)
        buf = self._idx_buf
        if buf is None or buf.shape[0] < n:
            buf = np.empty(max(n, 64), dtype=np.uint64)
            self._idx_buf = buf
        idx = buf[:n]
        np.multiply(ids.astype(np.uint64, copy=False), _HASH_MULT, out=idx)
        np.mod(idx, np.uint64(self.num_buckets), out=idx)
        return idx

    # -- ExpectationStore API ------------------------------------------
    def advance_to(self, vertex: int) -> None:
        """No-op: every bucket is always live."""

    def expectation_of(self, vertex: int) -> np.ndarray:
        return self._table[self._bucket_of(vertex)].astype(np.int64)

    def expectation_of_into(self, vertex: int,
                            out: np.ndarray) -> np.ndarray:
        np.copyto(out, self._table[self._bucket_of(vertex)])
        return out

    def gather(self, neighbors: np.ndarray) -> np.ndarray:
        if len(neighbors) == 0:
            return np.zeros(self.num_partitions, dtype=np.int64)
        return self._table[self._buckets(neighbors)].sum(axis=0,
                                                         dtype=np.int64)

    def gather_into(self, neighbors: np.ndarray,
                    out: np.ndarray) -> np.ndarray:
        d = len(neighbors)
        if d == 0:
            out[:] = 0
            return out
        buf = self._gather_buf
        if buf is None or buf.shape[0] < d:
            buf = np.empty((max(d, 64), self.num_partitions),
                           dtype=self._table.dtype)
            self._gather_buf = buf
        rows = buf[:d]
        self._table.take(self._buckets(neighbors).astype(np.int64,
                                                         copy=False),
                         axis=0, out=rows)
        rows.sum(axis=0, dtype=np.int64, out=out)
        return out

    def record(self, pid: int, neighbors: np.ndarray) -> None:
        if len(neighbors) == 0:
            return
        np.add.at(self._table[:, pid], self._buckets(neighbors), 1)

    def nbytes(self) -> int:
        return int(self._table.nbytes)

    def num_entries(self) -> int:
        return int(self._table.size)

    def shared_lanes(self) -> dict:
        """Mutable counter arrays the process-sharded executor shares."""
        return {"table": self._table}

    def attach_shared_lanes(self, lanes: dict) -> None:
        """Rebind the bucket table onto a shared-memory view."""
        table = lanes["table"]
        if table.shape != self._table.shape \
                or table.dtype != self._table.dtype:
            raise ValueError(
                f"shared Γ lane {table.shape}/{table.dtype} does not "
                f"match {self._table.shape}/{self._table.dtype}")
        self._table = table
        self._gather_buf = None

    def state_dict(self) -> dict:
        return {"kind": "hashed", "table": self._table.copy(),
                "num_buckets": self.num_buckets}

    def load_state(self, payload: dict) -> None:
        if payload.get("kind") != "hashed":
            raise ValueError(
                f"snapshot holds a {payload.get('kind')!r} Γ store, this "
                "run uses the hashed table (different gamma_store?)")
        table = payload["table"]
        if table.shape != self._table.shape:
            raise ValueError(
                f"snapshot Γ table shape {table.shape} does not match "
                f"{self._table.shape} (different gamma_buckets?)")
        np.copyto(self._table, table)

    @property
    def window_size(self) -> int:
        """For API parity with the windowed store: the bucket range."""
        return self.num_buckets
