"""FENNEL — streaming partitioning with an additive load penalty.

Tsourakakis et al. (WSDM 2014), the paper's second streaming competitor.
FENNEL replaces LDG's multiplicative capacity penalty with an additive
cost derived from a relaxed modularity objective:

    pid = argmax_i  |V_i^pt ∩ N(v)|  -  α·γ·|V_i^pt|^(γ-1)

with the canonical parameterization ``γ = 1.5`` and
``α = m · K^(γ-1) / n^γ`` (their Theorem 1 tuning), plus a hard balance
cap ``ν·n/K`` that we express through the shared capacity machinery.
"""

from __future__ import annotations

import numpy as np

from ..graph.digraph import AdjacencyRecord
from ..graph.stream import ArrayStream, VertexStream
from .base import (FastKernel, PartitionState, StreamingPartitioner,
                   make_shifted_counter)
from .registry import register

__all__ = ["FennelPartitioner"]


@register("fennel", summary="FENNEL — additive load penalty")
class FennelPartitioner(StreamingPartitioner):
    """The FENNEL heuristic with its canonical (γ, α) tuning.

    Parameters
    ----------
    gamma:
        Exponent of the load-penalty term (paper default 1.5).
    alpha:
        Penalty scale; ``None`` selects the canonical
        ``m·K^(γ-1)/n^γ`` at stream setup.
    """

    def __init__(self, num_partitions: int, *, gamma: float = 1.5,
                 alpha: float | None = None, **kwargs) -> None:
        super().__init__(num_partitions, **kwargs)
        if gamma <= 1.0:
            raise ValueError("gamma must exceed 1 for a convex penalty")
        self.gamma = gamma
        self.alpha = alpha
        self._alpha_effective = alpha

    @property
    def name(self) -> str:
        return "FENNEL"

    def _setup(self, stream: VertexStream, state: PartitionState) -> None:
        if self.alpha is None:
            n = max(1, stream.num_vertices)
            m = stream.num_edges
            self._alpha_effective = (
                m * state.num_partitions ** (self.gamma - 1.0)
                / n ** self.gamma)
        else:
            self._alpha_effective = self.alpha

    def _heuristic_state_dict(self) -> dict:
        # α is derived from stream totals at setup, but a snapshot pins
        # the exact value so a resume can never diverge on a recompute.
        return {"alpha_effective": float(self._alpha_effective)}

    def _load_heuristic_state(self, payload: dict) -> None:
        self._alpha_effective = float(payload["alpha_effective"])

    def score_lanes(self) -> dict:
        # α is pinned at _setup and static for the rest of the run;
        # every worker's own _setup derives the identical value, so no
        # array needs to be shared beyond the PartitionState.
        return {}

    def _score(self, record: AdjacencyRecord,
               state: PartitionState) -> np.ndarray:
        intersections = state.neighbor_partition_counts(record.neighbors)
        loads = state.vertex_counts.astype(np.float64)
        penalty = (self._alpha_effective * self.gamma
                   * loads ** (self.gamma - 1.0))
        return intersections - penalty

    def _fast_kernel(self, state: PartitionState,
                     stream: ArrayStream) -> FastKernel:
        """Fused additive score: counts − (α·γ)·loads^(γ−1), in place.

        The penalty vector is maintained incrementally: a commit changes
        one partition's load, so only that lane's ``pow`` is recomputed
        (scalar, same ufunc) instead of a K-wide ``np.power`` per record.
        """
        scratch = state.ensure_scratch(stream.max_degree)
        scores, penalty = scratch.scores, scratch.f1
        counts_fast, note_counts = make_shifted_counter(state)
        vertex_counts = state.vertex_counts
        exponent = self.gamma - 1.0
        # _score evaluates (α·γ)·pow left-to-right; the scalar product is
        # precomputed here and multiplication is commutative, so the
        # fused result is bit-identical.
        alpha_gamma = self._alpha_effective * self.gamma
        np.power(vertex_counts, exponent, out=penalty)
        np.multiply(penalty, alpha_gamma, out=penalty)

        def score_into(v: int, neighbors: np.ndarray) -> np.ndarray:
            np.subtract(counts_fast(neighbors), penalty, out=scores)
            return scores

        def after_commit(v: int, neighbors: np.ndarray, pid: int) -> None:
            note_counts(v, pid)
            penalty[pid] = np.power(vertex_counts[pid], exponent) \
                * alpha_gamma

        return score_into, after_commit
