"""LDG — Linear Deterministic Greedy streaming partitioner.

The classical baseline of Stanton & Kliot (KDD 2012) in the exact form the
paper uses as its starting point (Eq. 3):

    pid = argmax_i |V_i^pt ∩ N_out(v)| · w^t(i, v)

where ``w^t(i, v) = 1 - |P_i^t|/C`` penalizes loaded partitions.  Only the
out-neighbor intersection with already-placed vertices is used — the
"limited knowledge from the local view" that SPN/SPNL improve on.
"""

from __future__ import annotations

import numpy as np

from ..graph.digraph import AdjacencyRecord
from ..graph.stream import ArrayStream
from .base import (FastKernel, PartitionState, StreamingPartitioner,
                   make_shifted_counter, make_weight_updater)
from .registry import register

__all__ = ["LDGPartitioner"]


@register("ldg", summary="LDG — linear deterministic greedy (Eq. 3)")
class LDGPartitioner(StreamingPartitioner):
    """Eq. 3 of the paper — the linear deterministic greedy heuristic."""

    @property
    def name(self) -> str:
        return "LDG"

    def score_lanes(self) -> dict[str, np.ndarray]:
        # LDG's only mutable score state is the shared PartitionState.
        return {}

    def _score(self, record: AdjacencyRecord,
               state: PartitionState) -> np.ndarray:
        intersections = state.neighbor_partition_counts(record.neighbors)
        return intersections * state.penalty_weights()

    def _fast_kernel(self, state: PartitionState,
                     stream: ArrayStream) -> FastKernel:
        """Fused Eq. 3: one bincount, one multiply, one scalar lane update.

        The penalty-weight vector is maintained incrementally (only the
        committed lane changes per record), so scoring is a single
        K-wide multiply on top of the neighbor tally.
        """
        scratch = state.ensure_scratch(stream.max_degree)
        scores, weights = scratch.scores, scratch.weights
        counts_fast, note_counts = make_shifted_counter(state)
        update_weights = make_weight_updater(state, weights)

        def score_into(v: int, neighbors: np.ndarray) -> np.ndarray:
            np.multiply(counts_fast(neighbors), weights, out=scores)
            return scores

        def after_commit(v: int, neighbors: np.ndarray, pid: int) -> None:
            note_counts(v, pid)
            update_weights(pid)

        return score_into, after_commit
