"""LDG — Linear Deterministic Greedy streaming partitioner.

The classical baseline of Stanton & Kliot (KDD 2012) in the exact form the
paper uses as its starting point (Eq. 3):

    pid = argmax_i |V_i^pt ∩ N_out(v)| · w^t(i, v)

where ``w^t(i, v) = 1 - |P_i^t|/C`` penalizes loaded partitions.  Only the
out-neighbor intersection with already-placed vertices is used — the
"limited knowledge from the local view" that SPN/SPNL improve on.
"""

from __future__ import annotations

import numpy as np

from ..graph.digraph import AdjacencyRecord
from .base import PartitionState, StreamingPartitioner
from .registry import register

__all__ = ["LDGPartitioner"]


@register("ldg", summary="LDG — linear deterministic greedy (Eq. 3)")
class LDGPartitioner(StreamingPartitioner):
    """Eq. 3 of the paper — the linear deterministic greedy heuristic."""

    @property
    def name(self) -> str:
        return "LDG"

    def _score(self, record: AdjacencyRecord,
               state: PartitionState) -> np.ndarray:
        intersections = state.neighbor_partition_counts(record.neighbors)
        return intersections * state.penalty_weights()
