"""Stateless one-pass baselines: hash, random, range, and chunked placement.

These are the zero-knowledge lower bar every heuristic must beat.  Range
placement doubles as SPNL's *logical pre-assignment* policy (paper
Sec. IV-C), so :class:`RangePartitioner` is also imported by
:mod:`repro.partitioning.spnl`.
"""

from __future__ import annotations

import json

import numpy as np

from ..graph.digraph import AdjacencyRecord
from ..graph.stream import VertexStream
from .base import PartitionState, StreamingPartitioner
from .registry import register

__all__ = ["HashPartitioner", "RandomPartitioner", "RangePartitioner",
           "ChunkedPartitioner", "range_boundaries", "range_partition_of"]


def range_boundaries(num_vertices: int, num_partitions: int) -> np.ndarray:
    """Split ``[0, num_vertices)`` into K near-equal consecutive ranges.

    Returns ``K+1`` boundary ids; partition ``i`` owns
    ``[boundaries[i], boundaries[i+1])``.  This is the O(2K) lookup table
    of the paper's Range policy.
    """
    if num_partitions < 1:
        raise ValueError("num_partitions must be >= 1")
    return np.linspace(0, num_vertices, num_partitions + 1).astype(np.int64)


def range_partition_of(vertices: np.ndarray | int,
                       boundaries: np.ndarray) -> np.ndarray | int:
    """Logical partition id(s) of ``vertices`` under Range boundaries."""
    pids = np.searchsorted(boundaries, vertices, side="right") - 1
    k = len(boundaries) - 2
    return np.clip(pids, 0, k) if isinstance(pids, np.ndarray) \
        else int(min(max(pids, 0), k))


@register("hash", summary="modulo-hash placement baseline")
class HashPartitioner(StreamingPartitioner):
    """Deterministic modulo-hash placement: ``pid = hash(v) mod K``.

    The default partitioner of most Pregel-like systems; ignores topology
    entirely, so its ECR approximates the random baseline ``1 - 1/K``.
    """

    @property
    def name(self) -> str:
        return "Hash"

    def _score(self, record: AdjacencyRecord,
               state: PartitionState) -> np.ndarray:
        scores = np.zeros(state.num_partitions)
        # Knuth multiplicative hash keeps adjacent ids apart, matching the
        # behaviour of real systems' id hashing.
        pid = (record.vertex * 2654435761) % 2**32 % state.num_partitions
        scores[pid] = 1.0
        return scores

    def score_lanes(self):
        # Stateless scoring: only the shared PartitionState is mutable.
        return {}


@register("random", summary="seeded uniform random placement")
class RandomPartitioner(StreamingPartitioner):
    """Uniformly random placement (seeded, capacity-respecting)."""

    def __init__(self, num_partitions: int, *, seed: int = 0,
                 **kwargs) -> None:
        super().__init__(num_partitions, **kwargs)
        self.seed = seed
        self._rng = np.random.default_rng(seed)

    @property
    def name(self) -> str:
        return "Random"

    def _setup(self, stream: VertexStream, state: PartitionState) -> None:
        self._rng = np.random.default_rng(self.seed)  # fresh per run

    def _score(self, record: AdjacencyRecord,
               state: PartitionState) -> np.ndarray:
        scores = np.zeros(state.num_partitions)
        scores[self._rng.integers(0, state.num_partitions)] = 1.0
        return scores

    def _heuristic_state_dict(self) -> dict:
        # The generator state is the heuristic state: a resumed run must
        # continue the exact same random sequence.  JSON-encoded (the
        # PCG64 state dict nests arbitrary-size ints, which the snapshot
        # header carries verbatim).
        return {"rng_state": json.dumps(self._rng.bit_generator.state)}

    def _load_heuristic_state(self, payload: dict) -> None:
        self._rng.bit_generator.state = json.loads(payload["rng_state"])


@register("range", summary="consecutive id-range placement")
class RangePartitioner(StreamingPartitioner):
    """Consecutive-range placement — the paper's Range policy as a
    standalone partitioner.

    On BFS-ordered graphs this is surprisingly strong (locality is already
    in the ids); on shuffled graphs it collapses to random quality.  SPNL's
    logical pre-assignment is exactly this mapping.
    """

    @property
    def name(self) -> str:
        return "Range"

    def _setup(self, stream: VertexStream, state: PartitionState) -> None:
        self._boundaries = range_boundaries(stream.num_vertices,
                                            state.num_partitions)

    def _score(self, record: AdjacencyRecord,
               state: PartitionState) -> np.ndarray:
        scores = np.zeros(state.num_partitions)
        scores[range_partition_of(record.vertex, self._boundaries)] = 1.0
        return scores

    def score_lanes(self):
        # ``_boundaries`` is static after ``_setup``; every worker's own
        # ``_setup`` derives the identical table.
        return {}


@register("chunked", summary="round-robin over arrival chunks")
class ChunkedPartitioner(StreamingPartitioner):
    """Round-robin over fixed-size chunks of the arrival order.

    Differs from Range when the stream is not id-ordered; used as an
    arrival-order-sensitive control in ablations.
    """

    def __init__(self, num_partitions: int, *, chunk_size: int | None = None,
                 **kwargs) -> None:
        super().__init__(num_partitions, **kwargs)
        self.chunk_size = chunk_size
        self._seen = 0

    @property
    def name(self) -> str:
        return "Chunked"

    def _setup(self, stream: VertexStream, state: PartitionState) -> None:
        self._seen = 0
        if self.chunk_size is None:
            self._chunk = max(
                1, -(-stream.num_vertices // state.num_partitions))
        else:
            self._chunk = self.chunk_size

    def _score(self, record: AdjacencyRecord,
               state: PartitionState) -> np.ndarray:
        scores = np.zeros(state.num_partitions)
        pid = (self._seen // self._chunk) % state.num_partitions
        self._seen += 1
        scores[pid] = 1.0
        return scores

    def _heuristic_state_dict(self) -> dict:
        return {"seen": int(self._seen)}

    def _load_heuristic_state(self, payload: dict) -> None:
        self._seen = int(payload["seen"])
