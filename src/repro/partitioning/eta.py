"""η decay schedules for SPNL's logical pre-assignment (Eq. 6).

The paper fixes ``η_i^t = max(0, (|V_i^lt| - |V_i^pt|) / |V_i^lt|)`` and
notes that "more interesting yet effective settings will be explored as
future work".  Our ablation found the paper's schedule decays too fast
when the in-estimator already carries strong physical knowledge (frozen
η=1 beat it on every high-locality stand-in), so this module makes the
schedule a first-class, pluggable object and ships the natural family:

* ``paper``    — the original formula (reaches 0 once a range is half
  consumed);
* ``frozen``   — η ≡ 1 (trust the Range table forever);
* ``linear``   — η = remaining fraction of the range,
  ``|V_i^lt| / range_size`` (reaches 0 only when the range is *fully*
  consumed — a strictly slower version of ``paper``);
* ``sqrt``     — square root of ``linear`` (slower still early on);
* ``constant(c)`` — η ≡ c for a fixed trust level.

Every schedule sees the same inputs: the per-partition remaining logical
population ``lt``, the physical population ``pt``, and the original
range sizes.  All return a length-K vector in [0, 1].
"""

from __future__ import annotations

from typing import Callable, Union

import numpy as np

__all__ = ["EtaSchedule", "resolve_eta_schedule", "ETA_SCHEDULES"]

EtaSchedule = Callable[[np.ndarray, np.ndarray, np.ndarray], np.ndarray]
"""``schedule(lt, pt, range_sizes) -> eta`` (all length-K arrays)."""


def _paper(lt: np.ndarray, pt: np.ndarray,
           range_sizes: np.ndarray) -> np.ndarray:
    lt_f = lt.astype(np.float64)
    with np.errstate(divide="ignore", invalid="ignore"):
        eta = np.where(lt_f > 0, (lt_f - pt) / lt_f, 0.0)
    return np.maximum(0.0, eta)


def _frozen(lt: np.ndarray, pt: np.ndarray,
            range_sizes: np.ndarray) -> np.ndarray:
    return np.ones(len(lt))


def _linear(lt: np.ndarray, pt: np.ndarray,
            range_sizes: np.ndarray) -> np.ndarray:
    sizes = np.maximum(1, range_sizes).astype(np.float64)
    return np.clip(lt / sizes, 0.0, 1.0)


def _sqrt(lt: np.ndarray, pt: np.ndarray,
          range_sizes: np.ndarray) -> np.ndarray:
    return np.sqrt(_linear(lt, pt, range_sizes))


def constant(value: float) -> EtaSchedule:
    """A schedule holding η at ``value`` throughout the stream."""
    if not 0.0 <= value <= 1.0:
        raise ValueError("constant eta must lie in [0, 1]")

    def _const(lt: np.ndarray, pt: np.ndarray,
               range_sizes: np.ndarray) -> np.ndarray:
        return np.full(len(lt), value)

    _const.__name__ = f"constant({value})"
    return _const


ETA_SCHEDULES: dict[str, EtaSchedule] = {
    "paper": _paper,
    "frozen": _frozen,
    "linear": _linear,
    "sqrt": _sqrt,
}


def resolve_eta_schedule(spec: Union[str, float, EtaSchedule]
                         ) -> EtaSchedule:
    """Accepts a name, a constant in [0, 1], or a schedule callable."""
    if callable(spec):
        return spec
    if isinstance(spec, (int, float)) and not isinstance(spec, bool):
        return constant(float(spec))
    if isinstance(spec, str):
        if spec not in ETA_SCHEDULES:
            raise ValueError(
                f"unknown eta schedule {spec!r}; choose from "
                f"{sorted(ETA_SCHEDULES)} or pass a constant/callable")
        return ETA_SCHEDULES[spec]
    raise ValueError(f"cannot interpret eta schedule {spec!r}")
