"""Partitioning introspection: where do the cut edges actually come from?

The headline metrics (ECR, δ) say *how good* a partitioning is; these
tools say *why* — which the ablation studies and any real tuning session
need:

* :func:`cut_distance_histogram` — cut probability as a function of the
  endpoints' id distance (shows the locality mechanism directly: Range
  and SPNL lose only the long-range edges, hashing loses everything);
* :func:`boundary_profile` — per-partition boundary-vertex counts, the
  quantity that bounds a system's send-buffer sizes;
* :func:`partition_connectivity` — per-partition internal/external edge
  tallies and neighbor-partition fan-out (the communication topology);
* :func:`agreement` — pair-counting Rand index between two assignments,
  label-permutation invariant (are two partitioners making the *same*
  decisions or different-but-equally-good ones?).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.digraph import DiGraph
from .assignment import PartitionAssignment

__all__ = [
    "cut_distance_histogram",
    "boundary_profile",
    "PartitionConnectivity",
    "partition_connectivity",
    "agreement",
]


def cut_distance_histogram(graph: DiGraph,
                           assignment: PartitionAssignment,
                           *, bins: int = 10
                           ) -> list[dict]:
    """Cut fraction per id-distance decile.

    Returns one row per bin: the distance range, how many edges fall in
    it, and what fraction of them are cut.  On a locality-aware
    partitioning the cut fraction rises steeply with distance; on a
    hash partitioning it is flat at ``1 - 1/K``.
    """
    if graph.num_edges == 0:
        return []
    src, dst = graph.edge_array()
    distance = np.abs(src - dst)
    cut = assignment.route[src] != assignment.route[dst]
    edges_per_bin = max(1, len(distance) // bins)
    order = np.argsort(distance, kind="stable")
    rows = []
    for b in range(bins):
        lo = b * edges_per_bin
        hi = len(distance) if b == bins - 1 else (b + 1) * edges_per_bin
        if lo >= len(distance):
            break
        sel = order[lo:hi]
        rows.append({
            "bin": b,
            "min_dist": int(distance[sel].min()),
            "max_dist": int(distance[sel].max()),
            "edges": len(sel),
            "cut_fraction": round(float(cut[sel].mean()), 4),
        })
    return rows


def boundary_profile(graph: DiGraph,
                     assignment: PartitionAssignment) -> list[dict]:
    """Per-partition boundary statistics.

    A vertex is *boundary* when at least one incident edge (either
    direction) crosses partitions; such vertices are the ones whose
    updates must be shipped over the network every superstep.
    """
    src, dst = graph.edge_array()
    route = assignment.route
    crossing = route[src] != route[dst]
    is_boundary = np.zeros(graph.num_vertices, dtype=bool)
    is_boundary[src[crossing]] = True
    is_boundary[dst[crossing]] = True
    rows = []
    for pid in range(assignment.num_partitions):
        members = assignment.vertices_in(pid)
        boundary = int(is_boundary[members].sum()) if len(members) else 0
        rows.append({
            "partition": pid,
            "vertices": len(members),
            "boundary": boundary,
            "boundary_fraction": round(boundary / len(members), 4)
            if len(members) else 0.0,
        })
    return rows


@dataclass(frozen=True)
class PartitionConnectivity:
    """Edge tallies of one partition."""

    partition: int
    internal_edges: int
    outgoing_cut: int
    incoming_cut: int
    neighbor_partitions: int

    def as_row(self) -> dict:
        return {
            "partition": self.partition,
            "internal": self.internal_edges,
            "out_cut": self.outgoing_cut,
            "in_cut": self.incoming_cut,
            "neighbors": self.neighbor_partitions,
        }


def partition_connectivity(graph: DiGraph,
                           assignment: PartitionAssignment
                           ) -> list[PartitionConnectivity]:
    """Internal/cut edge tallies and fan-out per partition."""
    from .metrics import cut_matrix

    matrix = cut_matrix(graph, assignment)
    out = []
    k = assignment.num_partitions
    for pid in range(k):
        row, col = matrix[pid], matrix[:, pid]
        off_row = row.sum() - row[pid]
        off_col = col.sum() - col[pid]
        touching = np.zeros(k, dtype=bool)
        touching |= row > 0
        touching |= col > 0
        touching[pid] = False
        out.append(PartitionConnectivity(
            partition=pid,
            internal_edges=int(matrix[pid, pid]),
            outgoing_cut=int(off_row),
            incoming_cut=int(off_col),
            neighbor_partitions=int(touching.sum()),
        ))
    return out


def agreement(a: PartitionAssignment, b: PartitionAssignment) -> float:
    """Pair-counting Rand index between two complete assignments.

    1.0 means the two partitionings co-locate exactly the same vertex
    pairs (even if the partition labels differ); ~``1 - 2/K + 2/K²`` is
    the expectation for independent random assignments.
    """
    if len(a) != len(b):
        raise ValueError("assignments cover different vertex counts")
    n = len(a)
    if n < 2:
        return 1.0
    ka, kb = a.num_partitions, b.num_partitions
    contingency = np.zeros((ka, kb), dtype=np.int64)
    np.add.at(contingency, (a.route, b.route), 1)

    def _pairs(counts: np.ndarray) -> float:
        return float((counts.astype(np.float64)
                      * (counts - 1) / 2).sum())

    together_both = _pairs(contingency)
    together_a = _pairs(contingency.sum(axis=1))
    together_b = _pairs(contingency.sum(axis=0))
    total_pairs = n * (n - 1) / 2
    # Rand index = (agreements) / (all pairs); agreements are pairs
    # together in both plus pairs separated in both.
    agreements = (total_pairs + 2 * together_both
                  - together_a - together_b)
    return float(agreements / total_pairs)
