"""Incremental partition maintenance for evolving graphs.

The paper's introduction motivates cheap (re-)partitioning with graphs
that "are frequently updated and/or shared by multi-tenants".  This
module closes that loop: :class:`DynamicPartitioner` keeps a live SPNL
local view (route table, tallies, Γ expectation store, logical table)
and absorbs graph growth without full re-partitioning:

* **new vertices** are placed by the normal SPNL scoring rule the moment
  their adjacency list arrives — streaming is already an online
  algorithm, so this costs exactly one streamed record;
* **new edges on existing vertices** update the Γ knowledge and tallies;
  affected endpoints can optionally be *re-streamed* (re-scored and
  moved if the heuristic now prefers another partition), bounded per
  update batch;
* quality drift is observable via :meth:`current_quality`, and a full
  re-stream (:meth:`restream`) restores near-fresh quality in one pass,
  amortized across the many updates that triggered it.

The Γ store here is always the dense table: windowing assumes a single
forward pass, which an online service by definition does not have.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from ..graph.builder import GraphBuilder
from ..graph.digraph import AdjacencyRecord, DiGraph
from ..graph.stream import GraphStream
from .assignment import UNASSIGNED, PartitionAssignment
from .base import PartitionState
from .metrics import QualityReport, evaluate
from .spnl import SPNLPartitioner

__all__ = ["DynamicPartitioner"]


class DynamicPartitioner:
    """Maintains an SPNL partitioning of a growing graph.

    Parameters
    ----------
    num_partitions:
        ``K``.
    capacity_vertices:
        Upper bound on the vertex-id space the instance can grow into
        (pre-sizes the route table and Γ store).
    lam, slack:
        Forwarded to the underlying :class:`SPNLPartitioner`.
    max_restream_per_batch:
        Cap on how many *existing* endpoints one :meth:`add_edges` call
        may re-score (bounds update latency).
    """

    def __init__(self, num_partitions: int, *, capacity_vertices: int,
                 lam: float = 0.5, slack: float = 1.1,
                 max_restream_per_batch: int = 256) -> None:
        if capacity_vertices < 1:
            raise ValueError("capacity_vertices must be >= 1")
        self.capacity_vertices = capacity_vertices
        self.max_restream_per_batch = max_restream_per_batch
        self._spnl = SPNLPartitioner(num_partitions, lam=lam,
                                     slack=slack, num_shards=1)
        self._builder = GraphBuilder(capacity_vertices)
        self._graph: DiGraph | None = None
        self._adjacency: dict[int, list[int]] = {}

        class _Spec:
            num_vertices = capacity_vertices
            num_edges = 0
            is_id_ordered = False
        self._state = self._spnl.make_state(_Spec())
        self._spnl._setup(_Spec(), self._state)
        self._dirty = True

    # ------------------------------------------------------------------
    @property
    def num_partitions(self) -> int:
        return self._spnl.num_partitions

    @property
    def num_known_vertices(self) -> int:
        return len(self._adjacency)

    def partition_of(self, vertex: int) -> int:
        """Current placement (``UNASSIGNED`` if never seen)."""
        return int(self._state.route[vertex])

    def assignment(self) -> PartitionAssignment:
        """Snapshot covering the known id space."""
        known = max(self._adjacency) + 1 if self._adjacency else 0
        return PartitionAssignment(self._state.route[:known].copy(),
                                   self.num_partitions)

    # ------------------------------------------------------------------
    def _record(self, vertex: int) -> AdjacencyRecord:
        return AdjacencyRecord(
            vertex,
            np.asarray(self._adjacency.get(vertex, []), dtype=np.int64))

    def _place_new(self, vertex: int) -> int:
        return self._spnl.place(self._record(vertex), self._state)

    def _rescore_existing(self, vertex: int) -> bool:
        """Re-run the scoring rule for a placed vertex; move if better.

        Returns True when the vertex moved.  Tallies stay exact; the Γ
        entries contributed under the old placement are not rewritten
        (bounded staleness, same relaxation as the paper's parallel
        technique).
        """
        state = self._state
        record = self._record(vertex)
        old_pid = int(state.route[vertex])
        scores = self._spnl._score(record, state)
        new_pid = self._spnl.choose(scores, state)
        if new_pid == old_pid:
            return False
        state.route[vertex] = new_pid
        state.vertex_counts[old_pid] -= 1
        state.vertex_counts[new_pid] += 1
        state.edge_counts[old_pid] -= record.out_degree
        state.edge_counts[new_pid] += record.out_degree
        self._spnl.expectation_store.record(new_pid, record.neighbors)
        return True

    # ------------------------------------------------------------------
    def add_vertex(self, vertex: int,
                   out_neighbors: Sequence[int] = ()) -> int:
        """Insert a new vertex with its adjacency; returns its partition."""
        if vertex in self._adjacency:
            raise ValueError(f"vertex {vertex} already present; use "
                             f"add_edges for growth")
        if vertex >= self.capacity_vertices:
            raise ValueError("vertex id beyond capacity_vertices")
        neighbors = [int(u) for u in out_neighbors]
        self._adjacency[vertex] = neighbors
        self._builder.add_adjacency(vertex, neighbors)
        self._dirty = True
        return self._place_new(vertex)

    def add_edges(self, edges: Iterable[tuple[int, int]]) -> int:
        """Insert edges; place unseen endpoints, re-score touched ones.

        Returns the number of vertices that moved partitions.
        """
        touched: list[int] = []
        for src, dst in edges:
            src, dst = int(src), int(dst)
            for endpoint in (src, dst):
                if endpoint >= self.capacity_vertices:
                    raise ValueError(
                        "vertex id beyond capacity_vertices")
                if endpoint not in self._adjacency:
                    self._adjacency[endpoint] = []
                    self._place_new(endpoint)
            if dst not in self._adjacency[src]:
                self._adjacency[src].append(dst)
                self._builder.add_edge(src, dst)
                pid = int(self._state.route[src])
                # the new out-edge extends P_pid's expectation for dst
                self._spnl.expectation_store.record(
                    pid, np.asarray([dst], dtype=np.int64))
                self._state.edge_counts[pid] += 1
                touched.append(src)
                touched.append(dst)
        self._dirty = True
        moved = 0
        for vertex in touched[:self.max_restream_per_batch]:
            if self._rescore_existing(vertex):
                moved += 1
        return moved

    # ------------------------------------------------------------------
    def graph(self) -> DiGraph:
        """The accumulated graph (rebuilt lazily after updates)."""
        if self._dirty or self._graph is None:
            known = max(self._adjacency) + 1 if self._adjacency else 0
            builder = GraphBuilder(known)
            for vertex, neighbors in self._adjacency.items():
                builder.add_adjacency(vertex, neighbors)
            self._graph = builder.build(name="dynamic")
            self._dirty = False
        return self._graph

    def current_quality(self) -> QualityReport:
        """Evaluate the live assignment against the accumulated graph."""
        return evaluate(self.graph(), self.assignment())

    def restream(self) -> QualityReport:
        """Full one-pass re-partitioning of the accumulated graph.

        Replaces the live state with the fresh result — the maintenance
        action the paper's built-in-partitioner deployment performs
        between jobs.
        """
        graph = self.graph()
        fresh = SPNLPartitioner(self.num_partitions, lam=self._spnl.lam,
                                slack=self._spnl.slack, num_shards=1)
        result = fresh.partition(GraphStream(graph))
        # adopt the fresh state, re-padded to capacity
        self._spnl = fresh
        state = PartitionState(self.num_partitions,
                               self.capacity_vertices, 0,
                               balance=fresh.balance, slack=fresh.slack)
        state.route[:graph.num_vertices] = result.assignment.route
        state.vertex_counts[:] = result.assignment.vertex_counts()
        state.edge_counts[:] = result.assignment.edge_counts(graph)
        state.placed_vertices = graph.num_vertices
        state.placed_edges = graph.num_edges
        self._state = state
        # the fresh partitioner's Γ store only spans graph.num_vertices;
        # grow it to capacity so future inserts can be scored
        from .expectation import FullExpectationStore
        old_store = fresh.expectation_store
        store = FullExpectationStore(self.num_partitions,
                                     self.capacity_vertices)
        store._table[:old_store.num_vertices] = old_store._table
        fresh._store = store
        fresh._logical_pid = (np.arange(self.capacity_vertices)
                              * self.num_partitions
                              // self.capacity_vertices).astype(np.int32)
        # V^lt holds logically-assigned but *not yet placed* vertices:
        # everything re-streamed just now is already placed.
        lt = np.bincount(fresh._logical_pid,
                         minlength=self.num_partitions).astype(np.int64)
        lt -= np.bincount(fresh._logical_pid[:graph.num_vertices],
                          minlength=self.num_partitions)
        fresh._lt_counts = lt
        return evaluate(graph, result.assignment)
