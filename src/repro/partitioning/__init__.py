"""Streaming vertex partitioners: the paper's SPN/SPNL plus baselines."""

from .analysis import (
    PartitionConnectivity,
    agreement,
    boundary_profile,
    cut_distance_histogram,
    partition_connectivity,
)
from .assignment import UNASSIGNED, PartitionAssignment
from .buffered import BufferedHybridPartitioner
from .config import PartitionConfig
from .dynamic import DynamicPartitioner
from .base import (
    BalanceMode,
    PartitionState,
    StreamingPartitioner,
    StreamingResult,
)
from .eta import ETA_SCHEDULES, EtaSchedule, resolve_eta_schedule
from .expectation import ExpectationStore, FullExpectationStore
from .fennel import FennelPartitioner
from .hashing import (
    ChunkedPartitioner,
    HashPartitioner,
    RandomPartitioner,
    RangePartitioner,
    range_boundaries,
    range_partition_of,
)
from .ldg import LDGPartitioner
from .persistence import load_assignment, save_assignment
from .metrics import (
    QualityReport,
    cut_matrix,
    edge_balance,
    edge_cut,
    edge_cut_ratio,
    evaluate,
    vertex_balance,
)
from .registry import (
    RegistryEntry,
    available_partitioners,
    make_partitioner,
    register,
)
from .restreaming import RestreamingPartitioner, RestreamState
from .spn import SPNPartitioner
from .spnl import SPNLPartitioner
from .window import SlidingWindowStore, default_num_shards

__all__ = [
    "BalanceMode",
    "BufferedHybridPartitioner",
    "ChunkedPartitioner",
    "DynamicPartitioner",
    "ETA_SCHEDULES",
    "EtaSchedule",
    "ExpectationStore",
    "FennelPartitioner",
    "FullExpectationStore",
    "HashPartitioner",
    "LDGPartitioner",
    "PartitionAssignment",
    "PartitionConfig",
    "PartitionConnectivity",
    "PartitionState",
    "QualityReport",
    "RandomPartitioner",
    "RangePartitioner",
    "RegistryEntry",
    "RestreamState",
    "RestreamingPartitioner",
    "SPNLPartitioner",
    "SPNPartitioner",
    "SlidingWindowStore",
    "StreamingPartitioner",
    "StreamingResult",
    "UNASSIGNED",
    "agreement",
    "available_partitioners",
    "boundary_profile",
    "cut_distance_histogram",
    "cut_matrix",
    "default_num_shards",
    "edge_balance",
    "edge_cut",
    "edge_cut_ratio",
    "evaluate",
    "load_assignment",
    "make_partitioner",
    "partition_connectivity",
    "range_boundaries",
    "register",
    "resolve_eta_schedule",
    "range_partition_of",
    "save_assignment",
    "vertex_balance",
]
