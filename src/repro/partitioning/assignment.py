"""Partition assignments (the paper's "vertex-assignment route table").

Every partitioner — streaming or offline — produces a
:class:`PartitionAssignment`: a dense ``vertex id -> partition id`` mapping
plus the partition count ``K``.  The object enforces the problem definition
of Sec. II (disjoint partitions covering all of ``V``) via
:meth:`validate`, and provides the per-partition tallies the balance
metrics (Eqs. 1–2) are computed from.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from ..graph.digraph import DiGraph

__all__ = ["PartitionAssignment", "UNASSIGNED"]

UNASSIGNED = -1
"""Sentinel partition id for vertices not (yet) placed."""


class PartitionAssignment:
    """An immutable ``vertex -> partition`` mapping for ``K`` partitions."""

    __slots__ = ("_route", "_num_partitions")

    def __init__(self, route: Sequence[int] | np.ndarray,
                 num_partitions: int) -> None:
        route = np.ascontiguousarray(route, dtype=np.int32)
        if route.ndim != 1:
            raise ValueError("route table must be one-dimensional")
        if num_partitions < 1:
            raise ValueError("num_partitions must be >= 1")
        if len(route) and route.max() >= num_partitions:
            raise ValueError("route table references partition id >= K")
        if len(route) and route.min() < UNASSIGNED:
            raise ValueError("route table has invalid negative entries")
        self._route = route
        self._num_partitions = num_partitions

    # ------------------------------------------------------------------
    @property
    def num_partitions(self) -> int:
        """``K``."""
        return self._num_partitions

    @property
    def num_vertices(self) -> int:
        """``|V|`` covered by the route table."""
        return len(self._route)

    @property
    def route(self) -> np.ndarray:
        """The raw route table (read-only view)."""
        view = self._route.view()
        view.flags.writeable = False
        return view

    def __len__(self) -> int:
        return len(self._route)

    def __getitem__(self, vertex: int) -> int:
        return int(self._route[vertex])

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PartitionAssignment):
            return NotImplemented
        return (self._num_partitions == other._num_partitions
                and np.array_equal(self._route, other._route))

    def __repr__(self) -> str:
        return (f"PartitionAssignment(K={self._num_partitions}, "
                f"|V|={len(self._route)})")

    # ------------------------------------------------------------------
    def partition_of(self, vertex: int) -> int:
        """Partition id of ``vertex`` (``UNASSIGNED`` if not placed)."""
        return int(self._route[vertex])

    def is_complete(self) -> bool:
        """True when every vertex has been placed."""
        return bool(np.all(self._route != UNASSIGNED))

    def vertices_in(self, pid: int) -> np.ndarray:
        """Ids of all vertices assigned to partition ``pid``."""
        return np.nonzero(self._route == pid)[0]

    def vertex_counts(self) -> np.ndarray:
        """``|V_i|`` for every partition (length-K array)."""
        placed = self._route[self._route != UNASSIGNED]
        return np.bincount(placed, minlength=self._num_partitions
                           ).astype(np.int64)

    def edge_counts(self, graph: DiGraph) -> np.ndarray:
        """``|E_i|`` per partition: edges whose *source* lives in ``P_i``.

        Matches the paper's Algorithm 1 accounting (a vertex brings its
        whole out-adjacency into its partition).
        """
        src_part = self._route[np.repeat(
            np.arange(graph.num_vertices), graph.out_degrees())]
        valid = src_part != UNASSIGNED
        return np.bincount(src_part[valid],
                           minlength=self._num_partitions).astype(np.int64)

    def validate(self, num_vertices: int | None = None) -> None:
        """Raise ``ValueError`` unless this is a complete, disjoint cover.

        Disjointness is inherent to a route table (one entry per vertex);
        completeness and domain size are what can actually go wrong.
        """
        if num_vertices is not None and len(self._route) != num_vertices:
            raise ValueError(
                f"route table covers {len(self._route)} vertices, "
                f"expected {num_vertices}")
        if not self.is_complete():
            missing = int(np.sum(self._route == UNASSIGNED))
            raise ValueError(f"{missing} vertices left unassigned")

    # ------------------------------------------------------------------
    def with_moved(self, vertex: int, pid: int) -> "PartitionAssignment":
        """Functional update: a copy with one vertex reassigned."""
        route = self._route.copy()
        route[vertex] = pid
        return PartitionAssignment(route, self._num_partitions)

    @staticmethod
    def from_blocks(blocks: Iterable[Iterable[int]],
                    num_vertices: int) -> "PartitionAssignment":
        """Build from explicit per-partition vertex lists."""
        blocks = [list(b) for b in blocks]
        route = np.full(num_vertices, UNASSIGNED, dtype=np.int32)
        for pid, members in enumerate(blocks):
            for v in members:
                if route[v] != UNASSIGNED:
                    raise ValueError(f"vertex {v} appears in two blocks")
                route[v] = pid
        return PartitionAssignment(route, max(1, len(blocks)))
