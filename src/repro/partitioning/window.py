"""Fine-grained sliding-window expectation store (paper Sec. V-A).

The full Γ tables cost ``O(K|V|)``.  Because streaming placement is final,
counters for already-placed vertices are dead weight; and because web
graphs are BFS-ordered, a vertex's neighbors cluster around its own id.
The paper therefore keeps, per partition, counters only for a window of
``W = ⌈|V|/X⌉`` *upcoming* vertex ids, slid forward one vertex at a time
("the sliding unit is a vertex, rather than a shard") over a fixed-size
array addressed by ``id mod W``.

Semantics implemented here (matching the paper's case analysis):

* the window covers ids ``[low, low + W)`` where ``low`` is the id of the
  vertex currently being streamed — the current vertex plus the next
  ``W-1`` future arrivals;
* **case 1** — a neighbor inside the window is counted exactly;
* **case 2** — a neighbor behind the window was already placed, so the
  lost count could never be read again: zero quality impact;
* **case 3** — a neighbor beyond the window is *not* counted, the one
  genuine accuracy loss, which shrinks as the id-order locality of the
  graph grows (Fig. 7b).

Peak memory is ``O(K·|V|/X)`` regardless of how far the stream advances.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["SlidingWindowStore", "default_num_shards"]


def default_num_shards(num_vertices: int, num_partitions: int, *,
                       alpha: int = 4, beta: int = 100) -> int:
    """The paper's recommended shard count ``X = min(αK, |V|/(βK))``.

    The paper parameterizes ``α = 4`` and ``β = 10⁴`` for graphs with
    ``|V| ≥ 10⁷``.  At laptop scale ``|V|/(βK)`` would round to zero, so we
    default ``β = 100``, which keeps the window the same *fraction* of the
    graph as the paper's setting does on web2001 (window ≈ |V|/128).
    Always returns at least 1 (X = 1 degrades to the full table).
    """
    if num_vertices <= 0 or num_partitions <= 0:
        return 1
    by_capacity = num_vertices // (beta * num_partitions)
    return max(1, min(alpha * num_partitions, by_capacity))


class SlidingWindowStore:
    """Γ counters over a rotating fixed window of upcoming vertex ids.

    Parameters
    ----------
    num_partitions, num_vertices:
        Table dimensions (K and |V|).
    num_shards:
        The paper's ``X``; the window holds ``⌈|V|/X⌉`` ids per partition.
        ``X = 1`` makes this store behave identically to
        :class:`~repro.partitioning.expectation.FullExpectationStore`
        (verified by property tests).

    The stream must present vertices in non-decreasing id order for the
    window arithmetic to be sound; :meth:`advance_to` enforces this.
    """

    needs_advance = True

    def __init__(self, num_partitions: int, num_vertices: int,
                 num_shards: int = 1) -> None:
        if num_shards < 1:
            raise ValueError("num_shards (X) must be >= 1")
        if num_partitions < 1 or num_vertices < 0:
            raise ValueError("invalid dimensions for expectation store")
        self.num_partitions = num_partitions
        self.num_vertices = num_vertices
        self.num_shards = num_shards
        self.window_size = max(1, math.ceil(num_vertices / num_shards))
        self._low = 0  # smallest id currently covered by the window
        self._table = np.zeros((num_partitions, self.window_size),
                               dtype=np.int32)
        # Diagnostics surfaced in benchmark reports (Fig. 7 analysis).
        self.skipped_future = 0   # case-3 losses
        self.skipped_past = 0     # case-2 (harmless) drops

    # ------------------------------------------------------------------
    @property
    def low(self) -> int:
        """Smallest vertex id covered by the window."""
        return self._low

    @property
    def high(self) -> int:
        """One past the largest id covered by the window."""
        return min(self._low + self.window_size, self.num_vertices)

    def advance_to(self, vertex: int) -> None:
        """Slide the window so it starts at ``vertex``.

        Rotates the ring in place: slots vacated by ids falling off the
        back are zeroed and immediately reused for the ids entering at the
        front (the paper's "logically implemented by rotating over a
        fixed-size array").

        A ``vertex`` behind the current window is a no-op rather than an
        error: the parallel executor re-scores *delayed* vertices after
        the stream has moved past them, and the correct semantics there is
        simply "read whatever counters remain".  (Streams that are not
        id-ordered at all are rejected earlier, at partitioner setup.)
        """
        if vertex < self._low:
            return
        steps = vertex - self._low
        if steps == 0:
            return
        if steps >= self.window_size:
            self._table[:] = 0  # the whole window content expired
        else:
            expired = np.arange(self._low, vertex) % self.window_size
            self._table[:, expired] = 0
        self._low = vertex

    def _in_window(self, ids: np.ndarray) -> np.ndarray:
        return (ids >= self._low) & (ids < self._low + self.window_size)

    def expectation_of(self, vertex: int) -> np.ndarray:
        """``Γ_i(vertex)``; zero vector if the id is outside the window."""
        if not (self._low <= vertex < self._low + self.window_size):
            return np.zeros(self.num_partitions, dtype=np.int64)
        return self._table[:, vertex % self.window_size].astype(np.int64)

    def expectation_of_into(self, vertex: int, out: np.ndarray) -> np.ndarray:
        """:meth:`expectation_of` into a preallocated buffer."""
        if not (self._low <= vertex < self._low + self.window_size):
            out[:] = 0
            return out
        np.copyto(out, self._table[:, vertex % self.window_size])
        return out

    def gather(self, neighbors: np.ndarray) -> np.ndarray:
        """Sum of in-window expectations over ``neighbors``, per partition."""
        if len(neighbors) == 0:
            return np.zeros(self.num_partitions, dtype=np.int64)
        inside = neighbors[self._in_window(neighbors)]
        if len(inside) == 0:
            return np.zeros(self.num_partitions, dtype=np.int64)
        cols = inside % self.window_size
        return self._table[:, cols].sum(axis=1, dtype=np.int64)

    def gather_into(self, neighbors: np.ndarray,
                    out: np.ndarray) -> np.ndarray:
        """:meth:`gather` into a preallocated buffer (same reduction)."""
        if len(neighbors) == 0:
            out[:] = 0
            return out
        inside = neighbors[self._in_window(neighbors)]
        if len(inside) == 0:
            out[:] = 0
            return out
        cols = inside % self.window_size
        self._table[:, cols].sum(axis=1, dtype=np.int64, out=out)
        return out

    def record(self, pid: int, neighbors: np.ndarray) -> None:
        """Bump ``Γ_pid`` for every in-window out-neighbor.

        Out-of-window neighbors are tallied into the case-2/case-3 loss
        counters instead of being stored.
        """
        if len(neighbors) == 0:
            return
        mask = self._in_window(neighbors)
        outside = neighbors[~mask]
        if len(outside):
            past = int(np.sum(outside < self._low))
            self.skipped_past += past
            self.skipped_future += len(outside) - past
        inside = neighbors[mask]
        if len(inside):
            np.add.at(self._table[pid], inside % self.window_size, 1)

    def nbytes(self) -> int:
        """Bytes held by the rotating counter array."""
        return int(self._table.nbytes)

    def num_entries(self) -> int:
        """Live counter cells: K × the window span."""
        return int(self._table.size)

    def state_dict(self) -> dict:
        """Ring contents plus cursor and loss diagnostics."""
        return {
            "kind": "window",
            "num_shards": int(self.num_shards),
            "window_size": int(self.window_size),
            "table": self._table.copy(),
            "low": int(self._low),
            "skipped_future": int(self.skipped_future),
            "skipped_past": int(self.skipped_past),
        }

    def load_state(self, payload: dict) -> None:
        if payload.get("kind") != "window":
            raise ValueError(
                f"snapshot holds a {payload.get('kind')!r} Γ store, this "
                "run uses the sliding window (different num_shards?)")
        if int(payload["window_size"]) != self.window_size:
            raise ValueError(
                f"snapshot window size {payload['window_size']} does not "
                f"match this run's {self.window_size} "
                f"(X={payload.get('num_shards')} vs {self.num_shards})")
        table = payload["table"]
        if table.shape != self._table.shape:
            raise ValueError(
                f"snapshot Γ ring shape {table.shape} does not match "
                f"{self._table.shape}")
        np.copyto(self._table, table)
        self._low = int(payload["low"])
        self.skipped_future = int(payload["skipped_future"])
        self.skipped_past = int(payload["skipped_past"])
