"""Streaming-partitioner framework.

The paper's streaming methods (LDG, FENNEL, SPN, SPNL) all share the same
skeleton: scan adjacency records once; for each record compute a K-vector of
placement scores from the *local view* (the record plus the distribution of
already-placed vertices); place the vertex at the argmax subject to a
capacity constraint ``C = δ·|G|/K`` (Algorithm 1, line 4); and update the
per-partition state.  :class:`StreamingPartitioner` implements that skeleton
once, and each concrete heuristic only supplies its scoring rule plus
optional state hooks.

Capacity & tie-breaking policy (shared by all heuristics so comparisons are
apples-to-apples):

* a partition at or above capacity is ineligible (score masked to ``-inf``);
* among the top-scoring eligible partitions, the least-loaded wins, then
  the lowest partition id — fully deterministic;
* if every partition is full (possible under tight ``δ`` with rounding),
  the globally least-loaded one is used as a safety valve.
"""

from __future__ import annotations

import enum
import math
import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from ..graph.digraph import AdjacencyRecord
from ..graph.stream import ArrayStream, VertexStream, as_array_stream
from .assignment import UNASSIGNED, PartitionAssignment

__all__ = ["BalanceMode", "CapacityOverflowError", "PartitionState",
           "StreamingResult", "StreamingPartitioner", "FastKernel",
           "make_weight_updater", "make_shifted_counter"]

#: Valid values for the all-partitions-full overflow policy.
OVERFLOW_POLICIES = ("least-loaded", "strict")


class CapacityOverflowError(RuntimeError):
    """Raised under ``overflow="strict"`` when every partition is full.

    The default policy (``"least-loaded"``) silently places the vertex
    on the globally least-loaded partition and counts the event in
    ``capacity_overflows``; strict mode makes the δ constraint a hard
    guarantee instead.
    """

#: A fused per-record kernel: ``(score_into(v, neighbors) -> scores,
#: after_commit(v, neighbors, pid) | None)``.  ``score_into`` writes the
#: length-K score vector into a preallocated buffer and returns it; the
#: fast driver masks/argmaxes that buffer in place.
FastKernel = tuple[Callable[[int, np.ndarray], np.ndarray],
                   Callable[[int, np.ndarray, int], None] | None]


class _Scratch:
    """Reusable per-run buffers backing the vectorized fast path.

    One instance is attached to a :class:`PartitionState` by
    :meth:`PartitionState.ensure_scratch`; every ``*_into`` kernel and
    every heuristic's fused scorer writes into these instead of
    allocating per record.  ``zeros_k`` is a shared all-zero count
    vector handed out for empty neighborhoods — callers must treat it
    as read-only.
    """

    __slots__ = ("scores", "f1", "f2", "f3", "f4", "f5", "i1", "i2",
                 "weights", "edge_weights", "inelig", "inelig2", "parts",
                 "parts2", "mask", "idx", "zeros_k", "max_degree")

    def __init__(self, num_partitions: int, max_degree: int) -> None:
        k = num_partitions
        d = max(1, max_degree)
        self.scores = np.empty(k, dtype=np.float64)
        self.f1 = np.empty(k, dtype=np.float64)
        self.f2 = np.empty(k, dtype=np.float64)
        self.f3 = np.empty(k, dtype=np.float64)
        self.f4 = np.empty(k, dtype=np.float64)
        self.f5 = np.empty(k, dtype=np.float64)
        self.i1 = np.empty(k, dtype=np.int64)
        self.i2 = np.empty(k, dtype=np.int64)
        self.weights = np.empty(k, dtype=np.float64)
        self.edge_weights = np.empty(k, dtype=np.float64)
        self.inelig = np.empty(k, dtype=bool)
        self.inelig2 = np.empty(k, dtype=bool)
        self.parts = np.empty(d, dtype=np.int32)
        self.parts2 = np.empty(d, dtype=np.int32)
        self.mask = np.empty(d, dtype=bool)
        self.idx = np.empty(d + 1, dtype=np.int64)
        self.zeros_k = np.zeros(k, dtype=np.int64)
        self.max_degree = max_degree


class BalanceMode(str, enum.Enum):
    """Which workload measure the capacity constraint bounds (Eqs. 1–2).

    ``BOTH`` enforces the two caps simultaneously (the multi-constraint
    regime the paper cites XtraPuLP for): a partition is eligible only
    while under its vertex *and* edge capacities, and the penalty is the
    tighter of the two remaining-capacity weights.
    """

    VERTEX = "vertex"
    EDGE = "edge"
    BOTH = "both"


class PartitionState:
    """The mutable "local view" state shared by every streaming heuristic.

    Tracks the route table, per-partition vertex/edge tallies, and the
    remaining-capacity penalty ``w^t(i, v) = 1 - |P_i^t| / C``.
    """

    __slots__ = ("num_partitions", "num_vertices", "num_edges", "balance",
                 "capacity", "edge_capacity", "overflow_policy", "route",
                 "vertex_counts", "edge_counts", "placed_vertices",
                 "placed_edges", "capacity_overflows", "_nc_memo", "scratch")

    def __init__(self, num_partitions: int, num_vertices: int,
                 num_edges: int, *, balance: BalanceMode = BalanceMode.VERTEX,
                 slack: float = 1.1, edge_slack: float | None = None,
                 overflow: str = "least-loaded") -> None:
        if num_partitions < 1:
            raise ValueError("num_partitions must be >= 1")
        if slack < 1.0:
            raise ValueError("slack (the paper's δ) must be >= 1.0")
        if edge_slack is not None and edge_slack < 1.0:
            raise ValueError("edge_slack must be >= 1.0")
        if overflow not in OVERFLOW_POLICIES:
            raise ValueError(
                f"overflow must be one of {OVERFLOW_POLICIES}, "
                f"got {overflow!r}")
        self.overflow_policy = overflow
        self.num_partitions = num_partitions
        self.num_vertices = num_vertices
        self.num_edges = num_edges
        self.balance = balance
        total = num_edges if balance is BalanceMode.EDGE else num_vertices
        # C = δ·|G|/K, rounded up so K·C always covers the whole graph.
        self.capacity = max(1.0, math.ceil(slack * total / num_partitions))
        if balance is BalanceMode.BOTH:
            # the paper's multi-constraint setting (δ_v = 1.0, δ_e = 50
            # for XtraPuLP) keeps the secondary cap looser by default
            e_slack = edge_slack if edge_slack is not None \
                else max(slack, 1.5)
            self.edge_capacity = max(1.0, math.ceil(
                e_slack * num_edges / num_partitions))
        else:
            self.edge_capacity = None
        self.route = np.full(num_vertices, UNASSIGNED, dtype=np.int32)
        self.vertex_counts = np.zeros(num_partitions, dtype=np.int64)
        self.edge_counts = np.zeros(num_partitions, dtype=np.int64)
        self.placed_vertices = 0
        self.placed_edges = 0
        self.capacity_overflows = 0
        # Memo of the last neighbor tally, so an attached probe can reuse
        # what scoring already computed (see consume_neighbor_counts).
        # One attribute holding a (neighbors, counts) pair: a single
        # assignment keeps the pairing atomic under the GIL even when
        # threaded workers score concurrently.
        self._nc_memo = None
        self.scratch: _Scratch | None = None

    # -- preallocated fast-path buffers --------------------------------
    def ensure_scratch(self, max_degree: int) -> _Scratch:
        """Allocate (or reuse) the reusable fast-path buffers.

        ``max_degree`` sizes the neighbor-indexed buffers; a scratch
        allocated for a smaller degree is re-grown.
        """
        if self.scratch is None or self.scratch.max_degree < max_degree:
            self.scratch = _Scratch(self.num_partitions, max_degree)
        return self.scratch

    def penalty_weights_into(self, out: np.ndarray) -> np.ndarray:
        """:meth:`penalty_weights` written into ``out`` — no temporaries.

        Bit-identical to the allocating version (same elementwise
        operations in the same order).
        """
        np.divide(self.loads(), self.capacity, out=out)
        np.subtract(1.0, out, out=out)
        np.maximum(out, 0.0, out=out)
        if self.edge_capacity is not None:
            ew = self.scratch.edge_weights
            np.divide(self.edge_counts, self.edge_capacity, out=ew)
            np.subtract(1.0, ew, out=ew)
            np.maximum(ew, 0.0, out=ew)
            np.minimum(out, ew, out=out)
        return out

    def neighbor_counts_fast(self, neighbors: np.ndarray) -> np.ndarray:
        """:meth:`neighbor_partition_counts` without the filter pass.

        Shifts partition ids by one so the ``UNASSIGNED`` sentinel lands
        in bincount slot 0, then drops that slot — one ``bincount``
        instead of mask + fancy-index + ``bincount``.  Returns a length-K
        ``int64`` view; valid until the next call.  Does not feed the
        probe memo (the fast path runs uninstrumented by construction).
        """
        d = len(neighbors)
        if d == 0:
            return self.scratch.zeros_k
        parts = self.route.take(neighbors, out=self.scratch.parts[:d])
        np.add(parts, 1, out=parts)
        counts = np.bincount(parts, minlength=self.num_partitions + 1)
        return counts[1:]

    # ------------------------------------------------------------------
    def loads(self) -> np.ndarray:
        """Current workload per partition in the active balance measure.

        Under ``BOTH`` this is the vertex tally (the primary constraint,
        also used for tie-breaking); the edge cap acts through
        :meth:`penalty_weights` and :meth:`eligible`.
        """
        if self.balance is BalanceMode.EDGE:
            return self.edge_counts
        return self.vertex_counts

    def penalty_weights(self) -> np.ndarray:
        """``w^t(i, v) = max(0, 1 - |P_i^t|/C)`` for every partition.

        Under ``BOTH``, the tighter of the vertex and edge weights.
        """
        weights = np.maximum(0.0, 1.0 - self.loads() / self.capacity)
        if self.edge_capacity is not None:
            edge_weights = np.maximum(
                0.0, 1.0 - self.edge_counts / self.edge_capacity)
            weights = np.minimum(weights, edge_weights)
        return weights

    def eligible(self) -> np.ndarray:
        """Boolean mask of partitions with remaining capacity."""
        mask = self.loads() < self.capacity
        if self.edge_capacity is not None:
            mask &= self.edge_counts < self.edge_capacity
        return mask

    def neighbor_partition_counts(self,
                                  neighbors: np.ndarray) -> np.ndarray:
        """``|V_i^pt ∩ N_out(v)|`` for every partition, vectorized.

        Unplaced neighbors contribute to no partition.
        """
        if len(neighbors) == 0:
            return np.zeros(self.num_partitions, dtype=np.int64)
        parts = self.route[neighbors]
        placed = parts[parts != UNASSIGNED]
        counts = np.bincount(placed, minlength=self.num_partitions
                             ).astype(np.int64)
        self._nc_memo = (neighbors, counts, placed.size)
        return counts

    def consume_neighbor_counts(self, neighbors: np.ndarray
                                ) -> tuple[np.ndarray, int] | None:
        """One-shot read of the memoized tally for exactly ``neighbors``.

        Returns ``(counts, num_placed)`` from the most recent
        :meth:`neighbor_partition_counts` call *iff* it was for the same
        array object (identity, not equality — the streamed record hands
        the same array to scoring and to the probe), else ``None``.  The
        memo is cleared on read so a stale tally can never be replayed.
        """
        memo = self._nc_memo
        if memo is None or memo[0] is not neighbors:
            return None
        self._nc_memo = None
        return memo[1], memo[2]

    def commit(self, record: AdjacencyRecord, pid: int) -> None:
        """Apply a placement decision (Algorithm 1, lines 2–4)."""
        if not 0 <= pid < self.num_partitions:
            raise ValueError(f"invalid partition id {pid}")
        if self.route[record.vertex] != UNASSIGNED:
            raise ValueError(f"vertex {record.vertex} placed twice")
        self.route[record.vertex] = pid
        self.vertex_counts[pid] += 1
        self.edge_counts[pid] += record.out_degree
        self.placed_vertices += 1
        self.placed_edges += record.out_degree

    def to_assignment(self) -> PartitionAssignment:
        """Snapshot the route table as an immutable assignment."""
        return PartitionAssignment(self.route.copy(), self.num_partitions)

    # -- checkpoint/restore --------------------------------------------
    def state_dict(self) -> dict[str, Any]:
        """Everything needed to rebuild this state in a fresh process.

        Configuration fields (dimensions, balance mode, capacities) are
        included so :meth:`load_state` can refuse a snapshot taken under
        different run parameters instead of silently mixing them.
        """
        return {
            "num_partitions": int(self.num_partitions),
            "num_vertices": int(self.num_vertices),
            "num_edges": int(self.num_edges),
            "balance": self.balance.value,
            "capacity": float(self.capacity),
            "edge_capacity": None if self.edge_capacity is None
            else float(self.edge_capacity),
            "overflow_policy": self.overflow_policy,
            "route": self.route.copy(),
            "vertex_counts": self.vertex_counts.copy(),
            "edge_counts": self.edge_counts.copy(),
            "placed_vertices": int(self.placed_vertices),
            "placed_edges": int(self.placed_edges),
            "capacity_overflows": int(self.capacity_overflows),
        }

    def load_state(self, payload: dict[str, Any]) -> None:
        """Restore from :meth:`state_dict` output (config must match).

        The fast-path scratch is *not* restored: it is derived state,
        rebuilt from the restored arrays the next time a fused kernel is
        constructed (``ensure_scratch`` plus the kernels' maintained
        images, which are all initialized from the live route/counts).
        """
        for field_name in ("num_partitions", "num_vertices", "num_edges"):
            if int(payload[field_name]) != getattr(self, field_name):
                raise ValueError(
                    f"snapshot {field_name}={payload[field_name]} does not "
                    f"match this run's {getattr(self, field_name)}")
        if payload["balance"] != self.balance.value:
            raise ValueError(
                f"snapshot balance mode {payload['balance']!r} does not "
                f"match this run's {self.balance.value!r}")
        if float(payload["capacity"]) != float(self.capacity):
            raise ValueError(
                f"snapshot capacity {payload['capacity']} does not match "
                f"this run's {self.capacity} (different slack?)")
        np.copyto(self.route, payload["route"])
        np.copyto(self.vertex_counts, payload["vertex_counts"])
        np.copyto(self.edge_counts, payload["edge_counts"])
        self.placed_vertices = int(payload["placed_vertices"])
        self.placed_edges = int(payload["placed_edges"])
        self.capacity_overflows = int(payload["capacity_overflows"])
        self._nc_memo = None


def _make_fast_choose(state: PartitionState) -> tuple[
        Callable[[np.ndarray], int], Callable[[int], None]]:
    """Build a fused, in-place variant of :meth:`StreamingPartitioner.choose`.

    Returns ``(choose, note_commit)``.  ``choose`` destroys its input
    buffer (masking ineligible partitions to ``-inf`` and scrubbing the
    argmax) — callers hand it the per-record score scratch, never a
    long-lived array.  It picks the *identical* partition as ``choose``
    for any input: same capacity masking, same overflow safety valve,
    same least-loaded-then-lowest-id tie-break (the byte-identity test
    suite rests on this).

    The ineligibility mask is maintained *incrementally*: loads are
    monotone and only the committed lane changes per record, so the
    caller reports each commit via ``note_commit(pid)`` and the K-wide
    ``>=`` scans (plus the ``-inf`` scatter while every lane is still
    eligible — the overwhelmingly common regime) disappear from the per
    record cost.
    """
    scratch = state.scratch
    loads = state.loads()  # stable array reference, mutated in place
    capacity = state.capacity
    edge_counts = state.edge_counts
    edge_capacity = state.edge_capacity
    inelig = scratch.inelig
    neg_inf = -np.inf
    isfinite = math.isfinite

    np.greater_equal(loads, capacity, out=inelig)
    if edge_capacity is not None:
        np.greater_equal(edge_counts, edge_capacity, out=scratch.inelig2)
        np.logical_or(inelig, scratch.inelig2, out=inelig)
    num_inelig = [int(np.count_nonzero(inelig))]
    strict_overflow = state.overflow_policy == "strict"

    def choose(scores: np.ndarray) -> int:
        if num_inelig[0]:
            np.copyto(scores, neg_inf, where=inelig)
            pid = scores.argmax()
            best = scores[pid]
            if not isfinite(best):
                if strict_overflow:
                    raise CapacityOverflowError(
                        f"all {state.num_partitions} partitions are at "
                        f"capacity {state.capacity}")
                state.capacity_overflows += 1
                return int(loads.argmin())
        else:
            pid = scores.argmax()
            best = scores[pid]
        # Scrub-and-rescan: cheap uniqueness test in the common untied
        # case (mirrors choose_with_margin's argument).
        scores[pid] = neg_inf
        if scores.max() == best:
            scores[pid] = best
            candidates = np.nonzero(scores == best)[0]
            return int(candidates[loads[candidates].argmin()])
        return int(pid)

    def note_commit(pid: int) -> None:
        if not inelig[pid]:
            bad = loads[pid] >= capacity
            if not bad and edge_capacity is not None:
                bad = edge_counts[pid] >= edge_capacity
            if bad:
                inelig[pid] = True
                num_inelig[0] += 1

    return choose, note_commit


def make_shifted_counter(state: PartitionState) -> tuple[
        Callable[[np.ndarray], np.ndarray], Callable[[int, int], None]]:
    """Neighbor tallies via a *maintained* shifted route table.

    Returns ``(counts, note_commit)``.  ``counts(neighbors)`` equals
    :meth:`PartitionState.neighbor_counts_fast` but against a persistent
    ``route + 1`` image (``UNASSIGNED`` ⇒ slot 0), so the per-record cost
    is one ``take`` plus one ``bincount`` — the ``+1`` shift moved to the
    single committed lane via ``note_commit(v, pid)``.
    """
    scratch = state.scratch
    shifted = (state.route + 1).astype(np.int32)
    buf = scratch.parts
    zeros_k = scratch.zeros_k
    kp1 = state.num_partitions + 1

    def counts(neighbors: np.ndarray) -> np.ndarray:
        d = len(neighbors)
        if d == 0:
            return zeros_k
        tally = np.bincount(shifted.take(neighbors, out=buf[:d]),
                            minlength=kp1)
        return tally[1:]

    def note_commit(v: int, pid: int) -> None:
        shifted[v] = pid + 1

    return counts, note_commit


def make_weight_updater(state: PartitionState,
                        weights: np.ndarray) -> Callable[[int], None]:
    """Incremental maintenance of the penalty-weight vector ``w^t``.

    Fills ``weights`` via :meth:`PartitionState.penalty_weights_into`
    once, then returns ``update(pid)`` which refreshes the single lane a
    commit touched with scalar IEEE arithmetic — the same divide /
    subtract / clamp (/ min) sequence as the vector kernel, applied to
    one lane, so the maintained vector stays bit-identical to a full
    recompute while the per-record cost drops from three-to-five K-wide
    ufuncs to a couple of scalar ops.
    """
    state.penalty_weights_into(weights)
    loads = state.loads()
    capacity = state.capacity
    edge_counts = state.edge_counts
    edge_capacity = state.edge_capacity

    def update(pid: int) -> None:
        w = 1.0 - loads[pid] / capacity
        if w < 0.0:
            w = 0.0
        if edge_capacity is not None:
            we = 1.0 - edge_counts[pid] / edge_capacity
            if we < 0.0:
                we = 0.0
            if we < w:
                w = we
        weights[pid] = w

    return update


@dataclass
class StreamingResult:
    """Outcome of one streaming partitioning run.

    ``stats`` stays a plain dict (the backwards-compatible payload every
    sink and bench table consumes), but the normalised keys are also
    exposed as typed properties — ``result.placements`` instead of
    ``result.stats["placements"]`` — so callers and the service ``stats``
    endpoint stop string-indexing.  Keys a heuristic did not report come
    back as their documented defaults, never :class:`KeyError`.
    """

    assignment: PartitionAssignment
    partitioner: str
    elapsed_seconds: float
    num_partitions: int
    stats: dict[str, Any] = field(default_factory=dict)

    # -- typed accessors over the normalised stats keys ----------------
    @property
    def placements(self) -> int:
        """Vertices placed by the pass (``stats["placements"]``)."""
        return int(self.stats.get("placements", 0))

    @property
    def capacity_overflows(self) -> int:
        """All-partitions-full safety-valve events."""
        return int(self.stats.get("capacity_overflows", 0))

    @property
    def expectation_table_entries(self) -> int:
        """Live Γ-table entry count (0 for Γ-free heuristics)."""
        return int(self.stats.get("expectation_table_entries", 0))

    @property
    def expectation_table_bytes(self) -> int:
        """Live Γ-table footprint in bytes (0 for Γ-free heuristics)."""
        return int(self.stats.get("expectation_table_bytes", 0))

    @property
    def fast_path(self) -> bool:
        """Whether the vectorized fused-kernel loop ran this pass."""
        return bool(self.stats.get("fast_path", False))

    @property
    def ingest(self) -> dict[str, Any] | None:
        """Prefetch/ingest accounting, when the stream reported any."""
        return self.stats.get("ingest")

    def __str__(self) -> str:
        return (f"{self.partitioner}: K={self.num_partitions} in "
                f"{self.elapsed_seconds:.3f}s")


class StreamingPartitioner(ABC):
    """Base class for all one-pass streaming heuristics.

    Parameters
    ----------
    num_partitions:
        ``K``.
    balance:
        Vertex- or edge-based capacity (the paper primarily evaluates
        vertex balance; Table III reports both factors).
    slack:
        The user-given balance threshold ``δ`` in ``C = δ·|G|/K``.
    """

    def __init__(self, num_partitions: int, *,
                 balance: BalanceMode | str = BalanceMode.VERTEX,
                 slack: float = 1.1,
                 edge_slack: float | None = None,
                 overflow: str = "least-loaded") -> None:
        self.num_partitions = int(num_partitions)
        self.balance = BalanceMode(balance)
        self.slack = float(slack)
        self.edge_slack = edge_slack
        if overflow not in OVERFLOW_POLICIES:
            raise ValueError(
                f"overflow must be one of {OVERFLOW_POLICIES}, "
                f"got {overflow!r}")
        self.overflow = overflow

    # -- identification -------------------------------------------------
    @property
    def name(self) -> str:
        """Short display name used in reports (defaults to class name)."""
        return type(self).__name__

    def __repr__(self) -> str:
        return f"{self.name}(K={self.num_partitions})"

    # -- per-heuristic hooks ---------------------------------------------
    def _setup(self, stream: VertexStream, state: PartitionState) -> None:
        """Called once before streaming; allocate heuristic state here."""

    @abstractmethod
    def _score(self, record: AdjacencyRecord,
               state: PartitionState) -> np.ndarray:
        """Return the length-K placement score vector for one record."""

    def _after_commit(self, record: AdjacencyRecord, pid: int,
                      state: PartitionState) -> None:
        """Called after each placement; update heuristic state here."""

    def _extra_stats(self) -> dict[str, Any]:
        """Heuristic-specific numbers to attach to the result."""
        return {}

    def _heuristic_state_dict(self) -> dict[str, Any]:
        """Heuristic-private run state for a checkpoint (default: none).

        Called only between records of an active run (after ``_setup``).
        Values must be scalars, strings, nested dicts, or numpy arrays —
        the snapshot codec's vocabulary.
        """
        return {}

    def _load_heuristic_state(self, payload: dict[str, Any]) -> None:
        """Restore :meth:`_heuristic_state_dict` output (after ``_setup``)."""

    # -- process sharding -----------------------------------------------
    def score_lanes(self) -> dict[str, np.ndarray] | None:
        """Declare the heuristic-private arrays ``_score`` reads.

        The process-sharded executor moves every array that scoring
        depends on into shared memory: the :class:`PartitionState`
        triple (route table, vertex/edge tallies) is handled by the
        executor itself, and this hook names whatever *else* the
        heuristic mutates between records — Γ lanes, SPNL's shrinking
        ``|V^lt|`` tally.  Called after ``_setup``.

        Returning ``None`` (the default) declares the heuristic
        *unsupported* for process sharding: it may hold mutable score
        state the executor cannot see, so sharding it would silently
        score against stale private copies.  A heuristic whose only
        mutable score state is the shared :class:`PartitionState`
        returns ``{}``.
        """
        return None

    def attach_score_lanes(self, lanes: dict[str, np.ndarray]) -> None:
        """Rebind the :meth:`score_lanes` arrays onto shared views.

        ``lanes`` maps the same keys :meth:`score_lanes` declared to
        equal-shape/dtype arrays backed by shared memory.  Called once
        per process after ``_setup`` — in the parent after the initial
        values were copied in, in each worker on zero-copy views of the
        live segment.
        """
        mine = self.score_lanes()
        if mine is None:
            raise ValueError(
                f"{self.name} does not declare score lanes; it cannot "
                "run under the process-sharded executor")
        if set(lanes) != set(mine):
            raise ValueError(
                f"lane mismatch: expected {sorted(mine)}, "
                f"got {sorted(lanes)}")
        if mine:  # heuristics with lanes must override the rebind
            raise NotImplementedError(
                f"{self.name} declares lanes {sorted(mine)} but does not "
                "implement attach_score_lanes")

    # -- checkpoint/restore -------------------------------------------------
    def state_dict(self, state: PartitionState) -> dict[str, Any]:
        """Capture the full mid-run state of this partitioner.

        The result (shared :class:`PartitionState` plus the heuristic's
        private state — Γ tables, η bookkeeping, FENNEL's effective α)
        is what :mod:`repro.recovery.snapshot` serializes; feeding it to
        :meth:`load_state` in a fresh process reproduces the run
        byte-for-byte from the captured stream position.
        """
        return {
            "partitioner": self.name,
            "partition_state": state.state_dict(),
            "heuristic": self._heuristic_state_dict(),
        }

    def load_state(self, stream: VertexStream,
                   payload: dict[str, Any]) -> PartitionState:
        """Rebuild run state from :meth:`state_dict` output.

        Runs the normal ``make_state`` + ``_setup`` sequence (so every
        derived structure — Γ store, Range tables, scratch — exists and
        is sized for ``stream``), then overwrites the mutable state with
        the snapshot's.  Returns the restored :class:`PartitionState`;
        the caller seeks the stream and continues the pass.
        """
        saved = payload.get("partitioner")
        if saved is not None and saved != self.name:
            raise ValueError(
                f"snapshot was taken by partitioner {saved!r}, cannot "
                f"restore into {self.name!r}")
        state = self.make_state(stream)
        self._setup(stream, state)
        state.load_state(payload["partition_state"])
        self._load_heuristic_state(payload.get("heuristic", {}))
        return state

    # -- shared placement machinery ---------------------------------------
    @staticmethod
    def _note_overflow(state: PartitionState) -> None:
        """Apply the all-partitions-full policy: count, or fail loudly."""
        if state.overflow_policy == "strict":
            raise CapacityOverflowError(
                f"all {state.num_partitions} partitions are at capacity "
                f"{state.capacity}")
        state.capacity_overflows += 1

    def choose(self, scores: np.ndarray, state: PartitionState) -> int:
        """Pick a partition from a score vector under the shared policy."""
        loads = state.loads()
        masked = np.where(state.eligible(), scores, -np.inf)
        best = masked.max()
        if not np.isfinite(best):
            self._note_overflow(state)
            return int(np.argmin(loads))  # all partitions full
        candidates = np.nonzero(masked == best)[0]
        if len(candidates) == 1:
            return int(candidates[0])
        return int(candidates[np.argmin(loads[candidates])])

    def choose_with_margin(self, scores: np.ndarray, state: PartitionState
                           ) -> tuple[int, float | None]:
        """:meth:`choose`, plus the argmax-vs-runner-up score margin.

        Must pick the *identical* partition as :meth:`choose` for any
        input (the no-instrumentation byte-identity guarantee rests on
        this; a regression test enforces it).  The margin is ``0.0`` on a
        tied argmax, ``None`` when fewer than two partitions were
        eligible (no runner-up to compare against), and finite otherwise
        — callers may skip NaN/inf checks.

        The argmax/scrub/second-max order below makes the instrumented
        decision no dearer than :meth:`choose` in the common untied case
        (one argmax + one max, versus choose's max + equality scan), so
        the margin is effectively free; only a tied argmax pays for the
        full candidate reconstruction.
        """
        loads = state.loads()
        masked = np.where(state.eligible(), scores, -np.inf)
        pid = int(masked.argmax())
        best = masked[pid]
        if not np.isfinite(best):
            self._note_overflow(state)
            return int(np.argmin(loads)), None
        masked[pid] = -np.inf  # masked is fresh from np.where; safe to scrub
        runner_up = masked.max()
        if runner_up == best:  # tied argmax: replay choose's tiebreak
            masked[pid] = best
            candidates = np.nonzero(masked == best)[0]
            return int(candidates[np.argmin(loads[candidates])]), 0.0
        margin = float(best - runner_up) if np.isfinite(runner_up) else None
        return pid, margin

    def place(self, record: AdjacencyRecord, state: PartitionState) -> int:
        """Score + choose + commit + heuristic update for one record."""
        pid = self.choose(self._score(record, state), state)
        state.commit(record, pid)
        self._after_commit(record, pid, state)
        return pid

    # -- the vectorized fast path ------------------------------------------
    def _fast_kernel(self, state: PartitionState,
                     stream: ArrayStream) -> FastKernel | None:
        """Build the heuristic's fused scoring kernel, or ``None``.

        Returning a kernel opts the heuristic into the zero-allocation
        fast loop of :meth:`_run_fast`; the kernel **must** produce
        bit-identical scores to :meth:`_score` (the registry-wide
        byte-identity test enforces the resulting assignments match).
        The default opts out, which keeps exotic heuristics correct on
        the record-at-a-time path.
        """
        return None

    def _run_fast(self, arrays: ArrayStream, state: PartitionState,
                  kernel: FastKernel, *, start: int = 0,
                  stop: int | None = None) -> float:
        """The fused one-pass loop over CSR arrays; returns elapsed PT.

        Per record: one kernel call (scores into a reusable buffer), one
        in-place choose, three scalar counter updates, and the optional
        after-commit hook — no ``AdjacencyRecord`` objects, no method
        dispatch through ``place``, no temporary K-vectors.

        ``start``/``stop`` bound the slice of the arrival order this
        call processes (default: everything).  The checkpointing driver
        runs the pass as consecutive segments against one long-lived
        ``kernel`` — the kernel's maintained images carry across
        segments, so a segmented run is byte-identical to a single call.
        """
        score_into, after_commit = kernel
        indptr = arrays.indptr
        indices = arrays.indices
        order = arrays.order
        route = state.route
        vertex_counts = state.vertex_counts
        edge_counts = state.edge_counts
        choose, note_commit = _make_fast_choose(state)
        n = arrays.num_vertices
        if stop is None:
            stop = n
        if not 0 <= start <= stop <= n:
            raise ValueError(
                f"invalid fast-path segment [{start}, {stop}) for "
                f"{n} records")

        start_t = time.perf_counter()
        vertices = range(start, stop) if order is None else order[start:stop]
        if after_commit is None:
            for v in vertices:
                lo = indptr[v]
                hi = indptr[v + 1]
                pid = choose(score_into(v, indices[lo:hi]))
                route[v] = pid
                vertex_counts[pid] += 1
                edge_counts[pid] += hi - lo
                note_commit(pid)
        else:
            for v in vertices:
                lo = indptr[v]
                hi = indptr[v + 1]
                neighbors = indices[lo:hi]
                pid = choose(score_into(v, neighbors))
                route[v] = pid
                vertex_counts[pid] += 1
                edge_counts[pid] += hi - lo
                after_commit(v, neighbors, pid)
                note_commit(pid)
        state.placed_vertices += stop - start
        if order is None:
            state.placed_edges += int(indptr[stop] - indptr[start])
        else:
            seg = order[start:stop]
            if len(seg):
                state.placed_edges += int(
                    np.sum(indptr[seg + 1] - indptr[seg]))
        return time.perf_counter() - start_t

    # -- the one-pass driver ----------------------------------------------
    def partition(self, stream: VertexStream, *,
                  instrumentation=None,
                  fast: bool | None = None) -> StreamingResult:
        """Run the single streaming pass over ``stream``.

        Timing covers exactly the paper's ``PT`` window: from consuming the
        first adjacency record to producing the final route table.

        ``instrumentation`` (an
        :class:`~repro.observability.Instrumentation` hub, or ``None``)
        opts the pass into windowed tracing: a
        :class:`~repro.observability.StreamProbe` observes every
        placement and emits snapshot records through the hub's sinks.
        When absent the original uninstrumented loop runs, so the
        produced assignment is byte-identical either way.

        ``fast`` selects the execution path: ``None`` (default) uses the
        vectorized fast loop whenever the stream is CSR-backed
        (:func:`~repro.graph.stream.as_array_stream`), the run is
        uninstrumented, and the heuristic ships a fused kernel — falling
        back to the record loop otherwise; ``False`` forces the record
        loop (the microbench's seed baseline); ``True`` demands the fast
        path and raises :class:`ValueError` when it is unavailable.
        The two paths produce byte-identical assignments.
        """
        state = self.make_state(stream)
        self._setup(stream, state)
        if fast is not False and instrumentation is None:
            arrays = as_array_stream(stream)
            kernel = None
            if arrays is not None:
                kernel = self._fast_kernel(state, arrays)
            if kernel is not None:
                elapsed = self._run_fast(arrays, state, kernel,
                                         start=arrays.tell())
                stats = self.result_stats(state)
                stats["fast_path"] = True
                return StreamingResult(
                    assignment=state.to_assignment(),
                    partitioner=self.name,
                    elapsed_seconds=elapsed,
                    num_partitions=self.num_partitions,
                    stats=stats,
                )
            if fast is True:
                reason = "stream is not CSR-backed" if arrays is None \
                    else f"{self.name} has no fused kernel"
                raise ValueError(
                    f"fast=True but the vectorized path is unavailable: "
                    f"{reason}")
        elif fast is True:
            raise ValueError(
                "fast=True is incompatible with instrumentation; the "
                "probe observes the record-at-a-time loop")
        if instrumentation is None:
            start = time.perf_counter()
            for record in stream:
                self.place(record, state)
            elapsed = time.perf_counter() - start
        else:
            probe = instrumentation.stream_probe(self, state)
            observe = probe.observe
            start = time.perf_counter()
            for record in stream:
                scores = self._score(record, state)
                pid, margin = self.choose_with_margin(scores, state)
                state.commit(record, pid)
                self._after_commit(record, pid, state)
                observe(record, pid, margin)
            elapsed = time.perf_counter() - start
            probe.finish(elapsed)
        assignment = state.to_assignment()
        stats = self.result_stats(state)
        stats["fast_path"] = False
        # Prefetching streams account for where ingest wall-clock went
        # (producer busy/blocked vs consumer wait); surface it so bench
        # and trace consumers see the overlap without knowing the type.
        ingest_stats = getattr(stream, "ingest_stats", None)
        if callable(ingest_stats):
            stats["ingest"] = ingest_stats()
        return StreamingResult(
            assignment=assignment,
            partitioner=self.name,
            elapsed_seconds=elapsed,
            num_partitions=self.num_partitions,
            stats=stats,
        )

    def result_stats(self, state: PartitionState) -> dict[str, Any]:
        """Normalised stats shared by every heuristic, plus extras.

        The common keys (``placements``, ``capacity_overflows``,
        ``expectation_table_entries``) are always present so sinks and
        bench tables can consume results without per-heuristic casing;
        :meth:`_extra_stats` may override the defaults (SPN/SPNL report
        their real Γ-table sizes).
        """
        stats: dict[str, Any] = {
            "placements": int(state.placed_vertices),
            "capacity_overflows": int(state.capacity_overflows),
            "expectation_table_entries": 0,
            "expectation_table_bytes": 0,
        }
        stats.update(self._extra_stats())
        return stats

    def make_state(self, stream: VertexStream) -> PartitionState:
        """Build the shared state sized for ``stream``."""
        return PartitionState(
            self.num_partitions, stream.num_vertices, stream.num_edges,
            balance=self.balance, slack=self.slack,
            edge_slack=self.edge_slack, overflow=self.overflow)
