"""Partitioning-quality metrics from the paper's evaluation (Sec. VI-A).

* ``ECR`` — Edge Cut Ratio ``|D| / |E|``: fraction of directed edges whose
  endpoints land in different partitions (lower is better);
* ``δ_v`` — vertex balance factor: ``max_i |V_i| · K / |V|`` (Eq. 1 solved
  for the smallest admissible δ; 1.0 is perfect balance);
* ``δ_e`` — edge balance factor, same with ``|E_i|`` (Eq. 2).

All computations are vectorized over the CSR arrays, so evaluating a
partitioning costs O(|E|) with small constants.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.digraph import DiGraph
from .assignment import UNASSIGNED, PartitionAssignment

__all__ = ["QualityReport", "evaluate", "edge_cut", "edge_cut_ratio",
           "vertex_balance", "edge_balance", "cut_matrix"]


@dataclass(frozen=True)
class QualityReport:
    """Full quality snapshot of one partitioning."""

    graph_name: str
    num_partitions: int
    num_cut_edges: int
    ecr: float
    delta_v: float
    delta_e: float
    vertex_counts: np.ndarray
    edge_counts: np.ndarray

    def as_row(self) -> dict:
        """Flat dict matching the paper's table columns."""
        return {
            "graph": self.graph_name,
            "K": self.num_partitions,
            "ECR": round(self.ecr, 4),
            "delta_v": round(self.delta_v, 2),
            "delta_e": round(self.delta_e, 2),
            "cut_edges": self.num_cut_edges,
        }

    def __str__(self) -> str:
        return (f"{self.graph_name} K={self.num_partitions}: "
                f"ECR={self.ecr:.4f} δv={self.delta_v:.2f} "
                f"δe={self.delta_e:.2f}")


def _cut_mask(graph: DiGraph,
              assignment: PartitionAssignment) -> np.ndarray:
    """Boolean mask over edges: True where the edge crosses partitions."""
    route = assignment.route
    src, dst = graph.edge_array()
    src_part = route[src]
    dst_part = route[dst]
    return src_part != dst_part


def edge_cut(graph: DiGraph, assignment: PartitionAssignment) -> int:
    """``|D|`` — the number of cutting (cross-partition) directed edges."""
    return int(np.sum(_cut_mask(graph, assignment)))


def edge_cut_ratio(graph: DiGraph,
                   assignment: PartitionAssignment) -> float:
    """``ECR = |D| / |E|`` (0 when the graph has no edges)."""
    if graph.num_edges == 0:
        return 0.0
    return edge_cut(graph, assignment) / graph.num_edges


def vertex_balance(graph: DiGraph,
                   assignment: PartitionAssignment) -> float:
    """``δ_v``: how far the largest partition exceeds the ideal |V|/K."""
    counts = assignment.vertex_counts()
    if graph.num_vertices == 0:
        return 1.0
    ideal = graph.num_vertices / assignment.num_partitions
    return float(counts.max() / ideal)


def edge_balance(graph: DiGraph,
                 assignment: PartitionAssignment) -> float:
    """``δ_e``: how far the edge-heaviest partition exceeds |E|/K."""
    counts = assignment.edge_counts(graph)
    if graph.num_edges == 0:
        return 1.0
    ideal = graph.num_edges / assignment.num_partitions
    return float(counts.max() / ideal)


def cut_matrix(graph: DiGraph,
               assignment: PartitionAssignment) -> np.ndarray:
    """K×K matrix of cross-partition edge counts.

    Entry ``[i, j]`` counts directed edges from ``P_i`` to ``P_j``; the
    off-diagonal sum equals :func:`edge_cut`.  The BSP runtime uses this
    as its communication matrix.
    """
    route = assignment.route
    src, dst = graph.edge_array()
    k = assignment.num_partitions
    flat = route[src].astype(np.int64) * k + route[dst]
    valid = (route[src] != UNASSIGNED) & (route[dst] != UNASSIGNED)
    counts = np.bincount(flat[valid], minlength=k * k)
    return counts.reshape(k, k)


def evaluate(graph: DiGraph,
             assignment: PartitionAssignment) -> QualityReport:
    """Compute the full paper metric set for one partitioning.

    Raises if the assignment is incomplete — the paper's metrics are only
    defined over total partitionings.
    """
    assignment.validate(graph.num_vertices)
    cut = edge_cut(graph, assignment)
    return QualityReport(
        graph_name=graph.name,
        num_partitions=assignment.num_partitions,
        num_cut_edges=cut,
        ecr=cut / graph.num_edges if graph.num_edges else 0.0,
        delta_v=vertex_balance(graph, assignment),
        delta_e=edge_balance(graph, assignment),
        vertex_counts=assignment.vertex_counts(),
        edge_counts=assignment.edge_counts(graph),
    )
