"""Re-streaming wrappers (related-work extension, paper Sec. III-B).

Nishimura & Ugander's *restreaming* idea: run the streaming partitioner
several passes, letting pass ``r`` see pass ``r-1``'s placements for every
vertex that has not yet re-arrived.  Quality improves monotonically in
practice at a linear cost in passes.  The paper cites this family as the
standard way to buy quality with extra scans; we provide it both as a
baseline enhancer and to show SPNL *single-pass* already reaches
multi-pass LDG territory (ablation benchmark).

Works with any :class:`~repro.partitioning.base.StreamingPartitioner` —
including SPN/SPNL, whose Γ tables are rebuilt per pass.
"""

from __future__ import annotations

import time
from typing import Callable

import numpy as np

from ..graph.stream import VertexStream
from .assignment import UNASSIGNED, PartitionAssignment
from .base import PartitionState, StreamingPartitioner, StreamingResult

__all__ = ["RestreamingPartitioner", "RestreamState"]


class RestreamState(PartitionState):
    """Pass-local state whose route table is pre-seeded with the previous
    pass's assignment.

    Scoring therefore sees the previous placement of every vertex that has
    not yet re-arrived (fully-restreaming semantics), while the capacity
    tallies count only *this* pass's placements, matching ReLDG.
    """

    def __init__(self, previous_route: np.ndarray, num_partitions: int,
                 num_vertices: int, num_edges: int, **kwargs) -> None:
        super().__init__(num_partitions, num_vertices, num_edges, **kwargs)
        self.route = previous_route.astype(np.int32).copy()

    def commit(self, record, pid: int) -> None:
        """Overwrite the carried-over placement without double-place checks."""
        if not 0 <= pid < self.num_partitions:
            raise ValueError(f"invalid partition id {pid}")
        self.route[record.vertex] = pid
        self.vertex_counts[pid] += 1
        self.edge_counts[pid] += record.out_degree
        self.placed_vertices += 1
        self.placed_edges += record.out_degree


class RestreamingPartitioner:
    """Multi-pass wrapper around a streaming partitioner.

    Parameters
    ----------
    base_factory:
        Zero-argument callable producing a fresh base partitioner per run
        (its hooks hold per-pass state, so one instance is reused across
        passes but re-``_setup`` before each).
    num_passes:
        Total passes including the initial cold pass (>= 1).
    restream_fraction:
        Fraction of vertices re-decided in warm passes (1.0 = fully
        restreaming; < 1 = partial restreaming — the rest keep their
        previous placement).  Selection is by id hash, deterministic.
    """

    def __init__(self, base_factory: Callable[[], StreamingPartitioner], *,
                 num_passes: int = 2, restream_fraction: float = 1.0) -> None:
        if num_passes < 1:
            raise ValueError("num_passes must be >= 1")
        if not 0.0 < restream_fraction <= 1.0:
            raise ValueError("restream_fraction must be in (0, 1]")
        self.base_factory = base_factory
        self.num_passes = num_passes
        self.restream_fraction = restream_fraction
        self._base = base_factory()

    @property
    def name(self) -> str:
        return f"Re{self._base.name}x{self.num_passes}"

    @property
    def num_partitions(self) -> int:
        return self._base.num_partitions

    def _should_restream(self, vertex: int) -> bool:
        if self.restream_fraction >= 1.0:
            return True
        threshold = int(self.restream_fraction * 2**32)
        return (vertex * 2654435761) % 2**32 < threshold

    def partition(self, stream: VertexStream) -> StreamingResult:
        """Run ``num_passes`` passes; returns the final pass's assignment.

        ``stats['pass_history']`` records the per-pass elapsed times so the
        quality-vs-passes tradeoff can be plotted.
        """
        base = self._base
        start = time.perf_counter()
        route = np.full(stream.num_vertices, UNASSIGNED, dtype=np.int32)
        pass_times: list[float] = []
        for pass_idx in range(self.num_passes):
            t0 = time.perf_counter()
            state: PartitionState
            if pass_idx == 0:
                state = base.make_state(stream)
            else:
                state = RestreamState(
                    route, base.num_partitions, stream.num_vertices,
                    stream.num_edges, balance=base.balance,
                    slack=base.slack, edge_slack=base.edge_slack)
            base._setup(stream, state)
            for record in stream:
                if pass_idx > 0 and not self._should_restream(record.vertex):
                    # Keep the previous placement but still account for it
                    # so capacities and heuristic state stay truthful.
                    state.commit(record, int(route[record.vertex]))
                    base._after_commit(record, int(route[record.vertex]),
                                       state)
                    continue
                base.place(record, state)
            route = state.route.copy()
            pass_times.append(time.perf_counter() - t0)
        elapsed = time.perf_counter() - start
        return StreamingResult(
            assignment=PartitionAssignment(route, base.num_partitions),
            partitioner=self.name,
            elapsed_seconds=elapsed,
            num_partitions=base.num_partitions,
            stats={"pass_history": pass_times,
                   "restream_fraction": self.restream_fraction},
        )
