"""SPNL — SPN enhanced with topology Locality (paper Sec. IV-C).

SPN's knowledge is still thin during the initial streaming phase, when few
vertices are physically placed.  SPNL fixes this with a *logical
pre-assignment*: before streaming, every vertex is tentatively assigned by
the O(2K) **Range** policy (consecutive id ranges → partitions), which is
accurate exactly when vertex ids carry topology locality — true for
BFS-crawled web graphs.  The placement rule becomes Eq. 6:

    pid = argmax_i w^t(i,v) · ( (1-λ)·Σ_{u∈N_out(v)} Γ_i^t(u)
            + λ·( (1-η_i^t)·|V_i^pt ∩ N_out(v)|
                  + η_i^t·|V_i^lt ∩ N_out(v)| ) )

where ``V_i^lt`` is the shrinking set of logically-assigned-but-not-yet-
placed vertices and the decay factor

    η_i^t = max(0, (|V_i^lt| - |V_i^pt|) / |V_i^lt|)

starts at 1 (trust the assumption) and decays toward 0 as physical
knowledge accumulates.  A vertex leaves ``V^lt`` the moment it is
physically placed — regardless of where — so the logical term only ever
counts genuinely unplaced neighbors.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..graph.digraph import AdjacencyRecord
from ..graph.stream import ArrayStream, VertexStream
from .assignment import UNASSIGNED
from .base import FastKernel, PartitionState, make_weight_updater
from .eta import ETA_SCHEDULES, EtaSchedule, resolve_eta_schedule
from .hashing import range_boundaries
from .registry import register
from .spn import SPNPartitioner

__all__ = ["SPNLPartitioner"]


@register("spnl", summary="SPNL — SPN + topology locality (Eq. 6)")
class SPNLPartitioner(SPNPartitioner):
    """The SPNL heuristic (Eq. 6) — the paper's headline partitioner.

    Accepts every :class:`SPNPartitioner` parameter (λ, sliding-window X,
    balance mode, slack) plus:

    Parameters
    ----------
    use_decay:
        ``True`` (default) selects the paper's η schedule; ``False``
        freezes η at 1.  Shorthand for the corresponding
        ``eta_schedule`` values.
    eta_schedule:
        Full control over the decay (paper Sec. IV-C future work): a
        name from :data:`repro.partitioning.eta.ETA_SCHEDULES`
        ("paper", "frozen", "linear", "sqrt"), a constant in [0, 1], or
        a callable ``(lt, pt, range_sizes) -> eta``.  Overrides
        ``use_decay`` when given.
    """

    def __init__(self, num_partitions: int, *, use_decay: bool = True,
                 eta_schedule: str | float | EtaSchedule | None = None,
                 **kwargs) -> None:
        super().__init__(num_partitions, **kwargs)
        self.use_decay = use_decay
        if eta_schedule is None:
            eta_schedule = "paper" if use_decay else "frozen"
        self.eta_schedule = resolve_eta_schedule(eta_schedule)
        self._boundaries: np.ndarray | None = None
        self._logical_pid: np.ndarray | None = None
        self._lt_counts: np.ndarray | None = None
        self._range_sizes: np.ndarray | None = None
        self._live_state: PartitionState | None = None

    @property
    def name(self) -> str:
        return "SPNL"

    # ------------------------------------------------------------------
    def _setup(self, stream: VertexStream, state: PartitionState) -> None:
        super()._setup(stream, state)
        self._live_state = state  # lets _probe_gauges read the live η
        n = stream.num_vertices
        self._boundaries = range_boundaries(n, self.num_partitions)
        # Precomputing each id's logical partition trades O(|V|) ints for
        # O(1) lookups in the hot loop; the O(2K) table of the paper is
        # recoverable from _boundaries and is what the memory model counts.
        self._logical_pid = (np.searchsorted(
            self._boundaries, np.arange(n), side="right") - 1).clip(
            0, self.num_partitions - 1).astype(np.int32)
        self._lt_counts = np.diff(self._boundaries).astype(np.int64)
        self._range_sizes = self._lt_counts.copy()

    def _eta(self, state: PartitionState) -> np.ndarray:
        """The per-partition decay η_i^t of Eq. 6 (pluggable schedule)."""
        return self.eta_schedule(self._lt_counts, state.vertex_counts,
                                 self._range_sizes)

    def _logical_intersections(self, state: PartitionState,
                               neighbors: np.ndarray) -> np.ndarray:
        """``|V_i^lt ∩ N_out(v)|``: unplaced neighbors by logical home."""
        if len(neighbors) == 0:
            return np.zeros(self.num_partitions, dtype=np.int64)
        unplaced = neighbors[state.route[neighbors] == UNASSIGNED]
        if len(unplaced) == 0:
            return np.zeros(self.num_partitions, dtype=np.int64)
        return np.bincount(self._logical_pid[unplaced],
                           minlength=self.num_partitions).astype(np.int64)

    # ------------------------------------------------------------------
    def _score(self, record: AdjacencyRecord,
               state: PartitionState) -> np.ndarray:
        self.expectation_store.advance_to(record.vertex)
        in_term = self._in_term(record)
        out_physical = state.neighbor_partition_counts(record.neighbors)
        out_logical = self._logical_intersections(state, record.neighbors)
        eta = self._eta(state)
        out_term = (1.0 - eta) * out_physical + eta * out_logical
        combined = (1.0 - self.lam) * in_term + self.lam * out_term
        return combined * state.penalty_weights()

    def _after_commit(self, record: AdjacencyRecord, pid: int,
                      state: PartitionState) -> None:
        super()._after_commit(record, pid, state)
        # v leaves V^lt of its logical home the moment it is placed.
        self._lt_counts[self._logical_pid[record.vertex]] -= 1

    def _heuristic_state_dict(self) -> dict[str, Any]:
        payload = super()._heuristic_state_dict()
        # _boundaries / _logical_pid / _range_sizes are pure functions of
        # (|V|, K) and rebuilt by _setup; only the shrinking |V^lt| tally
        # is genuinely mutable.  The η schedule itself is stateless — it
        # reads (lt, pt, range_sizes), all of which the snapshot covers.
        payload["lt_counts"] = self._lt_counts.copy()
        return payload

    def _load_heuristic_state(self, payload: dict[str, Any]) -> None:
        super()._load_heuristic_state(payload)
        np.copyto(self._lt_counts, payload["lt_counts"])

    def score_lanes(self) -> dict[str, np.ndarray] | None:
        # _boundaries/_logical_pid/_range_sizes are static functions of
        # (|V|, K) rebuilt by every process's own _setup; only the
        # shrinking |V^lt| tally mutates between records.
        lanes = super().score_lanes()
        if lanes is None:
            return None
        lanes["lt_counts"] = self._lt_counts
        return lanes

    def attach_score_lanes(self, lanes: dict[str, np.ndarray]) -> None:
        lt = lanes.get("lt_counts")
        if lt is None or lt.shape != self._lt_counts.shape \
                or lt.dtype != self._lt_counts.dtype:
            raise ValueError(
                "shared lt_counts lane missing or mismatched "
                f"(expected {self._lt_counts.shape}/"
                f"{self._lt_counts.dtype})")
        # super() validates the full key set against (polymorphic)
        # score_lanes and binds the gamma_* lanes; lt_counts is ours.
        super().attach_score_lanes(lanes)
        self._lt_counts = lt

    # -- vectorized fast path ------------------------------------------
    def _fast_kernel(self, state: PartitionState,
                     stream: ArrayStream) -> FastKernel:
        """Fused Eq. 6 with a single shared-bincount count pass.

        Physical and logical intersections come from **one** bincount:
        each neighbor's tally id is its partition when placed, else
        ``K + logical_pid`` — the first K slots are ``|V_i^pt ∩ N|``,
        the next K are ``|V_i^lt ∩ N|`` (an unplaced neighbor is exactly
        one still logically assigned to its Range home).  Under the
        paper's schedule both ``η`` and ``1-η`` are *maintained* rather
        than recomputed: a commit changes |V^pt| on one lane and |V^lt|
        on one lane, so at most two lanes are refreshed per record with
        the same scalar IEEE sequence (``max(lt,1)`` in the denominator
        stands in for the seed's ``np.errstate`` masking, bit-identical
        since masked lanes clamp to 0).  Other schedules run unfused to
        stay pluggable.
        """
        scratch = state.ensure_scratch(stream.max_degree)
        store = self.expectation_store
        k = self.num_partitions
        route = state.route
        in_term_into = self._make_in_term_into(scratch)
        scores, weights = scratch.scores, scratch.weights
        f1, f2, f3 = scratch.f1, scratch.f2, scratch.f3
        update_weights = make_weight_updater(state, weights)
        combo_buf = scratch.parts
        zeros_k = scratch.zeros_k
        lam = self.lam
        one_minus_lam = 1.0 - self.lam
        lt_counts = self._lt_counts
        vertex_counts = state.vertex_counts
        range_sizes = self._range_sizes
        logical_pid = self._logical_pid
        # Maintained tally image: a vertex's count slot is its partition
        # once placed, else K + logical home.  A commit moves exactly one
        # entry, so scoring needs one ``take`` + one ``bincount``.
        combined = np.where(route >= 0, route,
                            logical_pid + np.int32(k)).astype(np.int32)
        paper_eta = self.eta_schedule is ETA_SCHEDULES["paper"]
        eta_schedule = self.eta_schedule
        advance_to = store.advance_to if store.needs_advance else None
        record_gamma = store.record
        two_k = 2 * k

        if paper_eta:
            # Maintained η and 1-η (scratch.f4/f5): full fused compute
            # once, then per-commit scalar lane refreshes.
            eta_vec, one_minus_eta = scratch.f4, scratch.f5
            np.subtract(lt_counts, vertex_counts, out=eta_vec)
            np.maximum(lt_counts, 1, out=one_minus_eta)
            np.divide(eta_vec, one_minus_eta, out=eta_vec)
            np.maximum(eta_vec, 0.0, out=eta_vec)
            np.subtract(1.0, eta_vec, out=one_minus_eta)

            def update_eta(i: int) -> None:
                lt = lt_counts[i]
                e = (lt - vertex_counts[i]) / (lt if lt > 1 else 1)
                if e < 0.0:
                    e = 0.0
                eta_vec[i] = e
                one_minus_eta[i] = 1.0 - e

        def score_into(v: int, neighbors: np.ndarray) -> np.ndarray:
            if advance_to is not None:
                advance_to(v)
            in_term = in_term_into(v, neighbors)
            d = len(neighbors)
            if d:
                counts = np.bincount(
                    combined.take(neighbors, out=combo_buf[:d]),
                    minlength=two_k)
                out_physical = counts[:k]
                out_logical = counts[k:]
            else:
                out_physical = zeros_k
                out_logical = zeros_k
            if paper_eta:
                eta = eta_vec
                one_minus = one_minus_eta
            else:
                eta = eta_schedule(lt_counts, vertex_counts, range_sizes)
                one_minus = np.subtract(1.0, eta, out=f3)
            np.multiply(one_minus, out_physical, out=f3)
            np.multiply(eta, out_logical, out=f2)
            np.add(f3, f2, out=f3)  # Eq. 6's bracketed out-term
            np.multiply(in_term, one_minus_lam, out=f1)
            np.multiply(f3, lam, out=f3)
            np.add(f1, f3, out=scores)
            np.multiply(scores, weights, out=scores)
            return scores

        if paper_eta:
            def after_commit(v: int, neighbors: np.ndarray,
                             pid: int) -> None:
                record_gamma(pid, neighbors)
                combined[v] = pid
                lv = logical_pid[v]
                lt_counts[lv] -= 1
                update_eta(lv)
                if lv != pid:
                    update_eta(pid)
                update_weights(pid)
        else:
            def after_commit(v: int, neighbors: np.ndarray,
                             pid: int) -> None:
                record_gamma(pid, neighbors)
                combined[v] = pid
                lt_counts[logical_pid[v]] -= 1
                update_weights(pid)

        return score_into, after_commit

    def _extra_stats(self) -> dict[str, Any]:
        stats = super()._extra_stats()
        stats["use_decay"] = self.use_decay
        stats["eta_schedule"] = getattr(self.eta_schedule, "__name__",
                                        str(self.eta_schedule))
        return stats

    def _probe_gauges(self) -> dict[str, Any]:
        gauges = super()._probe_gauges()
        if self._live_state is not None and self._lt_counts is not None:
            # Mean decay factor: how much the heuristic still leans on the
            # logical pre-assignment at this point of the stream.
            eta = np.asarray(self._eta(self._live_state), dtype=np.float64)
            gauges["eta_mean"] = float(eta.mean()) if eta.ndim else float(eta)
        return gauges
