"""Buffered hybrid streaming partitioning (related-work extension).

Faraj & Schulz (ACM JEA 2022) buffer a batch of streamed vertices and
partition each batch with offline machinery before committing, trading a
bounded amount of memory and latency for quality.  The paper positions
SPN/SPNL as a drop-in *streaming component* for such hybrid frameworks
(Sec. I); this module implements the framework so the claim is testable:

1. records stream through any :class:`StreamingPartitioner` (the
   pluggable component — LDG or SPNL), which places them immediately;
2. every ``buffer_size`` records, a **model graph** is built over the
   batch: the batch's internal edges, plus one frozen *anchor*
   super-vertex per partition carrying the partition's current global
   vertex weight and weighted edges to batch vertices with placed
   neighbors there (the standard buffered-streaming construction);
3. K-way boundary refinement (:func:`repro.offline.refine.refine`) then
   re-decides the batch under the *global* balance constraint — anchors
   cannot move, so the already-streamed world stays put;
4. accepted moves are written back into the streaming state.

Knowledge structures of the inner partitioner (SPN's Γ tables) are not
rewritten retroactively when refinement moves a vertex; the counters go
slightly stale, bounded by the batch size.  This is the same relaxation
the paper's own parallel technique accepts, and the quality gain from
refinement dominates it (see the hybrid benchmark).
"""

from __future__ import annotations

import time
from typing import Callable

import numpy as np

from ..graph.stream import VertexStream
from ..offline.refine import refine
from ..offline.wgraph import WeightedGraph
from .assignment import UNASSIGNED
from .base import PartitionState, StreamingPartitioner, StreamingResult

__all__ = ["BufferedHybridPartitioner"]


class BufferedHybridPartitioner:
    """Hybrid buffered-streaming wrapper around a streaming partitioner.

    Parameters
    ----------
    base_factory:
        Zero-argument callable producing the streaming component (e.g.
        ``lambda: SPNLPartitioner(32, num_shards="auto")``).
    buffer_size:
        Records per batch (the framework's memory/quality dial).
    refine_passes:
        Boundary-refinement passes per batch.
    """

    def __init__(self, base_factory: Callable[[], StreamingPartitioner],
                 *, buffer_size: int = 2048, refine_passes: int = 4
                 ) -> None:
        if buffer_size < 2:
            raise ValueError("buffer_size must be >= 2")
        self.base_factory = base_factory
        self.buffer_size = buffer_size
        self.refine_passes = refine_passes
        self._base = base_factory()
        self._moves = 0

    @property
    def name(self) -> str:
        return f"Buffered({self._base.name},B={self.buffer_size})"

    @property
    def num_partitions(self) -> int:
        return self._base.num_partitions

    # ------------------------------------------------------------------
    def _build_model_graph(self, batch, state: PartitionState
                           ) -> tuple[WeightedGraph, np.ndarray,
                                      np.ndarray]:
        """Batch model graph: batch vertices + K frozen anchors.

        Returns ``(graph, labels, frozen_mask)`` with batch vertices at
        indices ``0..B-1`` and anchor ``p`` at index ``B + p``.
        """
        k = self.num_partitions
        batch_ids = np.array([r.vertex for r in batch], dtype=np.int64)
        local_of = {int(v): i for i, v in enumerate(batch_ids)}
        b = len(batch)
        n_model = b + k

        srcs: list[int] = []
        dsts: list[int] = []
        for i, record in enumerate(batch):
            for u in record.neighbors.tolist():
                j = local_of.get(u)
                if j is not None:
                    if j != i:
                        srcs.append(i)
                        dsts.append(j)
                    continue
                pid = state.route[u]
                if pid != UNASSIGNED:
                    srcs.append(i)
                    dsts.append(b + int(pid))

        # symmetrize + aggregate into weights
        all_src = np.array(srcs + dsts, dtype=np.int64)
        all_dst = np.array(dsts + srcs, dtype=np.int64)
        if len(all_src):
            key = all_src * n_model + all_dst
            order = np.argsort(key, kind="stable")
            key = key[order]
            boundary = np.empty(len(key), dtype=bool)
            boundary[0] = True
            np.not_equal(key[1:], key[:-1], out=boundary[1:])
            group = np.cumsum(boundary) - 1
            weights = np.bincount(group).astype(np.int64)
            agg_src = all_src[order][boundary]
            agg_dst = all_dst[order][boundary]
        else:
            weights = np.empty(0, dtype=np.int64)
            agg_src = np.empty(0, dtype=np.int64)
            agg_dst = np.empty(0, dtype=np.int64)
        indptr = np.zeros(n_model + 1, dtype=np.int64)
        if len(agg_src):
            np.cumsum(np.bincount(agg_src, minlength=n_model),
                      out=indptr[1:])

        labels = np.empty(n_model, dtype=np.int32)
        labels[:b] = state.route[batch_ids]
        labels[b:] = np.arange(k, dtype=np.int32)

        vertex_weights = np.ones(n_model, dtype=np.int64)
        # anchor weight = the partition's global population *excluding*
        # the batch (batch members carry their own unit weights)
        batch_counts = np.bincount(state.route[batch_ids], minlength=k)
        vertex_weights[b:] = np.maximum(
            0, state.vertex_counts - batch_counts)

        frozen = np.zeros(n_model, dtype=bool)
        frozen[b:] = True
        model = WeightedGraph(indptr, agg_dst, weights, vertex_weights,
                              name="batch-model")
        return model, labels, frozen

    def _refine_batch(self, batch, state: PartitionState) -> None:
        if len(batch) < 2:
            return
        model, labels, frozen = self._build_model_graph(batch, state)
        refined = refine(model, labels, self.num_partitions,
                         slack=self._base.slack,
                         max_passes=self.refine_passes, frozen=frozen)
        # write accepted moves back into the streaming state
        for i, record in enumerate(batch):
            new_pid = int(refined[i])
            old_pid = int(state.route[record.vertex])
            if new_pid != old_pid:
                state.route[record.vertex] = new_pid
                state.vertex_counts[old_pid] -= 1
                state.vertex_counts[new_pid] += 1
                state.edge_counts[old_pid] -= record.out_degree
                state.edge_counts[new_pid] += record.out_degree
                self._moves += 1

    # ------------------------------------------------------------------
    def partition(self, stream: VertexStream) -> StreamingResult:
        """Stream + per-batch refinement; one pass over the data."""
        base = self._base
        self._moves = 0
        state = base.make_state(stream)
        base._setup(stream, state)
        start = time.perf_counter()
        batch = []
        for record in stream:
            base.place(record, state)
            batch.append(record)
            if len(batch) >= self.buffer_size:
                self._refine_batch(batch, state)
                batch = []
        if batch:
            self._refine_batch(batch, state)
        elapsed = time.perf_counter() - start
        stats = dict(base._extra_stats())
        stats.update(buffer_size=self.buffer_size,
                     refinement_moves=self._moves)
        return StreamingResult(
            assignment=state.to_assignment(),
            partitioner=self.name,
            elapsed_seconds=elapsed,
            num_partitions=base.num_partitions,
            stats=stats,
        )
