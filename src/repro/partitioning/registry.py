"""Unified partitioner registry: names → factories, one source of truth.

Every partitioner the project ships registers itself under a short CLI
name with the :func:`register` class decorator::

    @register("spnl", summary="SPN + topology locality (Eq. 6)")
    class SPNLPartitioner(SPNPartitioner): ...

and callers build instances through the one factory::

    from repro.partitioning.registry import make_partitioner
    p = make_partitioner("spnl", 32, slack=1.1, lam=0.5)

replacing the hardcoded name tuples in the CLI and the ad-hoc
name→class mappings in the bench harness.  Registration is namespaced by
*kind* — ``"vertex"`` (streaming vertex partitioners), ``"offline"``
(whole-graph baselines), ``"edge"`` (streaming edge partitioners) — so
the edge partitioner named ``random`` does not collide with the vertex
one.

The factory filters keyword arguments against the target's signature
(``ignore_unknown=True``), which lets one flag namespace (the CLI's
``--slack/--lam/--shards``) drive heterogeneous constructors; API users
get strict checking by default.  Unknown *names* always raise with the
list of registered names.

Built-in partitioners live in modules that are only imported on first
lookup (:func:`_ensure_builtins`), so importing the registry stays cheap
and dependency-free; third-party heuristics register by simply importing
their module before calling :func:`make_partitioner` — this is the
extension point documented in CONTRIBUTING.md.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from importlib import import_module
from typing import Any, Callable

__all__ = ["register", "make_partitioner", "available_partitioners",
           "resolve", "RegistryEntry"]

KINDS = ("vertex", "offline", "edge")

#: kind -> name -> entry
_REGISTRY: dict[str, dict[str, "RegistryEntry"]] = {k: {} for k in KINDS}

#: modules whose import triggers the built-in ``@register`` decorators
_BUILTIN_MODULES = (
    "repro.partitioning.ldg",
    "repro.partitioning.fennel",
    "repro.partitioning.spn",
    "repro.partitioning.spnl",
    "repro.partitioning.hashing",
    "repro.offline.multilevel",
    "repro.offline.label_propagation",
    "repro.edgepart.classic",
    "repro.edgepart.spnl_edge",
)
_builtins_loaded = False


@dataclass(frozen=True)
class RegistryEntry:
    """One registered partitioner: its name, kind, and factory."""

    name: str
    kind: str
    factory: Callable[..., Any]
    summary: str = ""
    extra_kwargs: dict[str, Any] = field(default_factory=dict)

    @property
    def is_streaming(self) -> bool:
        """Whether instances consume a :class:`VertexStream` (vs a graph)."""
        return self.kind == "vertex"


def register(name: str, *, kind: str = "vertex", summary: str = "",
             **extra_kwargs: Any) -> Callable:
    """Class decorator adding a partitioner under ``name``.

    ``extra_kwargs`` are defaults merged under the caller's kwargs at
    build time — e.g. SPNL registers with ``num_shards="auto"`` so the
    registry default matches the paper's recommended configuration.
    """
    if kind not in KINDS:
        raise ValueError(f"kind must be one of {KINDS}, got {kind!r}")

    def decorator(factory: Callable[..., Any]) -> Callable[..., Any]:
        existing = _REGISTRY[kind].get(name)
        if existing is not None and existing.factory is not factory:
            raise ValueError(
                f"partitioner name {name!r} already registered for kind "
                f"{kind!r} by {existing.factory!r}")
        _REGISTRY[kind][name] = RegistryEntry(
            name=name, kind=kind, factory=factory, summary=summary,
            extra_kwargs=dict(extra_kwargs))
        return factory

    return decorator


def _ensure_builtins() -> None:
    global _builtins_loaded
    if _builtins_loaded:
        return
    _builtins_loaded = True
    for module in _BUILTIN_MODULES:
        import_module(module)


def available_partitioners(kind: str | None = None) -> tuple[str, ...]:
    """Sorted names registered under ``kind`` (default: vertex+offline).

    ``kind=None`` returns everything a ``partition`` run can name — the
    streaming vertex heuristics plus the offline baselines; pass
    ``"edge"`` for the edge-partitioner namespace.
    """
    _ensure_builtins()
    if kind is not None:
        if kind not in KINDS:
            raise ValueError(f"kind must be one of {KINDS}, got {kind!r}")
        return tuple(sorted(_REGISTRY[kind]))
    names = set(_REGISTRY["vertex"]) | set(_REGISTRY["offline"])
    return tuple(sorted(names))


def resolve(name: str, *, kind: str | None = None) -> RegistryEntry:
    """Look up a registered partitioner; raise listing names if unknown."""
    _ensure_builtins()
    kinds = (kind,) if kind is not None else ("vertex", "offline")
    for k in kinds:
        entry = _REGISTRY[k].get(name)
        if entry is not None:
            return entry
    known = available_partitioners(kind)
    raise ValueError(
        f"unknown partitioner {name!r}; registered names: "
        f"{', '.join(known)}")


def _accepted_kwargs(factory: Callable[..., Any],
                     kwargs: dict[str, Any]) -> dict[str, Any]:
    """Drop kwargs the factory's signature cannot bind.

    A ``**kwargs`` catch-all in a class's ``__init__`` means "forwarded
    to ``super().__init__``" (the streaming heuristics all do this), so
    the accepted set is the union of named parameters along the MRO,
    walking until an ``__init__`` without a catch-all terminates the
    forwarding chain.
    """
    if inspect.isclass(factory):
        inits = [c.__dict__["__init__"] for c in factory.__mro__
                 if "__init__" in c.__dict__]
    else:
        inits = [factory]
    accepted: set[str] = set()
    for fn in inits:
        try:
            sig = inspect.signature(fn)
        except (TypeError, ValueError):  # builtins without signatures
            return dict(kwargs)
        params = list(sig.parameters.values())
        accepted |= {p.name for p in params
                     if p.kind in (inspect.Parameter.POSITIONAL_OR_KEYWORD,
                                   inspect.Parameter.KEYWORD_ONLY)}
        if not any(p.kind is inspect.Parameter.VAR_KEYWORD
                   for p in params):
            break
    else:  # every __init__ forwards **kwargs: genuinely accepts all
        return dict(kwargs)
    return {k: v for k, v in kwargs.items() if k in accepted}


def make_partitioner(name: Any, num_partitions: int | None = None, *,
                     kind: str | None = None,
                     ignore_unknown: bool = False,
                     **kwargs: Any) -> Any:
    """Build a registered partitioner by name, or from a config.

    Parameters
    ----------
    name:
        A registered short name (``"spnl"``, ``"ldg"``, ``"metis"``, …) —
        unknown names raise :class:`ValueError` listing every registered
        name — or a :class:`~repro.partitioning.config.PartitionConfig`,
        in which case the config supplies the name, ``K``, and every
        tuning knob (loose ``num_partitions``/``kwargs`` are rejected as
        ambiguous).
    num_partitions:
        ``K``, forwarded positionally to every factory.  Required when
        building by name.
    kind:
        Restrict lookup to one namespace (``"vertex"``, ``"offline"``,
        ``"edge"``); default searches vertex then offline.
    ignore_unknown:
        ``True`` silently drops kwargs the factory cannot bind (the CLI
        uses this to share one flag namespace across heuristics);
        ``False`` (default) lets the constructor raise on typos.
    """
    from .config import PartitionConfig
    if isinstance(name, PartitionConfig):
        if num_partitions is not None or kwargs:
            raise TypeError(
                "pass either a PartitionConfig or name/num_partitions/"
                "kwargs, not both (ambiguous which wins)")
        config = name
        name = config.method
        num_partitions = config.num_partitions
        kwargs = config.kwargs()
        ignore_unknown = True
    elif num_partitions is None:
        raise TypeError(
            "num_partitions is required when building by name "
            "(or pass a PartitionConfig)")
    entry = resolve(name, kind=kind)
    merged = dict(entry.extra_kwargs)
    merged.update(kwargs)
    if ignore_unknown:
        merged = _accepted_kwargs(entry.factory, merged)
    return entry.factory(num_partitions, **merged)
