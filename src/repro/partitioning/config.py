"""``PartitionConfig`` — the one frozen object describing a partitioning run.

The knob set accepted by the heuristics grew one keyword at a time
(``slack``, ``lam``, ``num_shards``, ``gamma_store``, ``gamma_buckets``,
``in_estimator``, …) until every layer that builds a partitioner — the
facade, the CLI, the bench harness, and now the placement service — was
threading the same positional-kwarg sprawl through its own signature.
:class:`PartitionConfig` replaces that: one immutable, hashable,
JSON-round-trippable value object that :func:`~repro.partitioning.registry
.make_partitioner`, :func:`repro.partition_stream`, and the service boot
path all accept directly::

    from repro import PartitionConfig, partition_stream

    cfg = PartitionConfig(method="spnl", num_partitions=32, slack=1.1)
    result = partition_stream(graph, cfg)
    faster = cfg.replace(num_partitions=64)      # derived configs

Every field except ``method``/``num_partitions`` defaults to ``None``,
meaning "use the registry/constructor default" — so a config never
overrides a heuristic's own defaults unless the caller asked it to, and
``cfg.kwargs()`` contains exactly the knobs that were set.  Unknown keys
for a given method are dropped at build time (the registry's
``ignore_unknown`` filtering), which is what lets one config type span
heterogeneous constructors.

The old kwarg-sprawl call style (``partition_stream(graph, "spnl", 32,
slack=1.2, …)``) keeps working through a deprecation shim that emits a
single :class:`DeprecationWarning` per process — loud enough to steer
new code, quiet enough not to spam a sweep loop.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, fields, replace
from typing import Any, Mapping

__all__ = ["PartitionConfig", "warn_kwargs_style_once"]

#: Fields that identify the run rather than tune the heuristic.
_IDENTITY_FIELDS = ("method", "num_partitions")

_warned_kwargs_style = False


def warn_kwargs_style_once() -> None:
    """Emit the one-per-process kwarg-sprawl :class:`DeprecationWarning`.

    The old calling convention still works everywhere it used to; this
    shim exists so the suggestion to migrate appears exactly once, not
    once per call inside a parameter sweep.
    """
    global _warned_kwargs_style
    if _warned_kwargs_style:
        return
    _warned_kwargs_style = True
    warnings.warn(
        "passing heuristic parameters as loose keyword arguments is "
        "deprecated; bundle them in a repro.PartitionConfig "
        "(e.g. PartitionConfig(method='spnl', num_partitions=32, "
        "slack=1.1)) and pass that instead",
        DeprecationWarning, stacklevel=3)


def _reset_kwargs_warning() -> None:
    """Testing hook: re-arm :func:`warn_kwargs_style_once`."""
    global _warned_kwargs_style
    _warned_kwargs_style = False


@dataclass(frozen=True)
class PartitionConfig:
    """Immutable description of one partitioning run.

    Parameters
    ----------
    method:
        Registered partitioner name (``repro.available_partitioners()``).
    num_partitions:
        ``K``.
    slack:
        Balance threshold ``δ`` in ``C = δ·|G|/K``.
    lam:
        SPN/SPNL's λ weighting out-neighbor intersection vs in-neighbor
        expectation.
    num_shards:
        Sliding-window ``X`` (int, or ``"auto"`` for the paper's rule).
    gamma_store / gamma_buckets:
        Γ expectation-store backend selection (see
        :class:`~repro.partitioning.spn.SPNPartitioner`).
    in_estimator:
        SPN's in-neighbor term variant.
    balance / edge_slack / overflow:
        Shared capacity policy (see
        :class:`~repro.partitioning.base.StreamingPartitioner`).
    seed:
        RNG seed for the randomized baselines (``random``, …).
    extra:
        Escape hatch for heuristic-specific knobs this dataclass does
        not name (e.g. third-party partitioners registered via
        ``@register``).  Stored as a sorted tuple of pairs so the config
        stays hashable; pass a mapping.

    Every tuning field defaults to ``None`` — "defer to the registry /
    constructor default" — so ``PartitionConfig(method="spnl")`` builds
    exactly what ``make_partitioner("spnl", 32)`` builds.
    """

    method: str = "spnl"
    num_partitions: int = 32
    slack: float | None = None
    lam: float | None = None
    num_shards: int | str | None = None
    gamma_store: str | None = None
    gamma_buckets: int | None = None
    in_estimator: str | None = None
    balance: str | None = None
    edge_slack: float | None = None
    overflow: str | None = None
    seed: int | None = None
    extra: Any = field(default=())

    def __post_init__(self) -> None:
        if not isinstance(self.method, str) or not self.method:
            raise ValueError(f"method must be a non-empty partitioner "
                             f"name, got {self.method!r}")
        if int(self.num_partitions) < 1:
            raise ValueError("num_partitions must be >= 1")
        object.__setattr__(self, "num_partitions", int(self.num_partitions))
        if self.slack is not None and float(self.slack) < 1.0:
            raise ValueError("slack (the paper's δ) must be >= 1.0")
        if self.lam is not None and not 0.0 <= float(self.lam) <= 1.0:
            raise ValueError("lam (λ) must lie in [0, 1]")
        extra = self.extra
        if isinstance(extra, Mapping):
            extra = tuple(sorted(extra.items()))
        elif extra is None:
            extra = ()
        else:
            extra = tuple((str(k), v) for k, v in extra)
        for key, _value in extra:
            if key in {f.name for f in fields(self)}:
                raise ValueError(
                    f"extra key {key!r} shadows a named config field; "
                    f"set the field directly")
        object.__setattr__(self, "extra", extra)

    # -- building ------------------------------------------------------
    def kwargs(self) -> dict[str, Any]:
        """The explicitly-set tuning knobs as constructor kwargs.

        ``method``/``num_partitions`` are excluded (they travel
        positionally); ``None`` fields are omitted entirely so registry
        and constructor defaults stay in charge of anything unset.
        """
        out: dict[str, Any] = {}
        for f in fields(self):
            if f.name in _IDENTITY_FIELDS or f.name == "extra":
                continue
            value = getattr(self, f.name)
            if value is not None:
                out[f.name] = value
        out.update(dict(self.extra))
        return out

    def make(self, *, kind: str | None = None) -> Any:
        """Build the configured partitioner through the registry.

        Unknown knobs are dropped per-method (``ignore_unknown=True``),
        which is what lets one config describe heterogeneous
        constructors; unknown *names* still raise with the full
        registered list.
        """
        from .registry import make_partitioner
        return make_partitioner(self.method, self.num_partitions,
                                kind=kind, ignore_unknown=True,
                                **self.kwargs())

    # -- derivation / round-tripping -----------------------------------
    def replace(self, **changes: Any) -> "PartitionConfig":
        """A copy with ``changes`` applied (frozen dataclasses can't
        mutate)."""
        return replace(self, **changes)

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready dict: identity fields + every explicitly-set knob.

        The inverse of :meth:`from_dict`; used by the service's
        ``hello``/``stats`` endpoints and the bench artifacts so a
        running server can state exactly what it was booted with.
        """
        out: dict[str, Any] = {"method": self.method,
                               "num_partitions": self.num_partitions}
        out.update(self.kwargs())
        return out

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "PartitionConfig":
        """Rebuild a config from :meth:`to_dict` output.

        Keys this dataclass does not name land in ``extra`` instead of
        raising, so configs serialized by a *newer* repro with more
        fields still load (forward compatibility mirrors the wire
        protocol's additive-fields rule).
        """
        known = {f.name for f in fields(cls)} - {"extra"}
        named = {k: v for k, v in payload.items() if k in known}
        extra = {k: v for k, v in payload.items() if k not in known}
        return cls(**named, extra=extra)
